//! End-to-end resilience acceptance (ISSUE 5): kill-and-resume
//! bit-identity, and supervised-run transparency when nothing fails.
//!
//! No fault plan is armed anywhere in this binary — these tests prove
//! the resilience machinery is invisible when idle.

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3core::checkpoint::{latest_in, step_path, Checkpoint};
use fv3core::{DistributedDycore, DriverConfig};
use resilience::{Supervisor, SupervisorPolicy};
use std::fs;
use std::path::PathBuf;

/// The c8L6 six-rank configuration of the acceptance criteria.
fn c8l6() -> DistributedDycore {
    let cfg = DriverConfig::six_rank(
        8,
        6,
        DycoreConfig {
            n_split: 1,
            k_split: 1,
            dt: 4.0,
            dddmp: 0.02,
            nord4_damp: None,
        },
    );
    DistributedDycore::new(cfg, &ExpansionAttrs::tuned())
}

fn assert_bit_identical(a: &DistributedDycore, b: &DistributedDycore) {
    assert_eq!(a.step_index(), b.step_index());
    for (r, (sa, sb)) in a.states.iter().zip(&b.states).enumerate() {
        for ((name, fa), (_, fb)) in sa.fields().iter().zip(sb.fields().iter()) {
            for (n, (x, y)) in fa
                .export_logical()
                .iter()
                .zip(&fb.export_logical())
                .enumerate()
            {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "rank {r} field {name} element {n}: {x} vs {y}"
                );
            }
        }
    }
}

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fv3_resilience_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

#[test]
fn kill_and_resume_is_bit_identical_to_uninterrupted_run() {
    let dir = scratch_dir("resume");

    // Uninterrupted reference: 6 steps.
    let mut reference = c8l6();
    for _ in 0..6 {
        reference.step();
    }

    // Interrupted run: 3 steps with checkpoints on disk, then the
    // process "dies" (the dycore is dropped; all in-memory state lost).
    {
        let mut d = c8l6();
        for _ in 0..3 {
            d.step();
            d.write_checkpoint(&step_path(&dir, d.step_index())).unwrap();
        }
    }

    // Resurrection from the newest checkpoint file alone.
    let newest = latest_in(&dir).unwrap().expect("checkpoints on disk");
    assert_eq!(newest, step_path(&dir, 3));
    let mut resumed = DistributedDycore::resume_from(&newest, &ExpansionAttrs::tuned()).unwrap();
    assert_eq!(resumed.step_index(), 3);
    for _ in 0..3 {
        resumed.step();
    }

    assert_bit_identical(&resumed, &reference);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn resume_restores_config_from_the_checkpoint_itself() {
    let dir = scratch_dir("config");
    let mut d = c8l6();
    d.step();
    let path = step_path(&dir, d.step_index());
    d.write_checkpoint(&path).unwrap();

    let ck = Checkpoint::load(&path).unwrap();
    assert_eq!(ck.step, 1);
    assert_eq!(ck.config.tile_n, 8);
    assert_eq!(ck.config.nk, 6);
    assert_eq!(ck.config.dycore.dt, 4.0);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn idle_supervision_is_bit_identical_to_a_plain_step_loop() {
    // Plain loop.
    let mut plain = c8l6();
    for _ in 0..3 {
        plain.step();
    }

    // Supervised, checkpointing fully off: the supervisor must be a
    // transparent wrapper.
    let mut off = c8l6();
    let mut sup = Supervisor::new(SupervisorPolicy {
        checkpoint_every: 0,
        ..SupervisorPolicy::default()
    });
    let report = sup.run(&mut off, 3).unwrap();
    assert!(report.clean());
    assert_eq!(report.checkpoint_writes, 0);
    assert_bit_identical(&off, &plain);

    // Supervised with in-memory checkpointing every step: captures read
    // the state but must not perturb it.
    let mut on = c8l6();
    let mut sup = Supervisor::new(SupervisorPolicy::default());
    let report = sup.run(&mut on, 3).unwrap();
    assert!(report.clean());
    assert_eq!(report.restores, 0);
    assert_bit_identical(&on, &plain);

    // And with on-disk persistence as well.
    let dir = scratch_dir("idle");
    let mut disk = c8l6();
    let mut sup = Supervisor::new(SupervisorPolicy {
        checkpoint_dir: Some(dir.clone()),
        ..SupervisorPolicy::default()
    });
    let report = sup.run(&mut disk, 3).unwrap();
    assert!(report.clean());
    assert_eq!(report.checkpoint_writes, 4, "step 0 basis + one per step");
    assert!(report.checkpoint_bytes > 0);
    assert_bit_identical(&disk, &plain);
    assert!(latest_in(&dir).unwrap().is_some());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_checkpoint_writes_are_invisible_to_latest_in() {
    // A crash mid-write leaves only a `.tmp` file, which `latest_in`
    // ignores and the next atomic write replaces.
    let dir = scratch_dir("torn");
    let d = c8l6();
    let ck = Checkpoint::capture(&d);
    fs::create_dir_all(&dir).unwrap();
    let torn = ck.to_bytes();
    fs::write(dir.join("ckpt_00000007.fv3ckpt.tmp"), &torn[..torn.len() / 2]).unwrap();
    assert_eq!(latest_in(&dir).unwrap(), None);

    ck.write_atomic(&step_path(&dir, 0)).unwrap();
    assert_eq!(latest_in(&dir).unwrap(), Some(step_path(&dir, 0)));
    // The half-written file is still not a candidate, and loading the
    // real one verifies every checksum.
    assert!(Checkpoint::load(&step_path(&dir, 0)).is_ok());
    let _ = fs::remove_dir_all(&dir);
}
