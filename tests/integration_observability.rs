//! Integration: the flight recorder threaded through the distributed
//! driver — spans from step/acoustic/rank/halo levels, halo byte
//! counters per edge orientation, and per-rank health sampling, all in
//! one process-global install (this test binary owns the process).

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3core::driver::{DistributedDycore, DriverConfig};
use fv3core::RankSchedule;

#[test]
fn driver_step_records_spans_metrics_and_health() {
    let cfg = DriverConfig {
        tile_n: 8,
        rt: 1,
        nk: 4,
        dycore: DycoreConfig {
            n_split: 2,
            k_split: 1,
            dt: 4.0,
            dddmp: 0.02,
            nord4_damp: None,
        },
    };
    let mut d = DistributedDycore::new(cfg, &ExpansionAttrs::tuned());
    // The span hierarchy asserted below (one halo span per exchanged
    // field set, oriented halo_bytes counters) is the sequential central
    // exchange's shape; pin it so `FV3_RANK_SCHEDULE=parallel` in the
    // environment (the CI tier-1 parallel gate) can't change what this
    // phase measures. The parallel schedule's own observability is
    // asserted in a second phase at the end of this test.
    d.set_rank_schedule(RankSchedule::Sequential);

    let tracer = obs::Tracer::new();
    let metrics = obs::MetricsRegistry::new();
    obs::tracing::install_global(&tracer);
    obs::metrics::install_global(&metrics);
    let mut monitor = fv3::health::default_monitor().with_tracer(&tracer);

    d.step();
    assert!(d.sample_health(&mut monitor, 0));
    obs::tracing::uninstall_global();
    obs::metrics::uninstall_global();

    // Span hierarchy: one driver step, n_split acoustic substeps, one
    // rank span per rank per substep, one halo span per exchanged field
    // set per substep (u+v vector pair = 2 exchanges, + 4 scalars).
    let events = tracer.finished();
    let count = |cat: &str| events.iter().filter(|e| e.cat == cat).count();
    assert_eq!(count("step"), 1);
    assert_eq!(count("acoustic"), 2);
    assert_eq!(count("rank"), 2 * d.partition.ranks());
    assert_eq!(count("halo"), 2 * 6);
    // Every halo span is tagged with its traffic.
    for e in events.iter().filter(|e| e.cat == "halo") {
        assert!(e.bytes > 0 && e.points > 0);
    }
    // Spans nest: every acoustic span inside the step span's interval.
    let step = events.iter().find(|e| e.cat == "step").unwrap();
    for e in events.iter().filter(|e| e.cat == "acoustic") {
        assert!(step.ts_us <= e.ts_us && e.ts_us + e.dur_us <= step.ts_us + step.dur_us);
    }

    // Metrics: halo bytes per orientation, counters, high-water mark.
    let mut oriented_total = 0;
    for o in comm::Orientation::ALL {
        oriented_total += metrics.counter_value("halo_bytes", &[("orientation", o.label())]);
    }
    let span_total: u64 = events.iter().filter(|e| e.cat == "halo").map(|e| e.bytes).sum();
    assert_eq!(oriented_total, span_total);
    assert!(oriented_total > 0);
    // rt=1: corner blocks are all cube corners, so no corner traffic.
    assert_eq!(
        metrics.counter_value("halo_bytes", &[("orientation", "corner")]),
        0
    );
    assert_eq!(metrics.counter_value("halo_exchanges", &[]), 2 * 6);
    assert_eq!(metrics.counter_value("driver_steps", &[]), 1);
    assert_eq!(
        metrics.counter_value("rank_runs", &[]),
        2 * d.partition.ranks() as u64
    );
    assert!(metrics.gauge_value("store_bytes", &[]).unwrap_or(0.0) > 0.0);

    // Health: one sample per rank, all healthy, JSONL emits.
    assert_eq!(monitor.samples().len(), d.partition.ranks());
    assert!(monitor.all_healthy());
    let jsonl = obs::emit_jsonl(&metrics, 0);
    assert!(jsonl.lines().count() >= 4);

    // The chrome trace round-trips through the dataflow parser.
    let parsed = dataflow::profile::parse_chrome_trace(&tracer.to_chrome_trace()).unwrap();
    assert_eq!(parsed.len(), events.len());

    // Phase 2: the parallel schedule. Halo traffic moves to per-channel
    // mailbox posts accounted by the overlap stats rather than central
    // halo spans, but step/acoustic/rank spans and the rank_runs counter
    // keep the same shape (rank spans now come from worker threads).
    d.set_rank_schedule(RankSchedule::Parallel);
    let ptracer = obs::Tracer::new();
    let pmetrics = obs::MetricsRegistry::new();
    obs::tracing::install_global(&ptracer);
    obs::metrics::install_global(&pmetrics);
    d.step();
    obs::tracing::uninstall_global();
    obs::metrics::uninstall_global();

    let pevents = ptracer.finished();
    let pcount = |cat: &str| pevents.iter().filter(|e| e.cat == cat).count();
    assert_eq!(pcount("step"), 1);
    assert_eq!(pcount("acoustic"), 2);
    assert_eq!(pcount("rank"), 2 * d.partition.ranks());
    assert_eq!(pmetrics.counter_value("parallel_substeps", &[]), 2);
    assert_eq!(
        pmetrics.counter_value("rank_runs", &[]),
        2 * d.partition.ranks() as u64
    );
    // Every rank's substep timings were folded in and published.
    let stats = d.overlap_stats();
    assert_eq!(stats.substeps, 2 * d.partition.ranks() as u64);
    assert!(pmetrics.gauge_value("overlap_efficiency", &[]).is_some());
    let (bytes_posted, messages_posted) = d.halo_traffic_posted();
    assert!(bytes_posted > 0 && messages_posted > 0);
}
