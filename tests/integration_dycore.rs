//! Integration: the orchestrated whole-program dycore vs the composed
//! baselines, through expansion modes and optimization passes — "all
//! performance engineering was accomplished without modifying the
//! user-code" means numerics must survive every transformation.

use dataflow::exec::{DataStore, ExecHooks, Executor};
use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::*;
use fv3::grid::Grid;
use fv3::init::{init_baroclinic, BaroclinicConfig};
use fv3::state::DycoreState;

struct Hooks<'a> {
    ids: &'a DycoreIds,
}
impl ExecHooks for Hooks<'_> {
    fn callback(&mut self, name: &str, store: &mut DataStore) {
        assert_eq!(name, REMAP_CALLBACK);
        remap_callback(store, self.ids);
    }
}

fn setup(n: usize, nk: usize) -> (DycoreState, Grid) {
    let geom = comm::CubeGeometry::new(n);
    let grid = Grid::compute(&geom.faces[0], n, 0, 0, n, fv3::state::HALO, nk);
    let mut s = DycoreState::zeros(n, nk);
    init_baroclinic(&mut s, &grid, &BaroclinicConfig::default());
    (s, grid)
}

fn run_program(
    state0: &DycoreState,
    grid: &Grid,
    prog: &DycoreProgram,
    g: &dataflow::Sdfg,
) -> DycoreState {
    let mut store = DataStore::for_sdfg(g);
    load_state(&mut store, &prog.ids, state0, grid);
    let mut hooks = Hooks { ids: &prog.ids };
    Executor::serial().run(g, &mut store, &prog.params, &mut hooks);
    let mut out = state0.clone();
    extract_state(&store, &prog.ids, &mut out);
    out
}

#[test]
fn optimization_pipeline_preserves_numerics_exactly() {
    // Run the program at every pipeline stage and compare prognostics.
    use fv3core::pipeline::{run_pipeline, PipelineStage};
    let (n, nk) = (8, 5);
    let (state0, grid) = setup(n, nk);
    let config = DycoreConfig {
        n_split: 2,
        k_split: 1,
        dt: 4.0,
        dddmp: 0.03,
        nord4_damp: None,
    };
    let prog = build_dycore_program(n, nk, config);
    let model = fv3core::experiments::p100();

    let mut reference: Option<DycoreState> = None;
    for stage in [
        PipelineStage::Default,
        PipelineStage::ScheduleHeuristics,
        PipelineStage::LocalCaching,
        PipelineStage::PowerOperator,
        PipelineStage::SplitRegions,
        PipelineStage::Cleanup,
        PipelineStage::TransferTuning,
    ] {
        let report = run_pipeline(&prog.sdfg, &model, &|_| 0.0, stage);
        let result = run_program(&state0, &grid, &prog, &report.optimized);
        assert!(!result.has_nonfinite(), "{stage:?} produced non-finite");
        match &reference {
            None => reference = Some(result),
            Some(r) => {
                let diff = r.max_abs_diff(&result);
                assert!(
                    diff < 1e-9,
                    "{stage:?} changed numerics by {diff}"
                );
            }
        }
    }
}

#[test]
fn baseline_and_orchestrated_agree_over_multiple_steps() {
    let (n, nk) = (8, 5);
    let (state0, grid) = setup(n, nk);
    let config = DycoreConfig {
        n_split: 1,
        k_split: 1,
        dt: 3.0,
        dddmp: 0.02,
        nord4_damp: None,
    };
    // Three sequential program executions == three baseline steps.
    let prog = build_dycore_program(n, nk, config);
    let mut g = prog.sdfg.clone();
    g.expand_libraries(&ExpansionAttrs::tuned());

    let mut dsl_state = state0.clone();
    for _ in 0..3 {
        dsl_state = run_program(&dsl_state, &grid, &prog, &g);
    }
    let mut base = state0.clone();
    let mut scratch = BaselineScratch::for_state(&base);
    for _ in 0..3 {
        baseline_step(&mut base, &grid, &mut scratch, &config, &mut |_| {});
    }
    let diff = base.max_abs_diff(&dsl_state);
    assert!(diff < 1e-8, "3-step divergence {diff}");
}

#[test]
fn dead_code_elimination_never_breaks_the_dycore() {
    let (n, nk) = (8, 4);
    let (state0, grid) = setup(n, nk);
    let prog = build_dycore_program(n, nk, DycoreConfig::default());
    let mut g = prog.sdfg.clone();
    g.expand_libraries(&ExpansionAttrs::tuned());
    let before = run_program(&state0, &grid, &prog, &g);
    dataflow::passes::eliminate_dead_writes(&mut g);
    dataflow::passes::eliminate_redundant_copies(&mut g);
    let after = run_program(&state0, &grid, &prog, &g);
    assert_eq!(before.max_abs_diff(&after), 0.0);
}
