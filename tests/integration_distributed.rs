//! Integration: the distributed (multi-rank) dycore over the cubed
//! sphere — conservation, stability, and halo consistency at 6 and 24
//! ranks.

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3core::driver::{DistributedDycore, DriverConfig};

fn config(tile_n: usize, rt: usize, nk: usize) -> DriverConfig {
    DriverConfig {
        tile_n,
        rt,
        nk,
        dycore: DycoreConfig {
            n_split: 1,
            k_split: 1,
            dt: 3.0,
            dddmp: 0.03,
            nord4_damp: None,
        },
    }
}

#[test]
fn six_rank_global_simulation_conserves_and_stays_finite() {
    let mut d = DistributedDycore::new(config(12, 1, 5), &ExpansionAttrs::tuned());
    let mass0 = d.global_air_mass();
    let tracer0 = d.global_tracer_mass();
    for _ in 0..4 {
        d.step();
        assert!(!d.any_nonfinite());
    }
    assert!((d.global_air_mass() / mass0 - 1.0).abs() < 1e-3);
    assert!((d.global_tracer_mass() / tracer0 - 1.0).abs() < 1e-3);
}

#[test]
fn twenty_four_rank_decomposition_matches_rank_structure() {
    let d = DistributedDycore::new(config(8, 2, 3), &ExpansionAttrs::tuned());
    assert_eq!(d.partition.ranks(), 24);
    // Every rank holds an edge at rt = 2 (2x2 per tile).
    assert_eq!(d.partition.edge_rank_fraction(), 1.0);
}

#[test]
fn expansion_mode_does_not_change_distributed_results() {
    let mut a = DistributedDycore::new(config(8, 1, 4), &ExpansionAttrs::tuned());
    let mut b = DistributedDycore::new(config(8, 1, 4), &ExpansionAttrs::tuned());
    a.step();
    b.step();
    for r in 0..6 {
        assert_eq!(a.states[r].max_abs_diff(&b.states[r]), 0.0, "deterministic");
    }
}

#[test]
fn halo_widths_fit_smallest_supported_subdomain() {
    // HALO-wide exchange must be constructible down to sub_n = HALO.
    let d = DistributedDycore::new(config(8, 2, 2), &ExpansionAttrs::tuned());
    assert_eq!(d.partition.sub_n, 4);
    assert_eq!(fv3::state::HALO, 4);
}
