//! Integration: every FV3 module's DSL version must match its
//! FORTRAN-style baseline through the full stencil -> SDFG -> executor
//! path (the paper's serialized-reference validation discipline,
//! Section IV-A).

use dataflow::kernel::Domain;
use dataflow::{Array3, Layout};
use rand::{Rng, SeedableRng};
use stencil::debug::run_stencil;

fn rand_field(n: usize, nk: usize, halo: usize, rng: &mut impl Rng, lo: f64, hi: f64) -> Array3 {
    let l = Layout::fv3_default([n, n, nk], [halo, halo, 0]);
    let mut a = Array3::zeros(l);
    let h = halo as i64;
    for k in 0..nk as i64 {
        for j in -h..n as i64 + h {
            for i in -h..n as i64 + h {
                a.set(i, j, k, rng.gen_range(lo..hi));
            }
        }
    }
    a
}

#[test]
fn ppm_x_and_y_match_baseline_on_many_seeds() {
    for seed in [1u64, 7, 42, 1337] {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let (n, nk) = (12, 2);
        for axis in [fv3::ppm::SweepAxis::X, fv3::ppm::SweepAxis::Y] {
            let q = rand_field(n, nk, 3, &mut rng, 0.5, 2.0);
            let c = rand_field(n, nk, 3, &mut rng, -0.95, 0.95);
            let mut fb = Array3::zeros(q.layout().clone());
            fv3::ppm::baseline_ppm(axis, &q, &c, &mut fb);

            let def = fv3::ppm::ppm_stencil(axis);
            let (mut qd, mut cd) = (q.clone(), c.clone());
            let mut fd = Array3::zeros(q.layout().clone());
            let grow = match axis {
                fv3::ppm::SweepAxis::X => Domain {
                    start: [0, -1, 0],
                    end: [n as i64 + 1, n as i64 + 1, nk as i64],
                },
                fv3::ppm::SweepAxis::Y => Domain {
                    start: [-1, 0, 0],
                    end: [n as i64 + 1, n as i64 + 1, nk as i64],
                },
            };
            run_stencil(
                &def,
                &mut [("q", &mut qd), ("c", &mut cd), ("flux", &mut fd)],
                &[],
                grow,
            )
            .unwrap();
            for k in 0..nk as i64 {
                for j in 0..n as i64 {
                    for i in 0..=n as i64 {
                        let (ii, jj) = match axis {
                            fv3::ppm::SweepAxis::X => (i, j),
                            fv3::ppm::SweepAxis::Y => (j, i),
                        };
                        assert!(
                            (fb.get(ii, jj, k) - fd.get(ii, jj, k)).abs() < 1e-12,
                            "seed {seed} {axis:?} at ({ii},{jj},{k})"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn riemann_solver_matches_baseline_across_column_counts() {
    for nk in [4usize, 16, 48] {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(nk as u64);
        let n = 5;
        let l = Layout::fv3_default([n, n, nk], [0, 0, 1]);
        let mk = |rng: &mut rand::rngs::SmallRng, lo: f64, hi: f64| {
            let mut a = Array3::zeros(l.clone());
            for k in -1..nk as i64 + 1 {
                for j in 0..n as i64 {
                    for i in 0..n as i64 {
                        a.set(i, j, k, rng.gen_range(lo..hi));
                    }
                }
            }
            a
        };
        let delp = mk(&mut rng, 400.0, 1600.0);
        let pt = mk(&mut rng, 240.0, 360.0);
        let delz = mk(&mut rng, -900.0, -150.0);
        let w0 = mk(&mut rng, -3.0, 3.0);

        let mut wb = w0.clone();
        fv3::riem_solver_c::baseline_riem_solver_c(&delp, &pt, &delz, &mut wb, 3.0);

        let def = fv3::riem_solver_c::riem_solver_c_stencil();
        let (mut d, mut p, mut z, mut wd) = (delp.clone(), pt.clone(), delz.clone(), w0.clone());
        run_stencil(
            &def,
            &mut [
                ("delp", &mut d),
                ("pt", &mut p),
                ("delz", &mut z),
                ("w", &mut wd),
            ],
            &[("dt", 3.0)],
            Domain::from_shape([n, n, nk]),
        )
        .unwrap();
        assert!(wb.max_abs_diff(&wd) < 1e-11, "nk={nk}: {}", wb.max_abs_diff(&wd));
    }
}

#[test]
fn whole_step_is_reproducible_and_deterministic() {
    use fv3::dyn_core::*;
    use fv3::grid::Grid;
    use fv3::init::{init_baroclinic, BaroclinicConfig};
    use fv3::state::DycoreState;

    let (n, nk) = (10, 6);
    let geom = comm::CubeGeometry::new(n);
    let grid = Grid::compute(&geom.faces[2], n, 0, 0, n, fv3::state::HALO, nk);
    let mut a = DycoreState::zeros(n, nk);
    init_baroclinic(&mut a, &grid, &BaroclinicConfig::default());
    let mut b = a.clone();
    let config = DycoreConfig::default();
    let mut sa = BaselineScratch::for_state(&a);
    let mut sb = BaselineScratch::for_state(&b);
    baseline_step(&mut a, &grid, &mut sa, &config, &mut |_| {});
    baseline_step(&mut b, &grid, &mut sb, &config, &mut |_| {});
    assert_eq!(a.max_abs_diff(&b), 0.0, "bitwise deterministic");
}
