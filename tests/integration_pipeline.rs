//! Integration: the pipeline + tuning stack on the full dycore —
//! Table III shape invariants and transfer-tuning bookkeeping.

use fv3::dyn_core::{build_dycore_program, DycoreConfig};
use fv3core::experiments::{haswell, p100, table2_row, Module};
use fv3core::pipeline::{run_pipeline, PipelineStage};

#[test]
fn table3_shape_holds_on_the_production_domain() {
    let program = build_dycore_program(192, 80, DycoreConfig::default()).sdfg;
    let report = run_pipeline(&program, &p100(), &|_| 0.0, PipelineStage::TransferTuning);
    let default_t = report.stages[0].step_time;
    let final_t = report.final_time();
    // Heuristics must be the single largest improvement (paper: 1.50x ->
    // 2.94x, i.e. nearly 2x of the remaining gap in one stage).
    let heur_gain = default_t / report.stages[1].step_time;
    for w in report.stages.windows(2).skip(1) {
        let gain = w[0].step_time / w[1].step_time;
        assert!(
            gain <= heur_gain,
            "{:?} gain {gain} exceeds heuristics gain {heur_gain}",
            w[1].stage
        );
    }
    assert!(final_t < default_t / 2.0, "overall >2x from the pipeline");
    // Transfer tuning contributes a small, positive final gain
    // (paper: 3.47%).
    let tt_gain = report.stages[6].step_time / report.stages[7].step_time;
    assert!((1.0..1.2).contains(&tt_gain), "transfer tuning gain {tt_gain}");
}

#[test]
fn fortran_model_prefers_cpu_schedules() {
    // Pricing the naive GPU-scheduled expansion on the CPU model must be
    // worse than the k-blocked CPU expansion: schedules matter per
    // target, which is the whole point of schedule-free stencils.
    use dataflow::graph::ExpansionAttrs;
    use dataflow::model::model_sdfg;
    let program = build_dycore_program(96, 40, DycoreConfig::default()).sdfg;
    let mut cpu_sched = program.clone();
    cpu_sched.expand_libraries(&ExpansionAttrs::tuned_cpu());
    let mut gpu_sched = program.clone();
    gpu_sched.expand_libraries(&ExpansionAttrs::naive());
    let good = model_sdfg(&cpu_sched, &haswell(), &|_| 0.0).total_time;
    let bad = model_sdfg(&gpu_sched, &haswell(), &|_| 0.0).total_time;
    assert!(good < bad, "cpu-tuned {good} vs naive {bad}");
}

#[test]
fn table2_full_shape() {
    // The two modules' headline trends, on the paper's domain ladder.
    let sizes = [128usize, 192, 256, 384];
    let riem: Vec<_> = sizes
        .iter()
        .map(|&n| table2_row(Module::RiemannSolverC, n, 80))
        .collect();
    let fvt: Vec<_> = sizes
        .iter()
        .map(|&n| table2_row(Module::FiniteVolumeTransport, n, 80))
        .collect();
    // Riemann: speedup large (>4x) and non-decreasing.
    for w in riem.windows(2) {
        assert!(w[0].speedup() > 4.0);
        assert!(w[1].speedup() >= w[0].speedup() * 0.98);
    }
    // FVT: speedup small at 128 (cache regime), large at 384.
    assert!(fvt[0].speedup() < 4.0, "{}", fvt[0].speedup());
    assert!(fvt[3].speedup() > fvt[0].speedup() * 2.0);
    // FORTRAN FVT scales super-linearly somewhere along the ladder.
    let worst: f64 = fvt
        .windows(2)
        .map(|w| {
            (w[1].fortran_ms / w[0].fortran_ms)
                / ((w[1].n * w[1].n) as f64 / (w[0].n * w[0].n) as f64)
        })
        .fold(0.0, f64::max);
    assert!(worst > 1.3, "cache cliff factor {worst}");
}

#[test]
fn pipeline_stages_preserve_bit_identity_end_to_end() {
    // The module doc's bit-identity claim, enforced: every stage cutoff
    // executes the dycore to bitwise-equal prognostics (the harness
    // lives in crates/validate; see its README for the methodology).
    use validate::reference::{seed_case, seed_config};
    let (state0, grid) = seed_case();
    let stages =
        validate::check_pipeline_bit_identity(&state0, &grid, seed_config(), &p100())
            .unwrap_or_else(|d| panic!("a pipeline stage changed the numerics: {d}"));
    assert_eq!(stages.len(), PipelineStage::ALL.len());
}
