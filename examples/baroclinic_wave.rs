//! The paper's distributed test case (Section IX): a baroclinic-wave
//! initial state on the 6-tile cubed sphere, integrated with the full
//! orchestrated dycore and real halo exchanges between simulated ranks.
//!
//! ```bash
//! cargo run --release --example baroclinic_wave
//! ```

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3core::driver::{DistributedDycore, DriverConfig};

fn main() {
    let config = DriverConfig::six_rank(
        16, // cells per tile edge (c16 — tiny but fully global)
        8,  // vertical levels
        DycoreConfig {
            n_split: 2,
            k_split: 1,
            dt: 4.0,
            dddmp: 0.05,
            nord4_damp: None,
        },
    );
    println!("setting up 6-rank cubed-sphere dycore (c16L8)...");
    let mut dycore = DistributedDycore::new(config, &ExpansionAttrs::tuned());
    println!(
        "program: {} states, {} kernels per substep",
        dycore.program_graph().states.len(),
        dycore.program_graph().kernel_count()
    );

    let mass0 = dycore.global_air_mass();
    let tracer0 = dycore.global_tracer_mass();
    println!("initial global air mass   {mass0:.6e}");
    println!("initial global tracer mass {tracer0:.6e}");

    for step in 1..=5 {
        dycore.step();
        let mass = dycore.global_air_mass();
        let tracer = dycore.global_tracer_mass();
        // Max |w| as an activity diagnostic.
        let mut wmax = 0.0f64;
        for s in &dycore.states {
            for k in 0..s.nk as i64 {
                for j in 0..s.n as i64 {
                    for i in 0..s.n as i64 {
                        wmax = wmax.max(s.w.get(i, j, k).abs());
                    }
                }
            }
        }
        println!(
            "step {step}: mass drift {:+.3e}, tracer drift {:+.3e}, max|w| {:.3e} m/s, finite: {}",
            mass / mass0 - 1.0,
            tracer / tracer0 - 1.0,
            wmax,
            !dycore.any_nonfinite()
        );
    }
    println!("\nthe baroclinic jet + perturbation evolves stably across all six tiles.");
}
