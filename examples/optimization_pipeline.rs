//! The full Fig. 7 optimization pipeline on the orchestrated dycore,
//! printing the Table III-style trajectory and the Fig. 10 bounds table
//! before and after the power-operator fix.
//!
//! ```bash
//! cargo run --release --example optimization_pipeline
//! ```

use fv3::dyn_core::{build_dycore_program, DycoreConfig};
use fv3core::bounds::{bounds_report, render};
use fv3core::experiments::p100;
use fv3core::pipeline::{run_pipeline, PipelineStage};

fn main() {
    let program = build_dycore_program(96, 32, DycoreConfig::default());

    println!("== optimization pipeline (Fig. 7 / Table III shape) ==");
    let report = run_pipeline(&program.sdfg, &p100(), &|_| 0.0, PipelineStage::TransferTuning);
    let t0 = report.stages[0].step_time;
    for s in &report.stages {
        println!(
            "{:<36} {:>10.3} ms   {:>6.2}x   ({} launches, {} transforms)",
            s.stage.label(),
            s.step_time * 1e3,
            t0 / s.step_time,
            s.launches,
            s.applied
        );
    }

    println!("\n== bounds analysis (Fig. 10 shape), post-pipeline ==");
    let (rows, m) = bounds_report(&report.optimized, &p100(), &|_| 0.0);
    print!("{}", render(&rows, 10));
    println!(
        "total modeled kernel time: {:.3} ms over {} launches",
        m.total_time * 1e3,
        m.launches
    );
}
