//! Transfer tuning demo (Section VI-B): tune the finite-volume-transport
//! cutouts, extract name-based patterns, and transfer them across the
//! whole dycore, printing every committed match.
//!
//! ```bash
//! cargo run --release --example transfer_tuning
//! ```

use dataflow::graph::ExpansionAttrs;
use dataflow::model::{model_sdfg, CostModel};
use fv3::dyn_core::{build_dycore_program, DycoreConfig};
use machine::{GpuModel, GpuSpec};
use tuning::transfer_tune;

fn main() {
    let mut g = build_dycore_program(
        64,
        16,
        DycoreConfig {
            n_split: 3,
            k_split: 1,
            dt: 5.0,
            dddmp: 0.05,
            nord4_damp: None,
        },
    )
    .sdfg;
    g.expand_libraries(&ExpansionAttrs::tuned());
    let model = CostModel::Gpu(GpuModel::new(GpuSpec::p100()));

    let sources: Vec<usize> = g
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name.contains("tracer"))
        .map(|(i, _)| i)
        .collect();
    println!("tuning {} FVT cutout state(s) of {} total states", sources.len(), g.states.len());

    let before = model_sdfg(&g, &model, &|_| 0.0).total_time;
    let (search, transfer) = transfer_tune(&mut g, &sources, &model, 2);
    let after = model_sdfg(&g, &model, &|_| 0.0).total_time;

    println!("configurations searched: {}", search.configurations);
    println!("patterns extracted:");
    for p in &search.patterns {
        println!(
            "  {:?}: {} -> {}  (gain {:.1} us on the cutout)",
            p.kind, p.labels[0], p.labels[1], p.gain * 1e6
        );
    }
    println!("transferred matches:");
    for m in &transfer.applied {
        println!(
            "  state {} [{}]: {} + {}  (local gain {:.1} us)",
            m.state,
            g.states[m.state].name,
            m.labels[0],
            m.labels[1],
            m.gain * 1e6
        );
    }
    println!(
        "modeled step: {:.3} ms -> {:.3} ms ({:+.2}%)",
        before * 1e3,
        after * 1e3,
        (after / before - 1.0) * 100.0
    );
}
