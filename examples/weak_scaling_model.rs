//! Interactive version of the Fig. 11 study: sweep node counts and
//! communication-overlap assumptions, showing how the alpha-beta model
//! and the edge-specialization share combine into the weak-scaling
//! curve.
//!
//! ```bash
//! cargo run --release --example weak_scaling_model
//! ```

use fv3::dyn_core::DycoreConfig;
use fv3core::experiments::{sypd, weak_scaling};
use machine::{NetworkModel, NetworkSpec};

fn main() {
    let config = DycoreConfig {
        n_split: 5,
        k_split: 2,
        dt: 10.0,
        dddmp: 0.05,
        nord4_damp: None,
    };

    println!("== weak scaling (Fig. 11 model) ==");
    let pts = weak_scaling(&[6, 54, 216, 864, 2400], 80, config);
    for p in &pts {
        println!(
            "{:>5} nodes  {:>6.2} km   FORTRAN {:>7.3} s   Python {:>7.3} s   {:>5.2}x   {:.2} SYPD",
            p.nodes,
            p.resolution_km,
            p.fortran_s,
            p.python_s,
            p.speedup(),
            sypd(p.python_s, config.dt * (config.n_split * config.k_split) as f64)
        );
    }

    println!("\n== communication sensitivity (54 nodes, per acoustic substep) ==");
    let n = 192usize;
    let nk = 80usize;
    let halo_cells = (4 * n * fv3::state::HALO + 4 * fv3::state::HALO * fv3::state::HALO) as u64;
    let bytes = halo_cells * nk as u64 * 8 * 6;
    for overlap in [0.0, 0.25, 0.5, 0.75, 0.9] {
        let net = NetworkModel::new(NetworkSpec::aries(), overlap);
        let t = net.exposed_time(48, bytes);
        println!(
            "overlap {:>4.0}%  ->  exposed halo time {:>8.1} us per substep",
            overlap * 100.0,
            t * 1e6
        );
    }
    println!("\nFV3 posts nonblocking exchanges early in the acoustic loop");
    println!("(Section II), which is why substantial overlap is realistic.");
}
