//! Quickstart: declare a stencil in the DSL, run it through the debug
//! backend, then build a program, optimize it, and compare modeled cost.
//!
//! ```bash
//! cargo run --example quickstart
//! ```

use dataflow::graph::ExpansionAttrs;
use dataflow::kernel::Domain;
use dataflow::model::model_sdfg;
use dataflow::transforms::fusion::greedy_subgraph_fusion;
use machine::{GpuModel, GpuSpec};
use stencil::prelude::*;

fn main() {
    // 1. Declare a diffusion stencil — fields, a parameter, one PARALLEL
    //    computation. No schedules, no layouts, no hardware.
    let diffuse = Arc::new(
        StencilBuilder::new("diffuse", |b| {
            let q = b.input("q");
            let out = b.output("out");
            let alpha = b.param("alpha");
            b.computation(KOrder::Parallel, AxisInterval::FULL, |c| {
                c.assign(
                    &out,
                    q.c() + alpha.ex()
                        * (q.at(-1, 0, 0) + q.at(1, 0, 0) + q.at(0, -1, 0) + q.at(0, 1, 0)
                            - lit(4.0) * q.c()),
                );
            });
        })
        .expect("valid stencil"),
    );
    println!(
        "stencil '{}' with {} operation(s)",
        diffuse.name,
        diffuse.operation_count()
    );

    // 2. Run it directly on arrays with the debug backend.
    let n = 32;
    let layout = Layout::fv3_default([n, n, 4], [1, 1, 0]);
    let mut q = Array3::filled(layout.clone(), 1.0);
    q.set(16, 16, 0, 2.0); // a bump to smooth out
    let mut out = Array3::zeros(layout);
    stencil::debug::run_stencil(
        &diffuse,
        &mut [("q", &mut q), ("out", &mut out)],
        &[("alpha", 0.1)],
        Domain::from_shape([n, n, 4]),
    )
    .expect("debug run");
    println!(
        "after one step the bump diffused: centre {:.3}, neighbour {:.3}",
        out.get(16, 16, 0),
        out.get(15, 16, 0)
    );

    // 3. Build a two-stencil program, lower it to the dataflow IR, and
    //    let the optimizer fuse it.
    let scale = Arc::new(
        StencilBuilder::new("scale", |b| {
            let x = b.input("x");
            let y = b.output("y");
            b.computation(KOrder::Parallel, AxisInterval::FULL, |c| {
                c.assign(&y, x.c() * lit(0.5));
            });
        })
        .unwrap(),
    );
    let mut prog = ProgramBuilder::new("quickstart", [n, n, 4], [1, 1, 0]);
    let a = prog.field("a");
    let b_ = prog.field("b");
    let c_ = prog.field("c");
    prog.param("alpha");
    prog.call(&diffuse, &[("q", a), ("out", b_)], &[("alpha", "alpha")])
        .unwrap();
    prog.call(&scale, &[("x", b_), ("y", c_)], &[]).unwrap();
    let mut sdfg = prog.build();
    sdfg.expand_libraries(&ExpansionAttrs::tuned());

    let model = dataflow::model::CostModel::Gpu(GpuModel::new(GpuSpec::p100()));
    let before = model_sdfg(&sdfg, &model, &|_| 0.0);
    let applied = greedy_subgraph_fusion(&mut sdfg);
    let after = model_sdfg(&sdfg, &model, &|_| 0.0);
    println!(
        "fusion applied {} transformation(s): {} -> {} kernels, modeled {:.2} -> {:.2} us",
        applied.len(),
        before.launches,
        after.launches,
        before.total_time * 1e6,
        after.total_time * 1e6
    );
    println!("\nThat's the whole workflow: declarative stencil -> IR -> optimize -> run.");
}
