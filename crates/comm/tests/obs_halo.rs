//! Halo-exchange observability: span + metrics recording.
//!
//! Lives in its own test binary (own process) because it installs the
//! process-global tracer and metrics registry — unit tests running
//! exchanges concurrently would pollute the counters.

use comm::{rank_arrays, CornerPolicy, HaloUpdater, Orientation};
use comm::partition::Partition;

#[test]
fn exchange_records_spans_and_metrics_when_installed() {
    let tracer = obs::Tracer::new();
    let metrics = obs::MetricsRegistry::new();
    obs::tracing::install_global(&tracer);
    obs::metrics::install_global(&metrics);
    let part = Partition::new(8, 2);
    let up = HaloUpdater::new(part.clone(), 2, CornerPolicy::Leave);
    let mut arrays = rank_arrays(&part, 4, 2);
    let stats = up.exchange_scalar(&mut arrays);
    obs::tracing::uninstall_global();
    obs::metrics::uninstall_global();

    let spans = tracer.finished();
    let halo: Vec<_> = spans.iter().filter(|e| e.cat == "halo").collect();
    assert_eq!(halo.len(), 1);
    assert_eq!(halo[0].name, "halo_exchange");
    assert_eq!(halo[0].bytes, stats.total_bytes);
    assert_eq!(halo[0].points, stats.total_messages);

    for o in Orientation::ALL {
        let counted = metrics.counter_value("halo_bytes", &[("orientation", o.label())]);
        assert_eq!(counted, stats.bytes_for(o), "orientation {}", o.label());
    }
    assert_eq!(metrics.counter_value("halo_exchanges", &[]), 1);
    assert_eq!(metrics.counter_value("halo_messages", &[]), stats.total_messages);

    // Uninstalled again: further exchanges leave no trace.
    let before = tracer.len();
    up.exchange_scalar(&mut arrays);
    assert_eq!(tracer.len(), before);
}
