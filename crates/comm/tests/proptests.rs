//! Property-based tests on the cubed-sphere communication substrate:
//! geometric connectivity invariants for arbitrary sizes, partition
//! roundtrips, and halo-exchange source correctness for arbitrary
//! decompositions.

use comm::geometry::{CubeGeometry, Edge};
use comm::halo::{rank_arrays, CornerPolicy, HaloUpdater};
use comm::partition::{HaloSource, Partition, RankId};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cube_connectivity_invariants_hold_for_any_size(n in 2usize..32) {
        let g = CubeGeometry::new(n);
        let mut pairs = std::collections::HashSet::new();
        for f in 0..6 {
            for e in Edge::ALL {
                let link = g.links[f][e.idx()];
                // Symmetric:
                let back = g.links[link.face][link.edge.idx()];
                prop_assert_eq!(back.face, f);
                prop_assert_eq!(back.edge, e);
                let a = (f, e.idx());
                let b = (link.face, link.edge.idx());
                pairs.insert(if a < b { (a, b) } else { (b, a) });
            }
        }
        prop_assert_eq!(pairs.len(), 12);
    }

    #[test]
    fn halo_sources_are_always_interior_cells(
        n in 4usize..20,
        depth in 0i64..3,
    ) {
        let g = CubeGeometry::new(n);
        for f in 0..6 {
            for e in Edge::ALL {
                for t in 0..n as i64 {
                    let (nf, i, j) = g.halo_source(f, e, depth, t);
                    prop_assert!(nf < 6);
                    prop_assert!((0..n as i64).contains(&i));
                    prop_assert!((0..n as i64).contains(&j));
                }
            }
        }
    }

    #[test]
    fn rank_coords_roundtrip_for_any_decomposition(
        rt in 1usize..5,
        mult in 1usize..4,
    ) {
        let p = Partition::new(rt * mult * 4, rt);
        prop_assert_eq!(p.ranks(), 6 * rt * rt);
        for r in 0..p.ranks() {
            let (t, x, y) = p.coords(RankId(r));
            prop_assert_eq!(p.rank(t, x, y), RankId(r));
        }
        // Edge-rank fraction is 1 for rt <= 2 and < 1 for rt >= 3.
        if rt <= 2 {
            prop_assert_eq!(p.edge_rank_fraction(), 1.0);
        } else {
            prop_assert!(p.edge_rank_fraction() < 1.0);
        }
    }

    #[test]
    fn exchanged_halos_always_equal_their_source_cells(
        rt in 1usize..3,
        sub in 4usize..8,
        width in 1usize..4,
        seed in 0i64..1000,
    ) {
        let part = Partition::new(rt * sub, rt);
        let up = HaloUpdater::new(part.clone(), width, CornerPolicy::Leave);
        let mut arrays = rank_arrays(&part, 2, width);
        // Unique global values per (rank, i, j, k).
        for (r, arr) in arrays.iter_mut().enumerate() {
            for k in 0..2i64 {
                for j in 0..sub as i64 {
                    for i in 0..sub as i64 {
                        arr.set(i, j, k,
                            seed as f64 + (r as i64 * 1000 + k * 300 + j * 17 + i) as f64);
                    }
                }
            }
        }
        up.exchange_scalar(&mut arrays);
        let s = sub as i64;
        for r in 0..part.ranks() {
            for d in 1..=width as i64 {
                for t in 0..s {
                    for (i, j) in [(-d, t), (s - 1 + d, t), (t, -d), (t, s - 1 + d)] {
                        match part.halo_source(RankId(r), i, j) {
                            HaloSource::Intra { rank, i: si, j: sj }
                            | HaloSource::Inter { rank, i: si, j: sj, .. } => {
                                prop_assert_eq!(
                                    arrays[r].get(i, j, 1),
                                    arrays[rank.0].get(si, sj, 1),
                                    "rank {} halo ({}, {})", r, i, j
                                );
                            }
                            HaloSource::CubeCorner => {}
                        }
                    }
                }
            }
        }
    }
}
