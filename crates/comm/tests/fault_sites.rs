//! Reachability tests for the halo fault sites (ISSUE 5).
//!
//! These live in their own test binary: the fault registry is
//! process-global, so armed sections must not share a process with
//! unrelated tests that run exchanges.

use comm::halo::{
    rank_arrays, CornerPolicy, HaloUpdater, FAULT_SITES, SITE_HALO_CORRUPT, SITE_HALO_DROP,
    SITE_HALO_STALL,
};
use comm::partition::Partition;
use machine::faults::{self, FaultAction, FaultSpec};
use std::time::Duration;

fn updater(width: usize) -> (HaloUpdater, Vec<dataflow::Array3>) {
    let part = Partition::new(6, 1);
    let up = HaloUpdater::new(part.clone(), width, CornerPolicy::Leave);
    let mut arrays = rank_arrays(&part, 2, width);
    for (r, arr) in arrays.iter_mut().enumerate() {
        for k in 0..2 {
            for j in 0..6 {
                for i in 0..6 {
                    arr.set(i, j, k, (r * 100 + (i + 6 * j) as usize) as f64 + 0.5 * k as f64);
                }
            }
        }
    }
    (up, arrays)
}

#[test]
fn corrupt_site_poisons_exactly_one_halo_value() {
    let _g = faults::arm(
        7,
        vec![FaultSpec::new(SITE_HALO_CORRUPT, FaultAction::PoisonNan)],
    );
    let (up, mut arrays) = updater(2);
    up.exchange_scalar(&mut arrays);
    assert_eq!(faults::fired_count(SITE_HALO_CORRUPT), 1);
    let nans: usize = arrays
        .iter()
        .map(|a| {
            let mut n = 0;
            let s = 6i64;
            for k in 0..2 {
                for j in -2..s + 2 {
                    for i in -2..s + 2 {
                        if a.get(i, j, k).is_nan() {
                            n += 1;
                        }
                    }
                }
            }
            n
        })
        .sum();
    assert_eq!(nans, 1, "exactly one poisoned halo cell");
    // A second exchange heals it: the once-spec has retired and the
    // poisoned cell is a halo cell, overwritten from clean interiors.
    up.exchange_scalar(&mut arrays);
    assert_eq!(faults::fired_count(SITE_HALO_CORRUPT), 1);
}

#[test]
fn corrupt_factor_is_silent_data_corruption() {
    let _g = faults::arm(
        7,
        vec![FaultSpec::new(
            SITE_HALO_CORRUPT,
            FaultAction::CorruptFactor(1000.0),
        )],
    );
    let (up, mut arrays) = updater(1);
    let (up2, mut clean) = updater(1);
    up.exchange_scalar(&mut arrays);
    drop(_g);
    up2.exchange_scalar(&mut clean);
    let mut diffs = 0;
    for (a, c) in arrays.iter().zip(clean.iter()) {
        for k in 0..2 {
            for j in -1..7 {
                for i in -1..7 {
                    let (va, vc) = (a.get(i, j, k), c.get(i, j, k));
                    if va != vc {
                        diffs += 1;
                        assert!(va.is_finite(), "factor corruption stays finite");
                        assert_eq!(va, vc * 1000.0);
                    }
                }
            }
        }
    }
    assert_eq!(diffs, 1, "one silently corrupted value");
}

#[test]
fn drop_site_leaves_target_rank_halo_stale() {
    let _g = faults::arm(
        7,
        vec![FaultSpec::new(SITE_HALO_DROP, FaultAction::DropMessage).on_rank(3)],
    );
    let (up, mut arrays) = updater(2);
    let (up2, mut clean) = updater(2);
    let before3 = arrays[3].clone();
    up.exchange_scalar(&mut arrays);
    drop(_g);
    up2.exchange_scalar(&mut clean);
    assert_eq!(faults::fired_count(SITE_HALO_DROP), 1);
    // Rank 3's halo kept its pre-exchange (stale) values...
    let s = 6i64;
    let mut stale = 0;
    for k in 0..2 {
        for j in -2..s + 2 {
            for i in -2..s + 2 {
                let interior = (0..s).contains(&i) && (0..s).contains(&j);
                if interior {
                    continue;
                }
                if arrays[3].get(i, j, k) == before3.get(i, j, k)
                    && clean[3].get(i, j, k) != before3.get(i, j, k)
                {
                    stale += 1;
                }
            }
        }
    }
    assert!(stale > 0, "dropped message leaves stale halo cells");
    // ...while every other rank matches the clean exchange exactly.
    for r in 0..arrays.len() {
        if r == 3 {
            continue;
        }
        for k in 0..2 {
            for j in -2..s + 2 {
                for i in -2..s + 2 {
                    assert_eq!(
                        arrays[r].get(i, j, k).to_bits(),
                        clean[r].get(i, j, k).to_bits(),
                        "rank {r} ({i},{j},{k}) unaffected by drop"
                    );
                }
            }
        }
    }
}

#[test]
fn stall_site_trips_the_watchdog() {
    let _g = faults::arm(
        7,
        vec![FaultSpec::new(SITE_HALO_STALL, FaultAction::StallMs(50))],
    );
    let (mut up, mut arrays) = updater(1);
    up.set_stall_deadline(Some(Duration::from_millis(10)));
    assert_eq!(up.stall_count(), 0);
    up.exchange_scalar(&mut arrays);
    assert_eq!(faults::fired_count(SITE_HALO_STALL), 1);
    assert_eq!(up.stall_count(), 1, "watchdog noticed the stall");
    // Once-spec retired: the next exchange is fast and clean.
    up.exchange_scalar(&mut arrays);
    assert_eq!(up.stall_count(), 1);
}

#[test]
fn watchdog_disarmed_counts_nothing() {
    let _g = faults::arm(
        7,
        vec![FaultSpec::new(SITE_HALO_STALL, FaultAction::StallMs(30))],
    );
    let (up, mut arrays) = updater(1);
    // No deadline set: the stall happens but is not counted.
    up.exchange_scalar(&mut arrays);
    assert_eq!(faults::fired_count(SITE_HALO_STALL), 1);
    assert_eq!(up.stall_count(), 0);
}

#[test]
fn all_sites_enumerated() {
    assert_eq!(
        FAULT_SITES,
        [SITE_HALO_CORRUPT, SITE_HALO_DROP, SITE_HALO_STALL]
    );
}
