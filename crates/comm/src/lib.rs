//! Cubed-sphere communication substrate — the MPI / halo-exchange analog.
//!
//! FV3 parallelizes with "a two-dimensional domain decomposition in the
//! horizontal dimensions using MPI library calls" over the six tiles of
//! the gnomonic cubed sphere (Section II). This crate provides that
//! substrate for the reproduction: face geometry with derived edge
//! connectivity ([`geometry`]), rank decomposition ([`partition`]), and a
//! pack/exchange/unpack halo updater with per-pair orientation transforms
//! ([`halo`]). Ranks are simulated in-process (see DESIGN.md); the
//! packing, orientation and corner logic is the real thing, and exchange
//! statistics feed `machine::NetworkModel` for the scaling studies.

pub mod geometry;
pub mod halo;
pub mod partition;
pub mod plan;

pub use geometry::{CubeGeometry, Edge, EdgeLink, FaceFrame};
pub use halo::{rank_arrays, CornerPolicy, ExchangeStats, HaloUpdater, Orientation};
pub use partition::{HaloSource, Partition, RankId};
pub use plan::{
    threaded_exchange_scalar, CellTap, Channel, ExchangePlan, FoldCell, HaloMailboxes, PackField,
    RecvError,
};
