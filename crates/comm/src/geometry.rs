//! Gnomonic cubed-sphere face geometry and edge connectivity.
//!
//! Halo updates on the cubed sphere are "slightly more complex [...] as
//! data must be transformed according to the orientation of the
//! coordinate system of the adjoining faces of the cube" (Section IV-C).
//! Instead of hand-writing the 12 edge orientation rules (and getting one
//! wrong), each face carries an explicit 3-D frame on the unit-cube
//! lattice; shared edges and their relative orientations are *derived*
//! from corner coincidence, so the connectivity table is consistent by
//! construction and property-tested for the invariants every cube must
//! satisfy (24 edge slots pairing into 12 symmetric links).

/// An integer 3-vector on the cube lattice.
pub type V3 = [i64; 3];

fn add(a: V3, b: V3) -> V3 {
    [a[0] + b[0], a[1] + b[1], a[2] + b[2]]
}

fn scale(a: V3, s: i64) -> V3 {
    [a[0] * s, a[1] * s, a[2] * s]
}

/// Dot product.
pub fn dot(a: V3, b: V3) -> i64 {
    a[0] * b[0] + a[1] * b[1] + a[2] * b[2]
}

/// A face of the cube: origin corner plus unit vectors for local i and j.
/// For an N-cell face, corner lattice points are `origin + u*a + v*b` for
/// `a, b ∈ [0, N]`.
#[derive(Debug, Clone, Copy)]
pub struct FaceFrame {
    pub origin: V3,
    pub u: V3,
    pub v: V3,
}

impl FaceFrame {
    /// Lattice corner at local `(a, b)`, both in `[0, N]`.
    pub fn corner(&self, a: i64, b: i64) -> V3 {
        add(self.origin, add(scale(self.u, a), scale(self.v, b)))
    }

    /// Continuous 3-D position of the cell centre `(i, j)` (lattice units).
    pub fn cell_center(&self, i: f64, j: f64) -> [f64; 3] {
        [
            self.origin[0] as f64 + self.u[0] as f64 * (i + 0.5) + self.v[0] as f64 * (j + 0.5),
            self.origin[1] as f64 + self.u[1] as f64 * (i + 0.5) + self.v[1] as f64 * (j + 0.5),
            self.origin[2] as f64 + self.u[2] as f64 * (i + 0.5) + self.v[2] as f64 * (j + 0.5),
        ]
    }
}

/// The four edges of a face in local coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// `i = 0` side, parametrized by j.
    West,
    /// `i = n-1` side, parametrized by j.
    East,
    /// `j = 0` side, parametrized by i.
    South,
    /// `j = n-1` side, parametrized by i.
    North,
}

impl Edge {
    /// All edges.
    pub const ALL: [Edge; 4] = [Edge::West, Edge::East, Edge::South, Edge::North];

    /// Endpoint corners `(start, end)` of this edge in local `(a, b)`
    /// lattice coordinates for cube size n: the edge parameter runs from
    /// `start` to `end`.
    pub fn corners(&self, n: i64) -> ((i64, i64), (i64, i64)) {
        match self {
            Edge::West => ((0, 0), (0, n)),
            Edge::East => ((n, 0), (n, n)),
            Edge::South => ((0, 0), (n, 0)),
            Edge::North => ((0, n), (n, n)),
        }
    }

    /// Interior cell at depth `d` from this edge with edge parameter `t`.
    pub fn interior_cell(&self, n: i64, d: i64, t: i64) -> (i64, i64) {
        match self {
            Edge::West => (d, t),
            Edge::East => (n - 1 - d, t),
            Edge::South => (t, d),
            Edge::North => (t, n - 1 - d),
        }
    }

    /// Halo cell at depth `d` beyond this edge with edge parameter `t`.
    pub fn halo_cell(&self, n: i64, d: i64, t: i64) -> (i64, i64) {
        match self {
            Edge::West => (-1 - d, t),
            Edge::East => (n + d, t),
            Edge::South => (t, -1 - d),
            Edge::North => (t, n + d),
        }
    }

    /// Index 0..4.
    pub fn idx(&self) -> usize {
        match self {
            Edge::West => 0,
            Edge::East => 1,
            Edge::South => 2,
            Edge::North => 3,
        }
    }
}

/// One side of an edge link: which face/edge is on the other side and
/// whether the edge parameter runs in the opposite direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeLink {
    pub face: usize,
    pub edge: Edge,
    pub reversed: bool,
}

/// The cubed sphere: six faces with derived connectivity.
#[derive(Debug, Clone)]
pub struct CubeGeometry {
    /// Cells per face edge.
    pub n: usize,
    pub faces: [FaceFrame; 6],
    /// `links[f][e]` is the other side of face f's edge e.
    pub links: [[EdgeLink; 4]; 6],
}

impl CubeGeometry {
    /// Build the standard six-face cube of size `n`.
    pub fn new(n: usize) -> Self {
        let nn = n as i64;
        // Frames chosen so that faces 0/1/2 form the "origin corner" and
        // 3/4/5 the opposite one; orientations are deliberately varied —
        // the link derivation below does not care.
        let faces = [
            // 0: bottom (z = 0)
            FaceFrame {
                origin: [0, 0, 0],
                u: [1, 0, 0],
                v: [0, 1, 0],
            },
            // 1: front (y = 0)
            FaceFrame {
                origin: [0, 0, 0],
                u: [1, 0, 0],
                v: [0, 0, 1],
            },
            // 2: west (x = 0)
            FaceFrame {
                origin: [0, 0, 0],
                u: [0, 1, 0],
                v: [0, 0, 1],
            },
            // 3: top (z = N)
            FaceFrame {
                origin: [0, 0, nn],
                u: [1, 0, 0],
                v: [0, 1, 0],
            },
            // 4: back (y = N)
            FaceFrame {
                origin: [0, nn, 0],
                u: [1, 0, 0],
                v: [0, 0, 1],
            },
            // 5: east (x = N)
            FaceFrame {
                origin: [nn, 0, 0],
                u: [0, 1, 0],
                v: [0, 0, 1],
            },
        ];

        // Derive links by matching edge corner pairs.
        let mut links = [[EdgeLink {
            face: usize::MAX,
            edge: Edge::West,
            reversed: false,
        }; 4]; 6];
        for f in 0..6 {
            for e in Edge::ALL {
                let ((a0, b0), (a1, b1)) = e.corners(nn);
                let p0 = faces[f].corner(a0, b0);
                let p1 = faces[f].corner(a1, b1);
                let mut found = false;
                for (g, face_g) in faces.iter().enumerate() {
                    if g == f {
                        continue;
                    }
                    for e2 in Edge::ALL {
                        let ((c0, d0), (c1, d1)) = e2.corners(nn);
                        let q0 = face_g.corner(c0, d0);
                        let q1 = face_g.corner(c1, d1);
                        if p0 == q0 && p1 == q1 {
                            links[f][e.idx()] = EdgeLink {
                                face: g,
                                edge: e2,
                                reversed: false,
                            };
                            found = true;
                        } else if p0 == q1 && p1 == q0 {
                            links[f][e.idx()] = EdgeLink {
                                face: g,
                                edge: e2,
                                reversed: true,
                            };
                            found = true;
                        }
                    }
                }
                assert!(found, "face {f} edge {e:?} has no neighbor — bad frames");
            }
        }
        CubeGeometry { n, faces, links }
    }

    /// The cell on the neighbouring face that fills face `f`'s halo cell
    /// at depth `d` beyond edge `e`, parameter `t`. Returns
    /// `(neighbor face, i, j)`.
    pub fn halo_source(&self, f: usize, e: Edge, d: i64, t: i64) -> (usize, i64, i64) {
        let n = self.n as i64;
        let link = self.links[f][e.idx()];
        let t2 = if link.reversed { n - 1 - t } else { t };
        let (i, j) = link.edge.interior_cell(n, d, t2);
        (link.face, i, j)
    }

    /// The 2x2 component transform for vector quantities crossing from
    /// face `g` into face `f`'s frame: returns `m` such that
    /// `[u_f, v_f] = m * [u_g, v_g]` (projected onto the shared tangent
    /// plane; entries in {-1, 0, 1}).
    pub fn vector_transform(&self, f: usize, g: usize) -> [[i64; 2]; 2] {
        let ff = &self.faces[f];
        let gf = &self.faces[g];
        [
            [dot(gf.u, ff.u), dot(gf.v, ff.u)],
            [dot(gf.u, ff.v), dot(gf.v, ff.v)],
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn every_edge_is_linked_and_symmetric() {
        let g = CubeGeometry::new(8);
        for f in 0..6 {
            for e in Edge::ALL {
                let link = g.links[f][e.idx()];
                assert_ne!(link.face, usize::MAX);
                assert_ne!(link.face, f, "face linked to itself");
                // Symmetry: the neighbor's slot points back.
                let back = g.links[link.face][link.edge.idx()];
                assert_eq!(back.face, f);
                assert_eq!(back.edge, e);
                assert_eq!(back.reversed, link.reversed, "reversal is symmetric");
            }
        }
    }

    #[test]
    fn links_pair_into_twelve_edges() {
        let g = CubeGeometry::new(4);
        let mut pairs = HashSet::new();
        for f in 0..6 {
            for e in Edge::ALL {
                let link = g.links[f][e.idx()];
                let a = (f, e.idx());
                let b = (link.face, link.edge.idx());
                let key = if a < b { (a, b) } else { (b, a) };
                pairs.insert(key);
            }
        }
        assert_eq!(pairs.len(), 12, "a cube has 12 edges");
    }

    #[test]
    fn halo_source_lands_on_interior_cells() {
        let g = CubeGeometry::new(6);
        let n = 6i64;
        for f in 0..6 {
            for e in Edge::ALL {
                for d in 0..3 {
                    for t in 0..n {
                        let (nf, i, j) = g.halo_source(f, e, d, t);
                        assert!(nf < 6);
                        assert!((0..n).contains(&i) && (0..n).contains(&j),
                            "source ({i},{j}) outside face for f={f} e={e:?} d={d} t={t}");
                    }
                }
            }
        }
    }

    #[test]
    fn halo_source_is_geometrically_adjacent() {
        // The 3-D distance between a halo cell's source centre and the
        // edge-adjacent interior cell of the receiving face must be small
        // (≤ ~2.24 lattice units for depth 0..1 with a fold), for every
        // edge. A wrong face or a flipped parametrization yields O(n).
        let n = 8usize;
        let g = CubeGeometry::new(n);
        let nn = n as i64;
        for f in 0..6 {
            for e in Edge::ALL {
                for t in 0..nn {
                    let (sf, si, sj) = g.halo_source(f, e, 0, t);
                    let src = g.faces[sf].cell_center(si as f64, sj as f64);
                    let (ii, ij) = e.interior_cell(nn, 0, t);
                    let dst = g.faces[f].cell_center(ii as f64, ij as f64);
                    let dist2: f64 = (0..3).map(|d| (src[d] - dst[d]).powi(2)).sum();
                    assert!(
                        dist2 <= 2.6,
                        "halo source too far: f={f} e={e:?} t={t} dist2={dist2}"
                    );
                }
            }
        }
    }

    #[test]
    fn halo_sources_within_an_edge_are_contiguous() {
        // Consecutive t must map to 3-D-adjacent source cells (unit
        // distance): catches off-by-one and direction bugs.
        let n = 8usize;
        let g = CubeGeometry::new(n);
        for f in 0..6 {
            for e in Edge::ALL {
                for t in 0..(n as i64 - 1) {
                    let (sf0, i0, j0) = g.halo_source(f, e, 0, t);
                    let (sf1, i1, j1) = g.halo_source(f, e, 0, t + 1);
                    assert_eq!(sf0, sf1);
                    let p0 = g.faces[sf0].cell_center(i0 as f64, j0 as f64);
                    let p1 = g.faces[sf1].cell_center(i1 as f64, j1 as f64);
                    let dist2: f64 = (0..3).map(|d| (p0[d] - p1[d]).powi(2)).sum();
                    assert!((dist2 - 1.0).abs() < 1e-9);
                }
            }
        }
    }

    #[test]
    fn vector_transform_is_signed_permutation_like() {
        let g = CubeGeometry::new(4);
        for f in 0..6 {
            for e in Edge::ALL {
                let link = g.links[f][e.idx()];
                let m = g.vector_transform(f, link.face);
                for row in m {
                    for v in row {
                        assert!((-1..=1).contains(&v));
                    }
                }
            }
        }
    }

    #[test]
    fn cell_centers_lie_on_face_planes() {
        let n = 4usize;
        let g = CubeGeometry::new(n);
        for f in 0..6 {
            let c = g.faces[f].cell_center(0.0, 0.0);
            // One coordinate must be exactly 0 or n (the fixed plane).
            let on_plane = c
                .iter()
                .any(|&x| x.abs() < 1e-12 || (x - n as f64).abs() < 1e-12);
            assert!(on_plane, "face {f} origin cell {c:?} not on a cube plane");
        }
    }
}
