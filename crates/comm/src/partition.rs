//! Domain decomposition: the paper's "two-dimensional domain decomposition
//! in the horizontal dimensions" over the six cubed-sphere tiles.
//!
//! A [`Partition`] divides each tile into `rt x rt` equal subdomains; rank
//! ids enumerate `(tile, ry, rx)`. The smallest distributed configuration
//! is 6 ranks — one full tile each (Section IX-A) — where each rank owns
//! all tile edges and corners.

use crate::geometry::{CubeGeometry, Edge};

/// A rank identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RankId(pub usize);

/// Where a rank's halo cell comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HaloSource {
    /// Same tile: plain copy from the neighbouring rank at the given
    /// subdomain-local cell.
    Intra { rank: RankId, i: i64, j: i64 },
    /// Across a cube edge: copy from another tile's rank with the
    /// orientation transform applied (source cell is subdomain-local).
    Inter {
        rank: RankId,
        i: i64,
        j: i64,
        /// Source tile (for vector transforms).
        from_tile: usize,
    },
    /// Cube corner: no unique source (three faces meet); filled by the
    /// corner policy instead.
    CubeCorner,
}

/// A decomposition of the cubed sphere into ranks.
#[derive(Debug, Clone)]
pub struct Partition {
    pub geom: CubeGeometry,
    /// Ranks per tile edge (total ranks = 6 * rt^2).
    pub rt: usize,
    /// Subdomain size (cells per edge) — `geom.n / rt`.
    pub sub_n: usize,
}

impl Partition {
    /// Decompose a cube of `tile_n` cells per tile edge into `rt x rt`
    /// ranks per tile.
    pub fn new(tile_n: usize, rt: usize) -> Self {
        assert!(rt >= 1 && tile_n.is_multiple_of(rt), "tile size must divide evenly");
        Partition {
            geom: CubeGeometry::new(tile_n),
            rt,
            sub_n: tile_n / rt,
        }
    }

    /// Total number of ranks.
    pub fn ranks(&self) -> usize {
        6 * self.rt * self.rt
    }

    /// Rank id for `(tile, rx, ry)`.
    pub fn rank(&self, tile: usize, rx: usize, ry: usize) -> RankId {
        debug_assert!(tile < 6 && rx < self.rt && ry < self.rt);
        RankId(tile * self.rt * self.rt + ry * self.rt + rx)
    }

    /// Decompose a rank id into `(tile, rx, ry)`.
    pub fn coords(&self, r: RankId) -> (usize, usize, usize) {
        let per_tile = self.rt * self.rt;
        let tile = r.0 / per_tile;
        let rem = r.0 % per_tile;
        (tile, rem % self.rt, rem / self.rt)
    }

    /// Whether rank `r` owns part of the given tile edge.
    pub fn on_tile_edge(&self, r: RankId, e: Edge) -> bool {
        let (_, rx, ry) = self.coords(r);
        match e {
            Edge::West => rx == 0,
            Edge::East => rx == self.rt - 1,
            Edge::South => ry == 0,
            Edge::North => ry == self.rt - 1,
        }
    }

    /// Whether rank `r` holds any tile edge (needs region computations).
    pub fn holds_any_tile_edge(&self, r: RankId) -> bool {
        Edge::ALL.iter().any(|e| self.on_tile_edge(r, *e))
    }

    /// Fraction of ranks holding at least one tile edge — drives the
    /// Fig. 11 observation that "for higher rank counts each node does
    /// not compute all specialized computations".
    pub fn edge_rank_fraction(&self) -> f64 {
        let total = self.ranks();
        let edge_ranks = (0..total)
            .filter(|r| self.holds_any_tile_edge(RankId(*r)))
            .count();
        edge_ranks as f64 / total as f64
    }

    /// Source of rank `r`'s halo cell `(i, j)` (subdomain-local, outside
    /// `[0, sub_n)` on at least one axis, within halo width on both).
    pub fn halo_source(&self, r: RankId, i: i64, j: i64) -> HaloSource {
        let s = self.sub_n as i64;
        let n = self.geom.n as i64;
        let (tile, rx, ry) = self.coords(r);
        // Tile-global coordinates of the requested cell.
        let gi = rx as i64 * s + i;
        let gj = ry as i64 * s + j;
        let out_w = gi < 0;
        let out_e = gi >= n;
        let out_s = gj < 0;
        let out_n = gj >= n;
        match (out_w || out_e, out_s || out_n) {
            (false, false) => {
                // Still on this tile: intra-tile neighbour rank.
                let nrx = (gi / s) as usize;
                let nry = (gj / s) as usize;
                HaloSource::Intra {
                    rank: self.rank(tile, nrx, nry),
                    i: gi - nrx as i64 * s,
                    j: gj - nry as i64 * s,
                }
            }
            (true, true) => HaloSource::CubeCorner,
            (true, false) => {
                let (e, d, t) = if out_w {
                    (Edge::West, -gi - 1, gj)
                } else {
                    (Edge::East, gi - n, gj)
                };
                self.inter_tile(tile, e, d, t)
            }
            (false, true) => {
                let (e, d, t) = if out_s {
                    (Edge::South, -gj - 1, gi)
                } else {
                    (Edge::North, gj - n, gi)
                };
                self.inter_tile(tile, e, d, t)
            }
        }
    }

    fn inter_tile(&self, tile: usize, e: Edge, d: i64, t: i64) -> HaloSource {
        let s = self.sub_n as i64;
        let (nf, gi, gj) = self.geom.halo_source(tile, e, d, t);
        let nrx = (gi / s) as usize;
        let nry = (gj / s) as usize;
        HaloSource::Inter {
            rank: self.rank(nf, nrx, nry),
            i: gi - nrx as i64 * s,
            j: gj - nry as i64 * s,
            from_tile: nf,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rank_partition_owns_whole_tiles() {
        let p = Partition::new(12, 1);
        assert_eq!(p.ranks(), 6);
        assert_eq!(p.sub_n, 12);
        for r in 0..6 {
            assert!(p.holds_any_tile_edge(RankId(r)));
        }
        assert_eq!(p.edge_rank_fraction(), 1.0);
    }

    #[test]
    fn rank_coords_roundtrip() {
        let p = Partition::new(12, 3);
        assert_eq!(p.ranks(), 54);
        for r in 0..p.ranks() {
            let (t, x, y) = p.coords(RankId(r));
            assert_eq!(p.rank(t, x, y), RankId(r));
        }
    }

    #[test]
    fn edge_fraction_decreases_with_rank_count() {
        let f1 = Partition::new(16, 1).edge_rank_fraction();
        let f2 = Partition::new(16, 2).edge_rank_fraction();
        let f4 = Partition::new(16, 4).edge_rank_fraction();
        assert_eq!(f1, 1.0);
        assert_eq!(f2, 1.0, "2x2: every rank touches an edge");
        assert!(f4 < 1.0, "4x4: interior ranks appear");
        assert!((f4 - 12.0 / 16.0).abs() < 1e-12);
    }

    #[test]
    fn intra_tile_halo_sources() {
        let p = Partition::new(8, 2);
        // Rank (tile 0, rx 0, ry 0): its east halo (i = 4) comes from
        // rank (0, 1, 0) cell i = 0.
        let r = p.rank(0, 0, 0);
        match p.halo_source(r, 4, 2) {
            HaloSource::Intra { rank, i, j } => {
                assert_eq!(rank, p.rank(0, 1, 0));
                assert_eq!((i, j), (0, 2));
            }
            other => panic!("expected intra, got {other:?}"),
        }
    }

    #[test]
    fn inter_tile_halo_crosses_cube_edges() {
        let p = Partition::new(8, 2);
        // Rank on tile 0 west edge: its west halo must come from another
        // tile.
        let r = p.rank(0, 0, 0);
        match p.halo_source(r, -1, 2) {
            HaloSource::Inter { from_tile, i, j, .. } => {
                assert_ne!(from_tile, 0);
                assert!((0..8).contains(&i) && (0..8).contains(&j));
            }
            other => panic!("expected inter, got {other:?}"),
        }
    }

    #[test]
    fn cube_corner_is_flagged() {
        let p = Partition::new(8, 1);
        let r = p.rank(0, 0, 0);
        assert_eq!(p.halo_source(r, -1, -1), HaloSource::CubeCorner);
        // Tile-interior corners between four ranks are NOT cube corners.
        let p2 = Partition::new(8, 2);
        let r2 = p2.rank(0, 0, 0);
        match p2.halo_source(r2, 4, 4) {
            HaloSource::Intra { rank, .. } => assert_eq!(rank, p2.rank(0, 1, 1)),
            other => panic!("expected intra diagonal, got {other:?}"),
        }
    }

    #[test]
    fn every_non_corner_halo_cell_has_a_source() {
        let p = Partition::new(8, 2);
        let s = p.sub_n as i64;
        for r in 0..p.ranks() {
            for d in 1..=3i64 {
                for t in 0..s {
                    for (i, j) in [(-d, t), (s - 1 + d, t), (t, -d), (t, s - 1 + d)] {
                        let src = p.halo_source(RankId(r), i, j);
                        match src {
                            HaloSource::Intra { i, j, .. } | HaloSource::Inter { i, j, .. } => {
                                assert!((0..s).contains(&i) && (0..s).contains(&j));
                            }
                            HaloSource::CubeCorner => {}
                        }
                    }
                }
            }
        }
    }
}
