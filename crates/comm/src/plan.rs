//! Message-passing halo exchange: precomputed channel plans and
//! thread-safe, epoch-tagged mailboxes.
//!
//! [`HaloUpdater::exchange_scalar`](crate::HaloUpdater::exchange_scalar)
//! is a *pull*-style gather: one thread walks every rank's halo and reads
//! the source interiors directly. Real ranks running on real threads need
//! the *push* decomposition instead — each rank packs what its neighbours
//! will need, posts it, and unpacks what its neighbours posted. An
//! [`ExchangePlan`] precomputes that decomposition from the partition:
//! one [`Channel`] per directed (source → destination) rank pair, each a
//! list of (destination halo cell, source interior cell, optional vector
//! transform) taps derived from the same canonical halo enumeration the
//! sequential updater walks. Packing reads only pre-exchange interiors
//! and every halo cell has exactly one writer, so a plan-driven exchange
//! is bit-identical to `exchange_impl` — `plan_matches_sequential_*` in
//! the crate tests holds this equivalence down to the ULP.
//!
//! [`HaloMailboxes`] is the wire: one slot per channel, holding
//! epoch-tagged buffers. The double-buffer invariant (at most two
//! outstanding epochs per channel) falls out of the neighbour-synchronous
//! step structure: a sender cannot post epoch `e+2` before it has
//! received (and therefore its receiver has packed) epoch `e+1`, which
//! implies the receiver consumed the sender's epoch `e`. Receives are
//! condvar waits with a hard deadline; a rank that panics poisons every
//! slot so its neighbours unwind instead of hanging — the supervised
//! rollback path depends on that.

use crate::halo::{halo_cells, ExchangeStats, Orientation};
use crate::partition::{HaloSource, Partition, RankId};
use dataflow::Array3;
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};

/// One halo cell's wire mapping: destination-local halo cell, source-local
/// interior cell, and the 2×2 frame transform for vector pairs crossing a
/// tile seam (`None` for intra-tile taps — raw copy).
#[derive(Debug, Clone, Copy)]
pub struct CellTap {
    pub di: i64,
    pub dj: i64,
    pub si: i64,
    pub sj: i64,
    pub transform: Option<[[i64; 2]; 2]>,
}

/// All taps from one source rank into one destination rank's halo, in
/// canonical halo-enumeration order.
#[derive(Debug, Clone)]
pub struct Channel {
    pub src: RankId,
    pub dst: RankId,
    pub cells: Vec<CellTap>,
}

/// One cube-corner fold: copy `(fi, fj)` (an exchanged edge-halo cell)
/// into the cube-corner halo cell `(ci, cj)` of the same array.
#[derive(Debug, Clone, Copy)]
pub struct FoldCell {
    pub ci: i64,
    pub cj: i64,
    pub fi: i64,
    pub fj: i64,
}

/// What a channel packs for one field slot.
pub enum PackField<'a> {
    /// Scalar field: copy the source value.
    Scalar(&'a Array3),
    /// Component `row` (0 = u-like, 1 = v-like) of a vector pair: cross-
    /// tile taps blend both components through the 2×2 transform, exactly
    /// as `exchange_impl` does for `exchange_vector`.
    Vector {
        primary: &'a Array3,
        partner: &'a Array3,
        row: usize,
    },
}

/// A precomputed push-style halo exchange for a fixed partition/width.
#[derive(Debug, Clone)]
pub struct ExchangePlan {
    part: Partition,
    width: usize,
    channels: Vec<Channel>,
    /// Channel indices with `src == r`, per rank.
    sends: Vec<Vec<usize>>,
    /// Channel indices with `dst == r`, per rank.
    recvs: Vec<Vec<usize>>,
    /// Cube-corner folds, per rank.
    folds: Vec<Vec<FoldCell>>,
}

impl ExchangePlan {
    /// Derive the channel plan from the partition's halo sources.
    pub fn new(part: &Partition, width: usize) -> Self {
        assert!(
            width <= part.sub_n,
            "halo width {} exceeds subdomain size {}",
            width,
            part.sub_n
        );
        let s = part.sub_n as i64;
        let w = width as i64;
        let nranks = part.ranks();
        let mut channels: Vec<Channel> = Vec::new();
        let mut index: HashMap<(usize, usize), usize> = HashMap::new();
        let mut folds = vec![Vec::new(); nranks];
        // `r` is a rank id driving coords/halo_source lookups, not just a
        // folds index.
        #[allow(clippy::needless_range_loop)]
        for r in 0..nranks {
            let (tile, _, _) = part.coords(RankId(r));
            for (i, j) in halo_cells(s, w) {
                let (src, si, sj, transform) = match part.halo_source(RankId(r), i, j) {
                    HaloSource::Intra { rank, i: si, j: sj } => (rank, si, sj, None),
                    HaloSource::Inter {
                        rank,
                        i: si,
                        j: sj,
                        from_tile,
                    } => (
                        rank,
                        si,
                        sj,
                        Some(part.geom.vector_transform(tile, from_tile)),
                    ),
                    HaloSource::CubeCorner => continue,
                };
                let ch = *index.entry((src.0, r)).or_insert_with(|| {
                    channels.push(Channel {
                        src,
                        dst: RankId(r),
                        cells: Vec::new(),
                    });
                    channels.len() - 1
                });
                channels[ch].cells.push(CellTap {
                    di: i,
                    dj: j,
                    si,
                    sj,
                    transform,
                });
            }
            // Cube-corner folds, in the sequential updater's enumeration
            // order (reads only edge-halo cells, so order is immaterial to
            // the values — kept identical anyway).
            for di in 1..=w {
                for dj in 1..=w {
                    for (ci, cj) in [
                        (-di, -dj),
                        (s - 1 + di, -dj),
                        (-di, s - 1 + dj),
                        (s - 1 + di, s - 1 + dj),
                    ] {
                        if part.halo_source(RankId(r), ci, cj) == HaloSource::CubeCorner {
                            let (fi, fj) = if di >= dj {
                                (ci, cj.clamp(0, s - 1))
                            } else {
                                (ci.clamp(0, s - 1), cj)
                            };
                            folds[r].push(FoldCell { ci, cj, fi, fj });
                        }
                    }
                }
            }
        }
        let mut sends = vec![Vec::new(); nranks];
        let mut recvs = vec![Vec::new(); nranks];
        for (c, ch) in channels.iter().enumerate() {
            sends[ch.src.0].push(c);
            recvs[ch.dst.0].push(c);
        }
        ExchangePlan {
            part: part.clone(),
            width,
            channels,
            sends,
            recvs,
            folds,
        }
    }

    /// The partition this plan was derived from.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Halo width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of directed channels.
    pub fn n_channels(&self) -> usize {
        self.channels.len()
    }

    /// The channel at `idx`.
    pub fn channel(&self, idx: usize) -> &Channel {
        &self.channels[idx]
    }

    /// Channels rank `r` sends on.
    pub fn sends(&self, r: usize) -> &[usize] {
        &self.sends[r]
    }

    /// Channels rank `r` receives on.
    pub fn recvs(&self, r: usize) -> &[usize] {
        &self.recvs[r]
    }

    /// Cube-corner folds of rank `r`.
    pub fn folds(&self, r: usize) -> &[FoldCell] {
        &self.folds[r]
    }

    /// Pack one channel's buffer: fields outer, cells middle, k inner.
    /// Reads only source-rank interior cells, so packing is valid against
    /// any pre-exchange state.
    pub fn pack(&self, ch: usize, nk: i64, fields: &[PackField]) -> Vec<f64> {
        let cells = &self.channels[ch].cells;
        let mut buf = Vec::with_capacity(fields.len() * cells.len() * nk as usize);
        for f in fields {
            for t in cells {
                for k in 0..nk {
                    let v = match f {
                        PackField::Scalar(a) => a.get(t.si, t.sj, k),
                        PackField::Vector {
                            primary,
                            partner,
                            row,
                        } => {
                            let a = primary.get(t.si, t.sj, k);
                            match t.transform {
                                None => a,
                                Some(m) => {
                                    let b = partner.get(t.si, t.sj, k);
                                    let (mu, mv) = (m[*row][0], m[*row][1]);
                                    let (gu, gv) = if *row == 0 { (a, b) } else { (b, a) };
                                    mu as f64 * gu + mv as f64 * gv
                                }
                            }
                        }
                    };
                    buf.push(v);
                }
            }
        }
        buf
    }

    /// Unpack field slot `field_idx` (of `n_fields` packed) from a
    /// channel buffer into the destination rank's array. Writes only halo
    /// cells; each halo cell of the destination is written by exactly one
    /// channel.
    pub fn unpack_field(
        &self,
        ch: usize,
        buf: &[f64],
        field_idx: usize,
        n_fields: usize,
        nk: i64,
        arr: &mut Array3,
    ) {
        let cells = &self.channels[ch].cells;
        let per_field = cells.len() * nk as usize;
        assert_eq!(buf.len(), n_fields * per_field, "channel buffer size");
        let base = field_idx * per_field;
        for (c, t) in cells.iter().enumerate() {
            for k in 0..nk {
                arr.set(t.di, t.dj, k, buf[base + c * nk as usize + k as usize]);
            }
        }
    }

    /// Apply rank `r`'s cube-corner folds to `arr` (after all of its
    /// channels have been unpacked into `arr`).
    pub fn apply_folds(&self, r: usize, nk: i64, arr: &mut Array3) {
        for f in &self.folds[r] {
            for k in 0..nk {
                let v = arr.get(f.fi, f.fj, k);
                arr.set(f.ci, f.cj, k, v);
            }
        }
    }

    /// The statistics one single-field exchange over this plan produces —
    /// structurally the same enumeration as
    /// [`HaloUpdater::exact_stats`](crate::HaloUpdater::exact_stats), so
    /// the two agree exactly (asserted in the crate tests).
    pub fn stats(&self, nk: usize) -> ExchangeStats {
        let s = self.part.sub_n as i64;
        let nranks = self.part.ranks();
        let mut msgs = vec![BTreeSet::new(); nranks];
        let mut bytes = vec![0u64; nranks];
        let mut by_orientation = [0u64; 5];
        for ch in &self.channels {
            msgs[ch.src.0].insert(ch.dst.0);
            for t in &ch.cells {
                let cell_bytes = nk as u64 * 8;
                bytes[ch.src.0] += cell_bytes;
                by_orientation[Orientation::classify(t.di, t.dj, s).idx()] += cell_bytes;
            }
        }
        ExchangeStats {
            messages_per_rank: msgs.iter().map(|m| m.len() as u64).max().unwrap_or(0),
            bytes_per_rank: bytes.iter().copied().max().unwrap_or(0),
            total_messages: msgs.iter().map(|m| m.len() as u64).sum(),
            total_bytes: bytes.iter().sum(),
            bytes_by_orientation: by_orientation,
        }
    }
}

/// Receive failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message with the requested epoch arrived within the deadline —
    /// the sender is wedged or its message was dropped.
    Timeout,
    /// Another rank panicked and poisoned the mailboxes.
    Poisoned,
}

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecvError::Timeout => write!(f, "halo recv timed out"),
            RecvError::Poisoned => write!(f, "halo mailboxes poisoned by a peer failure"),
        }
    }
}

struct Slot {
    entries: Mutex<VecDeque<(u64, Vec<f64>)>>,
    cv: Condvar,
}

/// Thread-safe, epoch-tagged mailboxes: one slot per plan channel.
pub struct HaloMailboxes {
    slots: Vec<Slot>,
    poisoned: std::sync::atomic::AtomicBool,
}

impl HaloMailboxes {
    /// One empty slot per channel of `plan`.
    pub fn for_plan(plan: &ExchangePlan) -> Self {
        HaloMailboxes {
            slots: (0..plan.n_channels())
                .map(|_| Slot {
                    entries: Mutex::new(VecDeque::new()),
                    cv: Condvar::new(),
                })
                .collect(),
            poisoned: std::sync::atomic::AtomicBool::new(false),
        }
    }

    /// Post a buffer for `epoch` on channel `ch` (nonblocking).
    pub fn post(&self, ch: usize, epoch: u64, buf: Vec<f64>) {
        let slot = &self.slots[ch];
        let mut q = slot.entries.lock().unwrap_or_else(|e| e.into_inner());
        q.push_back((epoch, buf));
        // Neighbour-synchronous steps keep at most two epochs in flight
        // (double buffering); more means the protocol is broken.
        debug_assert!(q.len() <= 2, "channel {ch} holds {} epochs", q.len());
        slot.cv.notify_all();
    }

    /// Block until the buffer for `epoch` arrives on channel `ch`, up to
    /// `deadline`. Entries from older epochs (aborted steps) are
    /// discarded on sight.
    pub fn recv(&self, ch: usize, epoch: u64, deadline: Duration) -> Result<Vec<f64>, RecvError> {
        use std::sync::atomic::Ordering;
        let slot = &self.slots[ch];
        let t0 = Instant::now();
        let mut q = slot.entries.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.poisoned.load(Ordering::Acquire) {
                return Err(RecvError::Poisoned);
            }
            while let Some((e, _)) = q.front() {
                if *e < epoch {
                    q.pop_front();
                } else {
                    break;
                }
            }
            if let Some((e, _)) = q.front() {
                if *e == epoch {
                    return Ok(q.pop_front().expect("front checked").1);
                }
            }
            let elapsed = t0.elapsed();
            if elapsed >= deadline {
                return Err(RecvError::Timeout);
            }
            let (guard, _timeout) = slot
                .cv
                .wait_timeout(q, deadline - elapsed)
                .unwrap_or_else(|e| e.into_inner());
            q = guard;
        }
    }

    /// Mark the mailboxes failed and wake every waiter (call from a
    /// panicking rank so neighbours unwind instead of timing out).
    pub fn poison(&self) {
        self.poisoned
            .store(true, std::sync::atomic::Ordering::Release);
        for slot in &self.slots {
            let _q = slot.entries.lock().unwrap_or_else(|e| e.into_inner());
            slot.cv.notify_all();
        }
    }

    /// Whether a peer failure poisoned the mailboxes.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Clear all entries and the poison flag (between supervised step
    /// attempts; must not be called while rank threads are live).
    pub fn reset(&self) {
        for slot in &self.slots {
            slot.entries
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clear();
        }
        self.poisoned
            .store(false, std::sync::atomic::Ordering::Release);
    }
}

/// Run one plan-driven scalar exchange with every rank on its own thread
/// (the measured "parallel schedule" counterpart of
/// [`HaloUpdater::exchange_scalar`](crate::HaloUpdater::exchange_scalar)):
/// each rank packs and posts its sends, then receives, unpacks, and
/// folds. Returns the measured per-rank statistics, which match
/// [`ExchangePlan::stats`] and therefore `exact_stats` exactly.
pub fn threaded_exchange_scalar(
    plan: &ExchangePlan,
    boxes: &HaloMailboxes,
    arrays: &mut [Array3],
    epoch: u64,
    deadline: Duration,
) -> ExchangeStats {
    let nranks = plan.partition().ranks();
    assert_eq!(arrays.len(), nranks, "one array per rank");
    let nk = arrays[0].layout().domain[2] as i64;
    let s = plan.partition().sub_n as i64;
    let sent_bytes: Vec<std::sync::atomic::AtomicU64> =
        (0..nranks).map(|_| Default::default()).collect();
    let by_orientation: [std::sync::atomic::AtomicU64; 5] = Default::default();
    let cells: Mutex<Vec<Array3>> = Mutex::new(arrays.to_vec());
    std::thread::scope(|scope| {
        let plan = &plan;
        let boxes = &boxes;
        let cells = &cells;
        let sent_bytes = &sent_bytes;
        let by_orientation = &by_orientation;
        for r in 0..nranks {
            scope.spawn(move || {
                use std::sync::atomic::Ordering;
                // Pack + post against the pre-exchange snapshot.
                for &c in plan.sends(r) {
                    let buf = {
                        let arrs = cells.lock().unwrap_or_else(|e| e.into_inner());
                        plan.pack(c, nk, &[PackField::Scalar(&arrs[plan.channel(c).src.0])])
                    };
                    sent_bytes[r].fetch_add(buf.len() as u64 * 8, Ordering::Relaxed);
                    boxes.post(c, epoch, buf);
                }
                // Recv + unpack + fold.
                for &c in plan.recvs(r) {
                    let buf = boxes
                        .recv(c, epoch, deadline)
                        .unwrap_or_else(|e| panic!("rank {r} channel {c}: {e}"));
                    for t in &plan.channel(c).cells {
                        by_orientation[Orientation::classify(t.di, t.dj, s).idx()]
                            .fetch_add(nk as u64 * 8, Ordering::Relaxed);
                    }
                    let mut arrs = cells.lock().unwrap_or_else(|e| e.into_inner());
                    plan.unpack_field(c, &buf, 0, 1, nk, &mut arrs[r]);
                }
                let mut arrs = cells.lock().unwrap_or_else(|e| e.into_inner());
                plan.apply_folds(r, nk, &mut arrs[r]);
            });
        }
    });
    let out = cells.into_inner().unwrap_or_else(|e| e.into_inner());
    for (dst, src) in arrays.iter_mut().zip(out) {
        *dst = src;
    }
    let msgs_per_rank = (0..nranks).map(|r| plan.sends(r).len() as u64).max();
    ExchangeStats {
        messages_per_rank: msgs_per_rank.unwrap_or(0),
        bytes_per_rank: sent_bytes
            .iter()
            .map(|b| b.load(std::sync::atomic::Ordering::Relaxed))
            .max()
            .unwrap_or(0),
        total_messages: (0..nranks).map(|r| plan.sends(r).len() as u64).sum(),
        total_bytes: sent_bytes
            .iter()
            .map(|b| b.load(std::sync::atomic::Ordering::Relaxed))
            .sum(),
        bytes_by_orientation: [
            by_orientation[0].load(std::sync::atomic::Ordering::Relaxed),
            by_orientation[1].load(std::sync::atomic::Ordering::Relaxed),
            by_orientation[2].load(std::sync::atomic::Ordering::Relaxed),
            by_orientation[3].load(std::sync::atomic::Ordering::Relaxed),
            by_orientation[4].load(std::sync::atomic::Ordering::Relaxed),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::halo::{rank_arrays, CornerPolicy, HaloUpdater};

    fn fill(part: &Partition, arrays: &mut [Array3], salt: f64) {
        let s = part.sub_n as i64;
        let nk = arrays[0].layout().domain[2] as i64;
        for (r, arr) in arrays.iter_mut().enumerate() {
            for k in 0..nk {
                for j in 0..s {
                    for i in 0..s {
                        let v = (r as f64 * 1.37 + i as f64 * 0.11 + j as f64 * 0.77
                            + k as f64 * 3.1
                            + salt)
                            .sin();
                        arr.set(i, j, k, v);
                    }
                }
            }
        }
    }

    fn assert_bitwise_eq(a: &[Array3], b: &[Array3], what: &str) {
        for (r, (x, y)) in a.iter().zip(b).enumerate() {
            let (xs, ys) = (x.export_logical(), y.export_logical());
            for (n, (p, q)) in xs.iter().zip(ys.iter()).enumerate() {
                assert!(
                    p.to_bits() == q.to_bits(),
                    "{what}: rank {r} flat index {n}: {p:?} vs {q:?}"
                );
            }
        }
    }

    #[test]
    fn plan_scalar_matches_sequential_exchange_bitwise() {
        for (tile_n, rt, w, nk) in [(8, 1, 4, 3), (8, 2, 2, 2), (12, 3, 3, 2)] {
            let part = Partition::new(tile_n, rt);
            let up = HaloUpdater::new(part.clone(), w, CornerPolicy::Fold);
            let plan = ExchangePlan::new(&part, w);
            let mut seq = rank_arrays(&part, nk, w);
            fill(&part, &mut seq, 0.25);
            let mut par = seq.clone();
            up.exchange_scalar(&mut seq);
            let boxes = HaloMailboxes::for_plan(&plan);
            threaded_exchange_scalar(&plan, &boxes, &mut par, 1, Duration::from_secs(10));
            assert_bitwise_eq(&seq, &par, &format!("c{tile_n} rt={rt} w={w}"));
        }
    }

    #[test]
    fn plan_vector_matches_sequential_exchange_bitwise() {
        let part = Partition::new(8, 1);
        let w = 4;
        let up = HaloUpdater::new(part.clone(), w, CornerPolicy::Fold);
        let plan = ExchangePlan::new(&part, w);
        let mut us = rank_arrays(&part, 3, w);
        let mut vs = rank_arrays(&part, 3, w);
        fill(&part, &mut us, 0.1);
        fill(&part, &mut vs, 0.9);
        // Plan path: single-phase pack of both components from the
        // pre-exchange state (u's unpack only writes halo cells, so v's
        // pack reads are unaffected by ordering).
        let (mut pu, mut pv) = (us.clone(), vs.clone());
        up.exchange_vector(&mut us, &mut vs);
        let nk = 3i64;
        let mut bufs = Vec::new();
        for c in 0..plan.n_channels() {
            let src = plan.channel(c).src.0;
            bufs.push(plan.pack(
                c,
                nk,
                &[
                    PackField::Vector {
                        primary: &pu[src],
                        partner: &pv[src],
                        row: 0,
                    },
                    PackField::Vector {
                        primary: &pv[src],
                        partner: &pu[src],
                        row: 1,
                    },
                ],
            ));
        }
        for (c, buf) in bufs.iter().enumerate() {
            let dst = plan.channel(c).dst.0;
            plan.unpack_field(c, buf, 0, 2, nk, &mut pu[dst]);
            plan.unpack_field(c, buf, 1, 2, nk, &mut pv[dst]);
        }
        for r in 0..part.ranks() {
            plan.apply_folds(r, nk, &mut pu[r]);
            plan.apply_folds(r, nk, &mut pv[r]);
        }
        assert_bitwise_eq(&us, &pu, "vector u");
        assert_bitwise_eq(&vs, &pv, "vector v");
    }

    #[test]
    fn plan_stats_match_exact_stats_at_scale() {
        // The weak-scaling partitions: c8 (6 ranks), c48 (24 ranks), c96
        // (96 ranks). Plan-derived stats must equal the analytic closed
        // forms of the sequential updater.
        for (tile_n, rt, w, nk) in [(8, 1, 4, 6), (48, 2, 4, 6), (96, 4, 4, 6)] {
            let part = Partition::new(tile_n, rt);
            let up = HaloUpdater::new(part.clone(), w, CornerPolicy::Leave);
            let plan = ExchangePlan::new(&part, w);
            assert_eq!(
                plan.stats(nk),
                up.exact_stats(nk),
                "c{tile_n} rt={rt} w={w} nk={nk}"
            );
        }
    }

    #[test]
    fn threaded_exchange_reports_exact_stats() {
        let part = Partition::new(48, 2);
        let w = 4;
        let up = HaloUpdater::new(part.clone(), w, CornerPolicy::Fold);
        let plan = ExchangePlan::new(&part, w);
        let mut arrays = rank_arrays(&part, 2, w);
        fill(&part, &mut arrays, 0.5);
        let boxes = HaloMailboxes::for_plan(&plan);
        let measured = threaded_exchange_scalar(&plan, &boxes, &mut arrays, 1, Duration::from_secs(10));
        assert_eq!(measured, up.exact_stats(2));
    }

    #[test]
    fn mailbox_recv_times_out_instead_of_hanging() {
        let part = Partition::new(8, 1);
        let plan = ExchangePlan::new(&part, 2);
        let boxes = HaloMailboxes::for_plan(&plan);
        let t0 = Instant::now();
        let err = boxes.recv(0, 7, Duration::from_millis(50)).unwrap_err();
        assert_eq!(err, RecvError::Timeout);
        assert!(t0.elapsed() >= Duration::from_millis(50));
    }

    #[test]
    fn mailbox_poison_wakes_waiters() {
        let part = Partition::new(8, 1);
        let plan = ExchangePlan::new(&part, 2);
        let boxes = std::sync::Arc::new(HaloMailboxes::for_plan(&plan));
        let b2 = boxes.clone();
        let h = std::thread::spawn(move || b2.recv(0, 1, Duration::from_secs(30)));
        std::thread::sleep(Duration::from_millis(20));
        boxes.poison();
        assert_eq!(h.join().unwrap().unwrap_err(), RecvError::Poisoned);
        boxes.reset();
        assert!(!boxes.is_poisoned());
    }

    #[test]
    fn mailbox_discards_stale_epochs_after_reset_cycles() {
        let part = Partition::new(8, 1);
        let plan = ExchangePlan::new(&part, 2);
        let boxes = HaloMailboxes::for_plan(&plan);
        boxes.post(3, 1, vec![1.0]);
        boxes.post(3, 2, vec![2.0]);
        // Asking for epoch 2 discards the stale epoch-1 entry.
        let got = boxes.recv(3, 2, Duration::from_millis(50)).unwrap();
        assert_eq!(got, vec![2.0]);
        boxes.reset();
        assert_eq!(
            boxes.recv(3, 2, Duration::from_millis(10)).unwrap_err(),
            RecvError::Timeout
        );
    }
}
