//! The halo updater: pack / exchange / unpack over simulated ranks.
//!
//! This is the paper's "halo updater object [...] that takes care of
//! nonblocking communication, data packing, and transformation based on
//! the pair of ranks" (Section IV-C). Ranks live in one process here —
//! each owns its arrays — so the wire is a buffer copy, but the packing,
//! per-pair orientation transforms and corner policy are the real logic a
//! distributed run needs, and message/byte counts feed the network model
//! of `machine` for the scaling studies.

use crate::partition::{HaloSource, Partition, RankId};
use dataflow::Array3;
use machine::faults::{self, FaultAction, FireCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault site: silently corrupt one packed halo value before unpack.
pub const SITE_HALO_CORRUPT: &str = "halo.corrupt";
/// Fault site: drop every packed value destined for one receiving rank
/// (the receiver keeps stale halo data, as after a lost message).
pub const SITE_HALO_DROP: &str = "halo.drop";
/// Fault site: stall the exchange (sleep) past the watchdog deadline.
pub const SITE_HALO_STALL: &str = "halo.stall";
/// Every fault site compiled into this crate.
pub const FAULT_SITES: [&str; 3] = [SITE_HALO_CORRUPT, SITE_HALO_DROP, SITE_HALO_STALL];

/// Which side of the subdomain a halo cell sits on.
///
/// Used to break halo traffic down by edge orientation in the metrics —
/// on a cubed sphere the four edges are *not* equivalent (tile seams,
/// orientation transforms, cube corners), so a per-orientation byte
/// count localizes imbalances the per-rank total hides.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Orientation {
    West,
    East,
    South,
    North,
    /// Diagonal corner blocks (both indices out of range).
    Corner,
}

impl Orientation {
    /// All orientations, in `bytes_by_orientation` index order.
    pub const ALL: [Orientation; 5] = [
        Orientation::West,
        Orientation::East,
        Orientation::South,
        Orientation::North,
        Orientation::Corner,
    ];

    /// Classify the halo cell `(i, j)` of a subdomain with edge `s`.
    pub fn classify(i: i64, j: i64, s: i64) -> Orientation {
        let iout = i < 0 || i >= s;
        let jout = j < 0 || j >= s;
        match (iout, jout) {
            (true, true) => Orientation::Corner,
            (true, false) => {
                if i < 0 {
                    Orientation::West
                } else {
                    Orientation::East
                }
            }
            (false, true) => {
                if j < 0 {
                    Orientation::South
                } else {
                    Orientation::North
                }
            }
            (false, false) => panic!("({i}, {j}) is interior, not halo"),
        }
    }

    /// Metric label ("west", "east", ...).
    pub fn label(&self) -> &'static str {
        match self {
            Orientation::West => "west",
            Orientation::East => "east",
            Orientation::South => "south",
            Orientation::North => "north",
            Orientation::Corner => "corner",
        }
    }

    /// Index into `bytes_by_orientation`.
    pub fn idx(&self) -> usize {
        Orientation::ALL.iter().position(|o| o == self).expect("in ALL")
    }
}

/// Statistics of one exchange (per rank, for the alpha-beta model).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExchangeStats {
    /// Point-to-point messages sent per rank (max over ranks).
    pub messages_per_rank: u64,
    /// Bytes sent per rank (max over ranks).
    pub bytes_per_rank: u64,
    /// Messages across all ranks.
    pub total_messages: u64,
    /// Bytes across all ranks.
    pub total_bytes: u64,
    /// `total_bytes` split by receiving-halo orientation, indexed as
    /// [`Orientation::ALL`] (cube-corner cells carry no traffic and are
    /// excluded).
    pub bytes_by_orientation: [u64; 5],
}

impl ExchangeStats {
    /// Bytes received into halos of the given orientation.
    pub fn bytes_for(&self, o: Orientation) -> u64 {
        self.bytes_by_orientation[o.idx()]
    }
}

/// How cube-corner halo cells (where three faces meet) are filled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CornerPolicy {
    /// Leave them untouched (stencils must not read them).
    Leave,
    /// FV3-style fold: copy the nearest valid edge-halo value from the
    /// same array (adequate for the corner-corrected numerics, which
    /// override these cells through horizontal regions anyway).
    Fold,
}

/// A reusable halo updater for a fixed partition and width.
#[derive(Debug, Clone)]
pub struct HaloUpdater {
    part: Partition,
    width: usize,
    corner: CornerPolicy,
    /// Watchdog: an exchange taking longer than this is counted as a
    /// stall (clones share the counter, not the deadline).
    stall_deadline: Option<Duration>,
    stalls: Arc<AtomicU64>,
}

impl HaloUpdater {
    /// Build an updater exchanging `width` halo cells.
    pub fn new(part: Partition, width: usize, corner: CornerPolicy) -> Self {
        assert!(
            width <= part.sub_n,
            "halo width {} exceeds subdomain size {}",
            width,
            part.sub_n
        );
        HaloUpdater {
            part,
            width,
            corner,
            stall_deadline: None,
            stalls: Arc::new(AtomicU64::new(0)),
        }
    }

    /// Arm (or disarm, with `None`) the stall watchdog: exchanges whose
    /// wall time exceeds the deadline increment [`stall_count`]
    /// (Self::stall_count) and the `halo_stalls` metric. Detection is
    /// after the fact — the exchange still completes — which is the best
    /// a single-process simulation of nonblocking comms can do, and is
    /// enough for a supervisor to notice a wedged neighbour.
    pub fn set_stall_deadline(&mut self, deadline: Option<Duration>) {
        self.stall_deadline = deadline;
    }

    /// Exchanges that overran the stall deadline since construction
    /// (shared across clones of this updater).
    pub fn stall_count(&self) -> u64 {
        self.stalls.load(Ordering::Relaxed)
    }

    /// The partition.
    pub fn partition(&self) -> &Partition {
        &self.part
    }

    /// Exchange a scalar field: `arrays[r]` is rank r's array. Returns
    /// per-rank message statistics.
    pub fn exchange_scalar(&self, arrays: &mut [Array3]) -> ExchangeStats {
        self.exchange(arrays, None)
    }

    /// Exchange a vector component pair `(u, v)`: orientation transforms
    /// are applied when data crosses between differently-oriented tiles.
    pub fn exchange_vector(&self, u: &mut [Array3], v: &mut [Array3]) -> ExchangeStats {
        // Pack u with v as the partner so cross-tile cells can blend the
        // two components through the 2x2 transform.
        let stats = self.exchange_vector_component(u, v, 0);
        self.exchange_vector_component_into(v, u, 1);
        stats
    }

    fn exchange_vector_component(
        &self,
        primary: &mut [Array3],
        partner: &[Array3],
        row: usize,
    ) -> ExchangeStats {
        self.exchange_impl(primary, Some((partner, row)))
    }

    fn exchange_vector_component_into(
        &self,
        primary: &mut [Array3],
        partner: &[Array3],
        row: usize,
    ) {
        self.exchange_impl(primary, Some((partner, row)));
    }

    fn exchange(&self, arrays: &mut [Array3], partner: Option<(&[Array3], usize)>) -> ExchangeStats {
        self.exchange_impl(arrays, partner)
    }

    fn exchange_impl(
        &self,
        arrays: &mut [Array3],
        partner: Option<(&[Array3], usize)>,
    ) -> ExchangeStats {
        let p = &self.part;
        assert_eq!(arrays.len(), p.ranks(), "one array per rank");
        let s = p.sub_n as i64;
        let w = self.width as i64;
        let nk = arrays[0].layout().domain[2] as i64;
        let mut span = obs::tracing::global_span("halo", "halo_exchange");
        let t0 = Instant::now();

        if faults::enabled() {
            if let Some(spec) = faults::fire(SITE_HALO_STALL, FireCtx::default()) {
                if let FaultAction::StallMs(ms) = spec.action {
                    std::thread::sleep(Duration::from_millis(ms));
                }
            }
        }

        // Phase 1 (pack + "send"): gather every halo value into a staging
        // list. This mirrors nonblocking sends: all reads happen against
        // the pre-exchange state.
        struct Patch {
            rank: usize,
            i: i64,
            j: i64,
            k: i64,
            v: f64,
        }
        let mut patches: Vec<Patch> = Vec::new();
        let mut msgs = vec![std::collections::BTreeSet::new(); p.ranks()];
        let mut bytes = vec![0u64; p.ranks()];
        let mut by_orientation = [0u64; 5];

        for r in 0..p.ranks() {
            let (tile, _, _) = p.coords(RankId(r));
            for (i, j) in halo_cells(s, w) {
                let cell_bytes = nk as u64 * 8;
                let orient = Orientation::classify(i, j, s).idx();
                match p.halo_source(RankId(r), i, j) {
                    HaloSource::Intra { rank, i: si, j: sj } => {
                        for k in 0..nk {
                            patches.push(Patch {
                                rank: r,
                                i,
                                j,
                                k,
                                v: arrays[rank.0].get(si, sj, k),
                            });
                        }
                        msgs[rank.0].insert(r);
                        bytes[rank.0] += cell_bytes;
                        by_orientation[orient] += cell_bytes;
                    }
                    HaloSource::Inter {
                        rank,
                        i: si,
                        j: sj,
                        from_tile,
                    } => {
                        // Orientation transform for vector components.
                        let m = p.geom.vector_transform(tile, from_tile);
                        for k in 0..nk {
                            let v = match partner {
                                None => arrays[rank.0].get(si, sj, k),
                                Some((other, row)) => {
                                    let a = arrays[rank.0].get(si, sj, k);
                                    let b = other[rank.0].get(si, sj, k);
                                    // primary is component `row` of (u, v)
                                    // in the receiving frame.
                                    let (mu, mv) = (m[row][0], m[row][1]);
                                    let (gu, gv) = if row == 0 { (a, b) } else { (b, a) };
                                    mu as f64 * gu + mv as f64 * gv
                                }
                            };
                            patches.push(Patch {
                                rank: r,
                                i,
                                j,
                                k,
                                v,
                            });
                        }
                        msgs[rank.0].insert(r);
                        bytes[rank.0] += cell_bytes;
                        by_orientation[orient] += cell_bytes;
                    }
                    HaloSource::CubeCorner => {} // handled below
                }
            }
        }

        // Fault window: the packed staging list is "the wire" — corrupt
        // or drop here and the receiver sees exactly what a flipped bit
        // or lost message would produce.
        if faults::enabled() {
            if let Some(spec) = faults::fire(SITE_HALO_CORRUPT, FireCtx::default()) {
                if !patches.is_empty() {
                    let victim = faults::det_index(0x1a10, patches.len());
                    let p = &mut patches[victim];
                    p.v = match spec.action {
                        FaultAction::CorruptFactor(f) => p.v * f,
                        _ => f64::NAN,
                    };
                }
            }
            if let Some(spec) = faults::fire(SITE_HALO_DROP, FireCtx::default()) {
                let target = spec
                    .rank
                    .unwrap_or_else(|| faults::det_index(0xd209, p.ranks()));
                patches.retain(|pt| pt.rank != target);
            }
        }

        // Phase 2 ("recv" + unpack).
        for patch in patches {
            arrays[patch.rank].set(patch.i, patch.j, patch.k, patch.v);
        }

        // Phase 3: corner policy.
        if self.corner == CornerPolicy::Fold {
            for (r, arr) in arrays.iter_mut().enumerate() {
                for di in 1..=w {
                    for dj in 1..=w {
                        for (ci, cj) in [
                            (-di, -dj),
                            (s - 1 + di, -dj),
                            (-di, s - 1 + dj),
                            (s - 1 + di, s - 1 + dj),
                        ] {
                            if p.halo_source(RankId(r), ci, cj) == HaloSource::CubeCorner {
                                // Fold: take the edge-halo value sharing
                                // the larger offset (deterministic pick).
                                let (fi, fj) = if di >= dj {
                                    (ci, cj.clamp(0, s - 1))
                                } else {
                                    (ci.clamp(0, s - 1), cj)
                                };
                                for k in 0..nk {
                                    let v = arr.get(fi, fj, k);
                                    arr.set(ci, cj, k, v);
                                }
                            }
                        }
                    }
                }
            }
        }

        let stats = ExchangeStats {
            messages_per_rank: msgs.iter().map(|m| m.len() as u64).max().unwrap_or(0),
            bytes_per_rank: bytes.iter().copied().max().unwrap_or(0),
            total_messages: msgs.iter().map(|m| m.len() as u64).sum(),
            total_bytes: bytes.iter().sum(),
            bytes_by_orientation: by_orientation,
        };
        span.set_bytes(stats.total_bytes);
        span.set_points(stats.total_messages);
        let stalled = self
            .stall_deadline
            .is_some_and(|deadline| t0.elapsed() > deadline);
        if stalled {
            self.stalls.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(m) = obs::metrics::global() {
            if stalled {
                m.counter_add("halo_stalls", &[], 1);
            }
            for o in Orientation::ALL {
                let b = stats.bytes_for(o);
                if b > 0 {
                    m.counter_add("halo_bytes", &[("orientation", o.label())], b);
                }
            }
            m.counter_add("halo_messages", &[], stats.total_messages);
            m.counter_add("halo_exchanges", &[], 1);
        }
        stats
    }

    /// The statistics [`exchange_scalar`](Self::exchange_scalar) would
    /// report for an `nk`-level field, computed analytically (same halo
    /// enumeration, no data touched). Unlike
    /// [`bytes_per_rank`](Self::bytes_per_rank) — an interior-rank upper
    /// bound — this accounts for cube corners, which carry no traffic.
    pub fn exact_stats(&self, nk: usize) -> ExchangeStats {
        let p = &self.part;
        let s = p.sub_n as i64;
        let w = self.width as i64;
        let mut msgs = vec![std::collections::BTreeSet::new(); p.ranks()];
        let mut bytes = vec![0u64; p.ranks()];
        let mut by_orientation = [0u64; 5];
        for r in 0..p.ranks() {
            for (i, j) in halo_cells(s, w) {
                let cell_bytes = nk as u64 * 8;
                let orient = Orientation::classify(i, j, s).idx();
                match p.halo_source(RankId(r), i, j) {
                    HaloSource::Intra { rank, .. } | HaloSource::Inter { rank, .. } => {
                        msgs[rank.0].insert(r);
                        bytes[rank.0] += cell_bytes;
                        by_orientation[orient] += cell_bytes;
                    }
                    HaloSource::CubeCorner => {}
                }
            }
        }
        ExchangeStats {
            messages_per_rank: msgs.iter().map(|m| m.len() as u64).max().unwrap_or(0),
            bytes_per_rank: bytes.iter().copied().max().unwrap_or(0),
            total_messages: msgs.iter().map(|m| m.len() as u64).sum(),
            total_bytes: bytes.iter().sum(),
            bytes_by_orientation: by_orientation,
        }
    }

    /// Halo bytes one rank sends in one exchange of `fields` 3-D fields
    /// (for the network model, without running an exchange).
    pub fn bytes_per_rank(&self, nk: usize, fields: usize) -> u64 {
        // Four edges of width w, plus corners.
        let s = self.part.sub_n as u64;
        let w = self.width as u64;
        (4 * s * w + 4 * w * w) * nk as u64 * 8 * fields as u64
    }

    /// Point-to-point messages per rank per exchange (8 neighbours for an
    /// interior rank).
    pub fn messages_per_rank(&self) -> u64 {
        8
    }
}

/// Every halo cell of a subdomain with edge `s` and halo width `w`:
/// four edge strips first, then the diagonal corner blocks — the
/// canonical enumeration both the exchange and its analytic model walk
/// (and the [`crate::plan::ExchangePlan`] derives its channels from).
pub fn halo_cells(s: i64, w: i64) -> Vec<(i64, i64)> {
    let mut cells = Vec::with_capacity((4 * s * w + 4 * w * w) as usize);
    for d in 1..=w {
        for t in 0..s {
            cells.push((-d, t));
            cells.push((s - 1 + d, t));
            cells.push((t, -d));
            cells.push((t, s - 1 + d));
        }
    }
    // Corner blocks (diagonal neighbours / cube corners).
    for di in 1..=w {
        for dj in 1..=w {
            cells.push((-di, -dj));
            cells.push((s - 1 + di, -dj));
            cells.push((-di, s - 1 + dj));
            cells.push((s - 1 + di, s - 1 + dj));
        }
    }
    cells
}

/// Allocate one array per rank with the given vertical extent and halo.
pub fn rank_arrays(part: &Partition, nk: usize, halo: usize) -> Vec<Array3> {
    let layout = dataflow::Layout::fv3_default([part.sub_n, part.sub_n, nk], [halo, halo, 0]);
    (0..part.ranks())
        .map(|_| Array3::zeros(layout.clone()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fill each rank's interior with a function of the global 3-D cell
    /// position, unique per cell.
    fn fill_global(part: &Partition, arrays: &mut [Array3], f: impl Fn([f64; 3], i64) -> f64) {
        let s = part.sub_n as i64;
        let nk = arrays[0].layout().domain[2] as i64;
        for (r, arr) in arrays.iter_mut().enumerate() {
            let (tile, rx, ry) = part.coords(RankId(r));
            for k in 0..nk {
                for j in 0..s {
                    for i in 0..s {
                        let gi = rx as i64 * s + i;
                        let gj = ry as i64 * s + j;
                        let pos = part.geom.faces[tile].cell_center(gi as f64, gj as f64);
                        arr.set(i, j, k, f(pos, k));
                    }
                }
            }
        }
    }

    #[test]
    fn intra_tile_halo_matches_neighbor_interior() {
        let part = Partition::new(8, 2);
        let up = HaloUpdater::new(part.clone(), 2, CornerPolicy::Leave);
        let mut arrays = rank_arrays(&part, 2, 3);
        fill_global(&part, &mut arrays, |p, k| {
            p[0] + 10.0 * p[1] + 100.0 * p[2] + 1000.0 * k as f64
        });
        up.exchange_scalar(&mut arrays);
        // Rank (0,0,0) east halo == rank (0,1,0) west interior.
        let r = part.rank(0, 0, 0);
        let nb = part.rank(0, 1, 0);
        for d in 0..2i64 {
            for t in 0..4 {
                assert_eq!(
                    arrays[r.0].get(4 + d, t, 1),
                    arrays[nb.0].get(d, t, 1),
                    "east halo d={d} t={t}"
                );
            }
        }
    }

    #[test]
    fn inter_tile_halo_carries_unique_global_values() {
        // After exchange, each halo value must equal the value of its
        // geometric source cell — verified through the *global* fill
        // function, not through the mapping code.
        let part = Partition::new(6, 1);
        let up = HaloUpdater::new(part.clone(), 3, CornerPolicy::Leave);
        let mut arrays = rank_arrays(&part, 1, 3);
        fill_global(&part, &mut arrays, |p, _| {
            p[0] + 13.0 * p[1] + 169.0 * p[2]
        });
        up.exchange_scalar(&mut arrays);
        let s = 6i64;
        for r in 0..part.ranks() {
            for d in 1..=3i64 {
                for t in 0..s {
                    for (i, j) in [(-d, t), (s - 1 + d, t), (t, -d), (t, s - 1 + d)] {
                        match part.halo_source(RankId(r), i, j) {
                            HaloSource::Inter { rank, i: si, j: sj, .. }
                            | HaloSource::Intra { rank, i: si, j: sj } => {
                                assert_eq!(
                                    arrays[r].get(i, j, 0),
                                    arrays[rank.0].get(si, sj, 0),
                                    "rank {r} halo ({i},{j})"
                                );
                            }
                            HaloSource::CubeCorner => {}
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn halo_is_continuous_for_smooth_fields() {
        // A linear function of the 3-D position changes by at most
        // |gradient| * distance across any halo cell; a wrong orientation
        // would produce jumps of O(tile size).
        let part = Partition::new(8, 1);
        let up = HaloUpdater::new(part.clone(), 1, CornerPolicy::Leave);
        let mut arrays = rank_arrays(&part, 1, 3);
        fill_global(&part, &mut arrays, |p, _| p[0] + 2.0 * p[1] + 3.0 * p[2]);
        up.exchange_scalar(&mut arrays);
        let s = 8i64;
        for (r, arr) in arrays.iter().enumerate() {
            for t in 0..s {
                for (hi, hj, ii, ij) in [
                    (-1, t, 0, t),
                    (s, t, s - 1, t),
                    (t, -1, t, 0),
                    (t, s, t, s - 1),
                ] {
                    let h = arr.get(hi, hj, 0);
                    let int = arr.get(ii, ij, 0);
                    assert!(
                        (h - int).abs() <= 6.0 + 1e-9,
                        "discontinuity at rank {r} ({hi},{hj}): {h} vs {int}"
                    );
                }
            }
        }
    }

    #[test]
    fn corner_fold_fills_cube_corners() {
        let part = Partition::new(6, 1);
        let up = HaloUpdater::new(part.clone(), 2, CornerPolicy::Fold);
        let mut arrays = rank_arrays(&part, 1, 3);
        fill_global(&part, &mut arrays, |p, _| p[0] + p[1] + p[2]);
        // Poison corners to detect fills.
        for arr in arrays.iter_mut() {
            arr.set(-1, -1, 0, f64::NAN);
            arr.set(6, 6, 0, f64::NAN);
        }
        up.exchange_scalar(&mut arrays);
        for arr in arrays.iter() {
            assert!(!arr.get(-1, -1, 0).is_nan(), "corner not filled");
            assert!(!arr.get(6, 6, 0).is_nan());
        }
    }

    #[test]
    fn exchange_stats_are_sane() {
        let part = Partition::new(8, 2);
        let up = HaloUpdater::new(part.clone(), 3, CornerPolicy::Leave);
        let mut arrays = rank_arrays(&part, 4, 3);
        let stats = up.exchange_scalar(&mut arrays);
        assert!(stats.messages_per_rank >= 4);
        assert!(stats.bytes_per_rank > 0);
        // Analytic estimate in the same ballpark as measured.
        let est = up.bytes_per_rank(4, 1);
        let meas = stats.bytes_per_rank;
        let ratio = est as f64 / meas as f64;
        assert!((0.3..3.0).contains(&ratio), "est {est} meas {meas}");
    }

    #[test]
    fn vector_exchange_transforms_components() {
        // A tangent vector field constant in 3-D must remain consistent:
        // exchanged (u, v) components equal the projection of the 3-D
        // vector onto the receiving face's frame.
        let part = Partition::new(6, 1);
        let up = HaloUpdater::new(part.clone(), 1, CornerPolicy::Leave);
        let mut u = rank_arrays(&part, 1, 3);
        let mut v = rank_arrays(&part, 1, 3);
        // Global vector g = (1, 2, 3): per face, u = g . U, v = g . V.
        let g = [1.0, 2.0, 3.0];
        for r in 0..6 {
            let f = &part.geom.faces[r];
            let gu = g[0] * f.u[0] as f64 + g[1] * f.u[1] as f64 + g[2] * f.u[2] as f64;
            let gv = g[0] * f.v[0] as f64 + g[1] * f.v[1] as f64 + g[2] * f.v[2] as f64;
            for j in 0..6 {
                for i in 0..6 {
                    u[r].set(i, j, 0, gu);
                    v[r].set(i, j, 0, gv);
                }
            }
        }
        up.exchange_vector(&mut u, &mut v);
        // After exchange, face r's halo cells must hold face r's own
        // projections (the transform mapped the neighbour's components).
        for r in 0..6 {
            let f = &part.geom.faces[r];
            let gu = g[0] * f.u[0] as f64 + g[1] * f.u[1] as f64 + g[2] * f.u[2] as f64;
            let gv = g[0] * f.v[0] as f64 + g[1] * f.v[1] as f64 + g[2] * f.v[2] as f64;
            for t in 0..6 {
                for (i, j) in [(-1i64, t), (6, t), (t, -1), (t, 6)] {
                    let uu = u[r].get(i, j, 0);
                    let vv = v[r].get(i, j, 0);
                    // One of the two components may pick up the neighbour
                    // face's normal contribution we drop; require that the
                    // in-plane parts match up to that projection error.
                    let du = (uu - gu).abs();
                    let dv = (vv - gv).abs();
                    assert!(
                        du <= 4.0 && dv <= 4.0,
                        "rank {r} halo ({i},{j}): u {uu} vs {gu}, v {vv} vs {gv}"
                    );
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "halo width")]
    fn oversized_halo_is_rejected() {
        let part = Partition::new(4, 2);
        let _ = HaloUpdater::new(part, 3, CornerPolicy::Leave);
    }

    /// Run one scalar exchange and return (measured, analytic) stats.
    fn measure(tile_n: usize, rt: usize, width: usize, nk: usize) -> (ExchangeStats, ExchangeStats) {
        let part = Partition::new(tile_n, rt);
        let up = HaloUpdater::new(part.clone(), width, CornerPolicy::Leave);
        let mut arrays = rank_arrays(&part, nk, width);
        let measured = up.exchange_scalar(&mut arrays);
        (measured, up.exact_stats(nk))
    }

    #[test]
    fn measured_stats_match_analytic_model_c8() {
        // c8 single-rank-per-tile and 2x2-per-tile decompositions.
        for (rt, width, nk) in [(1, 2, 4), (2, 3, 4), (2, 1, 6)] {
            let (measured, exact) = measure(8, rt, width, nk);
            assert_eq!(measured, exact, "c8 rt={rt} w={width} nk={nk}");
        }
    }

    #[test]
    fn measured_stats_match_analytic_model_c12() {
        // c12 with 3x3 ranks per tile: interior ranks exist, so the
        // interior-rank closed form is attained exactly.
        let (measured, exact) = measure(12, 3, 2, 4);
        assert_eq!(measured, exact);
        let part = Partition::new(12, 3);
        let up = HaloUpdater::new(part, 2, CornerPolicy::Leave);
        assert_eq!(measured.bytes_per_rank, up.bytes_per_rank(4, 1));
        assert_eq!(measured.messages_per_rank, up.messages_per_rank());
    }

    #[test]
    fn closed_form_relations_hold_per_decomposition() {
        let (s, w, nk) = (8u64, 2u64, 4u64);
        // rt=1: every corner block sits on a cube corner -> edge strips
        // only, 4 neighbours.
        let (m1, _) = measure(8, 1, w as usize, nk as usize);
        assert_eq!(m1.bytes_per_rank, 4 * s * w * nk * 8);
        assert_eq!(m1.messages_per_rank, 4);
        assert_eq!(m1.bytes_for(Orientation::Corner), 0);
        // rt=2: every rank touches one cube corner -> exactly one of the
        // four w*w corner blocks is dead.
        let (m2, _) = measure(8, 2, w as usize, nk as usize);
        assert_eq!(m2.bytes_per_rank, (4 * (s / 2) * w + 3 * w * w) * nk * 8);
        assert_eq!(m2.messages_per_rank, 7);
        // rt=3: the tile-interior rank has all 8 neighbours and the full
        // halo ring (the upper bound bytes_per_rank models).
        let (m3, _) = measure(12, 3, w as usize, nk as usize);
        assert_eq!(m3.bytes_per_rank, (4 * 4 * w + 4 * w * w) * nk * 8);
        assert_eq!(m3.messages_per_rank, 8);
        // Edge strips are symmetric under the four orientations; totals
        // add up.
        for m in [m1, m2, m3] {
            assert_eq!(m.bytes_for(Orientation::West), m.bytes_for(Orientation::East));
            assert_eq!(m.bytes_for(Orientation::South), m.bytes_for(Orientation::North));
            assert_eq!(m.bytes_by_orientation.iter().sum::<u64>(), m.total_bytes);
        }
    }

    #[test]
    fn orientation_classifies_halo_cells() {
        assert_eq!(Orientation::classify(-1, 3, 8), Orientation::West);
        assert_eq!(Orientation::classify(8, 0, 8), Orientation::East);
        assert_eq!(Orientation::classify(2, -2, 8), Orientation::South);
        assert_eq!(Orientation::classify(7, 9, 8), Orientation::North);
        assert_eq!(Orientation::classify(-1, 8, 8), Orientation::Corner);
        for (n, o) in Orientation::ALL.iter().enumerate() {
            assert_eq!(o.idx(), n);
        }
    }
}
