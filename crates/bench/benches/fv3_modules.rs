//! Real wall-clock benchmarks of the FV3 modules on the host: the
//! FORTRAN-style baseline loops vs the DSL executor (naive and fused
//! expansions) for the two Table II modules.

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::exec::{DataStore, Executor, NoHooks};
use dataflow::graph::ExpansionAttrs;
use dataflow::Array3;
use fv3::fv_tp_2d::{baseline_fv_tp_2d, flux_domain};
use fv3::riem_solver_c::baseline_riem_solver_c;
use fv3core::experiments::{module_program, Module};

const N: usize = 32;
const NK: usize = 16;

fn filled(layout: &dataflow::Layout, seed: i64, lo: f64, hi: f64) -> Array3 {
    let [ni, nj, nk] = layout.domain;
    let (hi_h, hj_h) = (layout.halo[0] as i64, layout.halo[1] as i64);
    let mut a = Array3::zeros(layout.clone());
    for k in 0..nk as i64 {
        for j in -hj_h..nj as i64 + hj_h {
            for i in -hi_h..ni as i64 + hi_h {
                let x = (((i + 5) * 131 + (j + 5) * 17 + k * 7 + seed) % 97) as f64 / 97.0;
                a.set(i, j, k, lo + (hi - lo) * x);
            }
        }
    }
    a
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fv3_modules");
    group.sample_size(15);

    // --- fv_tp_2d ---
    let prog = module_program(Module::FiniteVolumeTransport, N, NK);
    for (name, attrs) in [
        ("fvt_dsl_naive", ExpansionAttrs::naive()),
        ("fvt_dsl_fused", ExpansionAttrs::tuned()),
    ] {
        let mut g = prog.clone();
        g.expand_libraries(&attrs);
        let mut store = DataStore::for_sdfg(&g);
        for (i, c_) in g.containers.iter().enumerate() {
            if !c_.transient {
                *store.get_mut(dataflow::DataId(i)) =
                    filled(&c_.layout, i as i64, 0.1, 1.0);
            }
        }
        let exec = Executor::serial();
        group.bench_function(name, |b| {
            b.iter(|| exec.run(&g, &mut store, &[], &mut NoHooks))
        });
    }
    {
        let layout = dataflow::Layout::fv3_default([N, N, NK], [4, 4, 0]);
        let q = filled(&layout, 1, 0.1, 1.0);
        let crx = filled(&layout, 2, -0.5, 0.5);
        let cry = filled(&layout, 3, -0.5, 0.5);
        let xfx = filled(&layout, 4, -1.0, 1.0);
        let yfx = filled(&layout, 5, -1.0, 1.0);
        let mut fx = Array3::zeros(layout.clone());
        let mut fy = Array3::zeros(layout);
        group.bench_function("fvt_baseline_loops", |b| {
            b.iter(|| baseline_fv_tp_2d(&q, &crx, &cry, &xfx, &yfx, &mut fx, &mut fy))
        });
        let _ = flux_domain(N, NK);
    }

    // --- riem_solver_c ---
    let prog = module_program(Module::RiemannSolverC, N, NK);
    {
        let mut g = prog.clone();
        g.expand_libraries(&ExpansionAttrs::tuned());
        let mut store = DataStore::for_sdfg(&g);
        for (i, c_) in g.containers.iter().enumerate() {
            if !c_.transient {
                let lo = if c_.name == "delz" { -800.0 } else { 200.0 };
                let hi = if c_.name == "delz" { -200.0 } else { 1200.0 };
                *store.get_mut(dataflow::DataId(i)) = filled(&c_.layout, i as i64, lo, hi);
            }
        }
        let exec = Executor::serial();
        group.bench_function("riemann_dsl_fused", |b| {
            b.iter(|| exec.run(&g, &mut store, &[2.0], &mut NoHooks))
        });
    }
    {
        let layout = dataflow::Layout::fv3_default([N, N, NK], [0, 0, 1]);
        let delp = filled(&layout, 1, 500.0, 1500.0);
        let pt = filled(&layout, 2, 250.0, 350.0);
        let delz = filled(&layout, 3, -800.0, -200.0);
        let mut w = filled(&layout, 4, -2.0, 2.0);
        group.bench_function("riemann_baseline_loops", |b| {
            b.iter(|| baseline_riem_solver_c(&delp, &pt, &delz, &mut w, 2.0))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
