//! Real wall-clock benchmarks of the stencil executor on the host:
//! the copy stencil (bandwidth probe), the Smagorinsky pow stencil before
//! and after strength reduction, and coalesced-layout variants.

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::exec::{run_kernel_serial, DataStore};
use dataflow::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
use dataflow::transforms::power::reduce_powers;
use dataflow::{Array3, BinOp, Expr, Sdfg};

const N: usize = 64;
const NK: usize = 16;

fn setup(fields: &[&str]) -> (Sdfg, DataStore) {
    let mut g = Sdfg::new("bench");
    let l = dataflow::Layout::fv3_default([N, N, NK], [1, 1, 0]);
    for f in fields {
        g.add_container(*f, l.clone(), false);
    }
    let mut store = DataStore::for_sdfg(&g);
    for i in 0..fields.len() {
        *store.get_mut(dataflow::DataId(i)) =
            Array3::from_fn(g.layout_of(dataflow::DataId(i)), |i2, j, k| {
                1.0 + ((i2 * 7 + j * 3 + k) % 13) as f64 * 0.1
            });
    }
    (g, store)
}

fn copy_kernel() -> Kernel {
    let mut k = Kernel::new(
        "copy",
        Domain::from_shape([N, N, NK]),
        KOrder::Parallel,
        Schedule::gpu_horizontal(),
    );
    k.stmts.push(Stmt::full(
        LValue::Field(dataflow::DataId(1)),
        Expr::load(dataflow::DataId(0), 0, 0, 0),
    ));
    k
}

fn smag_kernel(reduced: bool) -> Kernel {
    let delpc = Expr::load(dataflow::DataId(0), 0, 0, 0);
    let vort = Expr::load(dataflow::DataId(1), 0, 0, 0);
    let mut e = Expr::c(0.1)
        * Expr::bin(
            BinOp::Pow,
            Expr::bin(BinOp::Pow, delpc, Expr::c(2.0))
                + Expr::bin(BinOp::Pow, vort, Expr::c(2.0)),
            Expr::c(0.5),
        );
    if reduced {
        e = reduce_powers(e).0;
    }
    let mut k = Kernel::new(
        "smag",
        Domain::from_shape([N, N, NK]),
        KOrder::Parallel,
        Schedule::gpu_horizontal(),
    );
    k.stmts
        .push(Stmt::full(LValue::Field(dataflow::DataId(2)), e));
    k
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("stencil_exec");
    group.sample_size(20);

    let (_, mut store) = setup(&["a", "b"]);
    let k = copy_kernel();
    group.bench_function("copy_stencil", |b| {
        b.iter(|| run_kernel_serial(&k, &mut store, &[]))
    });

    let (_, mut store) = setup(&["delpc", "vort", "out"]);
    let slow = smag_kernel(false);
    let fast = smag_kernel(true);
    group.bench_function("smagorinsky_pow", |b| {
        b.iter(|| run_kernel_serial(&slow, &mut store, &[]))
    });
    group.bench_function("smagorinsky_strength_reduced", |b| {
        b.iter(|| run_kernel_serial(&fast, &mut store, &[]))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
