//! Ablation benchmarks for the design decisions DESIGN.md calls out:
//! fused vs unfused kernels (real executed data movement), and the
//! bytecode VM vs tree-walking interpretation of tasklet bodies.

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::bytecode;
use dataflow::exec::{DataStore, Executor, NoHooks};
use dataflow::expr::{DataId, EvalCtx, LocalId, Offset3, ParamId};
use dataflow::graph::{DataflowNode, Sdfg, State};
use dataflow::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
use dataflow::storage::Axis;
use dataflow::transforms::fusion::greedy_subgraph_fusion;
use dataflow::{Array3, Expr};

const N: usize = 48;
const NK: usize = 16;

/// A 4-stage pointwise chain: prime fusion fodder.
fn chain_program() -> Sdfg {
    let mut g = Sdfg::new("chain");
    let l = dataflow::Layout::fv3_default([N, N, NK], [1, 1, 0]);
    let a = g.add_container("a", l.clone(), false);
    let t1 = g.add_container("t1", l.clone(), true);
    let t2 = g.add_container("t2", l.clone(), true);
    let out = g.add_container("out", l, false);
    let dom = Domain::from_shape([N, N, NK]);
    let stage = |name: &str, from: DataId, to: DataId, c: f64| {
        let mut k = Kernel::new(name, dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k.stmts.push(Stmt::full(
            LValue::Field(to),
            Expr::load(from, 0, 0, 0) * Expr::c(c) + Expr::c(1.0),
        ));
        DataflowNode::Kernel(k)
    };
    let mut s = State::new("s");
    s.nodes.push(stage("s0", a, t1, 2.0));
    s.nodes.push(stage("s1", t1, t2, 0.5));
    s.nodes.push(stage("s2", t2, out, 3.0));
    g.add_state(s);
    g
}

struct TreeCtx<'a> {
    arr: &'a Array3,
    i: i64,
    j: i64,
    k: i64,
}
impl EvalCtx for TreeCtx<'_> {
    fn load(&self, _d: DataId, o: Offset3) -> f64 {
        self.arr
            .get(self.i + o.i as i64, self.j + o.j as i64, self.k + o.k as i64)
    }
    fn local(&self, _l: LocalId) -> f64 {
        0.0
    }
    fn param(&self, _p: ParamId) -> f64 {
        0.0
    }
    fn index(&self, ax: Axis) -> i64 {
        match ax {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("transforms");
    group.sample_size(15);

    // Fused vs unfused execution (real data movement difference).
    let unfused = chain_program();
    let mut fused = unfused.clone();
    let applied = greedy_subgraph_fusion(&mut fused);
    assert!(!applied.is_empty());
    for (name, g) in [("chain_unfused", &unfused), ("chain_fused", &fused)] {
        let mut store = DataStore::for_sdfg(g);
        *store.get_mut(DataId(0)) =
            Array3::from_fn(g.layout_of(DataId(0)), |i, j, k| (i + j + k) as f64);
        let exec = Executor::serial();
        group.bench_function(name, |b| {
            b.iter(|| exec.run(g, &mut store, &[], &mut NoHooks))
        });
    }

    // Bytecode VM vs tree interpretation of one stencil expression.
    let expr = Expr::load(DataId(0), -1, 0, 0)
        + Expr::load(DataId(0), 1, 0, 0)
        + Expr::load(DataId(0), 0, -1, 0)
        + Expr::load(DataId(0), 0, 1, 0)
        - Expr::c(4.0) * Expr::load(DataId(0), 0, 0, 0);
    let l = dataflow::Layout::fv3_default([N, N, NK], [1, 1, 0]);
    let arr = Array3::from_fn(l, |i, j, k| ((i * 3 + j * 5 + k) % 7) as f64);
    let prog = bytecode::compile(&expr, &|_| 0);

    struct VmView<'a> {
        arr: &'a Array3,
        i: i64,
        j: i64,
        k: i64,
    }
    impl bytecode::VmCtx for VmView<'_> {
        fn load(&self, _slot: u16, o: Offset3) -> f64 {
            self.arr
                .get(self.i + o.i as i64, self.j + o.j as i64, self.k + o.k as i64)
        }
        fn local(&self, _l: u16) -> f64 {
            0.0
        }
        fn param(&self, _p: u16) -> f64 {
            0.0
        }
        fn index(&self, ax: Axis) -> i64 {
            match ax {
                Axis::I => self.i,
                Axis::J => self.j,
                Axis::K => self.k,
            }
        }
    }

    group.bench_function("tasklet_tree_interpreter", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for k in 0..NK as i64 {
                for j in 0..N as i64 {
                    for i in 0..N as i64 {
                        acc += expr.eval(&TreeCtx { arr: &arr, i, j, k });
                    }
                }
            }
            acc
        })
    });
    group.bench_function("tasklet_bytecode_vm", |b| {
        b.iter(|| {
            let mut regs = vec![0.0f64; prog.n_regs as usize];
            let mut acc = 0.0;
            for k in 0..NK as i64 {
                for j in 0..N as i64 {
                    for i in 0..N as i64 {
                        acc += bytecode::run(&prog, &VmView { arr: &arr, i, j, k }, &mut regs);
                    }
                }
            }
            acc
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
