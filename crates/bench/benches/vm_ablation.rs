//! Ablation of the execution engine (ISSUE 4): the same representative
//! d_sw-style kernel timed three ways —
//!
//! * `scalar_vm`      — per-column scalar VM, compiled on every launch
//!   (the engine before this work),
//! * `vectorized_vm`  — lane VM over the interior with scalar rind,
//!   still compiled on every launch (isolates the lane VM win),
//! * `vectorized_cached` — lane VM executing a pre-compiled kernel
//!   (isolates the compile-cache win; the steady-state configuration).
//!
//! The kernel mirrors d_sw's flux/vorticity shape: 9-point horizontal
//! neighborhoods, a per-column local, an upwind select, and a region
//! rind so the scalar-fallback path is also exercised.

use criterion::{criterion_group, criterion_main, Criterion};
use dataflow::exec::{compile_kernel, run_compiled, run_kernel_with, DataStore, VmMode};
use dataflow::expr::LocalId;
use dataflow::kernel::{AxisInterval, Domain, KOrder, Kernel, LValue, Region2, Schedule, Stmt};
use dataflow::{Array3, BinOp, CmpOp, DataId, Expr, Sdfg};
use machine::Pool;

const N: usize = 64;
const NK: usize = 16;

fn setup() -> (Sdfg, DataStore) {
    let mut g = Sdfg::new("vm_ablation");
    let l = dataflow::Layout::fv3_default([N, N, NK], [3, 3, 0]);
    for f in ["u", "v", "delp", "vort", "ke", "flux"] {
        g.add_container(f, l.clone(), false);
    }
    let mut store = DataStore::for_sdfg(&g);
    for i in 0..6 {
        *store.get_mut(DataId(i)) = Array3::from_fn(g.layout_of(DataId(i)), |i2, j, k| {
            1.0 + ((i2 * 7 + j * 3 + k) % 13) as f64 * 0.1
        });
    }
    (g, store)
}

/// A d_sw-shaped kernel: vorticity from u/v differences, kinetic energy
/// into a local, an upwinded flux with a select, and an edge-region
/// correction statement.
fn dsw_kernel() -> Kernel {
    let (u, v, delp) = (DataId(0), DataId(1), DataId(2));
    let (vort, ke, flux) = (DataId(3), DataId(4), DataId(5));
    let mut k = Kernel::new(
        "dsw_repr",
        Domain::from_shape([N, N, NK]),
        KOrder::Parallel,
        Schedule::gpu_horizontal(),
    );
    k.n_locals = 1;
    // vort = dv/dx - du/dy (9-point neighborhood reads).
    k.stmts.push(Stmt::full(
        LValue::Field(vort),
        Expr::load(v, 1, 0, 0) - Expr::load(v, -1, 0, 0) - Expr::load(u, 0, 1, 0)
            + Expr::load(u, 0, -1, 0),
    ));
    // local = 0.5 * (u^2 + v^2), then ke = local * delp.
    k.stmts.push(Stmt::full(
        LValue::Local(LocalId(0)),
        Expr::c(0.5)
            * (Expr::load(u, 0, 0, 0) * Expr::load(u, 0, 0, 0)
                + Expr::load(v, 0, 0, 0) * Expr::load(v, 0, 0, 0)),
    ));
    k.stmts.push(Stmt::full(
        LValue::Field(ke),
        Expr::Local(LocalId(0)) * Expr::load(delp, 0, 0, 0),
    ));
    // Upwinded flux: select on the sign of u.
    k.stmts.push(Stmt::full(
        LValue::Field(flux),
        Expr::select(
            Expr::cmp(CmpOp::Gt, Expr::load(u, 0, 0, 0), Expr::c(0.0)),
            Expr::load(delp, -1, 0, 0),
            Expr::load(delp, 1, 0, 0),
        ) * Expr::load(u, 0, 0, 0),
    ));
    // Edge correction on a 2-wide western rind (region statement).
    k.stmts.push(Stmt {
        lvalue: LValue::Field(flux),
        expr: Expr::load(flux, 0, 0, 0) * Expr::c(0.9) + Expr::bin(
            BinOp::Mul,
            Expr::load(vort, 0, 0, 0),
            Expr::c(0.01),
        ),
        k_range: AxisInterval::FULL,
        region: Some(Region2 {
            i: AxisInterval::at_start(1),
            j: AxisInterval::FULL,
        }),
        extent: Default::default(),
    });
    k
}

fn bench_vm_ablation(c: &mut Criterion) {
    let (_g, mut store) = setup();
    let kernel = dsw_kernel();
    let params: Vec<f64> = Vec::new();
    let pool = Pool::new(1);
    let mut group = c.benchmark_group("vm_ablation");

    group.bench_function("scalar_vm", |b| {
        b.iter(|| run_kernel_with(&kernel, &mut store, &params, &pool, VmMode::Scalar))
    });
    group.bench_function("vectorized_vm", |b| {
        b.iter(|| run_kernel_with(&kernel, &mut store, &params, &pool, VmMode::Lanes))
    });
    let compiled = compile_kernel(&kernel);
    group.bench_function("vectorized_cached", |b| {
        b.iter(|| run_compiled(&compiled, &mut store, &params, &pool, VmMode::Lanes))
    });
    group.finish();
}

criterion_group!(benches, bench_vm_ablation);
criterion_main!(benches);
