//! Acceptance tests for the flight-recorder bench integration: one
//! profiled run yields a single chrome trace whose run → step → module
//! → kernel spans nest by time containment, a clean health stream with
//! one sample per timestep, and schema-v2 summaries that `compare_runs`
//! diffs cleanly; the `profile_dycore` binary emits all four artifacts
//! and refuses to clobber a newer-schema summary.

use bench::profile::{bench_json, profile_case};
use dataflow::profile::TraceEvent;
use fv3::dyn_core::DycoreConfig;
use obs::{compare_runs, RegressionPolicy};
use std::path::PathBuf;
use std::process::Command;

fn config() -> DycoreConfig {
    DycoreConfig {
        n_split: 2,
        k_split: 1,
        dt: 5.0,
        dddmp: 0.02,
        nord4_damp: None,
    }
}

fn contained(inner: &TraceEvent, outer: &TraceEvent) -> bool {
    outer.ts_us <= inner.ts_us && inner.ts_us + inner.dur_us <= outer.ts_us + outer.dur_us
}

#[test]
fn unified_trace_nests_run_step_module_kernel() {
    let steps = 2;
    let run = profile_case(8, 4, steps, config());
    let events = run.tracer.finished();
    let of = |cat: &str| events.iter().filter(|e| e.cat == cat).collect::<Vec<_>>();

    let runs = of("run");
    assert_eq!(runs.len(), 1);
    let step_spans = of("step");
    assert_eq!(step_spans.len(), steps);
    for s in &step_spans {
        assert!(contained(s, runs[0]), "step {} outside run span", s.name);
    }

    // Every module span sits inside exactly one timestep, and every
    // executed kernel/copy/callback event inside some module span.
    let modules = of("module");
    assert!(!modules.is_empty());
    for m in &modules {
        let owners = step_spans.iter().filter(|s| contained(m, s)).count();
        assert_eq!(owners, 1, "module {} in {owners} steps", m.name);
    }
    for cat in ["kernel", "copy", "callback"] {
        for e in of(cat) {
            assert!(
                modules.iter().any(|m| contained(e, m)),
                "{cat} event {} outside all module spans",
                e.name
            );
        }
    }

    // The unified trace round-trips through the chrome-trace parser.
    let parsed = dataflow::profile::parse_chrome_trace(&run.tracer.to_chrome_trace()).unwrap();
    assert_eq!(parsed.len(), events.len());

    // Health: one clean sample per timestep.
    assert_eq!(run.monitor.samples().len(), steps);
    assert!(run.monitor.all_healthy());
    for line in run.monitor.to_jsonl().lines() {
        assert!(line.starts_with('{') && line.ends_with('}'));
        assert!(!line.contains("blowup"));
    }
}

#[test]
fn consecutive_runs_produce_comparable_schema_v2_summaries() {
    let a = bench_json(&profile_case(8, 4, 2, config()), 1e9, 1.0);
    let b = bench_json(&profile_case(8, 4, 2, config()), 1e9, 1.0);
    assert_eq!(obs::regression::schema_version(&a), Ok(2));
    assert_eq!(obs::regression::schema_version(&b), Ok(2));

    // Same program, so the module sets line up exactly; wall-clock
    // jitter is judged with a lenient policy to keep the test stable.
    let report = compare_runs(&a, &b, &RegressionPolicy::default()).unwrap();
    assert!(report.added.is_empty() && report.removed.is_empty());
    assert!(!report.deltas.is_empty());
    let lenient = RegressionPolicy {
        slowdown: 1e6,
        min_seconds: 1e-3,
    };
    assert!(compare_runs(&a, &b, &lenient).unwrap().is_clean());
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bench_unified_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn bin_refuses_to_overwrite_newer_schema_summary() {
    let dir = scratch_dir("refuse");
    let sentinel = "{\"schema_version\": 99, \"modules\": []}\n";
    std::fs::write(dir.join("BENCH_dycore.json"), sentinel).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_profile_dycore"))
        .current_dir(&dir)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("refusing to overwrite"), "{stderr}");
    // The newer artifact survives untouched.
    let kept = std::fs::read_to_string(dir.join("BENCH_dycore.json")).unwrap();
    assert_eq!(kept, sentinel);
}

#[test]
fn bin_emits_all_artifacts_and_diffs_second_run() {
    let dir = scratch_dir("emit");
    let bin = env!("CARGO_BIN_EXE_profile_dycore");
    let out = Command::new(bin).current_dir(&dir).output().unwrap();
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    for f in [
        "BENCH_dycore.json",
        "BENCH_dycore_trace.json",
        "RUN_health.jsonl",
        "RUN_metrics.jsonl",
    ] {
        assert!(dir.join(f).exists(), "missing {f}");
    }
    let summary = std::fs::read_to_string(dir.join("BENCH_dycore.json")).unwrap();
    assert_eq!(obs::regression::schema_version(&summary), Ok(2));
    let health = std::fs::read_to_string(dir.join("RUN_health.jsonl")).unwrap();
    assert!(health.lines().count() >= 4);
    assert!(!health.contains("blowup"));
    let trace = std::fs::read_to_string(dir.join("BENCH_dycore_trace.json")).unwrap();
    assert!(!dataflow::profile::parse_chrome_trace(&trace).unwrap().is_empty());

    // Second run in the same directory diffs against the first.
    let out2 = Command::new(bin).current_dir(&dir).output().unwrap();
    assert!(
        out2.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out2.stderr)
    );
    let stdout = String::from_utf8_lossy(&out2.stdout);
    assert!(stdout.contains("regression diff vs previous"), "{stdout}");
}
