//! Section IX-B: performance portability — the same optimized program on
//! the JUWELS Booster A100 model.
//!
//! Paper: 1.93 s/step at 54 ranks, 2.42x faster than Piz Daint's P100,
//! against a 2.83x memory-bandwidth ratio. Portability is one machine-
//! spec swap: no code changes.

use fv3::dyn_core::DycoreConfig;
use fv3core::experiments::{a100, p100};
use fv3core::pipeline::{run_pipeline, PipelineStage};

fn main() {
    let (n, nk) = (192, 80);
    let config = DycoreConfig {
        n_split: 5,
        k_split: 2,
        dt: 10.0,
        dddmp: 0.05,
        nord4_damp: None,
    };
    let program = fv3::dyn_core::build_dycore_program(n, nk, config).sdfg;

    let t_p100 = run_pipeline(&program, &p100(), &|_| 0.0, PipelineStage::TransferTuning)
        .final_time();
    let t_a100 = run_pipeline(&program, &a100(), &|_| 0.0, PipelineStage::TransferTuning)
        .final_time();

    println!("SECTION IX-B: JUWELS Booster (A100) portability");
    println!("{:-<58}", "");
    println!("P100 (Piz Daint) step time:   {:>10.3} s", t_p100);
    println!("A100 (JUWELS)    step time:   {:>10.3} s", t_a100);
    println!("speedup A100/P100:            {:>10.2}x  (paper: 2.42x)", t_p100 / t_a100);
    println!("memory-bandwidth ratio:       {:>10.2}x  (paper: 2.83x)", 2.83);
    println!();
    println!("the gap between the bandwidth ratio and the achieved speedup");
    println!("comes from launch overheads and occupancy, exactly as in the");
    println!("paper's discussion — and the entire port is one MachineSpec.");
}
