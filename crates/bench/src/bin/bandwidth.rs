//! Section VIII-A: memory-bandwidth characterization.
//!
//! Reports (a) the modeled peak/attainable bandwidths of the paper's
//! machines, (b) the copy-stencil bandwidth achieved through the full
//! DSL+IR pipeline on both machine models, and (c) a *real* STREAM
//! measurement of the host this reproduction runs on.

use fv3core::experiments::{copy_stencil_bandwidth, haswell, p100};
use machine::{stream, CpuSpec, GpuSpec};

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() {
    let gpu = GpuSpec::p100();
    let cpu = CpuSpec::haswell_e5_2690v3();
    println!("SECTION VIII-A: memory bandwidth (192x192x80 copy stencil)");
    println!("{:-<68}", "");
    println!("paper-reported peaks:");
    println!("  Haswell STREAM:          {:>8.2} GB/s", cpu.dram_bandwidth / 1e9);
    println!("  P100 bandwidthTest:      {:>8.2} GB/s", gpu.peak_bandwidth / 1e9);
    println!();
    let cpu_bw = copy_stencil_bandwidth(&haswell(), 192, 80);
    let gpu_bw = copy_stencil_bandwidth(&p100(), 192, 80);
    println!("copy stencil through the toolchain (modeled):");
    println!(
        "  CPU:  {:>8.2} GiB/s   (paper measured 40.99 GiB/s)",
        cpu_bw / GIB
    );
    println!(
        "  GPU:  {:>8.2} GiB/s   (paper measured 489.83 GiB/s)",
        gpu_bw / GIB
    );
    println!(
        "  expected max memory-bound speedup: {:.2}x (paper: 11.45x)",
        gpu_bw / cpu_bw
    );
    println!();

    // Real host measurement (this is genuinely measured, not modeled).
    let elems = 8 << 20; // 64 MiB per array
    let copy = stream::copy(elems, 5);
    let triad = stream::triad(elems, 5);
    println!("host machine (REAL measurement, {} MiB arrays):", elems * 8 / (1 << 20));
    println!("  STREAM copy:  {:>8.2} GiB/s", copy.gib_per_s());
    println!("  STREAM triad: {:>8.2} GiB/s", triad.gib_per_s());
}
