//! `forecast_serve`: the forecast-as-a-service front door, RAMP-style.
//!
//! ```text
//! forecast_serve init     [key=value ...] # cold-start probe: one request,
//!                                         # report the compile bill
//! forecast_serve submit   [key=value ...] # submit a batch, print one line
//!                                         # per outcome
//! forecast_serve run      [key=value ...] # soak: warmup + measured burst,
//!                                         # emit RUN_metrics.jsonl /
//!                                         # RUN_health.jsonl /
//!                                         # RUN_events.jsonl, gate the
//!                                         # service contract
//! forecast_serve watch    [key=value ...] # submit a batch and tail its
//!                                         # live event stream as JSONL,
//!                                         # one object per line
//! forecast_serve status   [key=value ...] # submit a batch and print a
//!                                         # point-in-time engine snapshot
//!                                         # per poll until it drains
//! forecast_serve cancel   [key=value ...] # submit a long request, cancel
//!                                         # it mid-run, report the partial
//!                                         # progress it kept
//! forecast_serve overload [key=value ...] # drive the engine to 2x
//!                                         # saturation with mixed lanes,
//!                                         # gate graceful degradation,
//!                                         # emit the RUN_*.jsonl artifacts
//! ```
//!
//! Keys (all optional): `requests=N slots=N steps=N tile_n=N nk=N
//! streaming=0|1` shape the load; `priority=high|normal|batch
//! deadline=SECONDS tenant=NAME tenant_cap=N` shape admission for
//! `submit` and `cancel`. Defaults are the CI soak shape (8 requests,
//! 2 slots, 2 steps, c8L6, streaming on, Normal lane, no deadline).
//!
//! Exit codes are the service contract: 0 when every request completed,
//! 2 when some requests were cancelled / evicted / shed but none
//! genuinely failed (graceful degradation is not an error), 1 when any
//! request failed or a gate broke. The serve-soak CI job parses `run`'s
//! `RUN_metrics.jsonl` and validates `RUN_events.jsonl` for lifecycle
//! closure; the overload-soak job does the same for `overload`,
//! including the `request_cancelled` / `request_evicted` /
//! `request_shed` terminals.

use bench::serve_load::{overload_study, serve_load, ServeLoadConfig};
use engine::{EngineConfig, ForecastEngine, ForecastResult, Priority, SubmitOptions};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Some requests degraded (cancelled/evicted/shed) but none failed.
const EXIT_DEGRADED: u8 = 2;

fn usage() -> ExitCode {
    eprintln!(
        "usage: forecast_serve <init|submit|run|watch|status|cancel|overload> \
         [requests=N] [slots=N] [steps=N] [tile_n=N] [nk=N] [streaming=0|1] \
         [priority=high|normal|batch] [deadline=SECONDS] [tenant=NAME] [tenant_cap=N]"
    );
    ExitCode::FAILURE
}

/// Everything the CLI can shape: the load, plus per-request admission
/// options and the engine's tenant cap.
struct CliConfig {
    load: ServeLoadConfig,
    opts: SubmitOptions,
    tenant_cap: Option<usize>,
}

fn parse_config(args: &[String]) -> Result<CliConfig, String> {
    let mut cfg = CliConfig {
        load: ServeLoadConfig::default(),
        opts: SubmitOptions::default(),
        tenant_cap: None,
    };
    for arg in args {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("'{arg}' is not key=value"))?;
        match key {
            "priority" => {
                cfg.opts.priority = Priority::parse(value)
                    .ok_or_else(|| format!("bad priority '{value}' (high|normal|batch)"))?;
            }
            "deadline" => {
                let secs: f64 = value
                    .parse()
                    .map_err(|e| format!("bad deadline '{value}': {e}"))?;
                if !(secs >= 0.0 && secs.is_finite()) {
                    return Err(format!("bad deadline '{value}': not a finite duration"));
                }
                cfg.opts.deadline = Some(Duration::from_secs_f64(secs));
            }
            "tenant" => cfg.opts.tenant = Some(value.to_string()),
            _ => {
                let n: usize = value
                    .parse()
                    .map_err(|e| format!("bad {key} '{value}': {e}"))?;
                match key {
                    "requests" => cfg.load.requests = n,
                    "slots" => cfg.load.slots = n,
                    "steps" => cfg.load.steps = n as u64,
                    "tile_n" => cfg.load.tile_n = n,
                    "nk" => cfg.load.nk = n,
                    "streaming" => cfg.load.streaming = n != 0,
                    "tenant_cap" => cfg.tenant_cap = Some(n),
                    other => return Err(format!("unknown key '{other}'")),
                }
            }
        }
    }
    Ok(cfg)
}

/// The exit-code contract, from the batch's terminal tallies.
fn verdict(failed: u64, degraded: u64) -> ExitCode {
    if failed > 0 {
        ExitCode::FAILURE
    } else if degraded > 0 {
        ExitCode::from(EXIT_DEGRADED)
    } else {
        ExitCode::SUCCESS
    }
}

/// `init`: prove the environment serves at all — start an engine, run
/// one request, report the compile bill it paid.
fn cmd_init(cfg: CliConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.load.slots,
        ..EngineConfig::from_env()
    });
    let id = engine.submit(cfg.load.request().with_label("init"));
    let out = engine.wait(id);
    match out.result {
        ForecastResult::Completed(rep) => {
            println!(
                "init ok: request {} ran {} steps in {:.3}s, compiled {} kernels ({} hits)",
                out.id, rep.steps, out.run_seconds, rep.cache_misses, rep.cache_hits
            );
            engine.shutdown();
            ExitCode::SUCCESS
        }
        ForecastResult::Failed(e) => {
            eprintln!("init FAILED: request {}: {e}", out.id);
            ExitCode::FAILURE
        }
        other => {
            eprintln!(
                "init FAILED: request {} reached terminal '{}'",
                out.id,
                other.terminal()
            );
            ExitCode::FAILURE
        }
    }
}

/// `submit`: one-shot client — submit the batch under the CLI's
/// admission options, print an outcome line per request as each
/// finishes.
fn cmd_submit(cfg: CliConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.load.slots,
        queue_cap: cfg.load.requests.max(1),
        tenant_cap: cfg.tenant_cap,
        ..EngineConfig::from_env()
    });
    let ids: Vec<_> = (0..cfg.load.requests)
        .map(|i| {
            engine.submit_with(
                cfg.load.request().with_label(&format!("batch-{i}")),
                cfg.opts.clone(),
            )
        })
        .collect();
    let mut failed = 0u64;
    let mut degraded = 0u64;
    for id in ids {
        let out = engine.wait(id);
        match &out.result {
            ForecastResult::Completed(rep) => println!(
                "{} {} ok steps={} latency={:.3}s warm={} misses={}",
                out.id,
                out.label,
                rep.steps,
                out.latency_seconds(),
                rep.warm_start,
                rep.cache_misses
            ),
            ForecastResult::Failed(e) => {
                failed += 1;
                println!("{} {} FAILED: {e}", out.id, out.label);
            }
            ForecastResult::Cancelled(c) => {
                degraded += 1;
                println!(
                    "{} {} cancelled ({:?}) after {} steps",
                    out.id, out.label, c.cause, c.steps_done
                );
            }
            ForecastResult::Evicted {
                past_deadline_seconds,
            } => {
                degraded += 1;
                println!(
                    "{} {} evicted {past_deadline_seconds:.3}s past deadline",
                    out.id, out.label
                );
            }
            ForecastResult::Shed { lane } => {
                degraded += 1;
                println!("{} {} shed from lane {}", out.id, out.label, lane.label());
            }
        }
    }
    let stats = engine.shutdown();
    println!(
        "submitted={} completed={} failed={} cancelled={} evicted={} shed={} \
         cache_hits={} cache_misses={}",
        stats.submitted,
        stats.completed,
        stats.failed,
        stats.cancelled,
        stats.evicted,
        stats.shed,
        stats.cache_hits,
        stats.cache_misses
    );
    verdict(failed, degraded)
}

/// `run`: the measured soak. Emits the JSONL channels and gates the
/// service contract.
fn cmd_run(cfg: CliConfig) -> ExitCode {
    let cfg = cfg.load;
    println!(
        "serve soak: {} requests x {} steps over {} slots (c{}L{})",
        cfg.requests, cfg.steps, cfg.slots, cfg.tile_n, cfg.nk
    );
    let rep = serve_load(cfg);
    std::fs::write("RUN_metrics.jsonl", &rep.metrics_jsonl).expect("write RUN_metrics.jsonl");
    std::fs::write("RUN_health.jsonl", &rep.health_jsonl).expect("write RUN_health.jsonl");
    if cfg.streaming {
        std::fs::write("RUN_events.jsonl", &rep.events_jsonl).expect("write RUN_events.jsonl");
    }
    println!(
        "completed={}/{} failed={} warmup_misses={} steady_state_misses={} warm_acquires={}",
        rep.completed, rep.requests, rep.failed, rep.warmup_misses, rep.steady_state_misses,
        rep.warm_acquires
    );
    println!(
        "throughput={:.2} req/s p50={:.3}s p99={:.3}s max={:.3}s over {:.3}s",
        rep.requests_per_second,
        rep.p50_latency_seconds,
        rep.p99_latency_seconds,
        rep.max_latency_seconds,
        rep.total_seconds
    );
    if cfg.streaming {
        println!(
            "streamed: ttfs_p50={:.3}s ttfs_p99={:.3}s step_gap_p99={:.3}s jitter={:.3}s \
             events={} dropped={}",
            rep.ttfs_p50_seconds,
            rep.ttfs_p99_seconds,
            rep.step_gap_p99_seconds,
            rep.cadence_jitter_seconds,
            rep.events_published,
            rep.events_dropped
        );
    }

    let mut bad = Vec::new();
    if rep.completed != rep.requests as u64 {
        bad.push(format!(
            "lost requests: completed {} of {}",
            rep.completed, rep.requests
        ));
    }
    if rep.failed > 0 {
        bad.push(format!("{} requests failed", rep.failed));
    }
    if rep.warmup_misses == 0 {
        bad.push("warmup compiled nothing (case not cold?)".to_string());
    }
    if rep.steady_state_misses > 0 {
        bad.push(format!(
            "steady state recompiled {} kernels after the warmup request",
            rep.steady_state_misses
        ));
    }
    if !(rep.requests_per_second > 0.0 && rep.p99_latency_seconds > 0.0) {
        bad.push("degenerate throughput/latency measurement".to_string());
    }
    if cfg.streaming {
        if rep.events_dropped > 0 {
            bad.push(format!(
                "sized stream buffer dropped {} events",
                rep.events_dropped
            ));
        }
        // partial_cmp, not `>`: a NaN p99 must fail the gate too.
        if rep.ttfs_p99_seconds.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            bad.push("no time-to-first-step observed on the bus".to_string());
        }
    }
    if bad.is_empty() {
        println!("serve soak ok");
        ExitCode::SUCCESS
    } else {
        for b in &bad {
            eprintln!("serve soak FAILED: {b}");
        }
        ExitCode::FAILURE
    }
}

/// `cancel`: the cancellation demo — submit one request with a budget it
/// could never finish, cancel it once it is running, and report the
/// partial progress the engine handed back. Exits with the degraded
/// code (2): a cancelled request is not a failure.
fn cmd_cancel(cfg: CliConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.load.slots,
        tenant_cap: cfg.tenant_cap,
        ..EngineConfig::from_env()
    });
    let id = engine.submit_with(
        cfg.load.request_with_steps(100_000).with_label("cancel-me"),
        cfg.opts.clone(),
    );
    // Wait until the request owns a slot so the demo exercises the
    // mid-run path, not the cheap queued-cancel path.
    while engine.status().running.iter().all(|r| r.id != id) {
        if engine.wait_timeout(id, Duration::from_millis(5)).is_some() {
            eprintln!("cancel demo: request finished before it could be cancelled");
            engine.shutdown();
            return ExitCode::FAILURE;
        }
    }
    assert!(engine.cancel(id), "a running request has a live token");
    let out = engine.wait(id);
    let code = match &out.result {
        ForecastResult::Cancelled(c) => {
            println!(
                "{} {} cancelled ({:?}) after {} completed steps, {:.3}s in flight",
                out.id, out.label, c.cause, c.steps_done, out.run_seconds
            );
            ExitCode::from(EXIT_DEGRADED)
        }
        other => {
            eprintln!(
                "cancel demo FAILED: request {} reached terminal '{}'",
                out.id,
                other.terminal()
            );
            ExitCode::FAILURE
        }
    };
    let stats = engine.shutdown();
    println!(
        "submitted={} completed={} cancelled={} (slot released, warm pool untouched)",
        stats.submitted, stats.completed, stats.cancelled
    );
    code
}

/// `overload`: drive the service past saturation and gate graceful
/// degradation — goodput survives, Batch sheds first, expired work is
/// evicted, and every offered request reaches exactly one terminal.
fn cmd_overload(cfg: CliConfig) -> ExitCode {
    let cfg = cfg.load;
    println!(
        "overload study: slots={} queue~{} (c{}L{}, 2x saturation, mixed lanes)",
        cfg.slots, cfg.requests, cfg.tile_n, cfg.nk
    );
    let rep = overload_study(cfg);
    std::fs::write("RUN_metrics.jsonl", &rep.metrics_jsonl).expect("write RUN_metrics.jsonl");
    if cfg.streaming {
        std::fs::write("RUN_events.jsonl", &rep.events_jsonl).expect("write RUN_events.jsonl");
    }
    println!(
        "offered={} admitted={} completed={} failed={} cancelled={} evicted={} shed={} \
         rejected_queue_full={} rejected_quota={}",
        rep.offered,
        rep.admitted,
        rep.completed,
        rep.failed,
        rep.cancelled,
        rep.evicted,
        rep.shed,
        rep.rejected_queue_full,
        rep.rejected_quota
    );
    println!(
        "goodput={:.2} req/s shed_rate={:.2} p99_high={:.3}s p99_normal={:.3}s \
         eviction_p99={:.3}s past_deadline_p99={:.3}s over {:.3}s",
        rep.goodput_rps,
        rep.shed_rate,
        rep.p99_latency_high_seconds,
        rep.p99_latency_normal_seconds,
        rep.eviction_p99_seconds,
        rep.eviction_past_deadline_p99_seconds,
        rep.total_seconds
    );
    if cfg.streaming {
        println!(
            "streamed: events={} dropped={}",
            rep.events_published, rep.events_dropped
        );
    }
    if rep.is_clean() {
        println!("overload study ok: degraded gracefully, nothing lost");
        ExitCode::SUCCESS
    } else {
        eprintln!("overload study FAILED: {rep:?}");
        ExitCode::FAILURE
    }
}

/// `watch`: the live front door — submit the batch and tail every event
/// the engine publishes, one JSON object per line, until the batch
/// drains. Pipe it to `grep step_completed` or a dashboard.
fn cmd_watch(cfg: CliConfig) -> ExitCode {
    let cfg = cfg.load;
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1),
        streaming: true,
        stream_buffer: 4096,
        tick_every: Some(Duration::from_millis(250)),
        ..EngineConfig::from_env()
    });
    let stream = engine.subscribe_all().expect("streaming engine has a bus");
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("watch-{i}"))))
        .collect();
    let done = AtomicBool::new(false);
    let mut failed = 0u64;
    std::thread::scope(|s| {
        let waiter = s.spawn(|| {
            let mut failed = 0u64;
            for id in ids {
                failed += !engine.wait(id).result.is_completed() as u64;
            }
            done.store(true, Ordering::Relaxed);
            failed
        });
        // Tail until the waiter is finished *and* the buffer is drained;
        // every event is published before its outcome becomes waitable,
        // so nothing can arrive after that.
        while !(done.load(Ordering::Relaxed) && stream.is_empty()) {
            if let Some(ev) = stream.next_timeout(Duration::from_millis(100)) {
                println!("{}", ev.to_json());
            } else if stream.closed() {
                break;
            }
        }
        failed = waiter.join().expect("waiter thread");
    });
    let status = engine.status();
    eprintln!(
        "watch: {} events published, {} dropped, {} requests failed",
        status.events_published, status.events_dropped, failed
    );
    engine.shutdown();
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `status`: engine introspection — submit the batch and print one
/// point-in-time snapshot per poll (queue, per-request progress, slot
/// and warm-pool occupancy, bus health) until the batch drains.
fn cmd_status(cfg: CliConfig) -> ExitCode {
    let cfg = cfg.load;
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1),
        streaming: cfg.streaming,
        ..EngineConfig::from_env()
    });
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("status-{i}"))))
        .collect();
    loop {
        let st = engine.status();
        let running: Vec<String> = st
            .running
            .iter()
            .map(|r| {
                format!(
                    "{} {}/{}{}",
                    r.id,
                    r.steps_done,
                    r.steps_budget,
                    match r.last_healthy {
                        Some(true) => " healthy",
                        Some(false) => " UNHEALTHY",
                        None => "",
                    }
                )
            })
            .collect();
        println!(
            "status: queued={} running=[{}] slots={}/{} warm_pool={} events={}/{} done={}",
            st.queue_depth(),
            running.join(", "),
            st.slots_busy,
            st.slots,
            st.warm_pool,
            st.events_published,
            st.events_dropped,
            st.stats.completed + st.stats.failed
        );
        if st.stats.completed + st.stats.failed >= cfg.requests as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let mut failed = 0u64;
    for id in ids {
        failed += !engine.wait(id).result.is_completed() as u64;
    }
    let stats = engine.shutdown();
    println!(
        "submitted={} completed={} failed={}",
        stats.submitted, stats.completed, stats.failed
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let cfg = match parse_config(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("forecast_serve: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "init" => cmd_init(cfg),
        "submit" => cmd_submit(cfg),
        "run" => cmd_run(cfg),
        "watch" => cmd_watch(cfg),
        "status" => cmd_status(cfg),
        "cancel" => cmd_cancel(cfg),
        "overload" => cmd_overload(cfg),
        _ => usage(),
    }
}
