//! `forecast_serve`: the forecast-as-a-service front door, RAMP-style.
//!
//! ```text
//! forecast_serve init   [key=value ...]   # cold-start probe: one request,
//!                                         # report the compile bill
//! forecast_serve submit [key=value ...]   # submit a batch, print one line
//!                                         # per outcome
//! forecast_serve run    [key=value ...]   # soak: warmup + measured burst,
//!                                         # emit RUN_metrics.jsonl /
//!                                         # RUN_health.jsonl /
//!                                         # RUN_events.jsonl, gate the
//!                                         # service contract
//! forecast_serve watch  [key=value ...]   # submit a batch and tail its
//!                                         # live event stream as JSONL,
//!                                         # one object per line
//! forecast_serve status [key=value ...]   # submit a batch and print a
//!                                         # point-in-time engine snapshot
//!                                         # per poll until it drains
//! ```
//!
//! Keys (all optional): `requests=N slots=N steps=N tile_n=N nk=N
//! streaming=0|1`. Defaults are the CI soak shape (8 requests, 2 slots,
//! 2 steps, c8L6, streaming on).
//!
//! `run` exits nonzero unless the service contract held: every request
//! completed, none failed, zero kernel compilations after the warmup
//! request, and nonzero measured throughput/latency. The serve-soak CI
//! job parses its `RUN_metrics.jsonl` for `requests_completed` and the
//! latency gauges, and validates `RUN_events.jsonl` for lifecycle
//! closure (every request Queued -> Started -> Completed|Failed, step
//! indices monotone, `events_dropped` reported).

use bench::serve_load::{serve_load, ServeLoadConfig};
use engine::{EngineConfig, ForecastEngine};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

fn usage() -> ExitCode {
    eprintln!(
        "usage: forecast_serve <init|submit|run|watch|status> \
         [requests=N] [slots=N] [steps=N] [tile_n=N] [nk=N] [streaming=0|1]"
    );
    ExitCode::FAILURE
}

fn parse_config(args: &[String]) -> Result<ServeLoadConfig, String> {
    let mut cfg = ServeLoadConfig::default();
    for arg in args {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("'{arg}' is not key=value"))?;
        let n: usize = value
            .parse()
            .map_err(|e| format!("bad {key} '{value}': {e}"))?;
        match key {
            "requests" => cfg.requests = n,
            "slots" => cfg.slots = n,
            "steps" => cfg.steps = n as u64,
            "tile_n" => cfg.tile_n = n,
            "nk" => cfg.nk = n,
            "streaming" => cfg.streaming = n != 0,
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    Ok(cfg)
}

/// `init`: prove the environment serves at all — start an engine, run
/// one request, report the compile bill it paid.
fn cmd_init(cfg: ServeLoadConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        ..EngineConfig::from_env()
    });
    let id = engine.submit(cfg.request().with_label("init"));
    let out = engine.wait(id);
    match out.result {
        Ok(rep) => {
            println!(
                "init ok: request {} ran {} steps in {:.3}s, compiled {} kernels ({} hits)",
                out.id, rep.steps, out.run_seconds, rep.cache_misses, rep.cache_hits
            );
            engine.shutdown();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("init FAILED: request {}: {e}", out.id);
            ExitCode::FAILURE
        }
    }
}

/// `submit`: one-shot client — submit the batch, print an outcome line
/// per request as each finishes.
fn cmd_submit(cfg: ServeLoadConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1),
        ..EngineConfig::from_env()
    });
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("batch-{i}"))))
        .collect();
    let mut failed = 0u64;
    for id in ids {
        let out = engine.wait(id);
        match &out.result {
            Ok(rep) => println!(
                "{} {} ok steps={} latency={:.3}s warm={} misses={}",
                out.id, out.label, rep.steps, out.latency_seconds(), rep.warm_start, rep.cache_misses
            ),
            Err(e) => {
                failed += 1;
                println!("{} {} FAILED: {e}", out.id, out.label);
            }
        }
    }
    let stats = engine.shutdown();
    println!(
        "submitted={} completed={} failed={} cache_hits={} cache_misses={}",
        stats.submitted, stats.completed, stats.failed, stats.cache_hits, stats.cache_misses
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `run`: the measured soak. Emits the JSONL channels and gates the
/// service contract.
fn cmd_run(cfg: ServeLoadConfig) -> ExitCode {
    println!(
        "serve soak: {} requests x {} steps over {} slots (c{}L{})",
        cfg.requests, cfg.steps, cfg.slots, cfg.tile_n, cfg.nk
    );
    let rep = serve_load(cfg);
    std::fs::write("RUN_metrics.jsonl", &rep.metrics_jsonl).expect("write RUN_metrics.jsonl");
    std::fs::write("RUN_health.jsonl", &rep.health_jsonl).expect("write RUN_health.jsonl");
    if cfg.streaming {
        std::fs::write("RUN_events.jsonl", &rep.events_jsonl).expect("write RUN_events.jsonl");
    }
    println!(
        "completed={}/{} failed={} warmup_misses={} steady_state_misses={} warm_acquires={}",
        rep.completed, rep.requests, rep.failed, rep.warmup_misses, rep.steady_state_misses,
        rep.warm_acquires
    );
    println!(
        "throughput={:.2} req/s p50={:.3}s p99={:.3}s max={:.3}s over {:.3}s",
        rep.requests_per_second,
        rep.p50_latency_seconds,
        rep.p99_latency_seconds,
        rep.max_latency_seconds,
        rep.total_seconds
    );
    if cfg.streaming {
        println!(
            "streamed: ttfs_p50={:.3}s ttfs_p99={:.3}s step_gap_p99={:.3}s jitter={:.3}s \
             events={} dropped={}",
            rep.ttfs_p50_seconds,
            rep.ttfs_p99_seconds,
            rep.step_gap_p99_seconds,
            rep.cadence_jitter_seconds,
            rep.events_published,
            rep.events_dropped
        );
    }

    let mut bad = Vec::new();
    if rep.completed != rep.requests as u64 {
        bad.push(format!(
            "lost requests: completed {} of {}",
            rep.completed, rep.requests
        ));
    }
    if rep.failed > 0 {
        bad.push(format!("{} requests failed", rep.failed));
    }
    if rep.warmup_misses == 0 {
        bad.push("warmup compiled nothing (case not cold?)".to_string());
    }
    if rep.steady_state_misses > 0 {
        bad.push(format!(
            "steady state recompiled {} kernels after the warmup request",
            rep.steady_state_misses
        ));
    }
    if !(rep.requests_per_second > 0.0 && rep.p99_latency_seconds > 0.0) {
        bad.push("degenerate throughput/latency measurement".to_string());
    }
    if cfg.streaming {
        if rep.events_dropped > 0 {
            bad.push(format!(
                "sized stream buffer dropped {} events",
                rep.events_dropped
            ));
        }
        // partial_cmp, not `>`: a NaN p99 must fail the gate too.
        if rep.ttfs_p99_seconds.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            bad.push("no time-to-first-step observed on the bus".to_string());
        }
    }
    if bad.is_empty() {
        println!("serve soak ok");
        ExitCode::SUCCESS
    } else {
        for b in &bad {
            eprintln!("serve soak FAILED: {b}");
        }
        ExitCode::FAILURE
    }
}

/// `watch`: the live front door — submit the batch and tail every event
/// the engine publishes, one JSON object per line, until the batch
/// drains. Pipe it to `grep step_completed` or a dashboard.
fn cmd_watch(cfg: ServeLoadConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1),
        streaming: true,
        stream_buffer: 4096,
        tick_every: Some(Duration::from_millis(250)),
        ..EngineConfig::from_env()
    });
    let stream = engine.subscribe_all().expect("streaming engine has a bus");
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("watch-{i}"))))
        .collect();
    let done = AtomicBool::new(false);
    let mut failed = 0u64;
    std::thread::scope(|s| {
        let waiter = s.spawn(|| {
            let mut failed = 0u64;
            for id in ids {
                failed += engine.wait(id).result.is_err() as u64;
            }
            done.store(true, Ordering::Relaxed);
            failed
        });
        // Tail until the waiter is finished *and* the buffer is drained;
        // every event is published before its outcome becomes waitable,
        // so nothing can arrive after that.
        while !(done.load(Ordering::Relaxed) && stream.is_empty()) {
            if let Some(ev) = stream.next_timeout(Duration::from_millis(100)) {
                println!("{}", ev.to_json());
            } else if stream.closed() {
                break;
            }
        }
        failed = waiter.join().expect("waiter thread");
    });
    let status = engine.status();
    eprintln!(
        "watch: {} events published, {} dropped, {} requests failed",
        status.events_published, status.events_dropped, failed
    );
    engine.shutdown();
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `status`: engine introspection — submit the batch and print one
/// point-in-time snapshot per poll (queue, per-request progress, slot
/// and warm-pool occupancy, bus health) until the batch drains.
fn cmd_status(cfg: ServeLoadConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1),
        streaming: cfg.streaming,
        ..EngineConfig::from_env()
    });
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("status-{i}"))))
        .collect();
    loop {
        let st = engine.status();
        let running: Vec<String> = st
            .running
            .iter()
            .map(|r| {
                format!(
                    "{} {}/{}{}",
                    r.id,
                    r.steps_done,
                    r.steps_budget,
                    match r.last_healthy {
                        Some(true) => " healthy",
                        Some(false) => " UNHEALTHY",
                        None => "",
                    }
                )
            })
            .collect();
        println!(
            "status: queued={} running=[{}] slots={}/{} warm_pool={} events={}/{} done={}",
            st.queue_depth(),
            running.join(", "),
            st.slots_busy,
            st.slots,
            st.warm_pool,
            st.events_published,
            st.events_dropped,
            st.stats.completed + st.stats.failed
        );
        if st.stats.completed + st.stats.failed >= cfg.requests as u64 {
            break;
        }
        std::thread::sleep(Duration::from_millis(200));
    }
    let mut failed = 0u64;
    for id in ids {
        failed += engine.wait(id).result.is_err() as u64;
    }
    let stats = engine.shutdown();
    println!(
        "submitted={} completed={} failed={}",
        stats.submitted, stats.completed, stats.failed
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let cfg = match parse_config(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("forecast_serve: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "init" => cmd_init(cfg),
        "submit" => cmd_submit(cfg),
        "run" => cmd_run(cfg),
        "watch" => cmd_watch(cfg),
        "status" => cmd_status(cfg),
        _ => usage(),
    }
}
