//! `forecast_serve`: the forecast-as-a-service front door, RAMP-style.
//!
//! ```text
//! forecast_serve init   [key=value ...]   # cold-start probe: one request,
//!                                         # report the compile bill
//! forecast_serve submit [key=value ...]   # submit a batch, print one line
//!                                         # per outcome
//! forecast_serve run    [key=value ...]   # soak: warmup + measured burst,
//!                                         # emit RUN_metrics.jsonl /
//!                                         # RUN_health.jsonl, gate the
//!                                         # service contract
//! ```
//!
//! Keys (all optional): `requests=N slots=N steps=N tile_n=N nk=N`.
//! Defaults are the CI soak shape (8 requests, 2 slots, 2 steps, c8L6).
//!
//! `run` exits nonzero unless the service contract held: every request
//! completed, none failed, zero kernel compilations after the warmup
//! request, and nonzero measured throughput/latency. The serve-soak CI
//! job parses its `RUN_metrics.jsonl` for `requests_completed` and the
//! latency gauges.

use bench::serve_load::{serve_load, ServeLoadConfig};
use engine::{EngineConfig, ForecastEngine};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: forecast_serve <init|submit|run> [requests=N] [slots=N] [steps=N] [tile_n=N] [nk=N]");
    ExitCode::FAILURE
}

fn parse_config(args: &[String]) -> Result<ServeLoadConfig, String> {
    let mut cfg = ServeLoadConfig::default();
    for arg in args {
        let (key, value) = arg
            .split_once('=')
            .ok_or_else(|| format!("'{arg}' is not key=value"))?;
        let n: usize = value
            .parse()
            .map_err(|e| format!("bad {key} '{value}': {e}"))?;
        match key {
            "requests" => cfg.requests = n,
            "slots" => cfg.slots = n,
            "steps" => cfg.steps = n as u64,
            "tile_n" => cfg.tile_n = n,
            "nk" => cfg.nk = n,
            other => return Err(format!("unknown key '{other}'")),
        }
    }
    Ok(cfg)
}

/// `init`: prove the environment serves at all — start an engine, run
/// one request, report the compile bill it paid.
fn cmd_init(cfg: ServeLoadConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        ..EngineConfig::from_env()
    });
    let id = engine.submit(cfg.request().with_label("init"));
    let out = engine.wait(id);
    match out.result {
        Ok(rep) => {
            println!(
                "init ok: request {} ran {} steps in {:.3}s, compiled {} kernels ({} hits)",
                out.id, rep.steps, out.run_seconds, rep.cache_misses, rep.cache_hits
            );
            engine.shutdown();
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("init FAILED: request {}: {e}", out.id);
            ExitCode::FAILURE
        }
    }
}

/// `submit`: one-shot client — submit the batch, print an outcome line
/// per request as each finishes.
fn cmd_submit(cfg: ServeLoadConfig) -> ExitCode {
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1),
        ..EngineConfig::from_env()
    });
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("batch-{i}"))))
        .collect();
    let mut failed = 0u64;
    for id in ids {
        let out = engine.wait(id);
        match &out.result {
            Ok(rep) => println!(
                "{} {} ok steps={} latency={:.3}s warm={} misses={}",
                out.id, out.label, rep.steps, out.latency_seconds(), rep.warm_start, rep.cache_misses
            ),
            Err(e) => {
                failed += 1;
                println!("{} {} FAILED: {e}", out.id, out.label);
            }
        }
    }
    let stats = engine.shutdown();
    println!(
        "submitted={} completed={} failed={} cache_hits={} cache_misses={}",
        stats.submitted, stats.completed, stats.failed, stats.cache_hits, stats.cache_misses
    );
    if failed == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `run`: the measured soak. Emits the JSONL channels and gates the
/// service contract.
fn cmd_run(cfg: ServeLoadConfig) -> ExitCode {
    println!(
        "serve soak: {} requests x {} steps over {} slots (c{}L{})",
        cfg.requests, cfg.steps, cfg.slots, cfg.tile_n, cfg.nk
    );
    let rep = serve_load(cfg);
    std::fs::write("RUN_metrics.jsonl", &rep.metrics_jsonl).expect("write RUN_metrics.jsonl");
    std::fs::write("RUN_health.jsonl", &rep.health_jsonl).expect("write RUN_health.jsonl");
    println!(
        "completed={}/{} failed={} warmup_misses={} steady_state_misses={} warm_acquires={}",
        rep.completed, rep.requests, rep.failed, rep.warmup_misses, rep.steady_state_misses,
        rep.warm_acquires
    );
    println!(
        "throughput={:.2} req/s p50={:.3}s p99={:.3}s max={:.3}s over {:.3}s",
        rep.requests_per_second,
        rep.p50_latency_seconds,
        rep.p99_latency_seconds,
        rep.max_latency_seconds,
        rep.total_seconds
    );

    let mut bad = Vec::new();
    if rep.completed != rep.requests as u64 {
        bad.push(format!(
            "lost requests: completed {} of {}",
            rep.completed, rep.requests
        ));
    }
    if rep.failed > 0 {
        bad.push(format!("{} requests failed", rep.failed));
    }
    if rep.warmup_misses == 0 {
        bad.push("warmup compiled nothing (case not cold?)".to_string());
    }
    if rep.steady_state_misses > 0 {
        bad.push(format!(
            "steady state recompiled {} kernels after the warmup request",
            rep.steady_state_misses
        ));
    }
    if !(rep.requests_per_second > 0.0 && rep.p99_latency_seconds > 0.0) {
        bad.push("degenerate throughput/latency measurement".to_string());
    }
    if bad.is_empty() {
        println!("serve soak ok");
        ExitCode::SUCCESS
    } else {
        for b in &bad {
            eprintln!("serve soak FAILED: {b}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    let cfg = match parse_config(&args[1..]) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("forecast_serve: {e}");
            return usage();
        }
    };
    match cmd.as_str() {
        "init" => cmd_init(cfg),
        "submit" => cmd_submit(cfg),
        "run" => cmd_run(cfg),
        _ => usage(),
    }
}
