//! Fig. 11: large-scale weak scaling, 54 to 2,400 nodes at fixed
//! 192x192x80 per rank, Python-GPU analog vs FORTRAN analog, with the
//! alpha-beta Aries communication model.
//!
//! Paper: FORTRAN ~16-18 s/step, Python ~4.6 s/step, speedup up to 3.92x
//! at scale, 0.11 SYPD for the 2.28 km configuration.

use fv3::dyn_core::DycoreConfig;
use fv3core::experiments::{sypd, weak_scaling};

fn main() {
    // 6 nodes is the Table III reference configuration (one tile per
    // rank: every rank computes all 4 edge specializations); Fig. 11
    // proper starts at 54 nodes.
    let nodes = [6usize, 54, 96, 216, 384, 864, 1536, 2400];
    let config = DycoreConfig {
        n_split: 5,
        k_split: 2,
        dt: 10.0,
        dddmp: 0.05,
        nord4_damp: None,
    };
    let pts = weak_scaling(&nodes, 80, config);

    println!("FIG 11: weak scaling of FV3 (192x192x80 per rank, modeled)");
    println!("{:-<74}", "");
    println!(
        "{:<8} {:>10} {:>14} {:>14} {:>9} {:>8}",
        "nodes", "res[km]", "FORTRAN[s]", "Python[s]", "speedup", "SYPD"
    );
    println!("{:-<74}", "");
    for p in &pts {
        println!(
            "{:<8} {:>10.2} {:>14.3} {:>14.3} {:>8.2}x {:>8.3}",
            p.nodes,
            p.resolution_km,
            p.fortran_s,
            p.python_s,
            p.speedup(),
            sypd(p.python_s, config.dt * (config.n_split * config.k_split) as f64)
        );
    }
    println!("{:-<74}", "");
    let first = &pts[1];
    let last = pts.last().unwrap();
    println!(
        "weak-scaling flatness: {:.1}% step-time change over {}x more nodes",
        (last.python_s / first.python_s - 1.0) * 100.0,
        last.nodes / first.nodes
    );
    println!(
        "speedup trend: {:.3}x at 6 nodes -> {:.3}x at {} nodes (paper: 3.55x -> 3.92x;",
        pts[0].speedup(),
        last.speedup(),
        last.nodes
    );
    println!("\"for higher rank counts each node does not compute all specialized");
    println!("computations on the edges and corners\")");
}
