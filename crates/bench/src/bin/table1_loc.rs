//! Table I: Lines-of-Code comparison.
//!
//! Counts the non-blank, non-comment Rust lines of our DSL dycore and
//! compares them against the FORTRAN LoC the paper records for the
//! reference implementation (29,458 for the dynamical core; 858 for
//! `fv_tp_2d`; 267 for `riem_solver_c`). The paper's Python port measured
//! 12,450 / 686 / 253 (0.42x overall).

use fv3core::experiments::{count_loc, rust_files};
use std::path::Path;

fn main() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap();
    let fv3_src = root.join("fv3/src");

    let dycore_loc = count_loc(&rust_files(&fv3_src));
    let fvt_loc = count_loc(&[fv3_src.join("fv_tp_2d.rs"), fv3_src.join("ppm.rs")]);
    let riem_loc = count_loc(&[fv3_src.join("riem_solver_c.rs")]);

    println!("TABLE I: Lines of Code (LoC) Comparison of FV3");
    println!("{:-<72}", "");
    println!(
        "{:<28} {:>12} {:>14} {:>8}",
        "Module Name", "Rust LoC", "FORTRAN LoC", "ratio"
    );
    println!("{:-<72}", "");
    let rows = [
        ("Dynamical Core", dycore_loc, 29_458usize),
        ("Finite Volume Transport", fvt_loc, 858),
        ("Riemann Solver C", riem_loc, 267),
    ];
    for (name, ours, fortran) in rows {
        println!(
            "{:<28} {:>12} {:>14} {:>7.2}x",
            name,
            ours,
            fortran,
            ours as f64 / fortran as f64
        );
    }
    println!("{:-<72}", "");
    println!("paper (Python):  Dynamical Core 12,450 vs 29,458 = 0.42x");
    println!("note: our dycore files include both the DSL stencils AND the");
    println!("FORTRAN-style baselines plus their unit tests; the stencil");
    println!("definitions alone are a small fraction of each file.");
}
