//! Measured dycore profile under the flight recorder: run the c8L6
//! baroclinic case for several timesteps and emit
//!
//! * `BENCH_dycore.json` — schema-v2 summary: per-module timings,
//!   per-kernel achieved bytes/s, roofline %-of-bound against the
//!   host's measured STREAM bandwidth, plus step count and health
//!   violations (the Fig. 7 "model-driven fine tuning" inputs).
//! * `BENCH_dycore_trace.json` — the unified chrome trace (run → step →
//!   module → kernel spans on one timeline; open in Perfetto).
//! * `RUN_health.jsonl` — one model-health sample per timestep.
//! * `RUN_metrics.jsonl` — cumulative metrics snapshot per timestep.
//!
//! With `FV3_CHECKPOINT_DIR` set, also writes an FV3CKPT1 checkpoint
//! after every step and folds the write/verified-restore wall time into
//! the summary as `checkpoint_write` / `checkpoint_restore` module rows
//! so the regression gate tracks resilience overhead.
//!
//! Refuses to clobber a `BENCH_dycore.json` written by a newer schema;
//! when an older compatible summary exists, prints the per-module
//! regression diff against it before overwriting. Exits nonzero if any
//! kernel reports zero iterations or a non-finite timing, or if any
//! health sample carries a violation, so CI can use it as a smoke
//! check.

use bench::profile::{bench_json_complete, profile_case, tuned_ablation};
use bench::serve_load::{overload_study, serve_load, ServeLoadConfig};
use bench::weak_scaling::{study_table, weak_scaling_study};
use dataflow::report::roofline_table;
use fv3::dyn_core::DycoreConfig;
use obs::{compare_runs, RegressionPolicy, BENCH_SCHEMA_VERSION};
use std::process::ExitCode;

const N: usize = 8;
const NK: usize = 6;
const STEPS: usize = 4;
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() -> ExitCode {
    // Satellite guard: never overwrite an artifact from a newer emitter.
    let previous = std::fs::read_to_string("BENCH_dycore.json").ok();
    if let Some(text) = &previous {
        match obs::regression::schema_version(text) {
            Ok(v) if v > BENCH_SCHEMA_VERSION => {
                eprintln!(
                    "error: existing BENCH_dycore.json has schema_version {v} > \
                     {BENCH_SCHEMA_VERSION}; refusing to overwrite (newer emitter?)"
                );
                return ExitCode::FAILURE;
            }
            Ok(_) => {}
            Err(e) => eprintln!("warning: existing BENCH_dycore.json unreadable ({e})"),
        }
    }

    let config = DycoreConfig {
        n_split: 2,
        k_split: 1,
        dt: 5.0,
        dddmp: 0.02,
        nord4_damp: None,
    };
    let run = profile_case(N, NK, STEPS, config);
    let report = &run.report;

    // Roofline denominator: measured host STREAM copy bandwidth.
    let stream = machine::stream::copy(4 << 20, 5);
    let attainable = stream.gib_per_s() * GIB;

    println!(
        "profile_dycore: {} x{STEPS} steps, tuned expansion, serial host executor",
        run.case_name
    );
    println!("host STREAM copy: {:.2} GiB/s\n", stream.gib_per_s());
    print!("{}", roofline_table(report, attainable, 20));

    println!("\n{:<16} {:>8} {:>12} {:>10}", "module", "inv", "time[us]", "GiB/s");
    for m in &run.rollup {
        println!(
            "{:<16} {:>8} {:>12.2} {:>10.2}",
            m.module,
            m.invocations,
            m.wall_seconds * 1e6,
            m.achieved_bandwidth() / GIB
        );
    }

    println!(
        "\nkernel cache: {} hits / {} misses ({} steady-state recompiles)",
        run.cache_hits, run.cache_misses, run.steady_state_misses
    );
    if run.checkpoint_writes > 0 {
        println!(
            "checkpointing: {} writes, {} bytes, write {:.2} ms total, verified restore {:.2} ms",
            run.checkpoint_writes,
            run.checkpoint_bytes,
            run.checkpoint_write_seconds * 1e3,
            run.checkpoint_restore_seconds * 1e3
        );
    }
    println!(
        "lane VM: {} vector points / {} scalar (rind) points",
        run.metrics.counter_value("vm_lanes_vector", &[]),
        run.metrics.counter_value("vm_lanes_scalar", &[])
    );

    // Tuned-vs-baseline ablation (ISSUE 9's Table III analogue). Run at
    // c24 rather than the c8 smoke resolution: the fusions pay in saved
    // memory traffic, which the 8x8x6 subdomain (L1-resident) cannot
    // show. Wall clock at this scale is noisy (turbo, cache state,
    // neighbour load), so the arms are interleaved and each keeps its
    // minimum-kernel-seconds run — min-of-N is robust against the
    // one-sided slowdowns that plague back-to-back profiling.
    let env_tuned = fv3core::parallel::tune_from_env();
    const ABLATION_N: usize = 24;
    const ABLATION_STEPS: usize = 2;
    const ABLATION_REPS: usize = 5;
    // Prepare each arm ONCE: the reps then interleave identical,
    // build-free runs. Re-preparing per rep would both re-roll the
    // vetted fusion set (the veto re-measures at build time) and run
    // every tuned rep straight after the veto's measurement load,
    // biasing the A/B comparison.
    let prepared: Vec<(bool, bench::profile::PreparedCase)> = [false, true]
        .into_iter()
        .map(|t| (t, bench::profile::prepare_case(ABLATION_N, NK, config, t)))
        .collect();
    let mut arms: Vec<(bool, bench::profile::ProfileRun)> = Vec::new();
    for _ in 0..ABLATION_REPS {
        for (t, case) in &prepared {
            arms.push((*t, bench::profile::profile_prepared(case, ABLATION_STEPS, None)));
        }
    }
    let best = |want: bool| {
        arms.iter()
            .filter(|(t, _)| *t == want)
            .map(|(_, r)| r)
            .min_by(|a, b| a.report.kernel_seconds.total_cmp(&b.report.kernel_seconds))
            .expect("at least one run per arm")
    };
    let (baseline, tuned_run) = (best(false), best(true));
    let mut ablation =
        tuned_ablation(baseline, tuned_run).expect("tuned arm carries an autotune report");
    // Each gated scalar is the per-arm minimum across reps (not the
    // best-total run's value): min-of-N per metric is the robust
    // estimator of the achievable time, and the tuned arm's committed
    // fusion set can differ between reps (the measured veto re-runs at
    // build time), so a single run would conflate set choice with noise.
    let arm_min = |want: bool, f: &dyn Fn(&bench::profile::ProfileRun) -> f64| {
        arms.iter()
            .filter(|(t, _)| *t == want)
            .map(|(_, r)| f(r))
            .fold(f64::INFINITY, f64::min)
    };
    let tracer = |r: &bench::profile::ProfileRun| {
        r.rollup
            .iter()
            .find(|m| m.module == "tracer")
            .map_or(0.0, |m| m.wall_seconds)
    };
    ablation.baseline_kernel_seconds = arm_min(false, &|r| r.report.kernel_seconds);
    ablation.tuned_kernel_seconds = arm_min(true, &|r| r.report.kernel_seconds);
    ablation.baseline_tracer_seconds = arm_min(false, &tracer);
    ablation.tuned_tracer_seconds = arm_min(true, &tracer);
    println!(
        "\ntuned ablation (c{ABLATION_N}L{NK} x{ABLATION_STEPS} steps, min of \
         {ABLATION_REPS}; {}):",
        ablation.summary
    );
    println!(
        "{:<16} {:>14} {:>14} {:>8}",
        "module", "base[us]", "tuned[us]", "ratio"
    );
    for b in &baseline.rollup {
        let t = tuned_run
            .rollup
            .iter()
            .find(|m| m.module == b.module)
            .map_or(0.0, |m| m.wall_seconds);
        let ratio = if t > 0.0 { b.wall_seconds / t } else { 0.0 };
        println!(
            "{:<16} {:>14.2} {:>14.2} {:>7.2}x",
            b.module,
            b.wall_seconds * 1e6,
            t * 1e6,
            ratio
        );
    }
    println!(
        "kernel totals: baseline {:.2} us, tuned {:.2} us ({:.2}x measured, {:.2}x modeled)",
        ablation.baseline_kernel_seconds * 1e6,
        ablation.tuned_kernel_seconds * 1e6,
        ablation.measured_speedup(),
        ablation.modeled_speedup
    );

    // Measured weak-scaling overlap study (ISSUE 6): c8/c48/c96 under
    // both rank schedules; the c48 overlap lands in BENCH_dycore.json as
    // top-level non-module fields.
    let scaling = weak_scaling_study(3, 2);
    println!("\nweak-scaling overlap study (nk=3, 2 steps, parallel rank schedule):");
    print!("{}", study_table(&scaling));

    // Forecast-as-a-service load study (ISSUE 7): a warmup request plus
    // a measured burst through the persistent engine; sustained req/s
    // and tail latency land in BENCH_dycore.json as the top-level
    // `serve` object (non-gated, like `weak_scaling`).
    let mut serve = serve_load(ServeLoadConfig::default());
    println!(
        "\nserve load ({} requests x {} steps over {} slots): {:.2} req/s, \
         p50 {:.1} ms, p99 {:.1} ms, {} steady-state recompiles, {} warm acquires",
        serve.requests,
        serve.steps,
        serve.slots,
        serve.requests_per_second,
        serve.p50_latency_seconds * 1e3,
        serve.p99_latency_seconds * 1e3,
        serve.steady_state_misses,
        serve.warm_acquires
    );

    // Overload study (ISSUE 10): the same service driven to 2x
    // saturation with mixed lanes, tight deadlines, and a tenant at its
    // cap; graceful-degradation numbers nest under `serve.overload`.
    serve.overload = Some(overload_study(ServeLoadConfig::default()));
    let ov = serve.overload.as_ref().unwrap();
    println!(
        "overload (2x saturation): {:.2} req/s goodput, shed_rate {:.2}, \
         {} evicted (p99 {:.0} ms past deadline), {} cancelled, {} refused",
        ov.goodput_rps,
        ov.shed_rate,
        ov.evicted,
        ov.eviction_past_deadline_p99_seconds * 1e3,
        ov.cancelled,
        ov.rejected_queue_full + ov.rejected_quota
    );

    // Self-validation: a profile with dead kernels, broken clocks, or an
    // unhealthy model is worse than no profile.
    let mut bad = Vec::new();
    if report.launches == 0 {
        bad.push("no kernel launches recorded".to_string());
    }
    for k in &report.kernels {
        if k.invocations == 0 {
            bad.push(format!("kernel '{}' reports zero iterations", k.name));
        }
        if !k.wall_seconds.is_finite() || k.wall_seconds < 0.0 {
            bad.push(format!("kernel '{}' has non-finite timing", k.name));
        }
    }
    for m in &run.rollup {
        if !m.wall_seconds.is_finite() {
            bad.push(format!("module '{}' has non-finite timing", m.module));
        }
    }
    if !attainable.is_finite() || attainable <= 0.0 {
        bad.push("host STREAM bandwidth is not positive/finite".to_string());
    }
    if run.monitor.samples().len() < STEPS {
        bad.push(format!(
            "only {} health samples for {STEPS} steps",
            run.monitor.samples().len()
        ));
    }
    if run.cache_hits == 0 {
        bad.push("compiled-kernel cache recorded no hits".to_string());
    }
    if run.steady_state_misses > 0 {
        bad.push(format!(
            "{} kernel recompilations after the first step (cache not in steady state)",
            run.steady_state_misses
        ));
    }
    if !run.monitor.all_healthy() {
        for s in run.monitor.samples().iter().filter(|s| !s.is_healthy()) {
            for v in &s.violations {
                bad.push(format!("health violation at step {}: {v}", s.step));
            }
        }
    }
    for p in &scaling {
        if p.halo_bytes == 0 || p.halo_messages == 0 {
            bad.push(format!("{}: parallel schedule posted no halo traffic", p.case));
        }
        if !(0.0..=1.0).contains(&p.overlap_efficiency) {
            bad.push(format!(
                "{}: overlap efficiency {} out of range",
                p.case, p.overlap_efficiency
            ));
        }
    }
    if ablation.kernels_after >= ablation.kernels_before {
        bad.push(format!(
            "autotune applied no fusion on the dycore: {}",
            ablation.summary
        ));
    }
    if env_tuned {
        // The tuned-profile CI job runs with FV3_TUNE=1. The vetted
        // fusion wins on this host (riem/d_sw pointwise chains) are
        // ~1-2% of total kernel seconds — the same order as the
        // min-of-N noise floor at c24 — so a strict "tuned < baseline"
        // would flake on noise. The hard guarantees live elsewhere
        // (bit-identity in tuned_diff, the structural kernels_after <
        // kernels_before check above); here we gate on non-regression:
        // the tuned arm must stay within the noise floor of baseline.
        if ablation.tuned_kernel_seconds > ablation.baseline_kernel_seconds * 1.02 {
            bad.push(format!(
                "tuned kernel_seconds {} regressed past untuned {} by >2%",
                ablation.tuned_kernel_seconds, ablation.baseline_kernel_seconds
            ));
        }
        // The tracer chain is where the static model's fusion advice is
        // wrong on this host (OTF recompute at offset load sites loses
        // measurably on real data), so the vetted pipeline's job is to
        // *refuse* those fusions: tuned tracer time must not regress
        // beyond measurement noise. An un-vetted pipeline fails this
        // check by several percent.
        if ablation.tuned_tracer_seconds > ablation.baseline_tracer_seconds * 1.02 {
            bad.push(format!(
                "tuning regressed tracer module wall time: {} vs {} s",
                ablation.tuned_tracer_seconds, ablation.baseline_tracer_seconds
            ));
        }
    }
    if !serve.is_clean() {
        bad.push(format!(
            "serve load broke the service contract: completed {}/{}, {} failed, \
             {} steady-state recompiles, {:.2} req/s, p99 {:.4}s",
            serve.completed,
            serve.requests,
            serve.failed,
            serve.steady_state_misses,
            serve.requests_per_second,
            serve.p99_latency_seconds
        ));
    }
    if let Some(ov) = &serve.overload {
        if !ov.is_clean() {
            bad.push(format!(
                "overload study did not degrade gracefully: {} of {} admitted \
                 reached a terminal ({} completed / {} failed / {} cancelled / \
                 {} evicted / {} shed), {} refusals",
                ov.completed + ov.failed + ov.cancelled + ov.evicted + ov.shed,
                ov.admitted,
                ov.completed,
                ov.failed,
                ov.cancelled,
                ov.evicted,
                ov.shed,
                ov.rejected_queue_full + ov.rejected_quota
            ));
        }
    }

    let json = bench_json_complete(
        &run,
        attainable,
        stream.gib_per_s(),
        &scaling,
        Some(&serve),
        Some(&ablation),
    );
    let writes = [
        ("BENCH_dycore.json", json.clone()),
        ("BENCH_dycore_trace.json", run.tracer.to_chrome_trace()),
        ("RUN_health.jsonl", run.monitor.to_jsonl()),
        ("RUN_metrics.jsonl", run.metrics_jsonl.clone()),
    ];
    for (path, contents) in &writes {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!(
        "\nwrote BENCH_dycore.json, BENCH_dycore_trace.json, RUN_health.jsonl, RUN_metrics.jsonl"
    );

    // Regression diff against the summary this run replaced.
    if let Some(before) = &previous {
        match compare_runs(before, &json, &RegressionPolicy::default()) {
            Ok(cmp) => {
                println!("\nregression diff vs previous BENCH_dycore.json:");
                print!("{}", cmp.render());
            }
            Err(e) => println!("\nno regression diff (previous summary: {e})"),
        }
    }

    if !bad.is_empty() {
        for b in &bad {
            eprintln!("error: {b}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
