//! Measured dycore profile: run the c8L6 baroclinic case under the
//! kernel profiler and emit `BENCH_dycore.json` — per-module timings,
//! per-kernel achieved bytes/s, and roofline %-of-bound against the
//! host's measured STREAM bandwidth (the Fig. 7 "model-driven fine
//! tuning" inputs, as machine-readable data).
//!
//! Exits nonzero if any kernel reports zero iterations or a non-finite
//! timing, so CI can use it as a smoke check. Also writes the chrome
//! trace (`BENCH_dycore_trace.json`) for `chrome://tracing`.

use comm::CubeGeometry;
use dataflow::exec::{DataStore, Executor};
use dataflow::graph::ExpansionAttrs;
use dataflow::profile::{json_string, Profiler};
use dataflow::report::roofline_table;
use fv3::dyn_core::{build_dycore_program, load_state, DycoreConfig};
use fv3::grid::Grid;
use fv3::init::{init_baroclinic, BaroclinicConfig};
use fv3::profiling::{rollup_modules, RemapHooks};
use fv3::state::DycoreState;
use std::fmt::Write as _;
use std::process::ExitCode;

const N: usize = 8;
const NK: usize = 6;
const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

fn main() -> ExitCode {
    // The c8L6 seed case: one tile face, baroclinic initial condition.
    let geom = CubeGeometry::new(N);
    let grid = Grid::compute(&geom.faces[1], N, 0, 0, N, fv3::state::HALO, NK);
    let mut state0 = DycoreState::zeros(N, NK);
    init_baroclinic(&mut state0, &grid, &BaroclinicConfig::default());
    let config = DycoreConfig {
        n_split: 2,
        k_split: 1,
        dt: 5.0,
        dddmp: 0.02,
        nord4_damp: None,
    };
    let prog = build_dycore_program(N, NK, config);
    let mut g = prog.sdfg.clone();
    g.expand_libraries(&ExpansionAttrs::tuned());

    let mut store = DataStore::for_sdfg(&g);
    load_state(&mut store, &prog.ids, &state0, &grid);
    let mut hooks = RemapHooks { ids: &prog.ids };
    let mut prof = Profiler::new();
    Executor::serial().run_profiled(&g, &mut store, &prog.params, &mut hooks, &mut prof);
    let report = prof.report();

    // Roofline denominator: measured host STREAM copy bandwidth.
    let stream = machine::stream::copy(4 << 20, 5);
    let attainable = stream.gib_per_s() * GIB;

    println!("profile_dycore: c{N}L{NK} baroclinic, tuned expansion, serial host executor");
    println!("host STREAM copy: {:.2} GiB/s\n", stream.gib_per_s());
    print!("{}", roofline_table(&report, attainable, 20));

    let rollup = rollup_modules(&report);
    println!("\n{:<16} {:>8} {:>12} {:>10}", "module", "inv", "time[us]", "GiB/s");
    for m in &rollup {
        println!(
            "{:<16} {:>8} {:>12.2} {:>10.2}",
            m.module,
            m.invocations,
            m.wall_seconds * 1e6,
            m.achieved_bandwidth() / GIB
        );
    }

    // Self-validation: a profile with dead kernels or broken clocks is
    // worse than no profile.
    let mut bad = Vec::new();
    if report.launches == 0 {
        bad.push("no kernel launches recorded".to_string());
    }
    for k in &report.kernels {
        if k.invocations == 0 {
            bad.push(format!("kernel '{}' reports zero iterations", k.name));
        }
        if !k.wall_seconds.is_finite() || k.wall_seconds < 0.0 {
            bad.push(format!("kernel '{}' has non-finite timing", k.name));
        }
    }
    for m in &rollup {
        if !m.wall_seconds.is_finite() {
            bad.push(format!("module '{}' has non-finite timing", m.module));
        }
    }
    if !attainable.is_finite() || attainable <= 0.0 {
        bad.push("host STREAM bandwidth is not positive/finite".to_string());
    }

    let json = summary_json(&report, &rollup, attainable, stream.gib_per_s());
    if let Err(e) = std::fs::write("BENCH_dycore.json", &json) {
        eprintln!("error: cannot write BENCH_dycore.json: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = std::fs::write("BENCH_dycore_trace.json", prof.to_chrome_trace()) {
        eprintln!("error: cannot write BENCH_dycore_trace.json: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote BENCH_dycore.json and BENCH_dycore_trace.json");

    if !bad.is_empty() {
        for b in &bad {
            eprintln!("error: {b}");
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn summary_json(
    report: &dataflow::ProfileReport,
    rollup: &[fv3::profiling::ModuleRollup],
    attainable: f64,
    stream_gib: f64,
) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"case\": \"c{N}L{NK}_baroclinic\",");
    let _ = writeln!(out, "  \"executor\": \"serial_host\",");
    let _ = writeln!(out, "  \"stream_copy_gib_per_s\": {stream_gib},");
    let _ = writeln!(out, "  \"attainable_bandwidth_bytes_per_s\": {attainable},");
    let _ = writeln!(out, "  \"launches\": {},", report.launches);
    let _ = writeln!(out, "  \"kernel_seconds\": {},", report.kernel_seconds);
    let _ = writeln!(out, "  \"copy_seconds\": {},", report.copy_seconds);
    let _ = writeln!(out, "  \"halo_seconds\": {},", report.halo_seconds);
    let _ = writeln!(out, "  \"callback_seconds\": {},", report.callback_seconds);
    let _ = writeln!(
        out,
        "  \"roofline_fraction\": {},",
        report.roofline_fraction(attainable)
    );
    let _ = writeln!(out, "  \"modules\": [");
    for (i, m) in rollup.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"module\": {}, \"kernels\": {}, \"invocations\": {}, \"points\": {}, \
             \"wall_seconds\": {}, \"modeled_bytes\": {}, \"bytes_per_s\": {}}}{}",
            json_string(&m.module),
            m.kernels,
            m.invocations,
            m.points,
            m.wall_seconds,
            m.modeled_bytes,
            m.achieved_bandwidth(),
            if i + 1 < rollup.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"kernels\": [");
    let ranked = report.ranked();
    for (i, k) in ranked.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"invocations\": {}, \"points\": {}, \"wall_seconds\": {}, \
             \"modeled_bytes\": {}, \"modeled_flops\": {}, \"bytes_per_s\": {}, \
             \"roofline_fraction\": {}}}{}",
            json_string(&k.name),
            k.invocations,
            k.points,
            k.wall_seconds,
            k.modeled_bytes,
            k.modeled_flops,
            k.achieved_bandwidth(),
            k.roofline_fraction(attainable),
            if i + 1 < ranked.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}
