//! Fig. 10: model-augmented kernel runtimes — the automated
//! memory-bandwidth bounds analysis applied to the dynamical core after
//! the first optimization cycle, ranking the worst-performing, most
//! important kernels (the workflow that surfaced Smagorinsky diffusion's
//! power-operator problem).

use fv3::dyn_core::{build_dycore_program, DycoreConfig};
use fv3core::bounds::{bounds_report, render, underperformers};
use fv3core::experiments::p100;
use fv3core::pipeline::{run_pipeline, PipelineStage};

fn main() {
    let (n, nk) = (192, 80);
    let program = build_dycore_program(n, nk, DycoreConfig::default());

    // First cycle up to local caching — i.e. *before* the power fix.
    let staged = run_pipeline(&program.sdfg, &p100(), &|_| 0.0, PipelineStage::LocalCaching);
    let (rows, m) = bounds_report(&staged.optimized, &p100(), &|_| 0.0);
    println!("FIG 10: model-augmented kernel runtimes (first cycle, {n}x{n}x{nk})");
    println!("{}", render(&rows, 12));
    println!(
        "total modeled kernel time {:.3} ms over {} launches",
        m.total_time * 1e3,
        m.launches
    );
    let under = underperformers(&rows, 0.6);
    println!("\nkernels below 60% of bandwidth-bound peak (fine-tuning worklist):");
    for r in under.iter().take(8) {
        println!("  {:<50} {:>5.1}%", r.kernel, r.peak_fraction * 100.0);
    }

    // After the power fix, the Smagorinsky kernel recovers (the paper
    // reports 99.68% utilization afterwards).
    let fixed = run_pipeline(&program.sdfg, &p100(), &|_| 0.0, PipelineStage::PowerOperator);
    let (rows2, _) = bounds_report(&fixed.optimized, &p100(), &|_| 0.0);
    let smag_before = rows
        .iter()
        .filter(|r| r.kernel.contains("d_sw"))
        .map(|r| r.peak_fraction)
        .fold(1.0f64, f64::min);
    let smag_after = rows2
        .iter()
        .filter(|r| r.kernel.contains("d_sw"))
        .map(|r| r.peak_fraction)
        .fold(1.0f64, f64::min);
    println!(
        "\nSmagorinsky case study: worst d_sw kernel {:.1}% -> {:.1}% of peak",
        smag_before * 100.0,
        smag_after * 100.0
    );
    println!("(paper: 511.16us -> 129.02us, 99.68% utilization afterwards)");
}
