//! Section VI-B case study: transfer tuning seeded from the
//! finite-volume-transport module.
//!
//! Paper numbers for reference: 127 cutouts (FVT states), 1,272
//! configurations searched exhaustively, M=2 OTF + 1 SGF patterns kept,
//! 20 OTF + 583 SGF transformations transferred, 3.47% whole-dycore
//! speedup.

use dataflow::graph::ExpansionAttrs;
use dataflow::model::model_sdfg;
use fv3::dyn_core::{build_dycore_program, DycoreConfig};
use fv3core::experiments::p100;
use tuning::{extract_cutouts, transfer_tune};

fn main() {
    let (n, nk) = (192, 80);
    let config = DycoreConfig {
        n_split: 5,
        k_split: 2,
        dt: 10.0,
        dddmp: 0.05,
        nord4_damp: None,
    };
    let mut g = build_dycore_program(n, nk, config).sdfg;
    g.expand_libraries(&ExpansionAttrs::tuned());
    let model = p100();

    // Cutouts = the tracer (FVT) states, as in the paper's case study.
    let sources: Vec<usize> = g
        .states
        .iter()
        .enumerate()
        .filter(|(_, s)| s.name.contains("tracer"))
        .map(|(i, _)| i)
        .collect();
    let cutout_count = extract_cutouts(&g, &sources).len();
    let before = model_sdfg(&g, &model, &|_| 0.0).total_time;
    let kernels_before = g.kernel_count();

    let t0 = std::time::Instant::now();
    let (search, transfer) = transfer_tune(&mut g, &sources, &model, 2);
    let elapsed = t0.elapsed();

    let after = model_sdfg(&g, &model, &|_| 0.0).total_time;

    println!("SECTION VI-B: transfer tuning case study (FVT -> full dycore)");
    println!("{:-<66}", "");
    println!("cutouts tuned (FVT states):        {cutout_count}");
    println!("configurations searched:           {}", search.configurations);
    println!("patterns extracted (M=2 OTF +1 SGF per cutout): {}", search.patterns.len());
    for p in search.patterns.iter().take(6) {
        println!(
            "  {:?}  {} -> {}   gain {:.2} us",
            p.kind,
            p.labels[0],
            p.labels[1],
            p.gain * 1e6
        );
    }
    println!("matches tested on full graph:      {}", transfer.tested);
    println!("transformations transferred:       {}", transfer.applied.len());
    let otf = transfer
        .applied
        .iter()
        .filter(|m| m.kind == tuning::pattern::PatternKind::Otf)
        .count();
    println!("  OTF: {otf}   SGF: {}", transfer.applied.len() - otf);
    println!("kernels: {} -> {}", kernels_before, g.kernel_count());
    println!(
        "modeled dycore step: {:.3} ms -> {:.3} ms ({:+.2}% — paper: -3.47%)",
        before * 1e3,
        after * 1e3,
        (after / before - 1.0) * 100.0
    );
    println!("tuning wall time: {:.2?} (paper: 2:42 h + 8:24 h on Piz Daint)", elapsed);
}
