//! Table III: dynamical-core step time through the optimization pipeline
//! (the 6-rank / 192x192x80-per-rank configuration of Section IX-A).
//!
//! Paper trajectory: FORTRAN 16.36 s -> default 10.87 -> heuristics 5.56
//! -> caching 5.45 -> power 5.35 -> region split 4.82 -> reschedule 4.816
//! -> pruning 4.77 -> transfer tuning 4.61 (3.55x).

use dataflow::graph::ExpansionAttrs;
use dataflow::model::model_sdfg;
use fv3::dyn_core::{build_dycore_program, DycoreConfig};
use fv3core::experiments::{haswell, p100};
use fv3core::pipeline::{run_pipeline, PipelineStage};
use machine::{NetworkModel, NetworkSpec};

fn main() {
    let (n, nk) = (192, 80);
    // The paper's remapping/acoustic sub-stepping at production settings.
    let config = DycoreConfig {
        n_split: 5,
        k_split: 2,
        dt: 10.0,
        dddmp: 0.05,
        nord4_damp: None,
    };
    let program = build_dycore_program(n, nk, config);

    // Halo cost per exchange node from the alpha-beta Aries model.
    let net = NetworkModel::new(NetworkSpec::aries(), 0.5);
    let halo_cells = (4 * n * fv3::state::HALO + 4 * fv3::state::HALO * fv3::state::HALO) as u64;
    let halo_cost = move |fields: &[dataflow::DataId]| {
        net.exposed_time(8 * fields.len() as u64, halo_cells * nk as u64 * 8 * fields.len() as u64)
    };

    // FORTRAN row: the CPU-scheduled expansion on the Haswell model.
    let mut cpu = program.sdfg.clone();
    cpu.expand_libraries(&ExpansionAttrs::tuned_cpu());
    let fortran = model_sdfg(&cpu, &haswell(), &halo_cost).step_time();

    let report = run_pipeline(&program.sdfg, &p100(), &halo_cost, PipelineStage::TransferTuning);

    println!("TABLE III: Dynamical Core Optimization (6 ranks, {n}x{n}x{nk}/rank, modeled)");
    println!("{:-<74}", "");
    println!(
        "{:<10} {:<36} {:>12} {:>9}",
        "Cycle", "Version", "StepTime[s]", "Speedup"
    );
    println!("{:-<74}", "");
    println!("{:<10} {:<36} {:>12.4} {:>8.2}x", "", "FORTRAN", fortran, 1.0);
    for (i, s) in report.stages.iter().enumerate() {
        let cycle = match i {
            0 => "",
            1..=4 => "Cycle 1",
            _ => "Cycle 2",
        };
        println!(
            "{:<10} {:<36} {:>12.4} {:>8.2}x",
            cycle,
            s.stage.label(),
            s.step_time,
            fortran / s.step_time
        );
    }
    println!("{:-<74}", "");
    println!(
        "final speedup {:.2}x over FORTRAN (paper: 3.55x on 6 nodes); kernel",
        fortran / report.final_time()
    );
    println!(
        "launches per step: {} -> {}",
        report.stages.first().unwrap().launches,
        report.stages.last().unwrap().launches
    );
}
