//! Table II: performance analysis of the representative modules —
//! `riem_solver_c` (vertical solver) and `fv_tp_2d` (horizontal
//! transport) — across domain sizes, FORTRAN (Haswell model) vs
//! GT4Py+DaCe analog (P100 model).
//!
//! Paper values for comparison (Table II):
//!   Riemann:  12.27/1.85 (6.63x), 27.94/3.86, 52.40/6.96, 121.80/15.31 (7.96x)
//!   FVT:      3.41/1.81 (1.88x), 12.31/3.41, 35.79/5.67, 106.66/13.10 (8.14x)

use fv3core::experiments::{table2_row, Module};

fn main() {
    let sizes = [128usize, 192, 256, 384];
    let nk = 80;

    for (module, name) in [
        (Module::RiemannSolverC, "Riemann Solver C"),
        (Module::FiniteVolumeTransport, "Finite Volume Transport"),
    ] {
        println!("TABLE II ({name}) — modeled on Haswell (FORTRAN) vs P100 (DSL)");
        println!("{:-<78}", "");
        println!(
            "{:<22} {:>12} {:>9} {:>12} {:>9} {:>9}",
            "Domain Size", "FORTRAN[ms]", "scaling", "DSL[ms]", "scaling", "speedup"
        );
        println!("{:-<78}", "");
        let rows: Vec<_> = sizes.iter().map(|&n| table2_row(module, n, nk)).collect();
        let base = rows[0];
        for r in &rows {
            println!(
                "{:<22} {:>12.2} {:>8.2}x {:>12.2} {:>8.2}x {:>8.2}x",
                format!("{0}x{0}x{nk} ({1:.2}x)", r.n, (r.n * r.n) as f64 / (base.n * base.n) as f64),
                r.fortran_ms,
                r.fortran_ms / base.fortran_ms,
                r.dsl_ms,
                r.dsl_ms / base.dsl_ms,
                r.speedup()
            );
        }
        println!();
    }
    println!("shape checks (see EXPERIMENTS.md): vertical solver speedup is");
    println!("large and stable; FVT speedup grows across the CPU cache cliff.");
}
