//! Crash-recovery smoke check for CI: run the c8L6 case under the
//! resilience supervisor with faults injected, and fail unless every
//! scenario completes *via rollback* — i.e. the fault actually fired and
//! the run still finished.
//!
//! Scenarios (each its own dycore, supervisor, and fault plan):
//!
//! * `nan-blowup` — a NaN is poisoned into `pt` mid-step; health
//!   sampling flags the blowup and the supervisor rolls back.
//! * `worker-panic` — a pool worker panics mid-kernel; the panic
//!   propagates, the team is rebuilt, and the step is retried.
//!
//! `FV3_FAULT_PLAN` replaces the built-in scenarios with a single
//! custom one (the supervisor policy still comes from the environment:
//! `FV3_CHECKPOINT_DIR`, `FV3_MAX_RETRIES`, ...).
//!
//! Emits `RUN_health.jsonl` (health samples interleaved with
//! `{"type":"recovery",...}` and `{"type":"fault_injection",...}`
//! records carrying the fault site, restore step, and retry count) and
//! `RUN_metrics.jsonl` (one cumulative metrics snapshot per scenario).

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3core::{DistributedDycore, DriverConfig};
use machine::Pool;
use resilience::{FaultPlan, Supervisor, SupervisorPolicy};
use std::fmt::Write as _;
use std::process::ExitCode;

const N: usize = 8;
const NK: usize = 6;
const STEPS: u64 = 3;

struct Scenario {
    name: &'static str,
    plan: String,
    workers: usize,
}

fn dycore() -> DistributedDycore {
    let cfg = DriverConfig::six_rank(
        N,
        NK,
        DycoreConfig {
            n_split: 1,
            k_split: 1,
            dt: 4.0,
            dddmp: 0.02,
            nord4_damp: None,
        },
    );
    DistributedDycore::new(cfg, &ExpansionAttrs::tuned())
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

fn main() -> ExitCode {
    let scenarios = match std::env::var("FV3_FAULT_PLAN") {
        Ok(plan) if !plan.trim().is_empty() => vec![Scenario {
            name: "custom",
            plan,
            workers: 3,
        }],
        _ => vec![
            Scenario {
                name: "nan-blowup",
                plan: "seed=11;nan@step=1,field=pt".to_string(),
                workers: 0,
            },
            Scenario {
                name: "worker-panic",
                plan: "seed=12;panic".to_string(),
                workers: 3,
            },
        ],
    };

    let mut health = String::new();
    let mut metrics = String::new();
    let mut failures = Vec::new();

    for sc in &scenarios {
        let plan = match FaultPlan::parse(&sc.plan) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("error: fault plan for {}: {e}", sc.name);
                return ExitCode::FAILURE;
            }
        };
        let expect_faults = !plan.specs.is_empty();
        println!("scenario {}: plan \"{}\"", sc.name, sc.plan);
        let guard = plan.arm();

        let mut d = dycore();
        let pool = (sc.workers > 0).then(|| Pool::new(sc.workers));
        if let Some(p) = &pool {
            d.set_pool(Some(p.clone()));
        }
        let mut sup = Supervisor::new(SupervisorPolicy::from_env());
        let outcome = sup.run(&mut d, STEPS);
        drop(guard);

        let injections = machine::faults::injection_log();
        for ev in &injections {
            writeln!(
                health,
                "{{\"type\": \"fault_injection\", \"scenario\": \"{}\", \"site\": \"{}\", \
                 \"action\": \"{}\", \"step\": {}, \"module\": \"{}\", \"call\": {}}}",
                sc.name,
                json_escape(&ev.site),
                json_escape(&format!("{:?}", ev.action)),
                ev.step.map_or("null".to_string(), |s| s.to_string()),
                json_escape(ev.module.as_deref().unwrap_or("")),
                ev.call
            )
            .unwrap();
        }

        match outcome {
            Ok(report) => {
                println!(
                    "  completed {} steps: {} retries, {} restores, {} faults injected, \
                     {} halo stalls",
                    report.steps,
                    report.retries,
                    report.restores,
                    report.faults_injected,
                    report.halo_stalls
                );
                for ev in &report.events {
                    println!(
                        "  recovery: step {} {} retry {} -> rolled back to step {}{}",
                        ev.step,
                        ev.kind.label(),
                        ev.retry,
                        ev.rolled_back_to,
                        if ev.backed_off { " (backed off)" } else { "" }
                    );
                    writeln!(
                        health,
                        "{{\"type\": \"recovery\", \"scenario\": \"{}\", \"step\": {}, \
                         \"kind\": \"{}\", \"retry\": {}, \"rolled_back_to\": {}, \
                         \"backed_off\": {}, \"detail\": \"{}\"}}",
                        sc.name,
                        ev.step,
                        ev.kind.label(),
                        ev.retry,
                        ev.rolled_back_to,
                        ev.backed_off,
                        json_escape(&ev.detail)
                    )
                    .unwrap();
                }
                health.push_str(&report.monitor.to_jsonl());
                metrics.push_str(&obs::emit_jsonl(sup.metrics(), report.steps));

                if report.steps != STEPS {
                    failures.push(format!(
                        "{}: completed {} of {STEPS} steps",
                        sc.name, report.steps
                    ));
                }
                if expect_faults && report.faults_injected == 0 {
                    failures.push(format!("{}: no fault fired (site unreachable?)", sc.name));
                }
                // A killed worker is absorbed by the cursor protocol, so
                // only panics/poisons force a rollback; every built-in
                // scenario expects at least one.
                if sc.name != "custom" && report.retries == 0 {
                    failures.push(format!(
                        "{}: run completed without the rollback it was meant to exercise",
                        sc.name
                    ));
                }
                if let Some(p) = &pool {
                    if p.alive_workers() != sc.workers - 1 && p.alive_workers() != sc.workers {
                        failures.push(format!(
                            "{}: pool has {} live workers of {}",
                            sc.name,
                            p.alive_workers(),
                            sc.workers
                        ));
                    }
                }
            }
            Err(e) => failures.push(format!("{}: {e}", sc.name)),
        }
    }

    for (path, contents) in [("RUN_health.jsonl", &health), ("RUN_metrics.jsonl", &metrics)] {
        if let Err(e) = std::fs::write(path, contents) {
            eprintln!("error: cannot write {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    println!("wrote RUN_health.jsonl, RUN_metrics.jsonl");

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("error: {f}");
        }
        return ExitCode::FAILURE;
    }
    println!("all {} scenario(s) recovered", scenarios.len());
    ExitCode::SUCCESS
}
