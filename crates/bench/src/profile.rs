//! Instrumented dycore profiling: one call runs the baroclinic case for
//! N timesteps under the flight recorder and returns everything the
//! bench binaries emit — a unified chrome trace (run → step → module →
//! kernel spans on one timeline), a metrics JSONL stream, a health
//! JSONL stream, and the `BENCH_dycore.json` summary (schema v2).
//!
//! The trace unification works by epoch alignment: the tracer's clock
//! starts first, the kernel [`Profiler`]'s epoch offset is captured the
//! instant it is created, and after each step the profiler's raw kernel
//! events (plus their [`module_spans`] grouping) are absorbed into the
//! tracer shifted by that offset, so they land inside the enclosing
//! `timestep{N}` span.

use comm::CubeGeometry;
use dataflow::exec::{DataStore, Executor};
use dataflow::graph::ExpansionAttrs;
use dataflow::DataId;
use dataflow::profile::{json_string, ProfileReport, Profiler};
use fv3::dyn_core::{build_dycore_program, extract_state, load_state, DycoreConfig};
use fv3::grid::Grid;
use fv3::init::{init_baroclinic, BaroclinicConfig};
use fv3::profiling::{module_spans, rollup_modules, ModuleRollup, RemapHooks};
use fv3::state::DycoreState;
use fv3core::checkpoint::{step_path, Checkpoint};
use fv3core::DriverConfig;
use obs::{HealthMonitor, MetricsRegistry, Tracer};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// Everything one instrumented profiling run produced.
pub struct ProfileRun {
    /// Case label, e.g. `"c8L6_baroclinic"`.
    pub case_name: String,
    /// Timesteps executed.
    pub steps: usize,
    /// Cumulative kernel-profiler report over all steps.
    pub report: ProfileReport,
    /// Per-module rollup of `report`.
    pub rollup: Vec<ModuleRollup>,
    /// Unified trace: run/step spans plus absorbed module/kernel events.
    pub tracer: Tracer,
    /// Kernel/store metrics sampled per step.
    pub metrics: MetricsRegistry,
    /// One health sample per timestep.
    pub monitor: HealthMonitor,
    /// Cumulative metrics snapshot emitted after every step.
    pub metrics_jsonl: String,
    /// Compiled-kernel cache hits over all steps.
    pub cache_hits: u64,
    /// Compiled-kernel cache misses (compilations) over all steps.
    pub cache_misses: u64,
    /// Compilations performed after the first step — nonzero means the
    /// cache is not reaching steady state.
    pub steady_state_misses: u64,
    /// `FV3CKPT1` checkpoints written (one per step when a checkpoint
    /// directory is configured, else 0).
    pub checkpoint_writes: u64,
    /// Bytes written across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Wall time spent capturing + atomically writing checkpoints.
    pub checkpoint_write_seconds: f64,
    /// Wall time of one verified restore (load + checksum + rebuild) of
    /// the final checkpoint, 0.0 when checkpointing is off.
    pub checkpoint_restore_seconds: f64,
    /// What the whole-program autotune pipeline did to the profiled
    /// graph (`None` for an untuned run).
    pub tune: Option<tuning::AutotuneReport>,
}

/// Run the baroclinic `c{n}L{nk}` case for `steps` timesteps under the
/// flight recorder (tuned expansion, serial host executor).
///
/// Installs nothing process-global: the tracer, metrics registry, and
/// health monitor are owned by the returned [`ProfileRun`], so this is
/// safe to call from parallel tests.
pub fn profile_case(n: usize, nk: usize, steps: usize, config: DycoreConfig) -> ProfileRun {
    let dir = std::env::var("FV3_CHECKPOINT_DIR").ok();
    profile_case_with_checkpoints(n, nk, steps, config, dir.as_deref().map(Path::new))
}

/// [`profile_case`] with an explicit checkpoint directory instead of the
/// `FV3_CHECKPOINT_DIR` environment variable (`None` disables
/// checkpointing). One `FV3CKPT1` checkpoint of the profiled state is
/// written per step, and the final one is restored and verified, so the
/// summary carries the real write/restore cost the resilience layer adds.
/// Whole-program tuning is read from `FV3_TUNE`; see
/// [`profile_case_full`] to pin it explicitly.
pub fn profile_case_with_checkpoints(
    n: usize,
    nk: usize,
    steps: usize,
    config: DycoreConfig,
    checkpoint_dir: Option<&Path>,
) -> ProfileRun {
    profile_case_full(
        n,
        nk,
        steps,
        config,
        checkpoint_dir,
        fv3core::parallel::tune_from_env(),
    )
}

/// [`profile_case_with_checkpoints`] with the tuning decision pinned
/// explicitly. When `tuned`, the expanded dycore graph is run through
/// the vetted autotune pipeline before the first step — exactly what the
/// serving path's `CompiledSubstep::build` does under `FV3_TUNE=1` — and the
/// report lands in [`ProfileRun::tune`] so [`tuned_ablation`] can render
/// the Table III analogue.
pub fn profile_case_full(
    n: usize,
    nk: usize,
    steps: usize,
    config: DycoreConfig,
    checkpoint_dir: Option<&Path>,
    tuned: bool,
) -> ProfileRun {
    let case = prepare_case(n, nk, config, tuned);
    profile_prepared(&case, steps, checkpoint_dir)
}

/// A profiled case prepared once: program built, graph expanded, and
/// (when `tuned`) run through the vetted whole-program autotune. Reps
/// that reuse a `PreparedCase` pay no build or tuning cost, which keeps
/// interleaved A/B arms symmetric — the tuned arm would otherwise start
/// every rep hot on the heels of the veto's measurement load — and makes
/// every rep execute the *same* committed fusion set.
pub struct PreparedCase {
    pub n: usize,
    pub nk: usize,
    pub config: DycoreConfig,
    prog: fv3::dyn_core::DycoreProgram,
    g: dataflow::Sdfg,
    /// What the autotune pipeline did (`None` for an untuned case).
    pub tune: Option<tuning::AutotuneReport>,
}

/// Build (and optionally tune) a case without running it.
pub fn prepare_case(n: usize, nk: usize, config: DycoreConfig, tuned: bool) -> PreparedCase {
    let geom = CubeGeometry::new(n);
    let grid = Grid::compute(&geom.faces[1], n, 0, 0, n, fv3::state::HALO, nk);
    let mut state = DycoreState::zeros(n, nk);
    init_baroclinic(&mut state, &grid, &BaroclinicConfig::default());
    let prog = build_dycore_program(n, nk, config);
    let mut g = prog.sdfg.clone();
    g.expand_libraries(&ExpansionAttrs::tuned());
    let tune = tuned.then(|| {
        // Seed the measured veto with the initialized state: candidate
        // fusions are priced on the data the run will actually execute
        // (the synthetic fill underprices OTF recompute on real
        // atmospheric magnitudes). The tuner never adds or removes
        // containers, so the seed store matches the tuned graph too.
        let mut seed = DataStore::for_sdfg(&g);
        load_state(&mut seed, &prog.ids, &state, &grid);
        let mut scorer = tuning::MeasuredScorer::with_seed(
            fv3core::parallel::TUNE_VET_REPEATS,
            prog.params.clone(),
            seed,
        );
        tuning::autotune_vetted_scored(
            &mut g,
            &fv3core::parallel::tune_model(),
            fv3core::parallel::TUNE_M_OTF,
            &mut scorer,
            fv3core::parallel::TUNE_VET_MARGIN,
        )
    });
    PreparedCase {
        n,
        nk,
        config,
        prog,
        g,
        tune,
    }
}

/// Run a [`PreparedCase`] for `steps` timesteps under the flight
/// recorder. The state is re-initialized from the baroclinic analytic
/// profile on every call, so repeated runs are independent reps.
pub fn profile_prepared(
    case: &PreparedCase,
    steps: usize,
    checkpoint_dir: Option<&Path>,
) -> ProfileRun {
    let (n, nk, config) = (case.n, case.nk, case.config);
    let case_name = format!("c{n}L{nk}_baroclinic");
    let geom = CubeGeometry::new(n);
    let grid = Grid::compute(&geom.faces[1], n, 0, 0, n, fv3::state::HALO, nk);
    let mut state = DycoreState::zeros(n, nk);
    init_baroclinic(&mut state, &grid, &BaroclinicConfig::default());
    let prog = &case.prog;
    let g = &case.g;
    let tune = case.tune.clone();
    let mut store = DataStore::for_sdfg(g);
    load_state(&mut store, &prog.ids, &state, &grid);
    let mut hooks = RemapHooks { ids: &prog.ids };

    let tracer = Tracer::new();
    let metrics = MetricsRegistry::new();
    let mut monitor = fv3::health::default_monitor().with_tracer(&tracer);

    let run_span = tracer.span("run", &case_name);
    // The profiler's clock starts at `Profiler::new()`; events absorbed
    // later are shifted by this offset onto the tracer's timeline.
    let offset_us = tracer.now_us();
    let mut prof = Profiler::new();
    let store_bytes: usize = (0..store.len()).map(|i| store.get(DataId(i)).layout().len * 8).sum();
    metrics.gauge_high_water("store_bytes", &[], store_bytes as f64);

    let mut metrics_jsonl = String::new();
    let mut cache_hits = 0u64;
    let mut cache_misses = 0u64;
    let mut steady_state_misses = 0u64;
    let mut checkpoint_writes = 0u64;
    let mut checkpoint_bytes = 0u64;
    let mut checkpoint_write_seconds = 0.0f64;
    // The profiled case is one rank covering its own tile (rt = 1 in
    // checkpoint terms); the restorer-side rank check is skipped here
    // because the restore below targets the same single state.
    let ck_config = DriverConfig {
        tile_n: n,
        rt: 1,
        nk,
        dycore: config,
    };
    // One executor for the whole run: its compiled-kernel cache makes
    // every step after the first (and every acoustic sub-loop trip within
    // a step) execute with zero compilation.
    let exec = Executor::serial();
    for step in 0..steps {
        let step_span = tracer.span("step", &format!("timestep{step}"));
        let ev_before = prof.events().len();
        let t0 = tracer.now_us();
        let exec_report =
            exec.run_profiled(g, &mut store, &prog.params, &mut hooks, &mut prof);
        let dur_s = (tracer.now_us() - t0) / 1e6;

        // Per-step kernel metrics from this step's slice of the event
        // stream, then a cumulative snapshot line per series. The slice
        // is shifted onto the tracer's timeline *before* module spans
        // are derived, so span end = max(event end) holds exactly in
        // the final trace (shifting afterwards can flip containment by
        // one ULP).
        let mut slice = prof.events()[ev_before..].to_vec();
        for e in &mut slice {
            e.ts_us += offset_us;
        }
        let mut launches = 0u64;
        let mut points = 0u64;
        let mut bytes = 0u64;
        for e in slice.iter().filter(|e| e.cat == "kernel") {
            launches += 1;
            points += e.points;
            bytes += e.bytes;
        }
        metrics.counter_add("kernel_launches", &[], launches);
        metrics.counter_add("kernel_points", &[], points);
        metrics.counter_add("kernel_bytes", &[], bytes);
        // Execution-engine counters (ISSUE 4): cache effectiveness and
        // the vector/scalar split of the lane VM, per step.
        metrics.counter_add("kernel_cache_hits", &[], exec_report.cache_hits);
        metrics.counter_add("kernel_cache_misses", &[], exec_report.cache_misses);
        metrics.counter_add("vm_lanes_vector", &[], exec_report.lanes_vector);
        metrics.counter_add("vm_lanes_scalar", &[], exec_report.lanes_scalar);
        metrics.observe("step_seconds", &[], dur_s);
        cache_hits += exec_report.cache_hits;
        cache_misses += exec_report.cache_misses;
        if step > 0 {
            steady_state_misses += exec_report.cache_misses;
        }

        extract_state(&store, &prog.ids, &mut state);
        if let Some(dir) = checkpoint_dir {
            let t = Instant::now();
            let ck = Checkpoint {
                step: step as u64 + 1,
                config: ck_config,
                states: vec![state.clone()],
                basis: None,
            };
            let bytes = ck
                .write_atomic(&step_path(dir, ck.step))
                .expect("checkpoint write");
            checkpoint_write_seconds += t.elapsed().as_secs_f64();
            checkpoint_writes += 1;
            checkpoint_bytes += bytes;
            metrics.counter_add("checkpoint_writes", &[], 1);
            metrics.counter_add("checkpoint_bytes", &[], bytes);
        }
        monitor.sample(&fv3::health::health_input(&state, &grid, step as u64, config.dt));
        metrics_jsonl.push_str(&obs::emit_jsonl(&metrics, step as u64));

        // Absorb per step so module groups never straddle a step span.
        tracer.absorb_events(module_spans(&slice), 0.0);
        tracer.absorb_events(slice, 0.0);
        drop(step_span);
    }
    drop(run_span);

    // One verified restore of the newest checkpoint: the recovery-path
    // cost (read + checksum verify + array rebuild), checked bit-exact
    // against the live state it mirrors.
    let mut checkpoint_restore_seconds = 0.0f64;
    if let Some(dir) = checkpoint_dir {
        if steps > 0 {
            let t = Instant::now();
            let back =
                Checkpoint::load(&step_path(dir, steps as u64)).expect("checkpoint restore");
            checkpoint_restore_seconds = t.elapsed().as_secs_f64();
            assert_eq!(back.states.len(), 1);
            for ((name, live), (_, restored)) in
                state.fields().iter().zip(back.states[0].fields().iter())
            {
                for (x, y) in live
                    .export_logical()
                    .iter()
                    .zip(&restored.export_logical())
                {
                    assert_eq!(x.to_bits(), y.to_bits(), "restore drift in {name}");
                }
            }
        }
    }

    let report = prof.report();
    let rollup = rollup_modules(&report);
    ProfileRun {
        case_name,
        steps,
        report,
        rollup,
        tracer,
        metrics,
        monitor,
        metrics_jsonl,
        cache_hits,
        cache_misses,
        steady_state_misses,
        checkpoint_writes,
        checkpoint_bytes,
        checkpoint_write_seconds,
        checkpoint_restore_seconds,
        tune,
    }
}

/// The tuned-vs-baseline ablation (ISSUE 9's Table III analogue): the
/// measured effect of the whole-program autotune pipeline on the same
/// case. `None` unless `tuned` actually carries an autotune report.
pub struct TunedAblation {
    /// Case the ablation was measured on (may differ from the main
    /// profiled case — fusion pays in memory traffic, so it is measured
    /// at a resolution whose working set exceeds the cache).
    pub case: String,
    /// Total kernel wall seconds of the untuned / tuned run.
    pub baseline_kernel_seconds: f64,
    pub tuned_kernel_seconds: f64,
    /// Wall seconds of the tracer module (the Fig. 7 bottleneck the
    /// cross-module fusions target) in each run.
    pub baseline_tracer_seconds: f64,
    pub tuned_tracer_seconds: f64,
    /// Static kernel count before/after the pipeline.
    pub kernels_before: usize,
    pub kernels_after: usize,
    /// Fusions applied across state (module) boundaries.
    pub cross_module_fusions: usize,
    /// Fusions landed by cutout search + pattern transfer.
    pub transferred: usize,
    /// Modeled speedup the cost model predicted.
    pub modeled_speedup: f64,
    /// One-line autotune provenance.
    pub summary: String,
}

impl TunedAblation {
    /// Measured whole-run kernel speedup (>= 1 when tuning helped).
    pub fn measured_speedup(&self) -> f64 {
        if self.tuned_kernel_seconds > 0.0 {
            self.baseline_kernel_seconds / self.tuned_kernel_seconds
        } else {
            1.0
        }
    }
}

fn tracer_seconds(run: &ProfileRun) -> f64 {
    run.rollup
        .iter()
        .find(|m| m.module == "tracer")
        .map_or(0.0, |m| m.wall_seconds)
}

/// Build the ablation from an untuned `baseline` run and a `tuned` run
/// of the same case. Returns `None` when `tuned` was not actually run
/// through the autotune pipeline.
pub fn tuned_ablation(baseline: &ProfileRun, tuned: &ProfileRun) -> Option<TunedAblation> {
    let report = tuned.tune.as_ref()?;
    Some(TunedAblation {
        case: tuned.case_name.clone(),
        baseline_kernel_seconds: baseline.report.kernel_seconds,
        tuned_kernel_seconds: tuned.report.kernel_seconds,
        baseline_tracer_seconds: tracer_seconds(baseline),
        tuned_tracer_seconds: tracer_seconds(tuned),
        kernels_before: report.kernels_before,
        kernels_after: report.kernels_after,
        cross_module_fusions: report.cross_module.len(),
        transferred: report.transfer.applied.len(),
        modeled_speedup: report.modeled_speedup(),
        summary: report.summary(),
    })
}

/// Render the `BENCH_dycore.json` summary (schema v2) for a run.
///
/// `attainable` is the roofline denominator in bytes/s; `stream_gib`
/// the measured STREAM copy bandwidth it came from.
pub fn bench_json(run: &ProfileRun, attainable: f64, stream_gib: f64) -> String {
    bench_json_with_scaling(run, attainable, stream_gib, &[])
}

/// [`bench_json`] plus the measured weak-scaling overlap study embedded
/// as *top-level, non-module* fields: a `weak_scaling` array (one object
/// per resolution point) and, when the study includes the c48 point,
/// `overlap_efficiency_c48` / `halo_wait_seconds_c48` scalars. The
/// per-module regression gate compares `modules` rows only, so these
/// fields record the overlap without entering the >15% gate.
pub fn bench_json_with_scaling(
    run: &ProfileRun,
    attainable: f64,
    stream_gib: f64,
    scaling: &[crate::weak_scaling::OverlapPoint],
) -> String {
    bench_json_full(run, attainable, stream_gib, scaling, None)
}

/// [`bench_json_with_scaling`] plus the forecast-service load study
/// embedded as a top-level `serve` object (sustained requests/second,
/// p50/p99/max submit-to-finish latency, steady-state compile count).
/// Like `weak_scaling`, it sits outside the `modules` array, so the
/// per-module >15% regression gate never compares it; the serve-soak CI
/// job owns its regression story instead.
pub fn bench_json_full(
    run: &ProfileRun,
    attainable: f64,
    stream_gib: f64,
    scaling: &[crate::weak_scaling::OverlapPoint],
    serve: Option<&crate::serve_load::ServeLoadReport>,
) -> String {
    bench_json_complete(run, attainable, stream_gib, scaling, serve, None)
}

/// [`bench_json_full`] plus the tuned-vs-baseline ablation. The ablation
/// lands twice: as a top-level `tuned` object (full provenance, outside
/// the gate, like `serve`) and as a `tuned_kernels` pseudo-module row
/// whose `wall_seconds` is the tuned run's kernel total — *inside* the
/// \>15% per-module regression gate, so a tuning regression across BENCH
/// revisions fails CI exactly like a kernel regression would.
pub fn bench_json_complete(
    run: &ProfileRun,
    attainable: f64,
    stream_gib: f64,
    scaling: &[crate::weak_scaling::OverlapPoint],
    serve: Option<&crate::serve_load::ServeLoadReport>,
    tuned: Option<&TunedAblation>,
) -> String {
    let report = &run.report;
    // Compute ceiling for the dual-ceiling roofline: the modeled host's
    // peak FP64 throughput (Table I), matching the cost model the tuner
    // ranks with.
    let attainable_flops = machine::CpuSpec::haswell_e5_2690v3().peak_flops;
    let mut out = String::new();
    let _ = writeln!(out, "{{");
    let _ = writeln!(out, "  \"schema_version\": {},", obs::BENCH_SCHEMA_VERSION);
    let _ = writeln!(out, "  \"case\": {},", json_string(&run.case_name));
    let _ = writeln!(out, "  \"executor\": \"serial_host\",");
    let _ = writeln!(out, "  \"steps\": {},", run.steps);
    let _ = writeln!(out, "  \"health_violations\": {},", run.monitor.total_violations());
    let _ = writeln!(out, "  \"stream_copy_gib_per_s\": {stream_gib},");
    let _ = writeln!(out, "  \"attainable_bandwidth_bytes_per_s\": {attainable},");
    let _ = writeln!(out, "  \"attainable_flops_per_s\": {attainable_flops},");
    let _ = writeln!(out, "  \"launches\": {},", report.launches);
    let _ = writeln!(out, "  \"kernel_seconds\": {},", report.kernel_seconds);
    let _ = writeln!(out, "  \"copy_seconds\": {},", report.copy_seconds);
    let _ = writeln!(out, "  \"halo_seconds\": {},", report.halo_seconds);
    let _ = writeln!(out, "  \"callback_seconds\": {},", report.callback_seconds);
    let _ = writeln!(out, "  \"checkpoint_writes\": {},", run.checkpoint_writes);
    let _ = writeln!(out, "  \"checkpoint_bytes\": {},", run.checkpoint_bytes);
    let _ = writeln!(
        out,
        "  \"checkpoint_write_seconds\": {},",
        run.checkpoint_write_seconds
    );
    let _ = writeln!(
        out,
        "  \"checkpoint_restore_seconds\": {},",
        run.checkpoint_restore_seconds
    );
    let _ = writeln!(
        out,
        "  \"roofline_fraction\": {},",
        report.roofline_fraction(attainable)
    );
    if !scaling.is_empty() {
        let _ = writeln!(
            out,
            "  \"weak_scaling\": {},",
            crate::weak_scaling::study_json(scaling)
        );
        if let Some(p) = scaling.iter().find(|p| p.tile_n == 48) {
            let _ = writeln!(out, "  \"overlap_efficiency_c48\": {},", p.overlap_efficiency);
            let _ = writeln!(out, "  \"halo_wait_seconds_c48\": {},", p.halo_wait_seconds);
        }
    }
    if let Some(s) = serve {
        let _ = writeln!(out, "  \"serve\": {},", s.to_json());
    }
    if let Some(t) = tuned {
        let _ = writeln!(
            out,
            "  \"tuned\": {{\"case\": {}, \"kernel_seconds\": {}, \
             \"baseline_kernel_seconds\": {}, \
             \"tracer_seconds\": {}, \"baseline_tracer_seconds\": {}, \
             \"kernels_before\": {}, \"kernels_after\": {}, \
             \"cross_module_fusions\": {}, \"transferred\": {}, \
             \"modeled_speedup\": {}, \"measured_speedup\": {}, \"summary\": {}}},",
            json_string(&t.case),
            t.tuned_kernel_seconds,
            t.baseline_kernel_seconds,
            t.tuned_tracer_seconds,
            t.baseline_tracer_seconds,
            t.kernels_before,
            t.kernels_after,
            t.cross_module_fusions,
            t.transferred,
            t.modeled_speedup,
            t.measured_speedup(),
            json_string(&t.summary)
        );
    }
    let _ = writeln!(out, "  \"modules\": [");
    let mut rows: Vec<String> = run
        .rollup
        .iter()
        .map(|m| {
            format!(
                "    {{\"module\": {}, \"kernels\": {}, \"invocations\": {}, \"points\": {}, \
                 \"wall_seconds\": {}, \"modeled_bytes\": {}, \"modeled_flops\": {}, \
                 \"bytes_per_s\": {}}}",
                json_string(&m.module),
                m.kernels,
                m.invocations,
                m.points,
                m.wall_seconds,
                m.modeled_bytes,
                m.modeled_flops,
                m.achieved_bandwidth()
            )
        })
        .collect();
    // The tuned run's kernel total rides through the same gate as the
    // module rows (cf. the checkpoint pseudo-rows below): present only
    // when the ablation ran, so tuning-off diffs stay clean.
    if let Some(t) = tuned {
        rows.push(format!(
            "    {{\"module\": \"tuned_kernels\", \"kernels\": {}, \"invocations\": 0, \
             \"points\": 0, \"wall_seconds\": {}, \"modeled_bytes\": 0, \
             \"modeled_flops\": 0, \"bytes_per_s\": 0}}",
            t.kernels_after, t.tuned_kernel_seconds
        ));
    }
    // Resilience overhead rides through the same per-module regression
    // gate as kernel times: pseudo-module rows, present only when
    // checkpointing was on (so checkpoint-off diffs stay clean).
    if run.checkpoint_writes > 0 {
        let bw = |secs: f64, bytes: u64| {
            if secs > 0.0 {
                bytes as f64 / secs
            } else {
                0.0
            }
        };
        rows.push(format!(
            "    {{\"module\": \"checkpoint_write\", \"kernels\": 0, \"invocations\": {}, \
             \"points\": 0, \"wall_seconds\": {}, \"modeled_bytes\": {}, \"bytes_per_s\": {}}}",
            run.checkpoint_writes,
            run.checkpoint_write_seconds,
            run.checkpoint_bytes,
            bw(run.checkpoint_write_seconds, run.checkpoint_bytes)
        ));
        let per_ck = run.checkpoint_bytes / run.checkpoint_writes;
        rows.push(format!(
            "    {{\"module\": \"checkpoint_restore\", \"kernels\": 0, \"invocations\": 1, \
             \"points\": 0, \"wall_seconds\": {}, \"modeled_bytes\": {}, \"bytes_per_s\": {}}}",
            run.checkpoint_restore_seconds,
            per_ck,
            bw(run.checkpoint_restore_seconds, per_ck)
        ));
    }
    let _ = writeln!(out, "{}", rows.join(",\n"));
    let _ = writeln!(out, "  ],");
    let _ = writeln!(out, "  \"kernels\": [");
    let ranked = report.ranked();
    for (i, k) in ranked.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": {}, \"invocations\": {}, \"points\": {}, \"wall_seconds\": {}, \
             \"modeled_bytes\": {}, \"modeled_flops\": {}, \"bytes_per_s\": {}, \
             \"roofline_fraction\": {}, \"compute_bound\": {}}}{}",
            json_string(&k.name),
            k.invocations,
            k.points,
            k.wall_seconds,
            k.modeled_bytes,
            k.modeled_flops,
            k.achieved_bandwidth(),
            k.roofline_fraction_dual(attainable, attainable_flops),
            k.compute_bound(attainable, attainable_flops),
            if i + 1 < ranked.len() { "," } else { "" }
        );
    }
    let _ = writeln!(out, "  ]");
    let _ = writeln!(out, "}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> DycoreConfig {
        DycoreConfig {
            n_split: 2,
            k_split: 1,
            dt: 5.0,
            dddmp: 0.02,
            nord4_damp: None,
        }
    }

    #[test]
    fn bench_json_carries_schema_v2_and_diffs_clean_against_itself() {
        let run = profile_case(8, 4, 2, small_config());
        let json = bench_json(&run, 1e9, 1.0);
        assert_eq!(obs::regression::schema_version(&json), Ok(2));
        let report =
            obs::compare_runs(&json, &json, &obs::RegressionPolicy::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert!(json.contains("\"steps\": 2"));
        assert!(json.contains("\"health_violations\": 0"));
    }

    #[test]
    fn kernel_cache_reaches_steady_state_after_first_step() {
        let run = profile_case(8, 4, 3, small_config());
        assert!(run.cache_misses > 0, "first step must compile kernels");
        assert!(run.cache_hits > 0, "later steps must hit the cache");
        assert_eq!(run.steady_state_misses, 0, "no recompiles after step 0");
        assert!(run.metrics.counter_value("kernel_cache_hits", &[]) > 0);
        assert!(run.metrics.counter_value("vm_lanes_vector", &[]) > 0);
    }

    #[test]
    fn checkpointed_profile_records_write_and_restore_cost() {
        let dir = std::env::temp_dir().join(format!("fv3_bench_ckpt_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let run = profile_case_with_checkpoints(8, 4, 2, small_config(), Some(&dir));
        assert_eq!(run.checkpoint_writes, 2);
        assert!(run.checkpoint_bytes > 0);
        assert!(run.checkpoint_write_seconds > 0.0);
        assert!(run.checkpoint_restore_seconds > 0.0);
        assert_eq!(run.metrics.counter_value("checkpoint_writes", &[]), 2);
        let json = bench_json(&run, 1e9, 1.0);
        assert!(json.contains("\"module\": \"checkpoint_write\""));
        assert!(json.contains("\"module\": \"checkpoint_restore\""));
        assert!(json.contains("\"checkpoint_writes\": 2"));
        // The pseudo-module rows flow through the regression gate like
        // any kernel module.
        let report =
            obs::compare_runs(&json, &json, &obs::RegressionPolicy::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn uncheckpointed_profile_emits_no_checkpoint_rows() {
        let run = profile_case_with_checkpoints(8, 4, 1, small_config(), None);
        assert_eq!(run.checkpoint_writes, 0);
        assert_eq!(run.checkpoint_restore_seconds, 0.0);
        let json = bench_json(&run, 1e9, 1.0);
        assert!(!json.contains("checkpoint_write\""));
        assert!(json.contains("\"checkpoint_writes\": 0"));
    }

    #[test]
    fn serve_fields_embed_outside_the_module_gate() {
        let run = profile_case(8, 4, 1, small_config());
        let serve = crate::serve_load::serve_load(crate::serve_load::ServeLoadConfig {
            requests: 2,
            slots: 2,
            steps: 1,
            tile_n: 8,
            nk: 3,
            streaming: true,
        });
        let json = bench_json_full(&run, 1e9, 1.0, &[], Some(&serve));
        assert!(json.contains("\"serve\": {\"requests\": 2"));
        assert_eq!(obs::regression::schema_version(&json), Ok(2));
        let report =
            obs::compare_runs(&json, &json, &obs::RegressionPolicy::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        // The serve object is top-level, like weak_scaling: adding it
        // must not perturb the per-module regression gate.
        let without = bench_json(&run, 1e9, 1.0);
        let report =
            obs::compare_runs(&without, &json, &obs::RegressionPolicy::default()).unwrap();
        assert!(report.is_clean(), "serve fields leaked into the gate: {}", report.render());

        // The overload study nests under serve and stays outside the
        // gate the same way.
        let mut serve = serve;
        serve.overload = Some(crate::serve_load::OverloadReport {
            offered: 17,
            admitted: 15,
            completed: 5,
            failed: 0,
            cancelled: 2,
            evicted: 4,
            shed: 4,
            rejected_queue_full: 1,
            rejected_quota: 1,
            shed_rate: 4.0 / 15.0,
            goodput_rps: 3.2,
            total_seconds: 1.5,
            p99_latency_high_seconds: 0.2,
            p99_latency_normal_seconds: 0.3,
            eviction_p99_seconds: 0.4,
            eviction_past_deadline_p99_seconds: 0.35,
            events_published: 100,
            events_dropped: 0,
            metrics_jsonl: String::new(),
            events_jsonl: String::new(),
        });
        let json_ov = bench_json_full(&run, 1e9, 1.0, &[], Some(&serve));
        assert!(json_ov.contains("\"overload\": {\"offered\": 17"));
        assert!(json_ov.contains("\"shed_rate\": "));
        assert!(json_ov.contains("\"goodput_rps\": 3.2"));
        let report =
            obs::compare_runs(&without, &json_ov, &obs::RegressionPolicy::default()).unwrap();
        assert!(
            report.is_clean(),
            "overload fields leaked into the gate: {}",
            report.render()
        );
    }

    #[test]
    fn tuned_profile_fuses_kernels_and_embeds_the_gated_ablation() {
        let baseline = profile_case_full(8, 6, 2, small_config(), None, false);
        assert!(baseline.tune.is_none());
        let tuned = profile_case_full(8, 6, 2, small_config(), None, true);
        let report = tuned.tune.as_ref().expect("tuned run carries its report");
        assert!(
            report.kernels_after < report.kernels_before,
            "autotune must fuse the real dycore: {}",
            report.summary()
        );
        // Fewer kernels, same physics: the tuned run models strictly less
        // memory traffic and still reaches cache steady state.
        assert!(tuned.report.total_modeled_bytes() < baseline.report.total_modeled_bytes());
        assert_eq!(tuned.steady_state_misses, 0);

        let ab = tuned_ablation(&baseline, &tuned).expect("ablation from a tuned run");
        assert_eq!(ab.kernels_after, report.kernels_after);
        assert!(ab.baseline_tracer_seconds > 0.0);
        assert!(tuned_ablation(&baseline, &baseline).is_none());

        let json = bench_json_complete(&baseline, 1e9, 1.0, &[], None, Some(&ab));
        assert!(json.contains("\"tuned\": {\"case\""));
        assert!(json.contains("\"kernel_seconds\""));
        assert!(json.contains("\"module\": \"tuned_kernels\""));
        assert!(json.contains("\"attainable_flops_per_s\""));
        assert!(json.contains("\"compute_bound\""));
        // The tuned row is gated (diffs against itself stay clean) and
        // its absence elsewhere does not perturb the other module rows.
        let cmp = obs::compare_runs(&json, &json, &obs::RegressionPolicy::default()).unwrap();
        assert!(cmp.is_clean(), "{}", cmp.render());
        let without = bench_json(&baseline, 1e9, 1.0);
        let cmp =
            obs::compare_runs(&without, &json, &obs::RegressionPolicy::default()).unwrap();
        assert!(cmp.is_clean(), "tuned object leaked into the gate: {}", cmp.render());
    }

    #[test]
    fn module_rows_carry_modeled_flops() {
        let run = profile_case(8, 4, 1, small_config());
        let json = bench_json(&run, 1e9, 1.0);
        // Kernel modules model real arithmetic; the flops land in the
        // module rows so the dual-ceiling roofline can rank them.
        let tracer = run.rollup.iter().find(|m| m.module == "tracer").unwrap();
        assert!(tracer.modeled_flops > 0);
        assert!(json.contains("\"modeled_flops\""));
    }

    #[test]
    fn health_stream_has_one_clean_sample_per_step() {
        let run = profile_case(8, 4, 3, small_config());
        assert_eq!(run.monitor.samples().len(), 3);
        assert!(run.monitor.all_healthy());
        assert_eq!(run.monitor.to_jsonl().lines().count(), 3);
        // Metrics snapshot emitted after every step, several series each.
        assert!(run.metrics_jsonl.lines().count() >= 3 * 4);
        assert!(run.metrics.counter_value("kernel_launches", &[]) >= 3);
    }
}
