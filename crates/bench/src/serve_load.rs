//! `serve_load`: a traffic generator for [`engine::ForecastEngine`].
//!
//! Measures what a one-shot profile cannot: the *service* view of the
//! dycore — sustained requests/second and tail latency when a burst of
//! tenants shares one persistent engine, and whether the shared
//! compiled-kernel cache really reaches steady state (every request
//! after the warmup must report zero `kernel_cache_misses`).
//!
//! The protocol mirrors the soak suite: one serialized warmup request
//! pays the case's compile bill, then `requests` concurrent submissions
//! race through `slots` run slots while the generator records
//! submit-to-finish latency per request. The report embeds into
//! `BENCH_dycore.json` as top-level, non-module fields (the per-module
//! regression gate ignores them, like `weak_scaling`), and its metrics
//! and per-request health streams ride the usual JSONL channels.

use engine::{
    EngineConfig, ForecastEngine, ForecastRequest, ForecastResult, Priority, Rejected, RequestId,
    Scenario, SubmitOptions,
};
use fv3::dyn_core::DycoreConfig;
use fv3core::DriverConfig;
use obs::nearest_rank;
use obs::stream::RunEvent;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Traffic shape for one load run.
#[derive(Debug, Clone, Copy)]
pub struct ServeLoadConfig {
    /// Requests in the measured burst (after the warmup).
    pub requests: usize,
    /// Engine run slots.
    pub slots: usize,
    /// Steps per request.
    pub steps: u64,
    /// Cube resolution per request.
    pub tile_n: usize,
    /// Vertical levels per request.
    pub nk: usize,
    /// Measure streamed SLOs from the live event bus (time-to-first-step
    /// and inter-step cadence) alongside the end-to-end latencies. When
    /// false the engine runs with the bus uninstalled — the shape used to
    /// prove streaming costs nothing on the hot path.
    pub streaming: bool,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            requests: 8,
            slots: 2,
            steps: 2,
            tile_n: 8,
            nk: 6,
            streaming: true,
        }
    }
}

impl ServeLoadConfig {
    /// The request every tenant submits.
    pub fn request(&self) -> ForecastRequest {
        self.request_with_steps(self.steps)
    }

    /// The same case with a different step budget (the overload study's
    /// slot plugs need a budget they will never finish).
    pub fn request_with_steps(&self, steps: u64) -> ForecastRequest {
        let config = DriverConfig::six_rank(
            self.tile_n,
            self.nk,
            DycoreConfig {
                n_split: 1,
                k_split: 1,
                dt: 4.0,
                dddmp: 0.02,
                nord4_damp: None,
            },
        );
        ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// The traffic shape that produced this report.
    pub requests: usize,
    pub slots: usize,
    pub steps: u64,
    /// Burst requests that completed / failed.
    pub completed: u64,
    pub failed: u64,
    /// Kernel compilations the warmup request paid (the case's bill).
    pub warmup_misses: u64,
    /// Kernel compilations paid by the burst — must be 0: the service is
    /// in steady state after the first request.
    pub steady_state_misses: u64,
    /// Burst requests that reused a parked warm instance.
    pub warm_acquires: u64,
    /// Wall time of the measured burst.
    pub total_seconds: f64,
    /// Sustained throughput of the burst.
    pub requests_per_second: f64,
    /// Submit-to-finish latency percentiles (nearest-rank) and max.
    pub p50_latency_seconds: f64,
    pub p99_latency_seconds: f64,
    pub max_latency_seconds: f64,
    /// Streamed SLOs, computed post-hoc from event timestamps (`t_us`)
    /// drained off a bus-wide subscription — all 0.0 when `streaming` is
    /// off. Time-to-first-step: RequestQueued to first StepCompleted.
    pub ttfs_p50_seconds: f64,
    pub ttfs_p99_seconds: f64,
    /// Gap between consecutive StepCompleted events of one request,
    /// pooled across the burst.
    pub step_gap_p50_seconds: f64,
    pub step_gap_p99_seconds: f64,
    /// Cadence jitter: p99 minus p50 of the inter-step gap. A service
    /// whose steps tick like clockwork scores near zero.
    pub cadence_jitter_seconds: f64,
    /// Bus totals at the end of the burst (0 when streaming is off).
    pub events_published: u64,
    pub events_dropped: u64,
    /// Final cumulative engine-metrics snapshot (JSONL).
    pub metrics_jsonl: String,
    /// Per-step health of every burst request, each line tagged with its
    /// request id.
    pub health_jsonl: String,
    /// Every event the burst streamed, one JSON object per line in bus
    /// order (empty when `streaming` is off) — the `RUN_events.jsonl`
    /// artifact CI validates for lifecycle closure.
    pub events_jsonl: String,
    /// The overload study, when one ran alongside the load run
    /// ([`overload_study`]); embeds as a nested `"overload"` object.
    pub overload: Option<OverloadReport>,
}

impl ServeLoadReport {
    /// True when the run sustained the service contract: everything
    /// completed, nothing failed, nothing recompiled, and the clock
    /// actually advanced.
    pub fn is_clean(&self) -> bool {
        self.completed == self.requests as u64
            && self.failed == 0
            && self.steady_state_misses == 0
            && self.total_seconds > 0.0
            && self.requests_per_second > 0.0
            && self.p99_latency_seconds > 0.0
    }

    /// The `"serve"` object embedded in `BENCH_dycore.json` (top-level,
    /// outside the per-module regression gate).
    pub fn to_json(&self) -> String {
        let mut json = format!(
            "{{\"requests\": {}, \"slots\": {}, \"steps_per_request\": {}, \
             \"completed\": {}, \"failed\": {}, \"warmup_misses\": {}, \
             \"steady_state_misses\": {}, \"warm_acquires\": {}, \
             \"total_seconds\": {}, \"requests_per_second\": {}, \
             \"p50_latency_seconds\": {}, \"p99_latency_seconds\": {}, \
             \"max_latency_seconds\": {}, \
             \"ttfs_p50_seconds\": {}, \"ttfs_p99_seconds\": {}, \
             \"step_gap_p50_seconds\": {}, \"step_gap_p99_seconds\": {}, \
             \"cadence_jitter_seconds\": {}, \
             \"events_published\": {}, \"events_dropped\": {}",
            self.requests,
            self.slots,
            self.steps,
            self.completed,
            self.failed,
            self.warmup_misses,
            self.steady_state_misses,
            self.warm_acquires,
            self.total_seconds,
            self.requests_per_second,
            self.p50_latency_seconds,
            self.p99_latency_seconds,
            self.max_latency_seconds,
            self.ttfs_p50_seconds,
            self.ttfs_p99_seconds,
            self.step_gap_p50_seconds,
            self.step_gap_p99_seconds,
            self.cadence_jitter_seconds,
            self.events_published,
            self.events_dropped
        );
        if let Some(ov) = &self.overload {
            let _ = write!(json, ", \"overload\": {}", ov.to_json());
        }
        json.push('}');
        json
    }
}

/// What the overload study measured: the service driven past saturation
/// with mixed lanes, tight deadlines, a tenant at its cap, and mid-run
/// cancellations — and the exact terminal every offered request reached.
#[derive(Debug, Clone)]
pub struct OverloadReport {
    /// Submissions attempted (admitted + refused).
    pub offered: u64,
    /// Submissions the engine accepted into the queue.
    pub admitted: u64,
    /// Admitted requests per terminal. `completed` is the goodput; the
    /// five terminals must sum to `admitted` — no request is lost.
    pub completed: u64,
    pub failed: u64,
    pub cancelled: u64,
    pub evicted: u64,
    pub shed: u64,
    /// Typed refusals from `try_submit_with`.
    pub rejected_queue_full: u64,
    pub rejected_quota: u64,
    /// Fraction of admitted work shed to make room for higher lanes.
    pub shed_rate: f64,
    /// Completed requests per wall second, measured across the whole
    /// study (saturation, shedding, and drain included).
    pub goodput_rps: f64,
    pub total_seconds: f64,
    /// Submit-to-finish p99 of *completed* requests, by lane. Batch
    /// never completes under this shape (it is shed or evicted).
    pub p99_latency_high_seconds: f64,
    pub p99_latency_normal_seconds: f64,
    /// Queue residency p99 of evicted requests (submit to removal).
    pub eviction_p99_seconds: f64,
    /// How far past their deadline evicted requests were when a slot
    /// found them, p99.
    pub eviction_past_deadline_p99_seconds: f64,
    /// Bus totals (0 when streaming is off).
    pub events_published: u64,
    pub events_dropped: u64,
    /// Final cumulative engine-metrics snapshot (JSONL).
    pub metrics_jsonl: String,
    /// Every event the study streamed (empty when streaming is off) —
    /// carries `request_cancelled` / `request_evicted` / `request_shed`
    /// lifecycle closures for CI to validate.
    pub events_jsonl: String,
}

impl OverloadReport {
    /// True when overload degraded gracefully: every offered request
    /// reached exactly one terminal, nothing genuinely failed, both
    /// refusal types fired, work was shed and evicted (the study forces
    /// both), and the surviving lanes still made progress.
    pub fn is_clean(&self) -> bool {
        self.offered == self.admitted + self.rejected_queue_full + self.rejected_quota
            && self.admitted
                == self.completed + self.failed + self.cancelled + self.evicted + self.shed
            && self.failed == 0
            && self.completed > 0
            && self.cancelled > 0
            && self.evicted > 0
            && self.shed > 0
            && self.rejected_queue_full >= 1
            && self.rejected_quota >= 1
            && self.goodput_rps > 0.0
            && self.eviction_past_deadline_p99_seconds > 0.0
            && self.events_dropped == 0
    }

    /// The `"overload"` object nested inside the `"serve"` embed.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"offered\": {}, \"admitted\": {}, \"completed\": {}, \
             \"failed\": {}, \"cancelled\": {}, \"evicted\": {}, \"shed\": {}, \
             \"rejected_queue_full\": {}, \"rejected_quota\": {}, \
             \"shed_rate\": {}, \"goodput_rps\": {}, \"total_seconds\": {}, \
             \"p99_latency_high_seconds\": {}, \"p99_latency_normal_seconds\": {}, \
             \"eviction_p99_seconds\": {}, \
             \"eviction_past_deadline_p99_seconds\": {}, \
             \"events_published\": {}, \"events_dropped\": {}}}",
            self.offered,
            self.admitted,
            self.completed,
            self.failed,
            self.cancelled,
            self.evicted,
            self.shed,
            self.rejected_queue_full,
            self.rejected_quota,
            self.shed_rate,
            self.goodput_rps,
            self.total_seconds,
            self.p99_latency_high_seconds,
            self.p99_latency_normal_seconds,
            self.eviction_p99_seconds,
            self.eviction_past_deadline_p99_seconds,
            self.events_published,
            self.events_dropped
        )
    }
}

/// Drive the service to 2x saturation and measure how it degrades.
///
/// The study is deterministic by construction, not by timing luck:
///
/// 1. a warmup request pays the compile bill;
/// 2. long-budget "plug" requests take and hold every run slot (plug 0
///    carries its own deadline — the running-request deadline path; the
///    rest are cancelled explicitly later);
/// 3. `queue_cap` Batch fillers with tight deadlines saturate the
///    queue — together with the burst this offers 2x the standing
///    capacity of slots + queue;
/// 4. a High/Normal burst (tenant-tagged) is admitted by shedding one
///    Batch filler per request;
/// 5. two probes exercise both typed refusals: a Batch request cannot
///    shed its own lane (`QueueFull`), and the burst tenant is at its
///    cap (`QuotaExceeded`);
/// 6. once the filler deadlines expire the plugs are cancelled; the
///    drain completes the burst (High before Normal) and evicts every
///    expired filler at pop time.
pub fn overload_study(cfg: ServeLoadConfig) -> OverloadReport {
    let slots = cfg.slots.max(1);
    // Fillers fill the queue exactly; fillers + burst + plugs offer 2x
    // the standing capacity.
    let q = (cfg.requests.max(4) / 4) * 4;
    let burst = q / 2;
    let engine = ForecastEngine::start(EngineConfig {
        slots,
        queue_cap: q,
        streaming: cfg.streaming,
        stream_buffer: 16 * 1024,
        tenant_cap: Some(burst),
        ..EngineConfig::default()
    });

    // Warmup pays the compile bill so the overload clock measures
    // admission control, not cold start.
    engine
        .wait(engine.submit(cfg.request().with_label("overload-warmup")))
        .result
        .expect("overload warmup");

    let stream = engine.subscribe_all();
    let t0 = Instant::now();
    let mut lanes: Vec<(RequestId, Priority)> = Vec::new();

    // Plugs: hold every slot with a budget no plug will ever finish.
    // Plug 0's deadline must be generous: it exists to fire mid-run
    // during the drain (the running-request deadline path), but if it
    // fired before the probes below it would free a slot, drain the
    // queue, and break the full-queue invariant the probes rely on.
    // Everything between here and the probes is lock-bound (a few
    // hundred submissions at worst), so seconds of margin is orders of
    // magnitude beyond any debug-build scheduling stall.
    let plug0_deadline = Duration::from_secs(3);
    let mut plug_ids = Vec::new();
    for i in 0..slots {
        let opts = if i == 0 {
            SubmitOptions::default().deadline(plug0_deadline)
        } else {
            SubmitOptions::default()
        };
        let id = engine.submit_with(
            cfg.request_with_steps(100_000)
                .with_label(&format!("plug-{i}")),
            opts,
        );
        plug_ids.push(id);
        lanes.push((id, Priority::Normal));
    }
    // Every plug must own its slot before the queue fills, or a filler
    // could sneak into a slot ahead of its deadline.
    let t_wait = Instant::now();
    while engine.status().slots_busy < slots {
        assert!(
            t_wait.elapsed() < Duration::from_secs(60),
            "plugs never took the slots"
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    // Saturate the queue with deadline-tagged Batch work.
    let filler_deadline = Duration::from_millis(40);
    for i in 0..q {
        let opts = SubmitOptions::default()
            .priority(Priority::Batch)
            .deadline(filler_deadline);
        match engine.try_submit_with(cfg.request().with_label(&format!("filler-{i}")), opts) {
            Ok(id) => lanes.push((id, Priority::Batch)),
            Err(r) => panic!("filler refused by a queue sized for it: {r:?}"),
        }
    }

    // The burst: each admission must shed the newest Batch filler.
    for i in 0..burst {
        let pr = if i % 2 == 0 {
            Priority::High
        } else {
            Priority::Normal
        };
        let req = cfg
            .request()
            .with_label(&format!("burst-{}-{i}", pr.label()));
        let opts = SubmitOptions::default().priority(pr).tenant("nowcast");
        match engine.try_submit_with(req, opts) {
            Ok(id) => lanes.push((id, pr)),
            Err(r) => panic!("burst refused despite sheddable Batch work: {r:?}"),
        }
    }

    // Both typed refusals, exactly once each. The probes need the queue
    // exactly full, which holds as long as every plug still owns its
    // slot — check it so a pathological stall fails attributably here
    // rather than as a confusing probe mismatch.
    assert!(
        t0.elapsed() < plug0_deadline,
        "overload setup outran plug 0's deadline; the probe invariants no longer hold"
    );
    let mut rejected_queue_full = 0u64;
    let mut rejected_quota = 0u64;
    match engine.try_submit_with(
        cfg.request().with_label("probe-full"),
        SubmitOptions::default().priority(Priority::Batch),
    ) {
        Err(Rejected::QueueFull(_)) => rejected_queue_full += 1,
        other => panic!("queue-full probe: expected QueueFull, got {other:?}"),
    }
    match engine.try_submit_with(
        cfg.request().with_label("probe-quota"),
        SubmitOptions::default()
            .priority(Priority::High)
            .tenant("nowcast"),
    ) {
        Err(Rejected::QuotaExceeded { .. }) => rejected_quota += 1,
        other => panic!("quota probe: expected QuotaExceeded, got {other:?}"),
    }

    // Let the filler deadlines expire, then release the slots: explicit
    // cancels for plugs 1.., plug 0 dies by its own deadline.
    std::thread::sleep(filler_deadline + Duration::from_millis(40));
    for id in &plug_ids[1..] {
        assert!(engine.cancel(*id), "plug cancel must find a live token");
    }

    // Drain: every admitted id reaches exactly one terminal.
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut cancelled = 0u64;
    let mut evicted = 0u64;
    let mut shed = 0u64;
    let mut high_lat = Vec::new();
    let mut normal_lat = Vec::new();
    let mut evict_residency = Vec::new();
    let mut evict_past = Vec::new();
    for (id, lane) in &lanes {
        let out = engine.wait(*id);
        match out.result {
            ForecastResult::Completed(_) => {
                completed += 1;
                match lane {
                    Priority::High => high_lat.push(out.latency_seconds()),
                    Priority::Normal => normal_lat.push(out.latency_seconds()),
                    Priority::Batch => {}
                }
            }
            ForecastResult::Failed(e) => {
                failed += 1;
                eprintln!("overload study: {} genuinely failed: {e}", out.label);
            }
            ForecastResult::Cancelled(_) => cancelled += 1,
            ForecastResult::Evicted {
                past_deadline_seconds,
            } => {
                evicted += 1;
                evict_residency.push(out.latency_seconds());
                evict_past.push(past_deadline_seconds);
            }
            ForecastResult::Shed { .. } => shed += 1,
        }
    }
    let total_seconds = t0.elapsed().as_secs_f64();

    let mut events_jsonl = String::new();
    let (events_published, events_dropped) = match &stream {
        Some(stream) => {
            for ev in stream.drain() {
                let _ = writeln!(events_jsonl, "{}", ev.to_json());
            }
            let status = engine.status();
            (status.events_published, status.events_dropped)
        }
        None => (0, 0),
    };
    let metrics_jsonl = obs::emit_jsonl(engine.metrics(), lanes.len() as u64);
    engine.shutdown();

    high_lat.sort_by(|a, b| a.total_cmp(b));
    normal_lat.sort_by(|a, b| a.total_cmp(b));
    evict_residency.sort_by(|a, b| a.total_cmp(b));
    evict_past.sort_by(|a, b| a.total_cmp(b));
    let admitted = lanes.len() as u64;
    OverloadReport {
        offered: admitted + rejected_queue_full + rejected_quota,
        admitted,
        completed,
        failed,
        cancelled,
        evicted,
        shed,
        rejected_queue_full,
        rejected_quota,
        shed_rate: if admitted > 0 {
            shed as f64 / admitted as f64
        } else {
            0.0
        },
        goodput_rps: if total_seconds > 0.0 {
            completed as f64 / total_seconds
        } else {
            0.0
        },
        total_seconds,
        p99_latency_high_seconds: nearest_rank(&high_lat, 0.99),
        p99_latency_normal_seconds: nearest_rank(&normal_lat, 0.99),
        eviction_p99_seconds: nearest_rank(&evict_residency, 0.99),
        eviction_past_deadline_p99_seconds: nearest_rank(&evict_past, 0.99),
        events_published,
        events_dropped,
        metrics_jsonl,
        events_jsonl,
    }
}

/// Run one load shape against a fresh persistent engine and measure it.
pub fn serve_load(cfg: ServeLoadConfig) -> ServeLoadReport {
    // Size the per-subscriber buffer so a clean burst never drops: per
    // request one StepCompleted + one HealthSample per step, a handful
    // of lifecycle/checkpoint events, plus engine ticks.
    let stream_buffer = cfg.requests.max(1) * (2 * cfg.steps as usize + 24) + 64;
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1) + 1,
        streaming: cfg.streaming,
        stream_buffer,
        ..EngineConfig::default()
    });

    // Warmup: one serialized request compiles the case so the burst
    // below measures the service steady state, not cold start.
    let warm = engine.submit(cfg.request().with_label("warmup"));
    let warmup_misses = engine
        .wait(warm)
        .result
        .expect("serve_load warmup")
        .cache_misses;

    // Subscribe after the warmup so the drained stream carries exactly
    // the burst. `subscribe_all` is None when streaming is off.
    let stream = engine.subscribe_all();

    let t0 = Instant::now();
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("load-{i}"))))
        .collect();

    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut steady_state_misses = 0u64;
    let mut warm_acquires = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut health_jsonl = String::new();
    for id in ids {
        let out = engine.wait(id);
        latencies.push(out.latency_seconds());
        match out.result {
            ForecastResult::Completed(rep) => {
                completed += 1;
                steady_state_misses += rep.cache_misses;
                warm_acquires += rep.warm_start as u64;
                // Tag each health line with the request that produced it
                // so one stream carries every tenant.
                let tag = format!("{{\"request\": \"{}\", ", out.id);
                for line in rep.health_jsonl().lines() {
                    let _ = writeln!(health_jsonl, "{}", line.replacen('{', &tag, 1));
                }
            }
            _ => failed += 1,
        }
    }
    let total_seconds = t0.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests_per_second = if total_seconds > 0.0 {
        completed as f64 / total_seconds
    } else {
        0.0
    };

    // Streamed SLOs: every waited-on request published its events before
    // its outcome became visible, so a single post-hoc drain sees the
    // whole burst — no collector thread perturbs the measured run.
    let (mut ttfs, mut gaps) = (Vec::new(), Vec::new());
    let mut events_jsonl = String::new();
    let (events_published, events_dropped) = match &stream {
        Some(stream) => {
            let mut queued_at: HashMap<String, f64> = HashMap::new();
            let mut steps_at: HashMap<String, Vec<f64>> = HashMap::new();
            for ev in stream.drain() {
                let _ = writeln!(events_jsonl, "{}", ev.to_json());
                let Some(req) = ev.request else { continue };
                match ev.body {
                    RunEvent::RequestQueued { .. } => {
                        queued_at.insert(req, ev.t_us);
                    }
                    RunEvent::StepCompleted { .. } => {
                        steps_at.entry(req).or_default().push(ev.t_us)
                    }
                    _ => {}
                }
            }
            for (req, ts) in &steps_at {
                if let (Some(q), Some(first)) = (queued_at.get(req), ts.first()) {
                    ttfs.push((first - q) / 1e6);
                }
                gaps.extend(ts.windows(2).map(|w| (w[1] - w[0]) / 1e6));
            }
            let status = engine.status();
            (status.events_published, status.events_dropped)
        }
        None => (0, 0),
    };
    ttfs.sort_by(|a, b| a.total_cmp(b));
    gaps.sort_by(|a, b| a.total_cmp(b));
    let (gap_p50, gap_p99) = (nearest_rank(&gaps, 0.50), nearest_rank(&gaps, 0.99));

    // Record the derived service-level numbers on the engine's registry
    // so the final snapshot carries them next to the request counters.
    let m = engine.metrics();
    m.gauge_set("requests_per_second", &[], requests_per_second);
    m.gauge_set("request_p50_seconds", &[], nearest_rank(&latencies, 0.50));
    m.gauge_set("request_p99_seconds", &[], nearest_rank(&latencies, 0.99));
    if stream.is_some() {
        m.gauge_set("ttfs_p99_seconds", &[], nearest_rank(&ttfs, 0.99));
        m.gauge_set("step_gap_p99_seconds", &[], gap_p99);
        m.counter_add("events_dropped", &[], events_dropped);
    }
    let metrics_jsonl = obs::emit_jsonl(m, cfg.requests as u64);

    let report = ServeLoadReport {
        requests: cfg.requests,
        slots: cfg.slots,
        steps: cfg.steps,
        completed,
        failed,
        warmup_misses,
        steady_state_misses,
        warm_acquires,
        total_seconds,
        requests_per_second,
        p50_latency_seconds: nearest_rank(&latencies, 0.50),
        p99_latency_seconds: nearest_rank(&latencies, 0.99),
        max_latency_seconds: latencies.last().copied().unwrap_or(0.0),
        ttfs_p50_seconds: nearest_rank(&ttfs, 0.50),
        ttfs_p99_seconds: nearest_rank(&ttfs, 0.99),
        step_gap_p50_seconds: gap_p50,
        step_gap_p99_seconds: gap_p99,
        cadence_jitter_seconds: (gap_p99 - gap_p50).max(0.0),
        events_published,
        events_dropped,
        metrics_jsonl,
        health_jsonl,
        events_jsonl,
        overload: None,
    };
    engine.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeLoadConfig {
        ServeLoadConfig {
            requests: 4,
            slots: 2,
            steps: 1,
            tile_n: 8,
            nk: 3,
            streaming: true,
        }
    }

    #[test]
    fn load_run_reaches_steady_state_and_reports_latency() {
        let rep = serve_load(tiny());
        assert!(rep.is_clean(), "unclean serve run: {rep:?}");
        assert_eq!(rep.completed, 4);
        assert!(rep.warmup_misses > 0, "warmup must pay the compile bill");
        assert_eq!(rep.steady_state_misses, 0);
        assert!(rep.p50_latency_seconds <= rep.p99_latency_seconds);
        assert!(rep.p99_latency_seconds <= rep.max_latency_seconds);
        assert_eq!(rep.health_jsonl.lines().count(), 4 * 6, "one line per rank per step");
        assert!(rep.health_jsonl.contains("\"request\": \"r"));
        assert!(rep.metrics_jsonl.contains("requests_per_second"));
        // Streamed SLOs: every burst request was observed queue -> first
        // step on the bus, and the sized buffer dropped nothing.
        assert!(rep.events_published > 0);
        assert_eq!(rep.events_dropped, 0, "sized buffer must not drop");
        assert!(rep.ttfs_p50_seconds > 0.0, "time-to-first-step observed");
        assert!(rep.ttfs_p50_seconds <= rep.ttfs_p99_seconds);
    }

    #[test]
    fn streaming_off_measures_no_events_and_stays_clean() {
        let rep = serve_load(ServeLoadConfig {
            streaming: false,
            requests: 2,
            ..tiny()
        });
        assert!(rep.is_clean(), "unclean streaming-off run: {rep:?}");
        assert_eq!(rep.events_published, 0);
        assert_eq!(rep.events_dropped, 0);
        assert_eq!(rep.ttfs_p99_seconds, 0.0);
        assert_eq!(rep.cadence_jitter_seconds, 0.0);
        assert!(!rep.metrics_jsonl.contains("ttfs_p99_seconds"));
    }

    #[test]
    fn overload_study_degrades_gracefully_and_loses_nothing() {
        let rep = overload_study(ServeLoadConfig {
            requests: 8,
            slots: 2,
            ..tiny()
        });
        assert!(rep.is_clean(), "unclean overload study: {rep:?}");
        // Deterministic by construction: 8 fillers, a burst of 4 sheds
        // 4 and the other 4 expire in the queue; both plugs cancel.
        assert_eq!(rep.shed, 4);
        assert_eq!(rep.evicted, 4);
        assert_eq!(rep.cancelled, 2);
        assert_eq!(rep.completed, 4, "the whole burst is goodput");
        assert_eq!(rep.failed, 0);
        assert_eq!(rep.rejected_queue_full, 1);
        assert_eq!(rep.rejected_quota, 1);
        assert_eq!(rep.offered, rep.admitted + 2);
        // The degraded terminals all reached the event stream.
        assert!(rep.events_jsonl.contains("\"event\":\"request_shed\""));
        assert!(rep.events_jsonl.contains("\"event\":\"request_evicted\""));
        assert!(rep.events_jsonl.contains("\"event\":\"request_cancelled\""));
        let json = rep.to_json();
        assert!(json.contains("\"shed_rate\": "));
        assert!(json.contains("\"goodput_rps\": "));
        assert!(json.contains("\"eviction_past_deadline_p99_seconds\": "));
    }

    #[test]
    fn serve_json_is_a_flat_object() {
        let rep = serve_load(ServeLoadConfig {
            requests: 2,
            ..tiny()
        });
        let json = rep.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_per_second\": "));
        assert!(json.contains("\"p99_latency_seconds\": "));
        assert!(json.contains("\"steady_state_misses\": 0"));
        assert!(json.contains("\"ttfs_p99_seconds\": "));
        assert!(json.contains("\"events_dropped\": 0"));
    }
}
