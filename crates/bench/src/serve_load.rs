//! `serve_load`: a traffic generator for [`engine::ForecastEngine`].
//!
//! Measures what a one-shot profile cannot: the *service* view of the
//! dycore — sustained requests/second and tail latency when a burst of
//! tenants shares one persistent engine, and whether the shared
//! compiled-kernel cache really reaches steady state (every request
//! after the warmup must report zero `kernel_cache_misses`).
//!
//! The protocol mirrors the soak suite: one serialized warmup request
//! pays the case's compile bill, then `requests` concurrent submissions
//! race through `slots` run slots while the generator records
//! submit-to-finish latency per request. The report embeds into
//! `BENCH_dycore.json` as top-level, non-module fields (the per-module
//! regression gate ignores them, like `weak_scaling`), and its metrics
//! and per-request health streams ride the usual JSONL channels.

use engine::{EngineConfig, ForecastEngine, ForecastRequest, Scenario};
use fv3::dyn_core::DycoreConfig;
use fv3core::DriverConfig;
use obs::nearest_rank;
use obs::stream::RunEvent;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// Traffic shape for one load run.
#[derive(Debug, Clone, Copy)]
pub struct ServeLoadConfig {
    /// Requests in the measured burst (after the warmup).
    pub requests: usize,
    /// Engine run slots.
    pub slots: usize,
    /// Steps per request.
    pub steps: u64,
    /// Cube resolution per request.
    pub tile_n: usize,
    /// Vertical levels per request.
    pub nk: usize,
    /// Measure streamed SLOs from the live event bus (time-to-first-step
    /// and inter-step cadence) alongside the end-to-end latencies. When
    /// false the engine runs with the bus uninstalled — the shape used to
    /// prove streaming costs nothing on the hot path.
    pub streaming: bool,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            requests: 8,
            slots: 2,
            steps: 2,
            tile_n: 8,
            nk: 6,
            streaming: true,
        }
    }
}

impl ServeLoadConfig {
    /// The request every tenant submits.
    pub fn request(&self) -> ForecastRequest {
        let config = DriverConfig::six_rank(
            self.tile_n,
            self.nk,
            DycoreConfig {
                n_split: 1,
                k_split: 1,
                dt: 4.0,
                dddmp: 0.02,
                nord4_damp: None,
            },
        );
        ForecastRequest::new(Scenario::BaroclinicWave, config, self.steps)
    }
}

/// What one load run measured.
#[derive(Debug, Clone)]
pub struct ServeLoadReport {
    /// The traffic shape that produced this report.
    pub requests: usize,
    pub slots: usize,
    pub steps: u64,
    /// Burst requests that completed / failed.
    pub completed: u64,
    pub failed: u64,
    /// Kernel compilations the warmup request paid (the case's bill).
    pub warmup_misses: u64,
    /// Kernel compilations paid by the burst — must be 0: the service is
    /// in steady state after the first request.
    pub steady_state_misses: u64,
    /// Burst requests that reused a parked warm instance.
    pub warm_acquires: u64,
    /// Wall time of the measured burst.
    pub total_seconds: f64,
    /// Sustained throughput of the burst.
    pub requests_per_second: f64,
    /// Submit-to-finish latency percentiles (nearest-rank) and max.
    pub p50_latency_seconds: f64,
    pub p99_latency_seconds: f64,
    pub max_latency_seconds: f64,
    /// Streamed SLOs, computed post-hoc from event timestamps (`t_us`)
    /// drained off a bus-wide subscription — all 0.0 when `streaming` is
    /// off. Time-to-first-step: RequestQueued to first StepCompleted.
    pub ttfs_p50_seconds: f64,
    pub ttfs_p99_seconds: f64,
    /// Gap between consecutive StepCompleted events of one request,
    /// pooled across the burst.
    pub step_gap_p50_seconds: f64,
    pub step_gap_p99_seconds: f64,
    /// Cadence jitter: p99 minus p50 of the inter-step gap. A service
    /// whose steps tick like clockwork scores near zero.
    pub cadence_jitter_seconds: f64,
    /// Bus totals at the end of the burst (0 when streaming is off).
    pub events_published: u64,
    pub events_dropped: u64,
    /// Final cumulative engine-metrics snapshot (JSONL).
    pub metrics_jsonl: String,
    /// Per-step health of every burst request, each line tagged with its
    /// request id.
    pub health_jsonl: String,
    /// Every event the burst streamed, one JSON object per line in bus
    /// order (empty when `streaming` is off) — the `RUN_events.jsonl`
    /// artifact CI validates for lifecycle closure.
    pub events_jsonl: String,
}

impl ServeLoadReport {
    /// True when the run sustained the service contract: everything
    /// completed, nothing failed, nothing recompiled, and the clock
    /// actually advanced.
    pub fn is_clean(&self) -> bool {
        self.completed == self.requests as u64
            && self.failed == 0
            && self.steady_state_misses == 0
            && self.total_seconds > 0.0
            && self.requests_per_second > 0.0
            && self.p99_latency_seconds > 0.0
    }

    /// The `"serve"` object embedded in `BENCH_dycore.json` (top-level,
    /// outside the per-module regression gate).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\": {}, \"slots\": {}, \"steps_per_request\": {}, \
             \"completed\": {}, \"failed\": {}, \"warmup_misses\": {}, \
             \"steady_state_misses\": {}, \"warm_acquires\": {}, \
             \"total_seconds\": {}, \"requests_per_second\": {}, \
             \"p50_latency_seconds\": {}, \"p99_latency_seconds\": {}, \
             \"max_latency_seconds\": {}, \
             \"ttfs_p50_seconds\": {}, \"ttfs_p99_seconds\": {}, \
             \"step_gap_p50_seconds\": {}, \"step_gap_p99_seconds\": {}, \
             \"cadence_jitter_seconds\": {}, \
             \"events_published\": {}, \"events_dropped\": {}}}",
            self.requests,
            self.slots,
            self.steps,
            self.completed,
            self.failed,
            self.warmup_misses,
            self.steady_state_misses,
            self.warm_acquires,
            self.total_seconds,
            self.requests_per_second,
            self.p50_latency_seconds,
            self.p99_latency_seconds,
            self.max_latency_seconds,
            self.ttfs_p50_seconds,
            self.ttfs_p99_seconds,
            self.step_gap_p50_seconds,
            self.step_gap_p99_seconds,
            self.cadence_jitter_seconds,
            self.events_published,
            self.events_dropped
        )
    }
}

/// Run one load shape against a fresh persistent engine and measure it.
pub fn serve_load(cfg: ServeLoadConfig) -> ServeLoadReport {
    // Size the per-subscriber buffer so a clean burst never drops: per
    // request one StepCompleted + one HealthSample per step, a handful
    // of lifecycle/checkpoint events, plus engine ticks.
    let stream_buffer = cfg.requests.max(1) * (2 * cfg.steps as usize + 24) + 64;
    let engine = ForecastEngine::start(EngineConfig {
        slots: cfg.slots,
        queue_cap: cfg.requests.max(1) + 1,
        streaming: cfg.streaming,
        stream_buffer,
        ..EngineConfig::default()
    });

    // Warmup: one serialized request compiles the case so the burst
    // below measures the service steady state, not cold start.
    let warm = engine.submit(cfg.request().with_label("warmup"));
    let warmup_misses = match engine.wait(warm).result {
        Ok(rep) => rep.cache_misses,
        Err(e) => panic!("serve_load warmup failed: {e}"),
    };

    // Subscribe after the warmup so the drained stream carries exactly
    // the burst. `subscribe_all` is None when streaming is off.
    let stream = engine.subscribe_all();

    let t0 = Instant::now();
    let ids: Vec<_> = (0..cfg.requests)
        .map(|i| engine.submit(cfg.request().with_label(&format!("load-{i}"))))
        .collect();

    let mut latencies = Vec::with_capacity(cfg.requests);
    let mut steady_state_misses = 0u64;
    let mut warm_acquires = 0u64;
    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut health_jsonl = String::new();
    for id in ids {
        let out = engine.wait(id);
        latencies.push(out.latency_seconds());
        match out.result {
            Ok(rep) => {
                completed += 1;
                steady_state_misses += rep.cache_misses;
                warm_acquires += rep.warm_start as u64;
                // Tag each health line with the request that produced it
                // so one stream carries every tenant.
                let tag = format!("{{\"request\": \"{}\", ", out.id);
                for line in rep.health_jsonl().lines() {
                    let _ = writeln!(health_jsonl, "{}", line.replacen('{', &tag, 1));
                }
            }
            Err(_) => failed += 1,
        }
    }
    let total_seconds = t0.elapsed().as_secs_f64();

    latencies.sort_by(|a, b| a.total_cmp(b));
    let requests_per_second = if total_seconds > 0.0 {
        completed as f64 / total_seconds
    } else {
        0.0
    };

    // Streamed SLOs: every waited-on request published its events before
    // its outcome became visible, so a single post-hoc drain sees the
    // whole burst — no collector thread perturbs the measured run.
    let (mut ttfs, mut gaps) = (Vec::new(), Vec::new());
    let mut events_jsonl = String::new();
    let (events_published, events_dropped) = match &stream {
        Some(stream) => {
            let mut queued_at: HashMap<String, f64> = HashMap::new();
            let mut steps_at: HashMap<String, Vec<f64>> = HashMap::new();
            for ev in stream.drain() {
                let _ = writeln!(events_jsonl, "{}", ev.to_json());
                let Some(req) = ev.request else { continue };
                match ev.body {
                    RunEvent::RequestQueued { .. } => {
                        queued_at.insert(req, ev.t_us);
                    }
                    RunEvent::StepCompleted { .. } => {
                        steps_at.entry(req).or_default().push(ev.t_us)
                    }
                    _ => {}
                }
            }
            for (req, ts) in &steps_at {
                if let (Some(q), Some(first)) = (queued_at.get(req), ts.first()) {
                    ttfs.push((first - q) / 1e6);
                }
                gaps.extend(ts.windows(2).map(|w| (w[1] - w[0]) / 1e6));
            }
            let status = engine.status();
            (status.events_published, status.events_dropped)
        }
        None => (0, 0),
    };
    ttfs.sort_by(|a, b| a.total_cmp(b));
    gaps.sort_by(|a, b| a.total_cmp(b));
    let (gap_p50, gap_p99) = (nearest_rank(&gaps, 0.50), nearest_rank(&gaps, 0.99));

    // Record the derived service-level numbers on the engine's registry
    // so the final snapshot carries them next to the request counters.
    let m = engine.metrics();
    m.gauge_set("requests_per_second", &[], requests_per_second);
    m.gauge_set("request_p50_seconds", &[], nearest_rank(&latencies, 0.50));
    m.gauge_set("request_p99_seconds", &[], nearest_rank(&latencies, 0.99));
    if stream.is_some() {
        m.gauge_set("ttfs_p99_seconds", &[], nearest_rank(&ttfs, 0.99));
        m.gauge_set("step_gap_p99_seconds", &[], gap_p99);
        m.counter_add("events_dropped", &[], events_dropped);
    }
    let metrics_jsonl = obs::emit_jsonl(m, cfg.requests as u64);

    let report = ServeLoadReport {
        requests: cfg.requests,
        slots: cfg.slots,
        steps: cfg.steps,
        completed,
        failed,
        warmup_misses,
        steady_state_misses,
        warm_acquires,
        total_seconds,
        requests_per_second,
        p50_latency_seconds: nearest_rank(&latencies, 0.50),
        p99_latency_seconds: nearest_rank(&latencies, 0.99),
        max_latency_seconds: latencies.last().copied().unwrap_or(0.0),
        ttfs_p50_seconds: nearest_rank(&ttfs, 0.50),
        ttfs_p99_seconds: nearest_rank(&ttfs, 0.99),
        step_gap_p50_seconds: gap_p50,
        step_gap_p99_seconds: gap_p99,
        cadence_jitter_seconds: (gap_p99 - gap_p50).max(0.0),
        events_published,
        events_dropped,
        metrics_jsonl,
        health_jsonl,
        events_jsonl,
    };
    engine.shutdown();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeLoadConfig {
        ServeLoadConfig {
            requests: 4,
            slots: 2,
            steps: 1,
            tile_n: 8,
            nk: 3,
            streaming: true,
        }
    }

    #[test]
    fn load_run_reaches_steady_state_and_reports_latency() {
        let rep = serve_load(tiny());
        assert!(rep.is_clean(), "unclean serve run: {rep:?}");
        assert_eq!(rep.completed, 4);
        assert!(rep.warmup_misses > 0, "warmup must pay the compile bill");
        assert_eq!(rep.steady_state_misses, 0);
        assert!(rep.p50_latency_seconds <= rep.p99_latency_seconds);
        assert!(rep.p99_latency_seconds <= rep.max_latency_seconds);
        assert_eq!(rep.health_jsonl.lines().count(), 4 * 6, "one line per rank per step");
        assert!(rep.health_jsonl.contains("\"request\": \"r"));
        assert!(rep.metrics_jsonl.contains("requests_per_second"));
        // Streamed SLOs: every burst request was observed queue -> first
        // step on the bus, and the sized buffer dropped nothing.
        assert!(rep.events_published > 0);
        assert_eq!(rep.events_dropped, 0, "sized buffer must not drop");
        assert!(rep.ttfs_p50_seconds > 0.0, "time-to-first-step observed");
        assert!(rep.ttfs_p50_seconds <= rep.ttfs_p99_seconds);
    }

    #[test]
    fn streaming_off_measures_no_events_and_stays_clean() {
        let rep = serve_load(ServeLoadConfig {
            streaming: false,
            requests: 2,
            ..tiny()
        });
        assert!(rep.is_clean(), "unclean streaming-off run: {rep:?}");
        assert_eq!(rep.events_published, 0);
        assert_eq!(rep.events_dropped, 0);
        assert_eq!(rep.ttfs_p99_seconds, 0.0);
        assert_eq!(rep.cadence_jitter_seconds, 0.0);
        assert!(!rep.metrics_jsonl.contains("ttfs_p99_seconds"));
    }

    #[test]
    fn serve_json_is_a_flat_object() {
        let rep = serve_load(ServeLoadConfig {
            requests: 2,
            ..tiny()
        });
        let json = rep.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"requests_per_second\": "));
        assert!(json.contains("\"p99_latency_seconds\": "));
        assert!(json.contains("\"steady_state_misses\": 0"));
        assert!(json.contains("\"ttfs_p99_seconds\": "));
        assert!(json.contains("\"events_dropped\": 0"));
    }
}
