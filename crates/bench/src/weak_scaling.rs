//! Measured weak-scaling overlap study (ISSUE 6): run the distributed
//! dycore at c8 (rt=1), c48 (rt=2), and c96 (rt=4) under both rank
//! schedules and report, per point, the sequential step time, the
//! parallel step time, the compute/comm overlap split
//! ([`obs::OverlapStats`]), and the measured wire traffic. This is the
//! measured analogue of the paper's Fig. 11 weak-scaling argument: with
//! the subdomain held (nearly) fixed, per-rank communication stays flat
//! and the halo latency hides behind interior compute.
//!
//! The c48 point's overlap numbers are exported into `BENCH_dycore.json`
//! as *top-level* fields (never module rows, so the per-module >15%
//! regression gate ignores them) by [`crate::profile::bench_json_with_scaling`].

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3core::{DistributedDycore, DriverConfig, RankSchedule};
use std::fmt::Write as _;
use std::time::Instant;

/// One resolution point of the measured study.
#[derive(Debug, Clone)]
pub struct OverlapPoint {
    /// Case label, e.g. `"c48rt2"`.
    pub case: String,
    pub tile_n: usize,
    pub rt: usize,
    pub ranks: usize,
    /// Cells per subdomain edge (constant under weak scaling).
    pub sub_n: usize,
    pub steps: usize,
    /// Wall seconds per step, sequential rank schedule.
    pub seq_step_seconds: f64,
    /// Wall seconds per step, parallel rank schedule.
    pub par_step_seconds: f64,
    /// Interior compute run while the exchange was in flight (sum over
    /// ranks and substeps).
    pub interior_seconds: f64,
    /// Unhidden halo wait after interior compute finished.
    pub halo_wait_seconds: f64,
    /// Fraction of the halo latency hidden behind interior compute.
    pub overlap_efficiency: f64,
    /// Measured wire bytes posted by the parallel schedule.
    pub halo_bytes: u64,
    /// Measured messages posted by the parallel schedule.
    pub halo_messages: u64,
}

/// The three standard study points: same-shape subdomains from 6 to 96
/// ranks (c8 keeps rt=1 so the smallest case stays the tier-1 seed
/// shape; c48/c96 hold sub_n = 24 exactly).
pub const STUDY_POINTS: [(usize, usize); 3] = [(8, 1), (48, 2), (96, 4)];

fn study_config(tile_n: usize, rt: usize, nk: usize) -> DriverConfig {
    DriverConfig {
        tile_n,
        rt,
        nk,
        dycore: DycoreConfig {
            n_split: 1,
            k_split: 1,
            dt: 2.0,
            dddmp: 0.02,
            nord4_damp: None,
        },
    }
}

/// Run one point: `steps` timesteps under each schedule, overlap and
/// traffic taken from the parallel run.
pub fn measure_point(tile_n: usize, rt: usize, nk: usize, steps: usize) -> OverlapPoint {
    let attrs = ExpansionAttrs::tuned();

    let mut seq = DistributedDycore::new(study_config(tile_n, rt, nk), &attrs);
    let t0 = Instant::now();
    for _ in 0..steps {
        seq.step();
    }
    let seq_step_seconds = t0.elapsed().as_secs_f64() / steps as f64;

    let mut par = DistributedDycore::new(study_config(tile_n, rt, nk), &attrs);
    par.set_rank_schedule(RankSchedule::Parallel);
    let t1 = Instant::now();
    for _ in 0..steps {
        par.step();
    }
    let par_step_seconds = t1.elapsed().as_secs_f64() / steps as f64;
    let stats = par.overlap_stats();
    let (halo_bytes, halo_messages) = par.halo_traffic_posted();

    OverlapPoint {
        case: format!("c{tile_n}rt{rt}"),
        tile_n,
        rt,
        ranks: par.partition.ranks(),
        sub_n: par.partition.sub_n,
        steps,
        seq_step_seconds,
        par_step_seconds,
        interior_seconds: stats.interior_seconds,
        halo_wait_seconds: stats.halo_wait_seconds,
        overlap_efficiency: stats.efficiency(),
        halo_bytes,
        halo_messages,
    }
}

/// Run the full c8/c48/c96 study.
pub fn weak_scaling_study(nk: usize, steps: usize) -> Vec<OverlapPoint> {
    STUDY_POINTS
        .iter()
        .map(|&(n, rt)| measure_point(n, rt, nk, steps))
        .collect()
}

/// Render the study as the JSON array embedded at the top level of
/// `BENCH_dycore.json` (non-module fields: invisible to the per-module
/// regression gate).
pub fn study_json(points: &[OverlapPoint]) -> String {
    let rows: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"case\": \"{}\", \"ranks\": {}, \"sub_n\": {}, \"steps\": {}, \
                 \"seq_step_seconds\": {}, \"par_step_seconds\": {}, \
                 \"interior_seconds\": {}, \"halo_wait_seconds\": {}, \
                 \"overlap_efficiency\": {}, \"halo_bytes\": {}, \"halo_messages\": {}}}",
                p.case,
                p.ranks,
                p.sub_n,
                p.steps,
                p.seq_step_seconds,
                p.par_step_seconds,
                p.interior_seconds,
                p.halo_wait_seconds,
                p.overlap_efficiency,
                p.halo_bytes,
                p.halo_messages
            )
        })
        .collect();
    format!("[\n{}\n  ]", rows.join(",\n"))
}

/// Render the human-readable study table (printed by `profile_dycore`
/// and pasted into EXPERIMENTS.md).
pub fn study_table(points: &[OverlapPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<8} {:>6} {:>6} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "case", "ranks", "sub_n", "seq[ms/st]", "par[ms/st]", "wait[ms]", "KiB/rank", "overlap"
    );
    for p in points {
        let _ = writeln!(
            out,
            "{:<8} {:>6} {:>6} {:>12.2} {:>12.2} {:>10.2} {:>10.1} {:>7.1}%",
            p.case,
            p.ranks,
            p.sub_n,
            p.seq_step_seconds * 1e3,
            p.par_step_seconds * 1e3,
            p.halo_wait_seconds * 1e3,
            p.halo_bytes as f64 / 1024.0 / p.ranks as f64,
            p.overlap_efficiency * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn c8_point_reports_traffic_and_positive_times() {
        let p = measure_point(8, 1, 2, 1);
        assert_eq!(p.ranks, 6);
        assert_eq!(p.sub_n, 8);
        assert!(p.seq_step_seconds > 0.0 && p.par_step_seconds > 0.0);
        assert!(p.halo_bytes > 0 && p.halo_messages > 0);
        assert!(p.overlap_efficiency >= 0.0 && p.overlap_efficiency <= 1.0);
    }

    #[test]
    fn study_json_is_embeddable() {
        let p = measure_point(8, 1, 2, 1);
        let json = study_json(&[p]);
        assert!(json.starts_with("[\n"));
        assert!(json.contains("\"case\": \"c8rt1\""));
        assert!(json.contains("\"overlap_efficiency\":"));
    }
}
