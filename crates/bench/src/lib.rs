//! Evaluation harness for the reproduction: one binary per paper table
//! or figure (see `src/bin/`), plus Criterion wall-clock benches (see
//! `benches/`). The mapping from experiment to binary lives in
//! DESIGN.md's per-experiment index; paper-vs-measured results live in
//! EXPERIMENTS.md.

pub mod profile;
pub mod serve_load;
pub mod weak_scaling;
