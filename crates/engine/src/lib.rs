//! Forecast-as-a-service: a persistent multi-tenant run engine.
//!
//! The one-shot binaries pay the whole productivity-infrastructure bill
//! — program build, library expansion, kernel compilation, grid
//! computation — for exactly one forecast. [`ForecastEngine`] amortizes
//! it the way the paper's compiled-backend story intends: a long-lived
//! process accepts [`ForecastRequest`]s on a submission queue, schedules
//! them across a bounded set of *run slots* (one OS thread each), and
//! shares per-(scenario, config) machinery across tenants:
//!
//! * **one compiled program instance** — a
//!   [`fv3core::CompiledSubstep`] bundle per case, so every tenant runs
//!   the *same* `Sdfg` (one `(uid, generation)` cache namespace) through
//!   the same pinned executors. Request N+1 pays zero kernel
//!   compilation; the engine's `kernel_cache_{hits,misses}` counters
//!   prove it per request.
//! * **one grid-metadata set** — per-rank [`fv3::grid::Grid`]s behind an
//!   `Arc`, computed once per case.
//! * **one worker team** — every slot's kernels drain through the shared
//!   [`machine::pool::Pool`]; its region lock is the admission control
//!   that keeps concurrent tenants from oversubscribing the host.
//! * **warm instances** — completed tenants park their
//!   [`DistributedDycore`] (grids, halo updater, mailboxes) in a bounded
//!   per-case pool; the next request rewinds it to the step-0 template
//!   checkpoint instead of rebuilding, which is bit-identical to a fresh
//!   build (`tests/multi_tenant.rs`).
//!
//! **Isolation.** Each request runs under its own
//! [`resilience::Supervisor`]: a tenant that blows up rolls back and
//! retries within its own instance, and a tenant that fails for good is
//! *discarded* — its outcome carries a [`SupervisedError`] tagged with
//! its [`RequestId`], its neighbours never observe the fault, and the
//! shared compile bundle (held by `Arc`) survives the discard
//! (`tests/fault_isolation.rs`).
//!
//! **Observability.** The engine owns a [`MetricsRegistry`]: aggregate
//! counters (`requests_{submitted,started,completed,failed}`,
//! `kernel_cache_{hits,misses}`, `warm_acquires`, `cold_builds`) plus
//! per-request series labelled `request="rN"`. Each request also opens a
//! `request` span on the globally-installed tracer (when one is
//! installed) and returns its full per-step health history and final
//! field snapshot in the [`ForecastReport`].

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3::state::DycoreState;
use fv3core::{Checkpoint, CompiledSubstep, DistributedDycore, DriverConfig};
use machine::faults::ArmGuard;
use machine::pool::Pool;
use obs::stream::{EventBus, EventSink, EventStream, RunEvent};
use obs::MetricsRegistry;
use resilience::{FaultPlan, RunReport, SupervisedError, Supervisor, SupervisorPolicy};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine-assigned request identifier; labels every metric, span, and
/// error the request produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The scenario a request wants forecast. Today the library has one
/// entry (ROADMAP item 4 grows it); it is part of the case key so a
/// future scenario with identical numerics still gets its own compile
/// bundle when its initial conditions differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scenario {
    /// The c-grid baroclinic instability wave (DCMIP-style), the repo's
    /// golden-anchored case.
    #[default]
    BaroclinicWave,
}

impl Scenario {
    /// Stable name for labels and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::BaroclinicWave => "baroclinic_wave",
        }
    }
}

/// One unit of work: scenario + driver configuration + step budget.
#[derive(Debug, Clone)]
pub struct ForecastRequest {
    pub scenario: Scenario,
    pub config: DriverConfig,
    /// Supervised driver steps to run.
    pub steps: u64,
    /// Optional client label carried through to the outcome (defaults to
    /// the request id).
    pub label: String,
}

impl ForecastRequest {
    /// A request for `steps` steps of `scenario` under `config`.
    pub fn new(scenario: Scenario, config: DriverConfig, steps: u64) -> Self {
        ForecastRequest {
            scenario,
            config,
            steps,
            label: String::new(),
        }
    }

    /// The standard c8L6 baroclinic-wave case (the repo's golden case).
    pub fn c8l6(steps: u64) -> Self {
        let config = DriverConfig::six_rank(
            8,
            6,
            DycoreConfig {
                n_split: 1,
                k_split: 1,
                dt: 4.0,
                dddmp: 0.02,
                nord4_damp: None,
            },
        );
        ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
    }

    /// Attach a client label.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Everything that must agree for two requests to share one compile
/// bundle, grid set, and warm-instance pool. Floats are keyed by bits
/// (the same discipline as the driver's internal step key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CaseKey {
    scenario: Scenario,
    tile_n: usize,
    rt: usize,
    nk: usize,
    n_split: u32,
    k_split: u32,
    dt: u64,
    dddmp: u64,
    nord4: Option<u64>,
}

impl CaseKey {
    fn of(req: &ForecastRequest) -> Self {
        let c = req.config;
        CaseKey {
            scenario: req.scenario,
            tile_n: c.tile_n,
            rt: c.rt,
            nk: c.nk,
            n_split: c.dycore.n_split,
            k_split: c.dycore.k_split,
            dt: c.dycore.dt.to_bits(),
            dddmp: c.dycore.dddmp.to_bits(),
            nord4: c.dycore.nord4_damp.map(f64::to_bits),
        }
    }
}

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent run slots (each one OS thread executing requests).
    pub slots: usize,
    /// Submission-queue capacity; [`ForecastEngine::submit`] blocks and
    /// [`ForecastEngine::try_submit`] refuses beyond it (admission
    /// control at the front door).
    pub queue_cap: usize,
    /// Shared kernel worker team (`None`: [`Pool::host`], which honours
    /// `FV3_WORKERS`).
    pub pool: Option<Pool>,
    /// Per-request supervision policy.
    pub policy: SupervisorPolicy,
    /// Warm instances parked per case (0 disables warm reuse).
    pub warm_cap: usize,
    /// Live telemetry ([`obs::stream`]): when true the engine owns an
    /// [`EventBus`] and every request streams its lifecycle and per-step
    /// events ([`ForecastEngine::subscribe`]). When false the bus is
    /// never created and the hot path publishes nothing — runs are
    /// bit-identical either way (events carry copies, never borrows).
    pub streaming: bool,
    /// Per-subscriber event-buffer capacity; when a slow subscriber
    /// falls this far behind, its *oldest* events are dropped and
    /// counted (`events_dropped`) — a subscriber can never stall a slot.
    pub stream_buffer: usize,
    /// Cadence for periodic [`RunEvent::EngineTick`] snapshots from a
    /// background thread (`None`: ticks only on request transitions).
    pub tick_every: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            slots: 2,
            queue_cap: 64,
            pool: None,
            policy: SupervisorPolicy::default(),
            warm_cap: 4,
            streaming: true,
            stream_buffer: 1024,
            tick_every: None,
        }
    }
}

impl EngineConfig {
    /// Defaults with the supervision policy read from the environment
    /// (`FV3_CHECKPOINT_DIR`, `FV3_MAX_RETRIES`, ... — see
    /// [`SupervisorPolicy::from_env`]).
    pub fn from_env() -> Self {
        EngineConfig {
            policy: SupervisorPolicy::from_env(),
            ..EngineConfig::default()
        }
    }
}

/// Why a request failed. Either way the failure is confined to the one
/// request: neighbours keep running and the case's compile bundle stays
/// warm.
#[derive(Debug)]
pub enum EngineFailure {
    /// The per-request supervisor exhausted its recovery budget; carries
    /// the blowup report and the recovery-event history.
    Supervised(Box<SupervisedError>),
    /// The request panicked outside the supervised step (a bug, not a
    /// numerical failure); the slot survives and reports it.
    Panic(String),
}

impl fmt::Display for EngineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineFailure::Supervised(e) => write!(f, "supervised failure: {e}"),
            EngineFailure::Panic(p) => write!(f, "request panicked: {p}"),
        }
    }
}

/// A completed forecast: the supervised run history plus the final
/// prognostic fields.
#[derive(Debug)]
pub struct ForecastReport {
    /// Steps the request asked for (all completed).
    pub steps: u64,
    /// Final driver configuration (reflects any supervisor backoff).
    pub config: DriverConfig,
    /// Supervised-run history: retries, rollbacks, health samples.
    pub run: RunReport,
    /// Final per-rank prognostic states.
    pub states: Vec<DycoreState>,
    /// Compiled-kernel cache hits this request observed.
    pub cache_hits: u64,
    /// Kernel compilations this request paid for. Zero for every request
    /// after a case's first — the point of the shared bundle.
    pub cache_misses: u64,
    /// Whether the request reused a parked warm instance.
    pub warm_start: bool,
}

impl ForecastReport {
    /// The final fields as an `FV3CKPT1` snapshot stream — the "fields
    /// out" channel of the serving API, decodable with
    /// [`Checkpoint::from_bytes`].
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        Checkpoint {
            step: self.steps,
            config: self.config,
            states: self.states.clone(),
            basis: None,
        }
        .to_bytes()
    }

    /// Per-step health samples as JSONL (one line per rank per step).
    pub fn health_jsonl(&self) -> String {
        self.run.monitor.to_jsonl()
    }
}

/// Everything the engine knows about a finished request.
#[derive(Debug)]
pub struct ForecastOutcome {
    pub id: RequestId,
    pub label: String,
    /// Seconds spent queued before a slot picked the request up.
    pub queued_seconds: f64,
    /// Seconds spent executing.
    pub run_seconds: f64,
    pub result: Result<ForecastReport, EngineFailure>,
}

impl ForecastOutcome {
    /// Submit-to-finish latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.queued_seconds + self.run_seconds
    }
}

/// Aggregate counters (from the engine's metrics registry) plus the
/// point-in-time occupancy the raw metrics could only approximate:
/// current queue depth, busy run slots, and parked warm instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected: u64,
    pub warm_acquires: u64,
    pub cold_builds: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Requests queued (not yet picked up) right now.
    pub queue_depth: u64,
    /// Run slots currently executing a request.
    pub slots_busy: u64,
    /// Total run slots.
    pub slots: u64,
    /// Warm instances parked across all cases right now.
    pub warm_pool: u64,
}

/// Live progress of one running request, from the telemetry plane's
/// progress mirror (tracked even when streaming is disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProgress {
    pub id: RequestId,
    pub label: String,
    /// Driver steps completed so far.
    pub steps_done: u64,
    /// Steps the request asked for.
    pub steps_budget: u64,
    /// Wall seconds of the most recent completed step (0 before the
    /// first).
    pub last_step_seconds: f64,
    /// Latest per-step health verdict from the request's supervisor
    /// (`None` until the first sample).
    pub last_healthy: Option<bool>,
}

/// A point-in-time snapshot of the whole engine
/// ([`ForecastEngine::status`]): what is queued, what is running and how
/// far along, and how the telemetry plane itself is doing.
#[derive(Debug, Clone)]
pub struct EngineStatus {
    /// Requests waiting in the submission queue, in queue order.
    pub queued: Vec<(RequestId, String)>,
    /// Requests currently executing, ordered by id.
    pub running: Vec<RequestProgress>,
    /// Total run slots / slots currently busy.
    pub slots: usize,
    pub slots_busy: usize,
    /// Warm instances parked across all cases.
    pub warm_pool: usize,
    /// Events published on the bus so far (0 when streaming is off).
    pub events_published: u64,
    /// Events dropped across all subscribers (drop-oldest backpressure).
    pub events_dropped: u64,
    /// Aggregate counters at snapshot time.
    pub stats: EngineStats,
}

impl EngineStatus {
    /// Queue depth at snapshot time.
    pub fn queue_depth(&self) -> usize {
        self.queued.len()
    }
}

struct Pending {
    id: u64,
    label: String,
    req: ForecastRequest,
    submitted: Instant,
}

/// What the engine tracks about a request a slot is executing right
/// now: its budget and the telemetry sink whose progress mirror
/// [`ForecastEngine::status`] reads.
struct ActiveRequest {
    label: String,
    steps_budget: u64,
    sink: EventSink,
}

struct QueueState {
    pending: VecDeque<Pending>,
    /// Cleared on shutdown; slots drain the queue, then exit.
    open: bool,
}

/// Per-case shared machinery plus the warm-instance pool.
struct CaseCache {
    substep: Arc<CompiledSubstep>,
    grids: Option<Arc<Vec<fv3::grid::Grid>>>,
    /// Step-0 template; rewinding a warm instance through it is
    /// bit-identical to a fresh build.
    reset: Option<Arc<Checkpoint>>,
    warm: Vec<DistributedDycore>,
}

struct EngineInner {
    queue_cap: usize,
    warm_cap: usize,
    policy: SupervisorPolicy,
    pool: Pool,
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    space_cv: Condvar,
    cases: Mutex<HashMap<CaseKey, CaseCache>>,
    results: Mutex<HashMap<u64, ForecastOutcome>>,
    done_cv: Condvar,
    metrics: MetricsRegistry,
    next_id: AtomicU64,
    /// The live telemetry bus (`None`: streaming disabled — nothing is
    /// ever published and runs pay zero event cost).
    bus: Option<EventBus>,
    /// Total run slots / slots currently executing a request.
    slots_n: usize,
    slots_busy: AtomicUsize,
    /// Requests currently executing, for [`ForecastEngine::status`].
    active: Mutex<HashMap<u64, ActiveRequest>>,
    /// Set on shutdown so the tick thread exits promptly.
    stopping: AtomicBool,
    tick_cv: Condvar,
    tick_lock: Mutex<()>,
}

impl EngineInner {
    /// Warm instances parked across all cases right now.
    fn warm_pool_size(&self) -> usize {
        lock(&self.cases).values().map(|c| c.warm.len()).sum()
    }

    /// Publish one engine-wide tick snapshot (no-op when streaming is
    /// off). Called on request transitions and by the tick thread.
    fn emit_tick(&self) {
        let Some(bus) = &self.bus else { return };
        let queue_depth = lock(&self.queue).pending.len() as u64;
        bus.publish(
            None,
            RunEvent::EngineTick {
                queue_depth,
                slots: self.slots_n as u64,
                slots_busy: self.slots_busy.load(Ordering::Relaxed) as u64,
                warm_pool: self.warm_pool_size() as u64,
                events_dropped: bus.events_dropped(),
            },
        );
    }
}

/// The persistent multi-tenant run engine. See the crate docs.
pub struct ForecastEngine {
    inner: Arc<EngineInner>,
    slots: Vec<JoinHandle<()>>,
    /// Periodic [`RunEvent::EngineTick`] emitter (only when
    /// `tick_every` is set and streaming is on).
    ticker: Option<JoinHandle<()>>,
    /// Keeps an `FV3_FAULT_PLAN` armed for the engine's lifetime (chaos
    /// testing of the serving layer, `tests/fault_isolation.rs`).
    _faults: Option<ArmGuard>,
}

impl ForecastEngine {
    /// Start the engine: spawn the run slots and, when `FV3_FAULT_PLAN`
    /// is set, arm the fault plan for the engine's lifetime.
    pub fn start(cfg: EngineConfig) -> Self {
        let faults = FaultPlan::from_env()
            .unwrap_or_else(|e| panic!("invalid FV3_FAULT_PLAN: {e}"))
            .map(|p| p.arm());
        let pool = cfg.pool.unwrap_or_else(Pool::host);
        let slots_n = cfg.slots.max(1);
        let inner = Arc::new(EngineInner {
            queue_cap: cfg.queue_cap.max(1),
            warm_cap: cfg.warm_cap,
            policy: cfg.policy,
            pool,
            queue: Mutex::new(QueueState {
                pending: VecDeque::new(),
                open: true,
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            cases: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            metrics: MetricsRegistry::new(),
            next_id: AtomicU64::new(1),
            bus: cfg.streaming.then(|| EventBus::new(cfg.stream_buffer)),
            slots_n,
            slots_busy: AtomicUsize::new(0),
            active: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            tick_cv: Condvar::new(),
            tick_lock: Mutex::new(()),
        });
        // Pre-register every aggregate counter (at 0) so the exported
        // series set is the same for an idle, a failure-free, and a
        // fully exercised engine — consumers never special-case absence.
        for name in [
            "requests_submitted",
            "requests_started",
            "requests_completed",
            "requests_failed",
            "requests_rejected",
            "kernel_cache_hits",
            "kernel_cache_misses",
            "warm_acquires",
            "warm_parks",
            "cold_builds",
            "instances_discarded",
        ] {
            inner.metrics.counter_add(name, &[], 0);
        }
        let slots = (0..slots_n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fv3-serve-{i}"))
                    .spawn(move || slot_loop(&inner))
                    .expect("failed to spawn engine slot")
            })
            .collect();
        let ticker = match (cfg.tick_every, inner.bus.is_some()) {
            (Some(period), true) => {
                let inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("fv3-serve-tick".to_string())
                        .spawn(move || {
                            let mut g = lock(&inner.tick_lock);
                            while !inner.stopping.load(Ordering::Relaxed) {
                                let (g2, _) = inner
                                    .tick_cv
                                    .wait_timeout(g, period)
                                    .unwrap_or_else(|e| e.into_inner());
                                g = g2;
                                if inner.stopping.load(Ordering::Relaxed) {
                                    break;
                                }
                                inner.emit_tick();
                            }
                        })
                        .expect("failed to spawn engine ticker"),
                )
            }
            _ => None,
        };
        ForecastEngine {
            inner,
            slots,
            ticker,
            _faults: faults,
        }
    }

    /// Submit a request, blocking while the queue is at capacity.
    pub fn submit(&self, req: ForecastRequest) -> RequestId {
        let mut q = lock(&self.inner.queue);
        while q.pending.len() >= self.inner.queue_cap {
            q = wait(&self.inner.space_cv, q);
        }
        self.enqueue(q, req)
    }

    /// Submit without blocking; hands the request back when the queue is
    /// full.
    pub fn try_submit(&self, req: ForecastRequest) -> Result<RequestId, ForecastRequest> {
        let q = lock(&self.inner.queue);
        if q.pending.len() >= self.inner.queue_cap {
            self.inner.metrics.counter_add("requests_rejected", &[], 1);
            return Err(req);
        }
        Ok(self.enqueue(q, req))
    }

    fn enqueue(&self, mut q: MutexGuard<'_, QueueState>, req: ForecastRequest) -> RequestId {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let label = if req.label.is_empty() {
            format!("r{id}")
        } else {
            req.label.clone()
        };
        self.inner.metrics.counter_add("requests_submitted", &[], 1);
        self.inner
            .metrics
            .gauge_high_water("queue_depth_high_water", &[], (q.pending.len() + 1) as f64);
        let steps = req.steps;
        q.pending.push_back(Pending {
            id,
            label: label.clone(),
            req,
            submitted: Instant::now(),
        });
        // Emitted while still holding the queue lock: a slot cannot pop
        // this request (and emit RequestStarted) before Queued is on the
        // bus, so every subscriber sees Queued -> Started in order.
        if let Some(bus) = &self.inner.bus {
            bus.publish(
                Some(&format!("r{id}")),
                RunEvent::RequestQueued {
                    label,
                    steps,
                    queue_depth: q.pending.len() as u64,
                },
            );
        }
        drop(q);
        self.inner.work_cv.notify_one();
        RequestId(id)
    }

    /// Block until `id`'s outcome is available and take it. Each outcome
    /// can be taken exactly once.
    pub fn wait(&self, id: RequestId) -> ForecastOutcome {
        self.wait_inner(id, None).expect("unbounded wait")
    }

    /// Like [`wait`](Self::wait) with a deadline; `None` on expiry (the
    /// request stays queued/running and can be waited on again).
    pub fn wait_timeout(&self, id: RequestId, timeout: Duration) -> Option<ForecastOutcome> {
        self.wait_inner(id, Some(Instant::now() + timeout))
    }

    fn wait_inner(&self, id: RequestId, deadline: Option<Instant>) -> Option<ForecastOutcome> {
        let mut r = lock(&self.inner.results);
        loop {
            if let Some(o) = r.remove(&id.0) {
                return Some(o);
            }
            match deadline {
                None => r = wait(&self.inner.done_cv, r),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (g, _) = self
                        .inner
                        .done_cv
                        .wait_timeout(r, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    r = g;
                }
            }
        }
    }

    /// Requests currently queued (not yet picked up by a slot).
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner.queue).pending.len()
    }

    /// The engine's metrics registry (aggregate + per-request series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shared kernel worker team.
    pub fn pool(&self) -> &Pool {
        &self.inner.pool
    }

    /// Aggregate counters so far, plus point-in-time occupancy (queue
    /// depth, busy slots, warm-pool size).
    pub fn stats(&self) -> EngineStats {
        let m = &self.inner.metrics;
        EngineStats {
            submitted: m.counter_value("requests_submitted", &[]),
            completed: m.counter_value("requests_completed", &[]),
            failed: m.counter_value("requests_failed", &[]),
            rejected: m.counter_value("requests_rejected", &[]),
            warm_acquires: m.counter_value("warm_acquires", &[]),
            cold_builds: m.counter_value("cold_builds", &[]),
            cache_hits: m.counter_value("kernel_cache_hits", &[]),
            cache_misses: m.counter_value("kernel_cache_misses", &[]),
            queue_depth: lock(&self.inner.queue).pending.len() as u64,
            slots_busy: self.inner.slots_busy.load(Ordering::Relaxed) as u64,
            slots: self.inner.slots_n as u64,
            warm_pool: self.inner.warm_pool_size() as u64,
        }
    }

    /// Subscribe to the live event stream of one request (every event
    /// tagged with its id: lifecycle, per-step completions, health
    /// samples, supervisor recoveries). `None` when the engine was
    /// started with `streaming: false`.
    ///
    /// Subscribing is valid at any time; events published before the
    /// subscription are not replayed, so subscribe before (or right
    /// after) submitting to observe the full lifecycle.
    pub fn subscribe(&self, id: RequestId) -> Option<EventStream> {
        self.inner.bus.as_ref().map(|b| b.subscribe(&id.to_string()))
    }

    /// Subscribe to every event the engine publishes (all requests plus
    /// engine-wide ticks). `None` when streaming is disabled.
    pub fn subscribe_all(&self) -> Option<EventStream> {
        self.inner.bus.as_ref().map(|b| b.subscribe_all())
    }

    /// A point-in-time snapshot of the whole engine: queued requests in
    /// order, running requests with live progress (steps done / budget,
    /// last step wall time, last health verdict), slot and warm-pool
    /// occupancy, and bus health. Works with streaming on or off — the
    /// progress mirror is maintained either way.
    pub fn status(&self) -> EngineStatus {
        let queued: Vec<(RequestId, String)> = lock(&self.inner.queue)
            .pending
            .iter()
            .map(|p| (RequestId(p.id), p.label.clone()))
            .collect();
        let mut running: Vec<RequestProgress> = lock(&self.inner.active)
            .iter()
            .map(|(&id, a)| {
                let prog = a.sink.progress().unwrap_or_default();
                RequestProgress {
                    id: RequestId(id),
                    label: a.label.clone(),
                    steps_done: prog.steps_done,
                    steps_budget: a.steps_budget,
                    last_step_seconds: prog.last_step_seconds,
                    last_healthy: prog.last_healthy,
                }
            })
            .collect();
        running.sort_by_key(|r| r.id);
        let (events_published, events_dropped) = self
            .inner
            .bus
            .as_ref()
            .map(|b| (b.events_published(), b.events_dropped()))
            .unwrap_or((0, 0));
        EngineStatus {
            queued,
            running,
            slots: self.inner.slots_n,
            slots_busy: self.inner.slots_busy.load(Ordering::Relaxed),
            warm_pool: self.inner.warm_pool_size(),
            events_published,
            events_dropped,
            stats: self.stats(),
        }
    }

    /// Stop accepting work, drain the queue, join every slot, and return
    /// the final counters. Outcomes not yet taken with
    /// [`wait`](Self::wait) are dropped.
    pub fn shutdown(mut self) -> EngineStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.open = false;
        }
        self.inner.work_cv.notify_all();
        self.inner.space_cv.notify_all();
        for h in self.slots.drain(..) {
            let _ = h.join();
        }
        self.inner.stopping.store(true, Ordering::Relaxed);
        self.inner.tick_cv.notify_all();
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        // Close the bus so live subscribers drain what is buffered and
        // then observe end-of-stream instead of blocking forever.
        if let Some(bus) = &self.inner.bus {
            bus.close();
        }
    }
}

impl Drop for ForecastEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

fn slot_loop(inner: &Arc<EngineInner>) {
    loop {
        let pending = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(p) = q.pending.pop_front() {
                    inner.space_cv.notify_one();
                    break p;
                }
                if !q.open {
                    return;
                }
                q = wait(&inner.work_cv, q);
            }
        };
        let outcome = run_request(inner, pending);
        {
            let mut r = lock(&inner.results);
            r.insert(outcome.id.0, outcome);
        }
        inner.done_cv.notify_all();
    }
}

fn run_request(inner: &Arc<EngineInner>, p: Pending) -> ForecastOutcome {
    let id = RequestId(p.id);
    let rid = id.to_string();
    let queued = p.submitted.elapsed().as_secs_f64();
    let m = &inner.metrics;
    // Request-scoped span on the global tracer, when one is installed
    // (the serve bin installs one; tests usually do not).
    let _span = obs::tracing::global_span("request", &rid);
    m.counter_add("requests_started", &[], 1);
    m.observe("request_queued_seconds", &[], queued);
    // Per-request telemetry sink: streams to the bus when the engine has
    // one, and maintains the progress mirror status() reads either way.
    let sink = match &inner.bus {
        Some(bus) => EventSink::for_request(bus, &rid),
        None => EventSink::progress_only(&rid),
    };
    inner.slots_busy.fetch_add(1, Ordering::Relaxed);
    lock(&inner.active).insert(
        p.id,
        ActiveRequest {
            label: p.label.clone(),
            steps_budget: p.req.steps,
            sink: sink.clone(),
        },
    );
    sink.emit(RunEvent::RequestStarted {
        queued_seconds: queued,
    });
    inner.emit_tick();
    let t0 = Instant::now();
    // A panic escaping the supervised region (an engine bug, not a model
    // blowup) fails this request only — never the slot.
    let result = match catch_unwind(AssertUnwindSafe(|| execute(inner, &p, &rid, &sink))) {
        Ok(res) => res,
        Err(payload) => Err(EngineFailure::Panic(panic_text(&*payload))),
    };
    let run_seconds = t0.elapsed().as_secs_f64();
    match &result {
        Ok(rep) => {
            m.counter_add("requests_completed", &[], 1);
            m.observe("request_run_seconds", &[], run_seconds);
            m.counter_add("request_steps", &[("request", &rid)], rep.steps);
            sink.emit(RunEvent::RequestCompleted {
                steps: rep.steps,
                run_seconds,
            });
        }
        Err(e) => {
            m.counter_add("requests_failed", &[], 1);
            m.counter_add("request_failed", &[("request", &rid)], 1);
            let step = sink.progress().map(|pr| pr.steps_done).unwrap_or(0);
            sink.emit(RunEvent::RequestFailed {
                step,
                detail: e.to_string(),
            });
        }
    }
    lock(&inner.active).remove(&p.id);
    inner.slots_busy.fetch_sub(1, Ordering::Relaxed);
    inner.emit_tick();
    ForecastOutcome {
        id,
        label: p.label,
        queued_seconds: queued,
        run_seconds,
        result,
    }
}

fn execute(
    inner: &Arc<EngineInner>,
    p: &Pending,
    rid: &str,
    sink: &EventSink,
) -> Result<ForecastReport, EngineFailure> {
    let key = CaseKey::of(&p.req);
    let (mut d, warm_start) = acquire(inner, key, &p.req);
    // Install this request's sink on both the dycore (per-step
    // completions) and the supervisor (health, retries, checkpoints) for
    // the duration of the run; release() clears it before parking.
    d.set_event_sink(sink.clone());
    let (h0, m0) = d.exec_cache_counters();
    let mut sup = Supervisor::new(inner.policy.clone());
    sup.set_event_sink(sink.clone());
    let res = sup.run(&mut d, p.req.steps);
    let (h1, m1) = d.exec_cache_counters();
    let (hits, misses) = (h1 - h0, m1 - m0);
    let m = &inner.metrics;
    m.counter_add("kernel_cache_hits", &[], hits);
    m.counter_add("kernel_cache_misses", &[], misses);
    m.counter_add("kernel_cache_hits", &[("request", rid)], hits);
    m.counter_add("kernel_cache_misses", &[("request", rid)], misses);
    match res {
        Ok(run) => {
            let states = d.states.clone();
            let config = d.config;
            release(inner, key, d);
            Ok(ForecastReport {
                steps: p.req.steps,
                config,
                run,
                states,
                cache_hits: hits,
                cache_misses: misses,
                warm_start,
            })
        }
        Err(e) => {
            // Fault isolation: the poisoned instance is discarded, never
            // parked — the next tenant of this case gets a clean build.
            // The compiled kernels live in the shared `Arc` bundle and
            // survive the discard.
            drop(d);
            m.counter_add("instances_discarded", &[], 1);
            Err(EngineFailure::Supervised(e))
        }
    }
}

/// Check a warm instance out of the case pool, or build a cold one
/// against the case's shared compile bundle and grid set.
fn acquire(inner: &EngineInner, key: CaseKey, req: &ForecastRequest) -> (DistributedDycore, bool) {
    let (substep, grids) = {
        let mut cases = lock(&inner.cases);
        match cases.get_mut(&key) {
            Some(cc) => {
                if let Some(mut d) = cc.warm.pop() {
                    let reset = Arc::clone(
                        cc.reset.as_ref().expect("parked instance implies reset template"),
                    );
                    drop(cases);
                    // Undo any supervisor backoff a previous tenant
                    // applied, then rewrite every rank from the step-0
                    // template (its basis belongs to another instance,
                    // so restore() rewrites unconditionally).
                    d.config = req.config;
                    d.restore(&reset);
                    inner.metrics.counter_add("warm_acquires", &[], 1);
                    return (d, true);
                }
                (Arc::clone(&cc.substep), cc.grids.clone())
            }
            None => {
                // First tenant of this case: register the shared bundle
                // under the lock so racing cold tenants agree on one
                // program instance (kernel compilation itself is lazy
                // and deduplicated by the executors' cache locks).
                let substep = Arc::new(CompiledSubstep::build(&req.config, Some(&inner.pool)));
                cases.insert(
                    key,
                    CaseCache {
                        substep: Arc::clone(&substep),
                        grids: None,
                        reset: None,
                        warm: Vec::new(),
                    },
                );
                (substep, None)
            }
        }
    };
    // Instance build (grids when not yet shared, initial states, halo
    // updater) happens outside the case lock: it is per-tenant work.
    let mut d = DistributedDycore::new_with_grids(req.config, &ExpansionAttrs::tuned(), grids);
    d.set_pool(Some(inner.pool.clone()));
    d.set_shared_substep(substep);
    let reset = Arc::new(Checkpoint::capture(&d));
    {
        let mut cases = lock(&inner.cases);
        if let Some(cc) = cases.get_mut(&key) {
            if cc.grids.is_none() {
                cc.grids = Some(Arc::clone(&d.grids));
            }
            cc.reset.get_or_insert(reset);
        }
    }
    inner.metrics.counter_add("cold_builds", &[], 1);
    (d, false)
}

/// Park a healthy instance for the next tenant, up to the warm cap.
fn release(inner: &EngineInner, key: CaseKey, mut d: DistributedDycore) {
    // Never park another tenant's sink: the next tenant installs its
    // own, and a parked instance must not retain a subscriber tag.
    d.set_event_sink(EventSink::default());
    let mut cases = lock(&inner.cases);
    if let Some(cc) = cases.get_mut(&key) {
        if cc.reset.is_some() && cc.warm.len() < inner.warm_cap {
            cc.warm.push(d);
            inner.metrics.counter_add("warm_parks", &[], 1);
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_request(steps: u64) -> ForecastRequest {
        let config = DriverConfig::six_rank(
            8,
            3,
            DycoreConfig {
                n_split: 1,
                k_split: 1,
                dt: 4.0,
                dddmp: 0.02,
                nord4_damp: None,
            },
        );
        ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
    }

    fn small_engine(slots: usize) -> ForecastEngine {
        ForecastEngine::start(EngineConfig {
            slots,
            pool: Some(Pool::new(1)),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn submit_wait_roundtrip() {
        let engine = small_engine(1);
        let id = engine.submit(small_request(1).with_label("hello"));
        let out = engine.wait(id);
        assert_eq!(out.id, id);
        assert_eq!(out.label, "hello");
        let rep = out.result.expect("request succeeds");
        assert_eq!(rep.steps, 1);
        assert!(!rep.warm_start);
        assert!(rep.cache_misses > 0, "first tenant compiles");
        assert!(rep.run.monitor.all_healthy());
        assert_eq!(rep.states.len(), 6);
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn second_request_pays_zero_compilation() {
        let engine = small_engine(1);
        let a = engine.submit(small_request(2));
        let first = engine.wait(a).result.expect("first ok");
        let b = engine.submit(small_request(2));
        let second = engine.wait(b).result.expect("second ok");
        assert!(first.cache_misses > 0);
        assert_eq!(
            second.cache_misses, 0,
            "request N+1 must pay zero compilation"
        );
        assert!(second.cache_hits > 0);
        assert!(second.warm_start, "single-slot second request reuses the instance");
        engine.shutdown();
    }

    #[test]
    fn try_submit_refuses_beyond_queue_cap() {
        // One slot kept busy, capacity 1: the second queued request must
        // be refused at the door, not buffered without bound.
        let engine = ForecastEngine::start(EngineConfig {
            slots: 1,
            queue_cap: 1,
            pool: Some(Pool::new(1)),
            ..EngineConfig::default()
        });
        let first = engine.submit(small_request(3));
        // Fill the queue behind the (likely running) first request; at
        // most one extra fits regardless of pickup timing.
        let mut accepted = Vec::new();
        let mut refused = 0usize;
        for _ in 0..4 {
            match engine.try_submit(small_request(1)) {
                Ok(id) => accepted.push(id),
                Err(_) => refused += 1,
            }
        }
        assert!(refused >= 2, "queue_cap=1 admits at most 2 of 4 extras");
        let _ = engine.wait(first);
        for id in accepted {
            let out = engine.wait(id);
            assert!(out.result.is_ok());
        }
        engine.shutdown();
    }

    #[test]
    fn outcome_snapshot_roundtrips_through_fv3ckpt1() {
        let engine = small_engine(1);
        let id = engine.submit(small_request(1));
        let rep = engine.wait(id).result.expect("ok");
        let bytes = rep.snapshot_bytes();
        let ck = Checkpoint::from_bytes(&bytes).expect("snapshot decodes");
        assert_eq!(ck.states.len(), rep.states.len());
        assert_eq!(ck.step, 1);
        engine.shutdown();
    }
}
