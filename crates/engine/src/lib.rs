//! Forecast-as-a-service: a persistent multi-tenant run engine.
//!
//! The one-shot binaries pay the whole productivity-infrastructure bill
//! — program build, library expansion, kernel compilation, grid
//! computation — for exactly one forecast. [`ForecastEngine`] amortizes
//! it the way the paper's compiled-backend story intends: a long-lived
//! process accepts [`ForecastRequest`]s on a submission queue, schedules
//! them across a bounded set of *run slots* (one OS thread each), and
//! shares per-(scenario, config) machinery across tenants:
//!
//! * **one compiled program instance** — a
//!   [`fv3core::CompiledSubstep`] bundle per case, so every tenant runs
//!   the *same* `Sdfg` (one `(uid, generation)` cache namespace) through
//!   the same pinned executors. Request N+1 pays zero kernel
//!   compilation; the engine's `kernel_cache_{hits,misses}` counters
//!   prove it per request.
//! * **one grid-metadata set** — per-rank [`fv3::grid::Grid`]s behind an
//!   `Arc`, computed once per case.
//! * **one worker team** — every slot's kernels drain through the shared
//!   [`machine::pool::Pool`]; its region lock is the admission control
//!   that keeps concurrent tenants from oversubscribing the host.
//! * **warm instances** — completed tenants park their
//!   [`DistributedDycore`] (grids, halo updater, mailboxes) in a bounded
//!   per-case pool; the next request rewinds it to the step-0 template
//!   checkpoint instead of rebuilding, which is bit-identical to a fresh
//!   build (`tests/multi_tenant.rs`).
//!
//! **Isolation.** Each request runs under its own
//! [`resilience::Supervisor`]: a tenant that blows up rolls back and
//! retries within its own instance, and a tenant that fails for good is
//! *discarded* — its outcome carries a [`SupervisedError`] tagged with
//! its [`RequestId`], its neighbours never observe the fault, and the
//! shared compile bundle (held by `Arc`) survives the discard
//! (`tests/fault_isolation.rs`).
//!
//! **Observability.** The engine owns a [`MetricsRegistry`]: aggregate
//! counters (`requests_{submitted,started,completed,failed}`,
//! `kernel_cache_{hits,misses}`, `warm_acquires`, `cold_builds`) plus
//! per-request series labelled `request="rN"`. Each request also opens a
//! `request` span on the globally-installed tracer (when one is
//! installed) and returns its full per-step health history and final
//! field snapshot in the [`ForecastReport`].

use dataflow::graph::ExpansionAttrs;
use fv3::dyn_core::DycoreConfig;
use fv3::state::DycoreState;
use fv3core::{Checkpoint, CompiledSubstep, DistributedDycore, DriverConfig};
use machine::cancel::{CancelCause, CancelToken};
use machine::faults::ArmGuard;
use machine::pool::Pool;
use obs::stream::{EventBus, EventSink, EventStream, RunEvent};
use obs::MetricsRegistry;
use resilience::{FaultPlan, RunReport, SupervisedError, Supervisor, SupervisorPolicy};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine-assigned request identifier; labels every metric, span, and
/// error the request produces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// The scenario a request wants forecast. Today the library has one
/// entry (ROADMAP item 4 grows it); it is part of the case key so a
/// future scenario with identical numerics still gets its own compile
/// bundle when its initial conditions differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scenario {
    /// The c-grid baroclinic instability wave (DCMIP-style), the repo's
    /// golden-anchored case.
    #[default]
    BaroclinicWave,
}

impl Scenario {
    /// Stable name for labels and artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::BaroclinicWave => "baroclinic_wave",
        }
    }
}

/// One unit of work: scenario + driver configuration + step budget.
#[derive(Debug, Clone)]
pub struct ForecastRequest {
    pub scenario: Scenario,
    pub config: DriverConfig,
    /// Supervised driver steps to run.
    pub steps: u64,
    /// Optional client label carried through to the outcome (defaults to
    /// the request id).
    pub label: String,
}

impl ForecastRequest {
    /// A request for `steps` steps of `scenario` under `config`.
    pub fn new(scenario: Scenario, config: DriverConfig, steps: u64) -> Self {
        ForecastRequest {
            scenario,
            config,
            steps,
            label: String::new(),
        }
    }

    /// The standard c8L6 baroclinic-wave case (the repo's golden case).
    pub fn c8l6(steps: u64) -> Self {
        let config = DriverConfig::six_rank(
            8,
            6,
            DycoreConfig {
                n_split: 1,
                k_split: 1,
                dt: 4.0,
                dddmp: 0.02,
                nord4_damp: None,
            },
        );
        ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
    }

    /// Attach a client label.
    pub fn with_label(mut self, label: &str) -> Self {
        self.label = label.to_string();
        self
    }
}

/// Scheduling lane. The submission queue serves High before Normal
/// before Batch (FIFO within a lane), and under queue pressure sheds
/// from the lowest lane first — an urgent nowcast and a batch ensemble
/// member are no longer peers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Priority {
    /// Urgent interactive work; never shed.
    High,
    /// The default lane.
    #[default]
    Normal,
    /// Opportunistic work; the first shed under overload.
    Batch,
}

impl Priority {
    /// Every lane, scheduling order (High first).
    pub const ALL: [Priority; 3] = [Priority::High, Priority::Normal, Priority::Batch];

    /// Lane index in scheduling order (0 = High).
    fn lane(self) -> usize {
        match self {
            Priority::High => 0,
            Priority::Normal => 1,
            Priority::Batch => 2,
        }
    }

    /// Stable label for metrics, events, and the serve CLI.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::High => "high",
            Priority::Normal => "normal",
            Priority::Batch => "batch",
        }
    }

    /// Parse a [`label`](Self::label) back.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "high" => Some(Priority::High),
            "normal" => Some(Priority::Normal),
            "batch" => Some(Priority::Batch),
            _ => None,
        }
    }
}

/// Per-request admission options for
/// [`ForecastEngine::submit_with`] / [`try_submit_with`](ForecastEngine::try_submit_with).
#[derive(Debug, Clone, Default)]
pub struct SubmitOptions {
    /// Scheduling lane (default [`Priority::Normal`]).
    pub priority: Priority,
    /// Wall-clock budget from submission. A queued request past its
    /// deadline is evicted without ever starting; a running request is
    /// cancelled at the next step boundary; the supervisor will not
    /// start another rollback-retry past it.
    pub deadline: Option<Duration>,
    /// Tenant identity for quota accounting. Requests sharing a tenant
    /// string count against [`EngineConfig::tenant_cap`]; untagged
    /// requests are exempt.
    pub tenant: Option<String>,
}

impl SubmitOptions {
    pub fn priority(mut self, p: Priority) -> Self {
        self.priority = p;
        self
    }

    pub fn deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    pub fn tenant(mut self, tenant: &str) -> Self {
        self.tenant = Some(tenant.to_string());
        self
    }
}

/// A refused submission ([`ForecastEngine::try_submit_with`]); hands the
/// request back so the caller can retry, re-route, or drop it.
#[derive(Debug)]
pub enum Rejected {
    /// The queue is at capacity and nothing lower-priority could be
    /// shed to admit this request.
    QueueFull(ForecastRequest),
    /// The request's tenant is at its in-flight + queued cap.
    QuotaExceeded {
        tenant: String,
        req: ForecastRequest,
    },
}

impl Rejected {
    /// The refused request, handed back.
    pub fn into_request(self) -> ForecastRequest {
        match self {
            Rejected::QueueFull(r) => r,
            Rejected::QuotaExceeded { req, .. } => req,
        }
    }
}

/// Everything that must agree for two requests to share one compile
/// bundle, grid set, and warm-instance pool. Floats are keyed by bits
/// (the same discipline as the driver's internal step key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct CaseKey {
    scenario: Scenario,
    tile_n: usize,
    rt: usize,
    nk: usize,
    n_split: u32,
    k_split: u32,
    dt: u64,
    dddmp: u64,
    nord4: Option<u64>,
}

impl CaseKey {
    fn of(req: &ForecastRequest) -> Self {
        let c = req.config;
        CaseKey {
            scenario: req.scenario,
            tile_n: c.tile_n,
            rt: c.rt,
            nk: c.nk,
            n_split: c.dycore.n_split,
            k_split: c.dycore.k_split,
            dt: c.dycore.dt.to_bits(),
            dddmp: c.dycore.dddmp.to_bits(),
            nord4: c.dycore.nord4_damp.map(f64::to_bits),
        }
    }
}

/// Engine sizing and policy.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Concurrent run slots (each one OS thread executing requests).
    pub slots: usize,
    /// Submission-queue capacity; [`ForecastEngine::submit`] blocks and
    /// [`ForecastEngine::try_submit`] refuses beyond it (admission
    /// control at the front door).
    pub queue_cap: usize,
    /// Shared kernel worker team (`None`: [`Pool::host`], which honours
    /// `FV3_WORKERS`).
    pub pool: Option<Pool>,
    /// Per-request supervision policy.
    pub policy: SupervisorPolicy,
    /// Warm instances parked per case (0 disables warm reuse).
    pub warm_cap: usize,
    /// Live telemetry ([`obs::stream`]): when true the engine owns an
    /// [`EventBus`] and every request streams its lifecycle and per-step
    /// events ([`ForecastEngine::subscribe`]). When false the bus is
    /// never created and the hot path publishes nothing — runs are
    /// bit-identical either way (events carry copies, never borrows).
    pub streaming: bool,
    /// Per-subscriber event-buffer capacity; when a slow subscriber
    /// falls this far behind, its *oldest* events are dropped and
    /// counted (`events_dropped`) — a subscriber can never stall a slot.
    pub stream_buffer: usize,
    /// Cadence for periodic [`RunEvent::EngineTick`] snapshots from a
    /// background thread (`None`: ticks only on request transitions).
    pub tick_every: Option<Duration>,
    /// Per-tenant in-flight + queued cap (`None`: unlimited). A tenant
    /// at its cap has further `try_submit_with` calls refused with
    /// [`Rejected::QuotaExceeded`] (blocking submits wait) — one
    /// saturating tenant can no longer starve the queue.
    pub tenant_cap: Option<usize>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            slots: 2,
            queue_cap: 64,
            pool: None,
            policy: SupervisorPolicy::default(),
            warm_cap: 4,
            streaming: true,
            stream_buffer: 1024,
            tick_every: None,
            tenant_cap: None,
        }
    }
}

impl EngineConfig {
    /// Defaults with the supervision policy read from the environment
    /// (`FV3_CHECKPOINT_DIR`, `FV3_MAX_RETRIES`, ... — see
    /// [`SupervisorPolicy::from_env`]).
    pub fn from_env() -> Self {
        EngineConfig {
            policy: SupervisorPolicy::from_env(),
            ..EngineConfig::default()
        }
    }
}

/// Why a request failed. Either way the failure is confined to the one
/// request: neighbours keep running and the case's compile bundle stays
/// warm.
#[derive(Debug)]
pub enum EngineFailure {
    /// The per-request supervisor exhausted its recovery budget; carries
    /// the blowup report and the recovery-event history.
    Supervised(Box<SupervisedError>),
    /// The request panicked outside the supervised step (a bug, not a
    /// numerical failure); the slot survives and reports it.
    Panic(String),
}

impl fmt::Display for EngineFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineFailure::Supervised(e) => write!(f, "supervised failure: {e}"),
            EngineFailure::Panic(p) => write!(f, "request panicked: {p}"),
        }
    }
}

/// A completed forecast: the supervised run history plus the final
/// prognostic fields.
#[derive(Debug)]
pub struct ForecastReport {
    /// Steps the request asked for (all completed).
    pub steps: u64,
    /// Final driver configuration (reflects any supervisor backoff).
    pub config: DriverConfig,
    /// Supervised-run history: retries, rollbacks, health samples.
    pub run: RunReport,
    /// Final per-rank prognostic states.
    pub states: Vec<DycoreState>,
    /// Compiled-kernel cache hits this request observed.
    pub cache_hits: u64,
    /// Kernel compilations this request paid for. Zero for every request
    /// after a case's first — the point of the shared bundle.
    pub cache_misses: u64,
    /// Whether the request reused a parked warm instance.
    pub warm_start: bool,
}

impl ForecastReport {
    /// The final fields as an `FV3CKPT1` snapshot stream — the "fields
    /// out" channel of the serving API, decodable with
    /// [`Checkpoint::from_bytes`].
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        Checkpoint {
            step: self.steps,
            config: self.config,
            states: self.states.clone(),
            basis: None,
        }
        .to_bytes()
    }

    /// Per-step health samples as JSONL (one line per rank per step).
    pub fn health_jsonl(&self) -> String {
        self.run.monitor.to_jsonl()
    }
}

/// A run stopped by its [`CancelToken`] — explicit [`cancel`]
/// (`ForecastEngine::cancel`) or deadline expiry.
///
/// [`cancel`]: ForecastEngine::cancel
#[derive(Debug)]
pub struct CancelledRun {
    pub cause: CancelCause,
    /// Steps that completed before the token fired (0: cancelled while
    /// still queued).
    pub steps_done: u64,
    /// The partial supervised-run history, when the request had started
    /// (`None`: cancelled in the queue). The instance behind it was
    /// discarded — cancelled tenants never park warm state.
    pub run: Option<RunReport>,
}

/// The exactly-one terminal state every submitted request reaches.
/// Admission control adds three terminals to the original
/// completed/failed pair; no request is ever lost between them.
#[derive(Debug)]
pub enum ForecastResult {
    /// Ran its full step budget.
    Completed(ForecastReport),
    /// Supervision exhausted or a panic; see [`EngineFailure`].
    Failed(EngineFailure),
    /// Stopped by explicit cancel or deadline, queued or mid-run.
    Cancelled(CancelledRun),
    /// Deadline expired while still queued; never started.
    Evicted {
        /// How far past its deadline the request was when a slot found it.
        past_deadline_seconds: f64,
    },
    /// Shed from the queue under overload to admit higher-priority work.
    Shed {
        /// The shed request's lane.
        lane: Priority,
    },
}

impl ForecastResult {
    /// Stable terminal label ("completed" | "failed" | "cancelled" |
    /// "evicted" | "shed").
    pub fn terminal(&self) -> &'static str {
        match self {
            ForecastResult::Completed(_) => "completed",
            ForecastResult::Failed(_) => "failed",
            ForecastResult::Cancelled(_) => "cancelled",
            ForecastResult::Evicted { .. } => "evicted",
            ForecastResult::Shed { .. } => "shed",
        }
    }

    /// True for [`Completed`](Self::Completed).
    pub fn is_completed(&self) -> bool {
        matches!(self, ForecastResult::Completed(_))
    }

    /// The report, when completed.
    pub fn report(&self) -> Option<&ForecastReport> {
        match self {
            ForecastResult::Completed(r) => Some(r),
            _ => None,
        }
    }

    /// The failure, when failed.
    pub fn failure(&self) -> Option<&EngineFailure> {
        match self {
            ForecastResult::Failed(e) => Some(e),
            _ => None,
        }
    }

    /// The cancellation record, when cancelled.
    pub fn cancelled(&self) -> Option<&CancelledRun> {
        match self {
            ForecastResult::Cancelled(c) => Some(c),
            _ => None,
        }
    }

    /// Unwrap the completed report; panics with `msg` and the actual
    /// terminal otherwise.
    #[track_caller]
    pub fn expect(self, msg: &str) -> ForecastReport {
        match self {
            ForecastResult::Completed(r) => r,
            other => panic!("{msg}: request reached terminal '{}'", other.terminal()),
        }
    }
}

/// Everything the engine knows about a finished request.
#[derive(Debug)]
pub struct ForecastOutcome {
    pub id: RequestId,
    pub label: String,
    /// Seconds spent queued before a slot picked the request up (for
    /// evicted/shed requests: seconds spent queued before removal).
    pub queued_seconds: f64,
    /// Seconds spent executing (0 for requests that never started).
    pub run_seconds: f64,
    pub result: ForecastResult,
}

impl ForecastOutcome {
    /// Submit-to-finish latency in seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.queued_seconds + self.run_seconds
    }
}

/// Aggregate counters (from the engine's metrics registry) plus the
/// point-in-time occupancy the raw metrics could only approximate:
/// current queue depth, busy run slots, and parked warm instances.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub rejected: u64,
    /// Requests cancelled (explicit or deadline), queued or running.
    pub cancelled: u64,
    /// Queued requests whose deadline expired before a slot found them.
    pub evicted: u64,
    /// Requests shed from the queue under overload.
    pub shed: u64,
    pub warm_acquires: u64,
    pub cold_builds: u64,
    pub cache_hits: u64,
    pub cache_misses: u64,
    /// Requests queued (not yet picked up) right now.
    pub queue_depth: u64,
    /// Queue depth per lane right now, scheduling order (High, Normal,
    /// Batch).
    pub lane_depths: [u64; 3],
    /// Run slots currently executing a request.
    pub slots_busy: u64,
    /// Total run slots.
    pub slots: u64,
    /// Warm instances parked across all cases right now.
    pub warm_pool: u64,
}

/// Live progress of one running request, from the telemetry plane's
/// progress mirror (tracked even when streaming is disabled).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestProgress {
    pub id: RequestId,
    pub label: String,
    /// Driver steps completed so far.
    pub steps_done: u64,
    /// Steps the request asked for.
    pub steps_budget: u64,
    /// Wall seconds of the most recent completed step (0 before the
    /// first).
    pub last_step_seconds: f64,
    /// Latest per-step health verdict from the request's supervisor
    /// (`None` until the first sample).
    pub last_healthy: Option<bool>,
}

/// A point-in-time snapshot of the whole engine
/// ([`ForecastEngine::status`]): what is queued, what is running and how
/// far along, and how the telemetry plane itself is doing.
#[derive(Debug, Clone)]
pub struct EngineStatus {
    /// Requests waiting in the submission queue, in scheduling order
    /// (High lane first, FIFO within a lane).
    pub queued: Vec<(RequestId, String)>,
    /// Per-tenant occupancy (queued + running), sorted by tenant.
    pub tenants: Vec<(String, usize)>,
    /// Requests currently executing, ordered by id.
    pub running: Vec<RequestProgress>,
    /// Total run slots / slots currently busy.
    pub slots: usize,
    pub slots_busy: usize,
    /// Warm instances parked across all cases.
    pub warm_pool: usize,
    /// Events published on the bus so far (0 when streaming is off).
    pub events_published: u64,
    /// Events dropped across all subscribers (drop-oldest backpressure).
    pub events_dropped: u64,
    /// Aggregate counters at snapshot time.
    pub stats: EngineStats,
}

impl EngineStatus {
    /// Queue depth at snapshot time.
    pub fn queue_depth(&self) -> usize {
        self.queued.len()
    }
}

struct Pending {
    id: u64,
    label: String,
    req: ForecastRequest,
    submitted: Instant,
    priority: Priority,
    /// Absolute deadline, when the request has one.
    deadline: Option<Instant>,
    tenant: Option<String>,
    /// The request's armed cancel token, shared with the engine's token
    /// map so [`ForecastEngine::cancel`] reaches it queued or running.
    token: CancelToken,
}

/// What the engine tracks about a request a slot is executing right
/// now: its budget and the telemetry sink whose progress mirror
/// [`ForecastEngine::status`] reads.
struct ActiveRequest {
    label: String,
    steps_budget: u64,
    sink: EventSink,
}

struct QueueState {
    /// One FIFO per lane, scheduling order (High, Normal, Batch). Slots
    /// always pop the highest non-empty lane.
    lanes: [VecDeque<Pending>; 3],
    /// Cleared on shutdown; slots drain the queue, then exit.
    open: bool,
    /// Per-tenant occupancy: queued + running requests. Incremented at
    /// admission, decremented when the request reaches its terminal.
    tenants: HashMap<String, usize>,
}

impl QueueState {
    fn len(&self) -> usize {
        self.lanes.iter().map(VecDeque::len).sum()
    }

    /// Pop the next request in scheduling order.
    fn pop_next(&mut self) -> Option<Pending> {
        self.lanes.iter_mut().find_map(VecDeque::pop_front)
    }

    /// The newest request in the lowest non-empty lane strictly below
    /// `p` — the shed victim admitting a `p`-priority request.
    fn pop_shed_victim(&mut self, p: Priority) -> Option<Pending> {
        self.lanes[p.lane() + 1..]
            .iter_mut()
            .rev()
            .find_map(VecDeque::pop_back)
    }

    fn occupancy(&self, tenant: &str) -> usize {
        self.tenants.get(tenant).copied().unwrap_or(0)
    }

    fn tenant_admit(&mut self, tenant: &Option<String>) {
        if let Some(t) = tenant {
            *self.tenants.entry(t.clone()).or_insert(0) += 1;
        }
    }

    fn tenant_release(&mut self, tenant: &Option<String>) {
        if let Some(t) = tenant {
            if let Some(n) = self.tenants.get_mut(t) {
                *n -= 1;
                if *n == 0 {
                    self.tenants.remove(t);
                }
            }
        }
    }
}

/// Per-case shared machinery plus the warm-instance pool.
struct CaseCache {
    substep: Arc<CompiledSubstep>,
    grids: Option<Arc<Vec<fv3::grid::Grid>>>,
    /// Step-0 template; rewinding a warm instance through it is
    /// bit-identical to a fresh build.
    reset: Option<Arc<Checkpoint>>,
    warm: Vec<DistributedDycore>,
}

struct EngineInner {
    queue_cap: usize,
    warm_cap: usize,
    tenant_cap: Option<usize>,
    policy: SupervisorPolicy,
    pool: Pool,
    queue: Mutex<QueueState>,
    work_cv: Condvar,
    space_cv: Condvar,
    cases: Mutex<HashMap<CaseKey, CaseCache>>,
    results: Mutex<HashMap<u64, ForecastOutcome>>,
    done_cv: Condvar,
    /// Every live (queued or running) request's cancel token, so
    /// [`ForecastEngine::cancel`] works across the pop→run handoff.
    /// Removed when the request reaches its terminal.
    tokens: Mutex<HashMap<u64, CancelToken>>,
    metrics: MetricsRegistry,
    next_id: AtomicU64,
    /// The live telemetry bus (`None`: streaming disabled — nothing is
    /// ever published and runs pay zero event cost).
    bus: Option<EventBus>,
    /// Total run slots / slots currently executing a request.
    slots_n: usize,
    slots_busy: AtomicUsize,
    /// Requests currently executing, for [`ForecastEngine::status`].
    active: Mutex<HashMap<u64, ActiveRequest>>,
    /// Set on shutdown so the tick thread exits promptly.
    stopping: AtomicBool,
    tick_cv: Condvar,
    tick_lock: Mutex<()>,
}

impl EngineInner {
    /// Warm instances parked across all cases right now.
    fn warm_pool_size(&self) -> usize {
        lock(&self.cases).values().map(|c| c.warm.len()).sum()
    }

    /// Publish one engine-wide tick snapshot (no-op when streaming is
    /// off). Called on request transitions and by the tick thread.
    fn emit_tick(&self) {
        let Some(bus) = &self.bus else { return };
        let queue_depth = lock(&self.queue).len() as u64;
        bus.publish(
            None,
            RunEvent::EngineTick {
                queue_depth,
                slots: self.slots_n as u64,
                slots_busy: self.slots_busy.load(Ordering::Relaxed) as u64,
                warm_pool: self.warm_pool_size() as u64,
                events_dropped: bus.events_dropped(),
            },
        );
    }

    /// Deposit a terminal outcome: drop the cancel token, file the
    /// result, wake waiters. Exactly one deposit happens per submitted
    /// id — the no-lost-requests invariant (`tests/overload_soak.rs`).
    fn deposit(&self, outcome: ForecastOutcome) {
        lock(&self.tokens).remove(&outcome.id.0);
        lock(&self.results).insert(outcome.id.0, outcome);
        self.done_cv.notify_all();
    }

    /// Release a finished request's tenant occupancy and wake blocked
    /// submitters.
    fn release_tenant(&self, tenant: &Option<String>) {
        if tenant.is_some() {
            lock(&self.queue).tenant_release(tenant);
        }
        self.space_cv.notify_all();
    }
}

/// The persistent multi-tenant run engine. See the crate docs.
pub struct ForecastEngine {
    inner: Arc<EngineInner>,
    slots: Vec<JoinHandle<()>>,
    /// Periodic [`RunEvent::EngineTick`] emitter (only when
    /// `tick_every` is set and streaming is on).
    ticker: Option<JoinHandle<()>>,
    /// Keeps an `FV3_FAULT_PLAN` armed for the engine's lifetime (chaos
    /// testing of the serving layer, `tests/fault_isolation.rs`).
    _faults: Option<ArmGuard>,
}

impl ForecastEngine {
    /// Start the engine: spawn the run slots and, when `FV3_FAULT_PLAN`
    /// is set, arm the fault plan for the engine's lifetime.
    pub fn start(cfg: EngineConfig) -> Self {
        let faults = FaultPlan::from_env()
            .unwrap_or_else(|e| panic!("invalid FV3_FAULT_PLAN: {e}"))
            .map(|p| p.arm());
        let pool = cfg.pool.unwrap_or_else(Pool::host);
        let slots_n = cfg.slots.max(1);
        let inner = Arc::new(EngineInner {
            queue_cap: cfg.queue_cap.max(1),
            warm_cap: cfg.warm_cap,
            tenant_cap: cfg.tenant_cap,
            policy: cfg.policy,
            pool,
            queue: Mutex::new(QueueState {
                lanes: Default::default(),
                open: true,
                tenants: HashMap::new(),
            }),
            work_cv: Condvar::new(),
            space_cv: Condvar::new(),
            cases: Mutex::new(HashMap::new()),
            results: Mutex::new(HashMap::new()),
            done_cv: Condvar::new(),
            tokens: Mutex::new(HashMap::new()),
            metrics: MetricsRegistry::new(),
            next_id: AtomicU64::new(1),
            bus: cfg.streaming.then(|| EventBus::new(cfg.stream_buffer)),
            slots_n,
            slots_busy: AtomicUsize::new(0),
            active: Mutex::new(HashMap::new()),
            stopping: AtomicBool::new(false),
            tick_cv: Condvar::new(),
            tick_lock: Mutex::new(()),
        });
        // Pre-register every aggregate counter (at 0) so the exported
        // series set is the same for an idle, a failure-free, and a
        // fully exercised engine — consumers never special-case absence.
        for name in [
            "requests_submitted",
            "requests_started",
            "requests_completed",
            "requests_failed",
            "requests_rejected",
            "requests_cancelled",
            "requests_evicted",
            "requests_shed",
            "kernel_cache_hits",
            "kernel_cache_misses",
            "warm_acquires",
            "warm_parks",
            "cold_builds",
            "instances_discarded",
        ] {
            inner.metrics.counter_add(name, &[], 0);
        }
        let slots = (0..slots_n)
            .map(|i| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("fv3-serve-{i}"))
                    .spawn(move || slot_loop(&inner))
                    .expect("failed to spawn engine slot")
            })
            .collect();
        let ticker = match (cfg.tick_every, inner.bus.is_some()) {
            (Some(period), true) => {
                let inner = Arc::clone(&inner);
                Some(
                    std::thread::Builder::new()
                        .name("fv3-serve-tick".to_string())
                        .spawn(move || {
                            let mut g = lock(&inner.tick_lock);
                            while !inner.stopping.load(Ordering::Relaxed) {
                                let (g2, _) = inner
                                    .tick_cv
                                    .wait_timeout(g, period)
                                    .unwrap_or_else(|e| e.into_inner());
                                g = g2;
                                if inner.stopping.load(Ordering::Relaxed) {
                                    break;
                                }
                                inner.emit_tick();
                            }
                        })
                        .expect("failed to spawn engine ticker"),
                )
            }
            _ => None,
        };
        ForecastEngine {
            inner,
            slots,
            ticker,
            _faults: faults,
        }
    }

    /// Submit a request in the Normal lane, blocking while the queue is
    /// at capacity.
    pub fn submit(&self, req: ForecastRequest) -> RequestId {
        self.submit_with(req, SubmitOptions::default())
    }

    /// Submit with admission options (lane, deadline, tenant), blocking
    /// while the queue — or the tenant's quota — has no room. Under
    /// queue pressure a queued request from a *lower* lane is shed to
    /// admit this one; only when nothing lower exists does the call
    /// block.
    pub fn submit_with(&self, req: ForecastRequest, opts: SubmitOptions) -> RequestId {
        let mut q = lock(&self.inner.queue);
        loop {
            if self.over_quota(&q, &opts) {
                q = wait(&self.inner.space_cv, q);
                continue;
            }
            if q.len() >= self.inner.queue_cap {
                match q.pop_shed_victim(opts.priority) {
                    Some(victim) => shed_victim(&self.inner, &mut q, victim),
                    None => {
                        q = wait(&self.inner.space_cv, q);
                        continue;
                    }
                }
            }
            return self.enqueue(q, req, opts);
        }
    }

    /// Submit in the Normal lane without blocking; hands the request
    /// back inside [`Rejected::QueueFull`] when nothing could be shed
    /// to make room.
    pub fn try_submit(&self, req: ForecastRequest) -> Result<RequestId, Rejected> {
        self.try_submit_with(req, SubmitOptions::default())
    }

    /// Submit with admission options, without blocking. Refusals are
    /// typed — [`Rejected::QuotaExceeded`] when the tenant is at its
    /// cap, [`Rejected::QueueFull`] when the queue is full and no
    /// lower-lane request could be shed — and hand the request back.
    /// Every refusal increments `requests_rejected` exactly once.
    pub fn try_submit_with(
        &self,
        req: ForecastRequest,
        opts: SubmitOptions,
    ) -> Result<RequestId, Rejected> {
        let mut q = lock(&self.inner.queue);
        if self.over_quota(&q, &opts) {
            drop(q);
            self.reject("quota");
            return Err(Rejected::QuotaExceeded {
                tenant: opts.tenant.expect("over_quota implies tenant"),
                req,
            });
        }
        if q.len() >= self.inner.queue_cap {
            match q.pop_shed_victim(opts.priority) {
                Some(victim) => shed_victim(&self.inner, &mut q, victim),
                None => {
                    drop(q);
                    self.reject("queue_full");
                    return Err(Rejected::QueueFull(req));
                }
            }
        }
        Ok(self.enqueue(q, req, opts))
    }

    fn over_quota(&self, q: &QueueState, opts: &SubmitOptions) -> bool {
        match (&opts.tenant, self.inner.tenant_cap) {
            (Some(t), Some(cap)) => q.occupancy(t) >= cap,
            _ => false,
        }
    }

    fn reject(&self, reason: &str) {
        self.inner.metrics.counter_add("requests_rejected", &[], 1);
        self.inner
            .metrics
            .counter_add("requests_rejected", &[("reason", reason)], 1);
    }

    /// Cancel a queued or running request. Queued: removed and terminal
    /// `Cancelled` immediately. Running: its token fires and the run
    /// stops at the next step (or acoustic-substep) boundary; the
    /// outcome then carries the partial run history, and the instance is
    /// discarded like a failed one — never parked warm. Returns false
    /// when the id is unknown or already terminal.
    pub fn cancel(&self, id: RequestId) -> bool {
        // Fire the token first: even if a slot pops the request between
        // our queue scan and its start, it still stops at a boundary.
        let Some(token) = lock(&self.inner.tokens).get(&id.0).cloned() else {
            return false;
        };
        token.cancel();
        // Still queued? Finalize right here — the waiter should not
        // have to wait for a busy slot to find the tombstone.
        let mut q = lock(&self.inner.queue);
        let victim = q.lanes.iter_mut().find_map(|lane| {
            lane.iter()
                .position(|p| p.id == id.0)
                .and_then(|pos| lane.remove(pos))
        });
        if let Some(victim) = victim {
            q.tenant_release(&victim.tenant);
            drop(q);
            self.inner.space_cv.notify_all();
            finish_queued_cancel(
                &self.inner,
                victim,
                CancelCause::Requested,
            );
        }
        true
    }

    fn enqueue(
        &self,
        mut q: MutexGuard<'_, QueueState>,
        req: ForecastRequest,
        opts: SubmitOptions,
    ) -> RequestId {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let label = if req.label.is_empty() {
            format!("r{id}")
        } else {
            req.label.clone()
        };
        // Every request gets an armed token so `cancel(id)` always has
        // something to fire; a deadline arms it to fire on its own.
        let token = match opts.deadline {
            Some(budget) => CancelToken::with_budget(budget),
            None => CancelToken::new(),
        };
        let deadline = token.deadline();
        lock(&self.inner.tokens).insert(id, token.clone());
        q.tenant_admit(&opts.tenant);
        self.inner.metrics.counter_add("requests_submitted", &[], 1);
        self.inner
            .metrics
            .gauge_high_water("queue_depth_high_water", &[], (q.len() + 1) as f64);
        let steps = req.steps;
        q.lanes[opts.priority.lane()].push_back(Pending {
            id,
            label: label.clone(),
            req,
            submitted: Instant::now(),
            priority: opts.priority,
            deadline,
            tenant: opts.tenant,
            token,
        });
        // Emitted while still holding the queue lock: a slot cannot pop
        // this request (and emit RequestStarted) before Queued is on the
        // bus, so every subscriber sees Queued -> Started in order.
        if let Some(bus) = &self.inner.bus {
            bus.publish(
                Some(&format!("r{id}")),
                RunEvent::RequestQueued {
                    label,
                    steps,
                    queue_depth: q.len() as u64,
                },
            );
        }
        drop(q);
        self.inner.work_cv.notify_one();
        RequestId(id)
    }

    /// Submit with a guard that cancels the request when dropped before
    /// [`SubmitGuard::wait`] or [`SubmitGuard::detach`] — opt-in
    /// abandon-stops-the-run semantics for callers that would otherwise
    /// leak a slot-burning orphan on an early return.
    pub fn submit_guarded(&self, req: ForecastRequest, opts: SubmitOptions) -> SubmitGuard<'_> {
        let id = self.submit_with(req, opts);
        SubmitGuard {
            engine: self,
            id,
            armed: true,
        }
    }

    /// Block until `id`'s outcome is available and take it. Each outcome
    /// can be taken exactly once.
    pub fn wait(&self, id: RequestId) -> ForecastOutcome {
        self.wait_inner(id, None).expect("unbounded wait")
    }

    /// Like [`wait`](Self::wait) with a deadline; `None` on expiry (the
    /// request stays queued/running and can be waited on again).
    pub fn wait_timeout(&self, id: RequestId, timeout: Duration) -> Option<ForecastOutcome> {
        self.wait_inner(id, Some(Instant::now() + timeout))
    }

    fn wait_inner(&self, id: RequestId, deadline: Option<Instant>) -> Option<ForecastOutcome> {
        let mut r = lock(&self.inner.results);
        loop {
            if let Some(o) = r.remove(&id.0) {
                return Some(o);
            }
            match deadline {
                None => r = wait(&self.inner.done_cv, r),
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (g, _) = self
                        .inner
                        .done_cv
                        .wait_timeout(r, d - now)
                        .unwrap_or_else(|e| e.into_inner());
                    r = g;
                }
            }
        }
    }

    /// Requests currently queued (not yet picked up by a slot).
    pub fn queue_depth(&self) -> usize {
        lock(&self.inner.queue).len()
    }

    /// The engine's metrics registry (aggregate + per-request series).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.inner.metrics
    }

    /// The shared kernel worker team.
    pub fn pool(&self) -> &Pool {
        &self.inner.pool
    }

    /// Aggregate counters so far, plus point-in-time occupancy (queue
    /// depth, busy slots, warm-pool size).
    pub fn stats(&self) -> EngineStats {
        let m = &self.inner.metrics;
        let (queue_depth, lane_depths) = {
            let q = lock(&self.inner.queue);
            (
                q.len() as u64,
                [
                    q.lanes[0].len() as u64,
                    q.lanes[1].len() as u64,
                    q.lanes[2].len() as u64,
                ],
            )
        };
        EngineStats {
            submitted: m.counter_value("requests_submitted", &[]),
            completed: m.counter_value("requests_completed", &[]),
            failed: m.counter_value("requests_failed", &[]),
            rejected: m.counter_value("requests_rejected", &[]),
            cancelled: m.counter_value("requests_cancelled", &[]),
            evicted: m.counter_value("requests_evicted", &[]),
            shed: m.counter_value("requests_shed", &[]),
            warm_acquires: m.counter_value("warm_acquires", &[]),
            cold_builds: m.counter_value("cold_builds", &[]),
            cache_hits: m.counter_value("kernel_cache_hits", &[]),
            cache_misses: m.counter_value("kernel_cache_misses", &[]),
            queue_depth,
            lane_depths,
            slots_busy: self.inner.slots_busy.load(Ordering::Relaxed) as u64,
            slots: self.inner.slots_n as u64,
            warm_pool: self.inner.warm_pool_size() as u64,
        }
    }

    /// Subscribe to the live event stream of one request (every event
    /// tagged with its id: lifecycle, per-step completions, health
    /// samples, supervisor recoveries). `None` when the engine was
    /// started with `streaming: false`.
    ///
    /// Subscribing is valid at any time; events published before the
    /// subscription are not replayed, so subscribe before (or right
    /// after) submitting to observe the full lifecycle.
    pub fn subscribe(&self, id: RequestId) -> Option<EventStream> {
        self.inner.bus.as_ref().map(|b| b.subscribe(&id.to_string()))
    }

    /// Subscribe to every event the engine publishes (all requests plus
    /// engine-wide ticks). `None` when streaming is disabled.
    pub fn subscribe_all(&self) -> Option<EventStream> {
        self.inner.bus.as_ref().map(|b| b.subscribe_all())
    }

    /// A point-in-time snapshot of the whole engine: queued requests in
    /// order, running requests with live progress (steps done / budget,
    /// last step wall time, last health verdict), slot and warm-pool
    /// occupancy, and bus health. Works with streaming on or off — the
    /// progress mirror is maintained either way.
    pub fn status(&self) -> EngineStatus {
        let (queued, tenants) = {
            let q = lock(&self.inner.queue);
            let queued: Vec<(RequestId, String)> = q
                .lanes
                .iter()
                .flatten()
                .map(|p| (RequestId(p.id), p.label.clone()))
                .collect();
            let mut tenants: Vec<(String, usize)> =
                q.tenants.iter().map(|(t, &n)| (t.clone(), n)).collect();
            tenants.sort();
            (queued, tenants)
        };
        let mut running: Vec<RequestProgress> = lock(&self.inner.active)
            .iter()
            .map(|(&id, a)| {
                let prog = a.sink.progress().unwrap_or_default();
                RequestProgress {
                    id: RequestId(id),
                    label: a.label.clone(),
                    steps_done: prog.steps_done,
                    steps_budget: a.steps_budget,
                    last_step_seconds: prog.last_step_seconds,
                    last_healthy: prog.last_healthy,
                }
            })
            .collect();
        running.sort_by_key(|r| r.id);
        let (events_published, events_dropped) = self
            .inner
            .bus
            .as_ref()
            .map(|b| (b.events_published(), b.events_dropped()))
            .unwrap_or((0, 0));
        EngineStatus {
            queued,
            tenants,
            running,
            slots: self.inner.slots_n,
            slots_busy: self.inner.slots_busy.load(Ordering::Relaxed),
            warm_pool: self.inner.warm_pool_size(),
            events_published,
            events_dropped,
            stats: self.stats(),
        }
    }

    /// Stop accepting work, drain the queue, join every slot, and return
    /// the final counters. Outcomes not yet taken with
    /// [`wait`](Self::wait) are dropped.
    pub fn shutdown(mut self) -> EngineStats {
        self.close_and_join();
        self.stats()
    }

    fn close_and_join(&mut self) {
        {
            let mut q = lock(&self.inner.queue);
            q.open = false;
        }
        self.inner.work_cv.notify_all();
        self.inner.space_cv.notify_all();
        for h in self.slots.drain(..) {
            let _ = h.join();
        }
        self.inner.stopping.store(true, Ordering::Relaxed);
        self.inner.tick_cv.notify_all();
        if let Some(h) = self.ticker.take() {
            let _ = h.join();
        }
        // Close the bus so live subscribers drain what is buffered and
        // then observe end-of-stream instead of blocking forever.
        if let Some(bus) = &self.inner.bus {
            bus.close();
        }
    }
}

impl Drop for ForecastEngine {
    fn drop(&mut self) {
        self.close_and_join();
    }
}

/// RAII submission handle from [`ForecastEngine::submit_guarded`]:
/// dropping it without [`wait`](Self::wait) or
/// [`detach`](Self::detach) cancels the request.
pub struct SubmitGuard<'a> {
    engine: &'a ForecastEngine,
    id: RequestId,
    armed: bool,
}

impl SubmitGuard<'_> {
    pub fn id(&self) -> RequestId {
        self.id
    }

    /// Wait for the outcome (disarms the guard).
    pub fn wait(mut self) -> ForecastOutcome {
        self.armed = false;
        self.engine.wait(self.id)
    }

    /// Let the request keep running unguarded; returns its id.
    pub fn detach(mut self) -> RequestId {
        self.armed = false;
        self.id
    }
}

impl Drop for SubmitGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.engine.cancel(self.id);
        }
    }
}

fn lock<'a, T>(m: &'a Mutex<T>) -> MutexGuard<'a, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait<'a, T>(cv: &Condvar, g: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    cv.wait(g).unwrap_or_else(|e| e.into_inner())
}

fn slot_loop(inner: &Arc<EngineInner>) {
    loop {
        let pending = {
            let mut q = lock(&inner.queue);
            loop {
                if let Some(p) = q.pop_next() {
                    inner.space_cv.notify_one();
                    break p;
                }
                if !q.open {
                    return;
                }
                q = wait(&inner.work_cv, q);
            }
        };
        // Admission check at pickup: a token that fired while the
        // request sat in the queue means it never starts — deadline
        // expiry evicts, an explicit cancel the queue scan lost the
        // race with finalizes here instead.
        if let Some(cause) = pending.token.cause() {
            inner.release_tenant(&pending.tenant);
            match cause {
                CancelCause::Deadline => evict_expired(inner, pending),
                CancelCause::Requested => finish_queued_cancel(inner, pending, cause),
            }
            continue;
        }
        let tenant = pending.tenant.clone();
        let outcome = run_request(inner, pending);
        inner.release_tenant(&tenant);
        inner.deposit(outcome);
    }
}

/// Terminal `Shed`: release the victim's tenant occupancy, account,
/// publish, deposit. Called with the queue lock held; the victim is
/// already popped from its lane.
fn shed_victim(inner: &EngineInner, q: &mut QueueState, victim: Pending) {
    q.tenant_release(&victim.tenant);
    let lane = victim.priority;
    inner.metrics.counter_add("requests_shed", &[], 1);
    inner
        .metrics
        .counter_add("requests_shed", &[("lane", lane.label())], 1);
    if let Some(bus) = &inner.bus {
        bus.publish(
            Some(&format!("r{}", victim.id)),
            RunEvent::RequestShed {
                lane: lane.label().to_string(),
            },
        );
    }
    inner.deposit(ForecastOutcome {
        id: RequestId(victim.id),
        label: victim.label,
        queued_seconds: victim.submitted.elapsed().as_secs_f64(),
        run_seconds: 0.0,
        result: ForecastResult::Shed { lane },
    });
    inner.space_cv.notify_all();
}

/// Terminal `Cancelled` for a request that never started.
fn finish_queued_cancel(inner: &EngineInner, victim: Pending, cause: CancelCause) {
    inner.metrics.counter_add("requests_cancelled", &[], 1);
    inner
        .metrics
        .counter_add("requests_cancelled", &[("cause", cause.label())], 1);
    if let Some(bus) = &inner.bus {
        bus.publish(
            Some(&format!("r{}", victim.id)),
            RunEvent::RequestCancelled {
                cause: cause.label().to_string(),
                steps_done: 0,
            },
        );
    }
    inner.deposit(ForecastOutcome {
        id: RequestId(victim.id),
        label: victim.label,
        queued_seconds: victim.submitted.elapsed().as_secs_f64(),
        run_seconds: 0.0,
        result: ForecastResult::Cancelled(CancelledRun {
            cause,
            steps_done: 0,
            run: None,
        }),
    });
    inner.emit_tick();
}

/// Terminal `Evicted`: the deadline expired while the request was still
/// queued.
fn evict_expired(inner: &EngineInner, victim: Pending) {
    let past = victim
        .deadline
        .map(|d| Instant::now().saturating_duration_since(d).as_secs_f64())
        .unwrap_or(0.0);
    inner.metrics.counter_add("requests_evicted", &[], 1);
    inner
        .metrics
        .observe("eviction_past_deadline_seconds", &[], past);
    if let Some(bus) = &inner.bus {
        bus.publish(
            Some(&format!("r{}", victim.id)),
            RunEvent::RequestEvicted {
                past_deadline_seconds: past,
            },
        );
    }
    inner.deposit(ForecastOutcome {
        id: RequestId(victim.id),
        label: victim.label,
        queued_seconds: victim.submitted.elapsed().as_secs_f64(),
        run_seconds: 0.0,
        result: ForecastResult::Evicted {
            past_deadline_seconds: past,
        },
    });
    inner.emit_tick();
}

fn run_request(inner: &Arc<EngineInner>, p: Pending) -> ForecastOutcome {
    let id = RequestId(p.id);
    let rid = id.to_string();
    let queued = p.submitted.elapsed().as_secs_f64();
    let m = &inner.metrics;
    // Request-scoped span on the global tracer, when one is installed
    // (the serve bin installs one; tests usually do not).
    let _span = obs::tracing::global_span("request", &rid);
    m.counter_add("requests_started", &[], 1);
    m.observe("request_queued_seconds", &[], queued);
    // Per-request telemetry sink: streams to the bus when the engine has
    // one, and maintains the progress mirror status() reads either way.
    let sink = match &inner.bus {
        Some(bus) => EventSink::for_request(bus, &rid),
        None => EventSink::progress_only(&rid),
    };
    inner.slots_busy.fetch_add(1, Ordering::Relaxed);
    lock(&inner.active).insert(
        p.id,
        ActiveRequest {
            label: p.label.clone(),
            steps_budget: p.req.steps,
            sink: sink.clone(),
        },
    );
    sink.emit(RunEvent::RequestStarted {
        queued_seconds: queued,
    });
    inner.emit_tick();
    let t0 = Instant::now();
    // A panic escaping the supervised region (an engine bug, not a model
    // blowup) fails this request only — never the slot.
    let result = match catch_unwind(AssertUnwindSafe(|| execute(inner, &p, &rid, &sink))) {
        Ok(res) => res,
        Err(payload) => ForecastResult::Failed(EngineFailure::Panic(panic_text(&*payload))),
    };
    let run_seconds = t0.elapsed().as_secs_f64();
    match &result {
        ForecastResult::Completed(rep) => {
            m.counter_add("requests_completed", &[], 1);
            m.observe("request_run_seconds", &[], run_seconds);
            m.counter_add("request_steps", &[("request", &rid)], rep.steps);
            sink.emit(RunEvent::RequestCompleted {
                steps: rep.steps,
                run_seconds,
            });
        }
        ForecastResult::Failed(e) => {
            m.counter_add("requests_failed", &[], 1);
            m.counter_add("request_failed", &[("request", &rid)], 1);
            let step = sink.progress().map(|pr| pr.steps_done).unwrap_or(0);
            sink.emit(RunEvent::RequestFailed {
                step,
                detail: e.to_string(),
            });
        }
        ForecastResult::Cancelled(c) => {
            m.counter_add("requests_cancelled", &[], 1);
            m.counter_add("requests_cancelled", &[("cause", c.cause.label())], 1);
            sink.emit(RunEvent::RequestCancelled {
                cause: c.cause.label().to_string(),
                steps_done: c.steps_done,
            });
        }
        ForecastResult::Evicted { .. } | ForecastResult::Shed { .. } => {
            unreachable!("a run slot never produces evicted/shed terminals")
        }
    }
    lock(&inner.active).remove(&p.id);
    inner.slots_busy.fetch_sub(1, Ordering::Relaxed);
    inner.emit_tick();
    ForecastOutcome {
        id,
        label: p.label,
        queued_seconds: queued,
        run_seconds,
        result,
    }
}

fn execute(inner: &Arc<EngineInner>, p: &Pending, rid: &str, sink: &EventSink) -> ForecastResult {
    let key = CaseKey::of(&p.req);
    let (mut d, warm_start) = acquire(inner, key, &p.req);
    // Install this request's sink on both the dycore (per-step
    // completions) and the supervisor (health, retries, checkpoints) for
    // the duration of the run; release() clears it before parking.
    d.set_event_sink(sink.clone());
    let (h0, m0) = d.exec_cache_counters();
    let mut sup = Supervisor::new(inner.policy.clone());
    sup.set_event_sink(sink.clone());
    // Thread the request's token through the supervisor (and from there
    // into the driver's substep loop): `cancel(id)` or deadline expiry
    // stops this run at its next boundary.
    sup.set_cancel_token(p.token.clone());
    let res = sup.run(&mut d, p.req.steps);
    let (h1, m1) = d.exec_cache_counters();
    let (hits, misses) = (h1 - h0, m1 - m0);
    let m = &inner.metrics;
    m.counter_add("kernel_cache_hits", &[], hits);
    m.counter_add("kernel_cache_misses", &[], misses);
    m.counter_add("kernel_cache_hits", &[("request", rid)], hits);
    m.counter_add("kernel_cache_misses", &[("request", rid)], misses);
    match res {
        Ok(run) if run.completed() => {
            let states = d.states.clone();
            let config = d.config;
            release(inner, key, d);
            ForecastResult::Completed(ForecastReport {
                steps: p.req.steps,
                config,
                run,
                states,
                cache_hits: hits,
                cache_misses: misses,
                warm_start,
            })
        }
        Ok(run) => {
            // Cancelled mid-run: the states may be mid-step (the token
            // can fire at an acoustic-substep boundary), so the instance
            // is discarded exactly like a failed one — a cancelled
            // tenant must never contaminate the warm pool.
            drop(d);
            m.counter_add("instances_discarded", &[], 1);
            let cause = run.cancelled.unwrap_or(CancelCause::Requested);
            ForecastResult::Cancelled(CancelledRun {
                cause,
                steps_done: run.steps,
                run: Some(run),
            })
        }
        Err(e) => {
            // Fault isolation: the poisoned instance is discarded, never
            // parked — the next tenant of this case gets a clean build.
            // The compiled kernels live in the shared `Arc` bundle and
            // survive the discard.
            drop(d);
            m.counter_add("instances_discarded", &[], 1);
            ForecastResult::Failed(EngineFailure::Supervised(e))
        }
    }
}

/// Check a warm instance out of the case pool, or build a cold one
/// against the case's shared compile bundle and grid set.
fn acquire(inner: &EngineInner, key: CaseKey, req: &ForecastRequest) -> (DistributedDycore, bool) {
    let (substep, grids) = {
        let mut cases = lock(&inner.cases);
        match cases.get_mut(&key) {
            Some(cc) => {
                if let Some(mut d) = cc.warm.pop() {
                    let reset = Arc::clone(
                        cc.reset.as_ref().expect("parked instance implies reset template"),
                    );
                    drop(cases);
                    // Undo any supervisor backoff a previous tenant
                    // applied, then rewrite every rank from the step-0
                    // template (its basis belongs to another instance,
                    // so restore() rewrites unconditionally).
                    d.config = req.config;
                    d.restore(&reset);
                    inner.metrics.counter_add("warm_acquires", &[], 1);
                    return (d, true);
                }
                (Arc::clone(&cc.substep), cc.grids.clone())
            }
            None => {
                // First tenant of this case: register the shared bundle
                // under the lock so racing cold tenants agree on one
                // program instance (kernel compilation itself is lazy
                // and deduplicated by the executors' cache locks).
                let substep = Arc::new(CompiledSubstep::build(&req.config, Some(&inner.pool)));
                cases.insert(
                    key,
                    CaseCache {
                        substep: Arc::clone(&substep),
                        grids: None,
                        reset: None,
                        warm: Vec::new(),
                    },
                );
                (substep, None)
            }
        }
    };
    // Instance build (grids when not yet shared, initial states, halo
    // updater) happens outside the case lock: it is per-tenant work.
    let mut d = DistributedDycore::new_with_grids(req.config, &ExpansionAttrs::tuned(), grids);
    d.set_pool(Some(inner.pool.clone()));
    d.set_shared_substep(substep);
    let reset = Arc::new(Checkpoint::capture(&d));
    {
        let mut cases = lock(&inner.cases);
        if let Some(cc) = cases.get_mut(&key) {
            if cc.grids.is_none() {
                cc.grids = Some(Arc::clone(&d.grids));
            }
            cc.reset.get_or_insert(reset);
        }
    }
    inner.metrics.counter_add("cold_builds", &[], 1);
    (d, false)
}

/// Park a healthy instance for the next tenant, up to the warm cap.
fn release(inner: &EngineInner, key: CaseKey, mut d: DistributedDycore) {
    // Never park another tenant's sink: the next tenant installs its
    // own, and a parked instance must not retain a subscriber tag.
    d.set_event_sink(EventSink::default());
    let mut cases = lock(&inner.cases);
    if let Some(cc) = cases.get_mut(&key) {
        if cc.reset.is_some() && cc.warm.len() < inner.warm_cap {
            cc.warm.push(d);
            inner.metrics.counter_add("warm_parks", &[], 1);
        }
    }
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic (non-string payload)".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_request(steps: u64) -> ForecastRequest {
        let config = DriverConfig::six_rank(
            8,
            3,
            DycoreConfig {
                n_split: 1,
                k_split: 1,
                dt: 4.0,
                dddmp: 0.02,
                nord4_damp: None,
            },
        );
        ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
    }

    fn small_engine(slots: usize) -> ForecastEngine {
        ForecastEngine::start(EngineConfig {
            slots,
            pool: Some(Pool::new(1)),
            ..EngineConfig::default()
        })
    }

    #[test]
    fn submit_wait_roundtrip() {
        let engine = small_engine(1);
        let id = engine.submit(small_request(1).with_label("hello"));
        let out = engine.wait(id);
        assert_eq!(out.id, id);
        assert_eq!(out.label, "hello");
        let rep = out.result.expect("request succeeds");
        assert_eq!(rep.steps, 1);
        assert!(!rep.warm_start);
        assert!(rep.cache_misses > 0, "first tenant compiles");
        assert!(rep.run.monitor.all_healthy());
        assert_eq!(rep.states.len(), 6);
        let stats = engine.shutdown();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.failed, 0);
    }

    #[test]
    fn second_request_pays_zero_compilation() {
        let engine = small_engine(1);
        let a = engine.submit(small_request(2));
        let first = engine.wait(a).result.expect("first ok");
        let b = engine.submit(small_request(2));
        let second = engine.wait(b).result.expect("second ok");
        assert!(first.cache_misses > 0);
        assert_eq!(
            second.cache_misses, 0,
            "request N+1 must pay zero compilation"
        );
        assert!(second.cache_hits > 0);
        assert!(second.warm_start, "single-slot second request reuses the instance");
        engine.shutdown();
    }

    #[test]
    fn try_submit_refuses_beyond_queue_cap() {
        // One slot kept busy, capacity 1: the second queued request must
        // be refused at the door, not buffered without bound.
        let engine = ForecastEngine::start(EngineConfig {
            slots: 1,
            queue_cap: 1,
            pool: Some(Pool::new(1)),
            ..EngineConfig::default()
        });
        let first = engine.submit(small_request(3));
        // Fill the queue behind the (likely running) first request; at
        // most one extra fits regardless of pickup timing.
        let mut accepted = Vec::new();
        let mut refused = 0usize;
        for _ in 0..4 {
            match engine.try_submit(small_request(1)) {
                Ok(id) => accepted.push(id),
                Err(_) => refused += 1,
            }
        }
        assert!(refused >= 2, "queue_cap=1 admits at most 2 of 4 extras");
        let _ = engine.wait(first);
        for id in accepted {
            let out = engine.wait(id);
            assert!(out.result.is_completed());
        }
        engine.shutdown();
    }

    #[test]
    fn outcome_snapshot_roundtrips_through_fv3ckpt1() {
        let engine = small_engine(1);
        let id = engine.submit(small_request(1));
        let rep = engine.wait(id).result.expect("ok");
        let bytes = rep.snapshot_bytes();
        let ck = Checkpoint::from_bytes(&bytes).expect("snapshot decodes");
        assert_eq!(ck.states.len(), rep.states.len());
        assert_eq!(ck.step, 1);
        engine.shutdown();
    }
}
