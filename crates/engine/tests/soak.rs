//! ISSUE 7 satellite 3: proptest soak over request interleavings.
//!
//! For every combination of arrival order (rotation of a mixed batch),
//! per-request step budget (1–4), and slot count (1–4), the engine must:
//!
//! * complete every submitted request within a hard deadline — no
//!   deadlock, no lost request (every id waited on yields an outcome);
//! * keep the shared kernel cache monotone: after the warmup request
//!   pays the case's compile bill, `kernel_cache_hits` only grows and
//!   `kernel_cache_misses` never moves again;
//! * run every request clean and for exactly its budget.
//!
//! Regression parameter sets found by the fuzzer are pinned as named
//! tests at the bottom, following `fv3core/tests/parallel_fuzz.rs`.

use engine::{EngineConfig, ForecastEngine, ForecastRequest, Scenario};
use fv3::dyn_core::DycoreConfig;
use fv3core::DriverConfig;
use proptest::prelude::*;
use std::time::Duration;

/// Per-request completion deadline. Generous: a debug-build c8L3 step is
/// well under a second; hitting this means a hang, not a slow machine.
const DEADLINE: Duration = Duration::from_secs(120);

fn small_request(steps: u64) -> ForecastRequest {
    let config = DriverConfig::six_rank(
        8,
        3,
        DycoreConfig {
            n_split: 1,
            k_split: 1,
            dt: 4.0,
            dddmp: 0.02,
            nord4_damp: None,
        },
    );
    ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
}

/// Drive one interleaving: `budgets` submitted in rotated arrival order
/// against `slots` run slots, after one warmup request compiles the
/// case.
fn check_case(slots: usize, budgets: &[u64], rotate: usize) {
    let label = format!("slots={slots} budgets={budgets:?} rotate={rotate}");
    let engine = ForecastEngine::start(EngineConfig {
        slots,
        ..EngineConfig::default()
    });

    // Warmup: the one request allowed to compile.
    let warm = engine.submit(small_request(1).with_label("warmup"));
    let warm_out = engine
        .wait_timeout(warm, DEADLINE)
        .unwrap_or_else(|| panic!("{label}: warmup hung"));
    let warm_rep = warm_out.result.expect("warmup succeeds");
    assert!(warm_rep.cache_misses > 0, "{label}: warmup compiles the case");
    let base = engine.stats();

    // The soak batch, in rotated arrival order.
    let n = budgets.len();
    let order: Vec<usize> = (0..n).map(|i| (i + rotate) % n).collect();
    let ids: Vec<_> = order
        .iter()
        .map(|&i| {
            engine.submit(
                small_request(budgets[i]).with_label(&format!("req-{i}x{}", budgets[i])),
            )
        })
        .collect();

    // Every id must resolve: a None here is a deadlock or a lost
    // request, the two failure modes this suite exists to catch.
    let mut hits_seen = base.cache_hits;
    for (&i, id) in order.iter().zip(&ids) {
        let out = engine
            .wait_timeout(*id, DEADLINE)
            .unwrap_or_else(|| panic!("{label}: request {id} (budget {}) hung or lost", budgets[i]));
        assert_eq!(out.id, *id, "{label}: outcome routed to the wrong waiter");
        let rep = out
            .result
            .expect(&format!("{label}: request {id}"));
        assert_eq!(rep.steps, budgets[i], "{label}: request {id} ran a wrong budget");
        assert!(rep.run.clean(), "{label}: request {id} needed recovery");
        assert_eq!(rep.cache_misses, 0, "{label}: request {id} recompiled a warm case");
        assert!(rep.cache_hits > 0, "{label}: request {id} bypassed the shared cache");
        let now = engine.stats().cache_hits;
        assert!(now >= hits_seen, "{label}: kernel_cache_hits went backwards");
        hits_seen = now;
    }

    let stats = engine.shutdown();
    assert_eq!(
        stats.completed as usize,
        n + 1,
        "{label}: completed != submitted (lost request)"
    );
    assert_eq!(stats.failed, 0, "{label}: no request may fail");
    assert_eq!(
        stats.cache_misses, base.cache_misses,
        "{label}: kernel_cache_misses moved after the first compile"
    );
    assert!(
        stats.cache_hits > base.cache_hits,
        "{label}: the soak batch never hit the shared cache"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn soak_interleavings_complete_without_loss(
        slots in 1usize..5,
        budgets in prop::collection::vec(1u64..5, 3..7),
        rotate in 0usize..8,
    ) {
        check_case(slots, &budgets, rotate);
    }
}

// Pinned regression parameter sets. Each earned its place by failing
// during development; keep them even when the fuzzer goes quiet.

/// Single slot, descending budgets: maximal queueing behind one slot.
#[test]
fn pinned_single_slot_descending_budgets() {
    check_case(1, &[4, 3, 2, 1], 0);
}

/// More slots than requests: slots must idle and exit cleanly, not spin.
#[test]
fn pinned_more_slots_than_requests() {
    check_case(4, &[1, 1, 1], 2);
}

/// Rotation past the batch length: arrival order wraps.
#[test]
fn pinned_rotation_wraps() {
    check_case(2, &[2, 1, 4, 1, 3], 7);
}
