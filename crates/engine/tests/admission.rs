//! Admission control and graceful degradation (ISSUE 10): cooperative
//! cancellation, deadlines, priority lanes, tenant quotas, and overload
//! shedding — each path pinned deterministically by plugging the
//! engine's single run slot with a request that can never finish, so
//! queue-side behaviour is observed at leisure, then releasing it with
//! `cancel`.
//!
//! No fault plan is armed here; the chaos mix lives in
//! `tests/overload_soak.rs` (its own binary, because the injection
//! registry is process-global).

use engine::{
    EngineConfig, ForecastEngine, ForecastRequest, ForecastResult, Priority, Rejected, RequestId,
    SubmitOptions,
};
use machine::cancel::CancelCause;
use obs::stream::RunEvent;
use std::time::{Duration, Instant};

/// Hitting this means a hang, not a slow machine.
const DEADLINE: Duration = Duration::from_secs(120);

/// A step budget no test machine finishes before the test cancels it.
const FOREVER: u64 = 100_000;

fn engine(cfg: EngineConfig) -> ForecastEngine {
    let engine = ForecastEngine::start(cfg);
    // Warmup: pay the case's compile bill so cancellation timing below
    // measures stepping, not compilation.
    let warm = engine.submit(ForecastRequest::c8l6(1).with_label("warmup"));
    engine.wait(warm).result.expect("warmup");
    engine
}

fn wait_until_running(engine: &ForecastEngine, id: RequestId) {
    let t0 = Instant::now();
    while !engine.status().running.iter().any(|r| r.id == id) {
        assert!(t0.elapsed() < DEADLINE, "request {id} never took a slot");
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// Plug the engine's only slot with a request that runs until cancelled.
fn plug(engine: &ForecastEngine) -> RequestId {
    let id = engine.submit(ForecastRequest::c8l6(FOREVER).with_label("plug"));
    wait_until_running(engine, id);
    id
}

#[test]
fn cancel_running_request_releases_slot_and_keeps_partial_progress() {
    let engine = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let id = plug(&engine);
    assert!(engine.cancel(id), "a running request has a live token");
    let out = engine.wait(id);
    let c = match out.result {
        ForecastResult::Cancelled(c) => c,
        other => panic!("expected cancelled, got '{}'", other.terminal()),
    };
    assert_eq!(c.cause, CancelCause::Requested);
    let run = c.run.expect("a mid-run cancel keeps the partial report");
    assert_eq!(run.steps, c.steps_done, "partial report counts completed steps");
    assert!(c.steps_done < FOREVER, "the budget was never reachable");
    assert_eq!(run.cancelled, Some(CancelCause::Requested));

    // The slot is released and nothing downstream is poisoned: a
    // follow-up request completes clean on the shared compile bundle.
    let after = engine.submit(ForecastRequest::c8l6(2).with_label("after"));
    let rep = engine.wait(after).result.expect("request after a cancel");
    assert_eq!(rep.cache_misses, 0, "the shared bundle survives the discard");
    assert!(rep.run.clean(), "no recovery events leak from a cancelled tenant");

    // A terminal id has no token left to fire.
    assert!(!engine.cancel(id), "cancel after the terminal is a no-op");

    let m = engine.metrics();
    assert_eq!(m.counter_value("requests_cancelled", &[]), 1);
    assert_eq!(
        m.counter_value("requests_cancelled", &[("cause", "requested")]),
        1
    );
    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 1);
    assert_eq!(stats.completed, 2, "warmup + follow-up");
    assert_eq!(stats.failed, 0, "cancellation is not a failure");
}

#[test]
fn cancel_queued_request_finalizes_without_waiting_for_a_slot() {
    let engine = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let plug_id = plug(&engine);
    let victim = engine.submit(ForecastRequest::c8l6(2).with_label("victim"));
    assert_eq!(engine.queue_depth(), 1);
    assert!(engine.cancel(victim));
    // The outcome resolves while the plug still owns the only slot — a
    // queued cancel never waits for service.
    let out = engine
        .wait_timeout(victim, Duration::from_secs(10))
        .expect("queued cancel finalizes immediately");
    match out.result {
        ForecastResult::Cancelled(c) => {
            assert_eq!(c.cause, CancelCause::Requested);
            assert_eq!(c.steps_done, 0);
            assert!(c.run.is_none(), "never started, so no partial report");
        }
        other => panic!("expected cancelled, got '{}'", other.terminal()),
    }
    assert_eq!(out.run_seconds, 0.0, "no slot time was spent");
    assert!(
        engine.status().running.iter().any(|r| r.id == plug_id),
        "the plug kept its slot throughout"
    );
    assert_eq!(engine.queue_depth(), 0);
    engine.cancel(plug_id);
    engine.wait(plug_id);
    let stats = engine.shutdown();
    assert_eq!(stats.cancelled, 2);
}

#[test]
fn expired_deadline_evicts_queued_request_without_starting_it() {
    let engine = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let plug_id = plug(&engine);
    let id = engine.submit_with(
        ForecastRequest::c8l6(2).with_label("expiring"),
        SubmitOptions::default().deadline(Duration::from_millis(20)),
    );
    // Let the deadline lapse while the request is stuck in the queue,
    // then free the slot so a slot loop finds the corpse.
    std::thread::sleep(Duration::from_millis(50));
    assert!(engine.cancel(plug_id));
    let out = engine.wait(id);
    match out.result {
        ForecastResult::Evicted {
            past_deadline_seconds,
        } => assert!(
            past_deadline_seconds > 0.0,
            "eviction reports how late the request was"
        ),
        other => panic!("expected evicted, got '{}'", other.terminal()),
    }
    assert_eq!(out.run_seconds, 0.0, "an evicted request never ran");
    let stats = engine.shutdown();
    assert_eq!(stats.evicted, 1);
    assert_eq!(stats.failed, 0, "eviction is not a failure");
}

#[test]
fn deadline_cancels_running_request_at_a_step_boundary() {
    let engine = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let id = engine.submit_with(
        ForecastRequest::c8l6(FOREVER).with_label("budgeted"),
        SubmitOptions::default().deadline(Duration::from_millis(300)),
    );
    let out = engine.wait(id);
    match out.result {
        ForecastResult::Cancelled(c) => {
            assert_eq!(c.cause, CancelCause::Deadline);
            assert!(c.steps_done < FOREVER);
            assert!(c.run.is_some(), "the deadline fired mid-run, not in the queue");
        }
        other => panic!("expected a deadline cancel, got '{}'", other.terminal()),
    }
    let m = engine.metrics();
    assert_eq!(
        m.counter_value("requests_cancelled", &[("cause", "deadline")]),
        1
    );
    engine.shutdown();
}

#[test]
fn high_lane_overtakes_normal_and_batch() {
    let engine = engine(EngineConfig {
        slots: 1,
        streaming: true,
        stream_buffer: 4096,
        ..EngineConfig::default()
    });
    let stream = engine.subscribe_all().expect("streaming engine has a bus");
    let plug_id = plug(&engine);
    // Arrival order is the inverse of lane order.
    let batch = engine.submit_with(
        ForecastRequest::c8l6(1).with_label("batch"),
        SubmitOptions::default().priority(Priority::Batch),
    );
    let normal = engine.submit(ForecastRequest::c8l6(1).with_label("normal"));
    let high = engine.submit_with(
        ForecastRequest::c8l6(1).with_label("high"),
        SubmitOptions::default().priority(Priority::High),
    );
    let stats = engine.stats();
    assert_eq!(stats.lane_depths, [1, 1, 1]);
    assert_eq!(stats.queue_depth, 3);
    // Status lists the queue in scheduling order, not arrival order.
    let queued: Vec<RequestId> = engine.status().queued.iter().map(|(id, _)| *id).collect();
    assert_eq!(queued, vec![high, normal, batch]);

    assert!(engine.cancel(plug_id));
    // All three complete; only the service order below matters.
    for id in [batch, normal, high] {
        engine.wait(id).result.expect("drained request");
    }
    // The event stream pins the service order: plug first (it held the
    // slot), then High before Normal before Batch.
    let started: Vec<String> = stream
        .drain()
        .into_iter()
        .filter(|ev| matches!(ev.body, RunEvent::RequestStarted { .. }))
        .filter_map(|ev| ev.request)
        .collect();
    let expect: Vec<String> = [plug_id, high, normal, batch]
        .iter()
        .map(|id| id.to_string())
        .collect();
    assert_eq!(started, expect, "lanes must be served High > Normal > Batch");
    engine.wait(plug_id);
    engine.shutdown();
}

#[test]
fn tenant_quota_caps_inflight_plus_queued_and_releases_on_terminal() {
    let engine = engine(EngineConfig {
        slots: 1,
        tenant_cap: Some(2),
        ..EngineConfig::default()
    });
    // The plug itself is tenant-tagged: running work counts against the
    // cap, not just queued work.
    let plug_id = engine.submit_with(
        ForecastRequest::c8l6(FOREVER).with_label("acme-plug"),
        SubmitOptions::default().tenant("acme"),
    );
    wait_until_running(&engine, plug_id);
    let queued = engine.submit_with(
        ForecastRequest::c8l6(1).with_label("acme-queued"),
        SubmitOptions::default().tenant("acme"),
    );
    // acme is now at its cap of 2 (one running + one queued).
    match engine.try_submit_with(
        ForecastRequest::c8l6(1).with_label("acme-over"),
        SubmitOptions::default().tenant("acme"),
    ) {
        Err(Rejected::QuotaExceeded { tenant, req }) => {
            assert_eq!(tenant, "acme");
            assert_eq!(req.label, "acme-over", "the refused request is handed back");
        }
        other => panic!("expected QuotaExceeded, got {other:?}"),
    }
    // Other tenants (and untagged requests) are unaffected.
    let other = engine
        .try_submit_with(
            ForecastRequest::c8l6(1).with_label("rival"),
            SubmitOptions::default().tenant("rival"),
        )
        .expect("a different tenant is under its own cap");
    assert_eq!(
        engine.status().tenants,
        vec![("acme".to_string(), 2), ("rival".to_string(), 1)]
    );

    // A terminal releases occupancy: cancel the plug and resubmit.
    assert!(engine.cancel(plug_id));
    engine.wait(plug_id);
    let retry = engine
        .try_submit_with(
            ForecastRequest::c8l6(1).with_label("acme-retry"),
            SubmitOptions::default().tenant("acme"),
        )
        .expect("the cancelled plug released its quota slot");
    for id in [queued, other, retry] {
        engine.wait(id).result.expect("admitted request completes");
    }
    assert!(engine.status().tenants.is_empty(), "all occupancy released");
    let stats = engine.shutdown();
    assert_eq!(stats.rejected, 1);
}

#[test]
fn overload_sheds_newest_batch_first_and_never_sheds_own_lane() {
    let engine = engine(EngineConfig {
        slots: 1,
        queue_cap: 2,
        ..EngineConfig::default()
    });
    let plug_id = plug(&engine);
    let opts_batch = || SubmitOptions::default().priority(Priority::Batch);
    let b0 = engine.submit_with(ForecastRequest::c8l6(1).with_label("b0"), opts_batch());
    let b1 = engine.submit_with(ForecastRequest::c8l6(1).with_label("b1"), opts_batch());
    assert_eq!(engine.stats().lane_depths, [0, 0, 2], "queue full of Batch");

    // A Normal submission to the full queue sheds the NEWEST Batch
    // request (b1) and takes its place.
    let n0 = engine
        .try_submit_with(ForecastRequest::c8l6(1).with_label("n0"), SubmitOptions::default())
        .expect("admitted by shedding");
    match engine.wait(b1).result {
        ForecastResult::Shed { lane } => assert_eq!(lane, Priority::Batch),
        other => panic!("expected shed, got '{}'", other.terminal()),
    }
    let n1 = engine
        .try_submit_with(ForecastRequest::c8l6(1).with_label("n1"), SubmitOptions::default())
        .expect("admitted by shedding the older batch request");
    match engine.wait(b0).result {
        ForecastResult::Shed { lane } => assert_eq!(lane, Priority::Batch),
        other => panic!("expected shed, got '{}'", other.terminal()),
    }

    // The queue is now full of Normal work: a Normal submission cannot
    // shed its own lane, and Batch has nothing below it at all.
    match engine.try_submit_with(ForecastRequest::c8l6(1).with_label("n2"), SubmitOptions::default())
    {
        Err(Rejected::QueueFull(req)) => assert_eq!(req.label, "n2"),
        other => panic!("expected QueueFull, got {other:?}"),
    }
    match engine.try_submit_with(ForecastRequest::c8l6(1).with_label("b2"), opts_batch()) {
        Err(Rejected::QueueFull(_)) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    // High still gets in: it sheds the newest Normal.
    let h0 = engine
        .try_submit_with(
            ForecastRequest::c8l6(1).with_label("h0"),
            SubmitOptions::default().priority(Priority::High),
        )
        .expect("High sheds Normal under pressure");
    match engine.wait(n1).result {
        ForecastResult::Shed { lane } => assert_eq!(lane, Priority::Normal),
        other => panic!("expected shed, got '{}'", other.terminal()),
    }

    assert!(engine.cancel(plug_id));
    engine.wait(plug_id);
    engine.wait(n0).result.expect("surviving normal request");
    engine.wait(h0).result.expect("high request");

    let m = engine.metrics();
    assert_eq!(m.counter_value("requests_shed", &[]), 3);
    assert_eq!(m.counter_value("requests_shed", &[("lane", "batch")]), 2);
    assert_eq!(m.counter_value("requests_shed", &[("lane", "normal")]), 1);
    let stats = engine.shutdown();
    assert_eq!(stats.shed, 3);
    assert_eq!(stats.rejected, 2);
    assert_eq!(stats.failed, 0, "shedding is not a failure");
}

#[test]
fn submit_guard_drop_cancels_but_wait_and_detach_disarm() {
    let engine = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let plug_id = plug(&engine);

    // Dropping the guard abandons the queued request.
    let abandoned = {
        let guard = engine.submit_guarded(
            ForecastRequest::c8l6(1).with_label("abandoned"),
            SubmitOptions::default(),
        );
        guard.id()
    };
    let out = engine
        .wait_timeout(abandoned, Duration::from_secs(10))
        .expect("a dropped guard cancels immediately");
    assert!(
        matches!(out.result, ForecastResult::Cancelled(_)),
        "expected cancelled, got '{}'",
        out.result.terminal()
    );

    // detach() leaves the request running unguarded.
    let detached = engine
        .submit_guarded(
            ForecastRequest::c8l6(1).with_label("detached"),
            SubmitOptions::default(),
        )
        .detach();
    assert!(engine.cancel(plug_id));
    engine.wait(plug_id);
    engine
        .wait(detached)
        .result
        .expect("a detached request runs to completion");

    // wait() consumes the guard and the outcome.
    let rep = engine
        .submit_guarded(
            ForecastRequest::c8l6(1).with_label("waited"),
            SubmitOptions::default(),
        )
        .wait()
        .result
        .expect("a waited guard completes");
    assert_eq!(rep.steps, 1);
    engine.shutdown();
}

/// ISSUE 10 satellite: an expired `wait_timeout` must leave the outcome
/// claimable — the next `wait` returns it, and only one wait ever does.
#[test]
fn expired_wait_timeout_leaves_the_outcome_claimable() {
    let engine = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let plug_id = plug(&engine);
    let id = engine.submit(ForecastRequest::c8l6(1).with_label("slow"));
    // The request is stuck behind the plug: this wait must expire.
    assert!(
        engine.wait_timeout(id, Duration::from_millis(30)).is_none(),
        "the request cannot finish while the slot is plugged"
    );
    assert!(engine.cancel(plug_id));
    engine.wait(plug_id);
    // The expired wait consumed nothing: the outcome is still claimable.
    let out = engine
        .wait_timeout(id, DEADLINE)
        .expect("outcome claimable after an expired wait");
    out.result.expect("request completes once the plug is gone");
    // Exactly-once: the outcome was claimed, a third wait finds nothing.
    assert!(engine.wait_timeout(id, Duration::from_millis(10)).is_none());
    engine.shutdown();
}

/// ISSUE 10 satellite: `requests_rejected` increments exactly once per
/// refusal, in both the aggregate stats and the pre-registered counter
/// series (unlabeled total + per-reason breakdown).
#[test]
fn rejections_count_exactly_once_per_refusal() {
    let engine = engine(EngineConfig {
        slots: 1,
        queue_cap: 1,
        tenant_cap: Some(1),
        ..EngineConfig::default()
    });
    // Pre-registered at zero before any refusal.
    assert_eq!(engine.metrics().counter_value("requests_rejected", &[]), 0);
    assert_eq!(engine.stats().rejected, 0);

    let plug_id = engine.submit_with(
        ForecastRequest::c8l6(FOREVER).with_label("t-plug"),
        SubmitOptions::default().tenant("t"),
    );
    wait_until_running(&engine, plug_id);

    // Refusal 1: tenant quota (checked before queue capacity).
    assert!(matches!(
        engine.try_submit_with(
            ForecastRequest::c8l6(1).with_label("t-over"),
            SubmitOptions::default().tenant("t"),
        ),
        Err(Rejected::QuotaExceeded { .. })
    ));
    assert_eq!(engine.stats().rejected, 1);

    // Refusal 2: queue full with nothing sheddable below Batch.
    let filler = engine.submit_with(
        ForecastRequest::c8l6(1).with_label("filler"),
        SubmitOptions::default().priority(Priority::Batch),
    );
    assert!(matches!(
        engine.try_submit_with(
            ForecastRequest::c8l6(1).with_label("refused"),
            SubmitOptions::default().priority(Priority::Batch),
        ),
        Err(Rejected::QueueFull(_))
    ));

    let m = engine.metrics();
    assert_eq!(m.counter_value("requests_rejected", &[]), 2);
    assert_eq!(m.counter_value("requests_rejected", &[("reason", "quota")]), 1);
    assert_eq!(
        m.counter_value("requests_rejected", &[("reason", "queue_full")]),
        1
    );
    assert_eq!(engine.stats().rejected, 2);

    assert!(engine.cancel(plug_id));
    engine.wait(plug_id);
    engine.wait(filler).result.expect("admitted filler completes");
    let stats = engine.shutdown();
    assert_eq!(stats.rejected, 2, "refusals never double-count");
    assert_eq!(stats.submitted, stats.completed + stats.cancelled);
}
