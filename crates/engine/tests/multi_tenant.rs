//! ISSUE 7 satellite 1: N concurrent tenants running the standard c8L6
//! case through one [`ForecastEngine`] must each be bit-identical
//! (0 ULP) to a fresh single-process run of the same request — sharing
//! one compiled program, one grid set, and one worker team across
//! tenants is a pure performance transform, never a numerical one.
//!
//! The compile-sharing claim is asserted through the request-level
//! kernel-cache counters: the first wave pays exactly one compilation
//! per kernel *in total* (concurrent cold tenants dedupe through the
//! executor cache locks), and every request after the first pays zero.

use dataflow::graph::ExpansionAttrs;
use engine::{EngineConfig, ForecastEngine, ForecastRequest};
use fv3::state::DycoreState;
use fv3core::DistributedDycore;

const STEPS: u64 = 2;
const TENANTS: usize = 6;

/// What a tenant of `req` must produce: a fresh driver stepped in
/// isolation, no engine, no sharing.
fn reference_states(req: &ForecastRequest) -> Vec<DycoreState> {
    let mut d = DistributedDycore::new(req.config, &ExpansionAttrs::tuned());
    for _ in 0..req.steps {
        d.step();
    }
    d.states.clone()
}

fn assert_bit_identical(got: &[DycoreState], want: &[DycoreState], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: rank count");
    for (r, (sa, sb)) in got.iter().zip(want).enumerate() {
        for ((name, fa), (_, fb)) in sa.fields().iter().zip(sb.fields().iter()) {
            let (va, vb) = (fa.export_logical(), fb.export_logical());
            for (n, (x, y)) in va.iter().zip(&vb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label}: rank {r} field {name} element {n}: {x} vs {y}"
                );
            }
        }
    }
}

/// The kernel-compilation bill for one request of this case, measured in
/// a throwaway single-tenant engine.
fn solo_compile_bill(req: &ForecastRequest) -> u64 {
    let engine = ForecastEngine::start(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let id = engine.submit(req.clone());
    let misses = engine.wait(id).result.expect("solo run succeeds").cache_misses;
    engine.shutdown();
    misses
}

#[test]
fn concurrent_tenants_are_bit_identical_and_share_one_compile() {
    let req = ForecastRequest::c8l6(STEPS);
    let reference = reference_states(&req);
    let bill = solo_compile_bill(&req);
    assert!(bill > 0, "a cold case must compile something");

    let engine = ForecastEngine::start(EngineConfig {
        slots: 3,
        ..EngineConfig::default()
    });

    // Wave 1: all tenants cold-start concurrently. They must agree with
    // the fresh-process reference bit for bit, and pay the compile bill
    // exactly once between them.
    let wave1: Vec<_> = (0..TENANTS)
        .map(|i| engine.submit(req.clone().with_label(&format!("tenant-{i}"))))
        .collect();
    let mut wave1_misses = 0u64;
    for id in wave1 {
        let out = engine.wait(id);
        let label = out.label.clone();
        let rep = out.result.expect(&label);
        assert_bit_identical(&rep.states, &reference, &label);
        assert!(rep.run.clean(), "{label}: clean run expected");
        wave1_misses += rep.cache_misses;
    }
    assert_eq!(
        wave1_misses, bill,
        "concurrent cold tenants must compile each kernel exactly once in total"
    );

    // Wave 2: the case is warm. Zero compilation for every tenant, and
    // still bit-identical — warm-instance rewind is not allowed to leak
    // the previous tenant's state.
    let wave2: Vec<_> = (0..TENANTS)
        .map(|i| engine.submit(req.clone().with_label(&format!("wave2-{i}"))))
        .collect();
    let mut warm_starts = 0usize;
    for id in wave2 {
        let out = engine.wait(id);
        let label = out.label.clone();
        let rep = out.result.expect(&label);
        assert_bit_identical(&rep.states, &reference, &label);
        assert_eq!(rep.cache_misses, 0, "{label}: request N+1 pays zero compilation");
        assert!(rep.cache_hits > 0, "{label}: steady state runs from the shared cache");
        warm_starts += rep.warm_start as usize;
    }
    assert!(warm_starts > 0, "the warm-instance pool must see reuse");

    let stats = engine.shutdown();
    assert_eq!(stats.submitted as usize, 2 * TENANTS);
    assert_eq!(stats.completed as usize, 2 * TENANTS);
    assert_eq!(stats.failed, 0);
    assert_eq!(stats.cache_misses, wave1_misses, "steady-state misses stay zero");
    assert!(stats.warm_acquires > 0);
}
