//! ISSUE 7 satellite 2: a fault injected into one tenant must stay in
//! that tenant. A `driver.poison_field` fault (armed through the
//! standard `FV3_FAULT_PLAN` grammar for the engine's lifetime) poisons
//! `pt` in whichever request reaches step 1 first; that request — run
//! under a zero-retry supervision policy — must fail with a
//! [`SupervisedError`] attributed to its own request id, while every
//! neighbour finishes bit-identical to a clean fresh-process run.
//!
//! One test per binary: the fault plan is process-global (env var +
//! armed registry), so this file must not share a process with tests
//! that expect a fault-free world.

use dataflow::graph::ExpansionAttrs;
use engine::{EngineConfig, EngineFailure, ForecastEngine, ForecastRequest};
use fv3::state::DycoreState;
use fv3core::DistributedDycore;
use resilience::{FailureKind, SupervisorPolicy};

const STEPS: u64 = 2;
const TENANTS: usize = 3;

fn reference_states(req: &ForecastRequest) -> Vec<DycoreState> {
    let mut d = DistributedDycore::new(req.config, &ExpansionAttrs::tuned());
    for _ in 0..req.steps {
        d.step();
    }
    d.states.clone()
}

fn assert_bit_identical(got: &[DycoreState], want: &[DycoreState], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: rank count");
    for (r, (sa, sb)) in got.iter().zip(want).enumerate() {
        for ((name, fa), (_, fb)) in sa.fields().iter().zip(sb.fields().iter()) {
            let (va, vb) = (fa.export_logical(), fb.export_logical());
            for (n, (x, y)) in va.iter().zip(&vb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label}: rank {r} field {name} element {n}: {x} vs {y}"
                );
            }
        }
    }
}

#[test]
fn poisoned_tenant_fails_alone_while_neighbours_stay_bit_identical() {
    let req = ForecastRequest::c8l6(STEPS);
    // Clean reference computed before the plan is armed.
    let reference = reference_states(&req);

    // The `once` default retires the spec after its first injection, so
    // exactly one concurrent tenant is poisoned (the fire is serialized
    // by the registry); zero retries turns that poison into an
    // immediate, attributable failure instead of a silent rollback.
    std::env::set_var("FV3_FAULT_PLAN", "seed=7;nan@step=1,field=pt");
    let engine = ForecastEngine::start(EngineConfig {
        slots: TENANTS,
        policy: SupervisorPolicy {
            max_retries: 0,
            ..SupervisorPolicy::default()
        },
        ..EngineConfig::default()
    });
    std::env::remove_var("FV3_FAULT_PLAN");

    let ids: Vec<_> = (0..TENANTS)
        .map(|i| engine.submit(req.clone().with_label(&format!("tenant-{i}"))))
        .collect();

    let mut failed = Vec::new();
    let mut clean = 0usize;
    for id in ids {
        let out = engine.wait(id);
        match out.result {
            engine::ForecastResult::Completed(rep) => {
                assert_bit_identical(&rep.states, &reference, &out.label);
                assert!(rep.run.clean(), "{}: neighbour saw recovery events", out.label);
                clean += 1;
            }
            engine::ForecastResult::Failed(EngineFailure::Supervised(e)) => {
                assert_eq!(e.step, 2, "poison (pre-increment step 1) fails the second step");
                assert!(
                    matches!(e.kind, FailureKind::Blowup | FailureKind::Violation),
                    "poison must surface as a numerical failure, got {:?}",
                    e.kind
                );
                failed.push(out.id);
            }
            engine::ForecastResult::Failed(e @ EngineFailure::Panic(_)) => {
                panic!("{}: unexpected {e}", out.label)
            }
            other => panic!("{}: unexpected terminal '{}'", out.label, other.terminal()),
        }
    }
    assert_eq!(failed.len(), 1, "exactly one tenant is poisoned");
    assert_eq!(clean, TENANTS - 1);

    // The failure is attributed to the poisoned request's own id in the
    // engine's metrics, and to no other.
    let rid = failed[0].to_string();
    let m = engine.metrics();
    assert_eq!(m.counter_value("request_failed", &[("request", &rid)]), 1);
    assert_eq!(m.counter_value("requests_failed", &[]), 1);

    // The case survives the poisoned tenant: a follow-up request runs
    // clean on the still-shared compile bundle (zero recompilation).
    let after = engine.submit(req.clone().with_label("after-fault"));
    let rep = engine.wait(after).result.expect("post-fault request succeeds");
    assert_bit_identical(&rep.states, &reference, "after-fault");
    assert_eq!(rep.cache_misses, 0, "the shared bundle survives the discard");

    let stats = engine.shutdown();
    assert_eq!(stats.completed as usize, TENANTS);
    assert_eq!(stats.failed, 1);
}
