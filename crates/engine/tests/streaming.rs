//! Live telemetry plane through the engine (ISSUE 8): lifecycle events
//! stream in order per request, `status()` tracks a concurrent burst,
//! drop-oldest backpressure never blocks a slot, and a streaming-off
//! engine publishes nothing while still introspecting.

use engine::{EngineConfig, EngineStatus, ForecastEngine, ForecastRequest, Scenario};
use fv3::dyn_core::DycoreConfig;
use fv3core::DriverConfig;
use machine::pool::Pool;
use obs::stream::RunEvent;
use std::time::Duration;

fn small_request(steps: u64) -> ForecastRequest {
    let config = DriverConfig::six_rank(
        8,
        3,
        DycoreConfig {
            n_split: 1,
            k_split: 1,
            dt: 4.0,
            dddmp: 0.02,
            nord4_damp: None,
        },
    );
    ForecastRequest::new(Scenario::BaroclinicWave, config, steps)
}

fn engine(cfg: EngineConfig) -> ForecastEngine {
    ForecastEngine::start(EngineConfig {
        pool: Some(Pool::new(1)),
        ..cfg
    })
}

#[test]
fn single_tenant_lifecycle_streams_every_event_in_order() {
    let e = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    // Subscribe before submitting so the full lifecycle (starting with
    // RequestQueued, which is published under the queue lock) is seen.
    let stream = e.subscribe_all().expect("streaming engine has a bus");
    let id = e.submit(small_request(3).with_label("solo"));
    let out = e.wait(id);
    assert!(out.result.is_completed(), "{:?}", out.result.terminal());

    let events = stream.drain();
    assert_eq!(stream.dropped(), 0, "single tenant must drop nothing");
    assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));

    let rid = id.to_string();
    let kinds: Vec<&'static str> = events
        .iter()
        .filter(|ev| ev.request.as_deref() == Some(rid.as_str()))
        .map(|ev| ev.body.kind())
        .collect();
    assert_eq!(kinds.first(), Some(&"request_queued"));
    assert_eq!(kinds.get(1), Some(&"request_started"));
    assert_eq!(kinds.last(), Some(&"request_completed"));

    // Every per-step completion streamed, in order.
    let steps: Vec<u64> = events
        .iter()
        .filter_map(|ev| match ev.body {
            RunEvent::StepCompleted { step, .. } => Some(step),
            _ => None,
        })
        .collect();
    assert_eq!(steps, vec![1, 2, 3]);
    // And the supervisor's health verdicts rode along, all healthy.
    let verdicts: Vec<(u64, bool)> = events
        .iter()
        .filter_map(|ev| match ev.body {
            RunEvent::HealthSample { step, healthy, .. } => Some((step, healthy)),
            _ => None,
        })
        .collect();
    assert_eq!(verdicts, vec![(1, true), (2, true), (3, true)]);
    e.shutdown();
}

#[test]
fn subscribe_by_id_sees_only_that_request() {
    let e = engine(EngineConfig {
        slots: 1,
        ..EngineConfig::default()
    });
    let first = e.submit(small_request(2));
    let second = e.submit(small_request(2));
    // The single slot is busy with `first`, so `second` is still queued:
    // its per-request subscription starts before any of its events fire.
    let stream = e.subscribe(second).expect("streaming engine has a bus");
    let _ = e.wait(first);
    let out = e.wait(second);
    assert!(out.result.is_completed());

    let events = stream.drain();
    assert!(!events.is_empty(), "second request must have streamed");
    let rid = second.to_string();
    for ev in &events {
        assert_eq!(
            ev.request.as_deref(),
            Some(rid.as_str()),
            "filtered stream leaked a foreign event: {}",
            ev.to_json()
        );
    }
    assert_eq!(events.last().map(|ev| ev.body.kind()), Some("request_completed"));
    e.shutdown();
}

fn assert_status_invariants(st: &EngineStatus, total: u64) {
    assert!(st.slots_busy <= st.slots);
    assert_eq!(st.running.len(), st.slots_busy, "running set matches busy slots");
    let done = st.stats.completed + st.stats.failed;
    assert!(
        st.queue_depth() as u64 + st.running.len() as u64 + done <= total,
        "conservation: queued {} + running {} + done {done} > submitted {total}",
        st.queue_depth(),
        st.running.len()
    );
    for r in &st.running {
        assert!(r.steps_done <= r.steps_budget);
    }
}

#[test]
fn status_tracks_occupancy_under_concurrent_submit_burst() {
    let total = 6u64;
    let e = engine(EngineConfig {
        slots: 2,
        queue_cap: total as usize,
        ..EngineConfig::default()
    });
    let ids: Vec<_> = (0..total).map(|_| e.submit(small_request(2))).collect();

    // Poll while the burst drains: invariants must hold on every
    // snapshot, and the burst must be observed actually occupying slots.
    let mut saw_busy = false;
    let mut saw_queued = false;
    loop {
        let st = e.status();
        assert_status_invariants(&st, total);
        saw_busy |= st.slots_busy > 0;
        saw_queued |= st.queue_depth() > 0;
        if st.stats.completed + st.stats.failed >= total {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(saw_busy, "never observed a busy slot during a 6-request burst");
    assert!(saw_queued, "6 requests over 2 slots never queued");

    for id in ids {
        assert!(e.wait(id).result.is_completed());
    }
    // Quiescent snapshot: empty queue, idle slots, warm instances parked,
    // and the stats occupancy fields agree.
    let st = e.status();
    assert_eq!(st.queue_depth(), 0);
    assert_eq!(st.slots_busy, 0);
    assert_eq!(st.running.len(), 0);
    assert_eq!(st.slots, 2);
    assert!(st.warm_pool >= 1, "completed tenants park warm instances");
    assert!(st.events_published > 0);
    let stats = st.stats;
    assert_eq!(stats.completed, total);
    assert_eq!(stats.slots, 2);
    assert_eq!(stats.slots_busy, 0);
    assert_eq!(stats.queue_depth, 0);
    assert_eq!(stats.warm_pool, st.warm_pool as u64);
    e.shutdown();
}

#[test]
fn tiny_buffer_drops_oldest_and_never_stalls_the_run() {
    let e = engine(EngineConfig {
        slots: 1,
        stream_buffer: 2,
        ..EngineConfig::default()
    });
    let stream = e.subscribe_all().expect("bus");
    let id = e.submit(small_request(4));
    let out = e.wait(id);
    assert!(out.result.is_completed(), "slow subscriber must not fail the run");

    // The subscriber held at most 2 events; everything older was
    // dropped and counted — the publisher never blocked.
    assert!(stream.len() <= 2);
    assert!(stream.dropped() > 0, "a 4-step run overflows a 2-event buffer");
    let dropped = stream.dropped();
    let events = stream.drain();
    let st = e.status();
    // Drop-oldest: what survives is the *newest* tail of the stream —
    // the last retained event is the last one published.
    assert_eq!(
        events.last().map(|ev| ev.seq),
        Some(st.events_published - 1)
    );
    assert_eq!(st.events_dropped, dropped);
    e.shutdown();
}

#[test]
fn streaming_off_publishes_nothing_and_status_still_works() {
    let e = engine(EngineConfig {
        slots: 1,
        streaming: false,
        ..EngineConfig::default()
    });
    assert!(e.subscribe_all().is_none());
    let id = e.submit(small_request(2));
    assert!(e.subscribe(id).is_none());
    let out = e.wait(id);
    assert!(out.result.is_completed());
    let st = e.status();
    assert_eq!(st.events_published, 0);
    assert_eq!(st.events_dropped, 0);
    assert_eq!(st.stats.completed, 1);
    assert_eq!(st.slots, 1);
    e.shutdown();
}

#[test]
fn ticker_emits_engine_ticks_at_cadence() {
    let e = engine(EngineConfig {
        slots: 1,
        tick_every: Some(Duration::from_millis(20)),
        ..EngineConfig::default()
    });
    let stream = e.subscribe_all().expect("bus");
    let id = e.submit(small_request(2));
    let _ = e.wait(id);
    std::thread::sleep(Duration::from_millis(60));
    let ticks = stream
        .drain()
        .into_iter()
        .filter(|ev| matches!(ev.body, RunEvent::EngineTick { .. }))
        .count();
    assert!(ticks >= 2, "expected periodic ticks, saw {ticks}");
    e.shutdown();
}
