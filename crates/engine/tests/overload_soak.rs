//! ISSUE 10 chaos soak: the terminal-exactly-once guarantee under a
//! seeded mix of cancellation, deadlines, quotas, overload shedding,
//! and injected faults, all at once.
//!
//! For every seed the soak must show:
//!
//! * every admitted request reaches exactly ONE of the five terminals
//!   (completed / failed / cancelled / evicted / shed) within a hard
//!   deadline — no deadlock, no lost request, no double deposit;
//! * the event stream closes every admitted lifecycle with exactly one
//!   terminal event, and the sized buffer drops nothing;
//! * requests that complete are 0-ULP bit-identical to a solo
//!   fresh-process run — admission chaos next door never perturbs a
//!   surviving tenant;
//! * the engine itself survives: slots all release, tenant occupancy
//!   drains to zero, and a follow-up probe completes bit-identically on
//!   the still-shared compile bundle (no warm-pool contamination from
//!   cancelled or failed tenants).
//!
//! The fault-plan registry is process-global, so every test in this
//! binary serializes on one lock and this file shares a process with no
//! other suite. Regression seeds found by the fuzzer are pinned at the
//! bottom, following `tests/soak.rs`.

use dataflow::graph::ExpansionAttrs;
use engine::{
    EngineConfig, ForecastEngine, ForecastRequest, ForecastResult, Priority, RequestId,
    SubmitOptions,
};
use fv3::state::DycoreState;
use fv3core::DistributedDycore;
use proptest::prelude::*;
use resilience::{FaultPlan, SupervisorPolicy};
use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Hitting this means a hang, not a slow machine.
const DEADLINE: Duration = Duration::from_secs(120);

/// Chaos requests all share one budget so one solo reference covers
/// every completion.
const CHAOS_STEPS: u64 = 2;

/// Serializes every test in this binary: the armed fault plan is
/// process-global state.
static LOCK: Mutex<()> = Mutex::new(());

/// Solo fresh-process references, computed once with no plan armed.
fn references() -> &'static (Vec<DycoreState>, Vec<DycoreState>) {
    static REFS: OnceLock<(Vec<DycoreState>, Vec<DycoreState>)> = OnceLock::new();
    REFS.get_or_init(|| {
        let solo = |steps: u64| {
            let req = ForecastRequest::c8l6(steps);
            let mut d = DistributedDycore::new(req.config, &ExpansionAttrs::tuned());
            for _ in 0..steps {
                d.step();
            }
            d.states.clone()
        };
        (solo(1), solo(CHAOS_STEPS))
    })
}

fn assert_bit_identical(got: &[DycoreState], want: &[DycoreState], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: rank count");
    for (r, (sa, sb)) in got.iter().zip(want).enumerate() {
        for ((name, fa), (_, fb)) in sa.fields().iter().zip(sb.fields().iter()) {
            let (va, vb) = (fa.export_logical(), fb.export_logical());
            for (n, (x, y)) in va.iter().zip(&vb).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "{label}: rank {r} field {name} element {n}: {x} vs {y}"
                );
            }
        }
    }
}

/// Deterministic per-seed xorshift, so every pinned seed replays its
/// exact admission mix.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0 | 1;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

/// One chaos interleaving. Odd seeds also arm a once-firing NaN fault
/// (`nan@step=1` never touches the 1-step warmup or probe), run under a
/// zero-retry policy so the poisoned tenant fails attributably.
fn chaos_case(seed: u64) {
    let _serial = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let (ref1, ref2) = references();
    let label = format!("seed={seed:#x}");
    let mut rng = Rng(seed);

    let fault_armed = seed % 2 == 1;
    let _guard = fault_armed.then(|| {
        FaultPlan::parse(&format!("seed={};nan@step=1,field=pt", seed % 97))
            .expect("chaos plan parses")
            .arm()
    });

    let slots = 1 + (seed % 3) as usize;
    let engine = ForecastEngine::start(EngineConfig {
        slots,
        queue_cap: 4,
        tenant_cap: Some(2),
        streaming: true,
        stream_buffer: 16 * 1024,
        policy: SupervisorPolicy {
            max_retries: 0,
            ..SupervisorPolicy::default()
        },
        ..EngineConfig::default()
    });
    let warm = engine.submit(ForecastRequest::c8l6(1).with_label("warmup"));
    engine
        .wait_timeout(warm, DEADLINE)
        .unwrap_or_else(|| panic!("{label}: warmup hung"))
        .result
        .expect("warmup completes (the fault site is step 1)");

    // Subscribe after the warmup: the drained stream carries exactly
    // the chaos batch plus the probe.
    let stream = engine.subscribe_all().expect("streaming engine has a bus");

    // The seeded admission mix: 8 offers across all three lanes, some
    // with deadlines that cannot be met, some against a capped tenant.
    let mut admitted: Vec<RequestId> = Vec::new();
    let mut refused = 0u64;
    for i in 0..8 {
        let mut opts = SubmitOptions::default().priority(match rng.next() % 3 {
            0 => Priority::High,
            1 => Priority::Normal,
            _ => Priority::Batch,
        });
        if rng.chance(25) {
            opts = opts.deadline(Duration::from_millis(5));
        }
        if rng.chance(40) {
            opts = opts.tenant("t0");
        }
        let req = ForecastRequest::c8l6(CHAOS_STEPS).with_label(&format!("chaos-{i}"));
        match engine.try_submit_with(req, opts) {
            Ok(id) => admitted.push(id),
            Err(_) => refused += 1,
        }
    }
    // Cancel a seeded subset mid-flight: some victims are still queued,
    // some are running, some already terminal (cancel returns false).
    for id in &admitted {
        if rng.chance(33) {
            engine.cancel(*id);
        }
    }

    // Terminal exactly once: every admitted id yields an outcome within
    // the deadline, and completions are bit-identical to the solo run.
    let mut tally: HashMap<&'static str, u64> = HashMap::new();
    for id in &admitted {
        let out = engine
            .wait_timeout(*id, DEADLINE)
            .unwrap_or_else(|| panic!("{label}: request {id} hung or was lost"));
        assert_eq!(out.id, *id, "{label}: outcome routed to the wrong waiter");
        *tally.entry(out.result.terminal()).or_default() += 1;
        if let ForecastResult::Completed(rep) = &out.result {
            assert_eq!(rep.steps, CHAOS_STEPS, "{label}: {id} ran a wrong budget");
            assert_bit_identical(&rep.states, ref2, &format!("{label}: {}", out.label));
        }
    }
    eprintln!(
        "{label}: slots={slots} fault={fault_armed} admitted={} refused={refused} tally={tally:?}",
        admitted.len()
    );
    let take = |k| tally.get(k).copied().unwrap_or(0);
    let terminals =
        take("completed") + take("failed") + take("cancelled") + take("evicted") + take("shed");
    assert_eq!(
        terminals,
        admitted.len() as u64,
        "{label}: every admitted request reaches exactly one terminal ({tally:?})"
    );
    assert!(
        take("failed") <= fault_armed as u64,
        "{label}: only the armed fault may fail a request ({tally:?})"
    );

    // The engine survives its own admission chaos: occupancy drains and
    // a probe completes bit-identically with zero recompiles — no
    // cancelled or failed tenant contaminated the warm pool or cache.
    let probe = engine.submit(ForecastRequest::c8l6(1).with_label("probe"));
    let rep = engine
        .wait_timeout(probe, DEADLINE)
        .unwrap_or_else(|| panic!("{label}: probe hung"))
        .result
        .expect("probe completes after the chaos");
    assert_bit_identical(&rep.states, ref1, &format!("{label}: probe"));
    assert_eq!(rep.cache_misses, 0, "{label}: probe recompiled a warm case");

    let t0 = Instant::now();
    loop {
        let st = engine.status();
        if st.slots_busy == 0 && st.queued.is_empty() && st.running.is_empty() {
            assert!(st.tenants.is_empty(), "{label}: leaked tenant occupancy");
            break;
        }
        assert!(t0.elapsed() < DEADLINE, "{label}: a slot never released");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The stream closed every admitted lifecycle with exactly one
    // terminal event, and the sized buffer dropped nothing.
    let mut closures: HashMap<String, u64> = HashMap::new();
    for ev in stream.drain() {
        if ev.body.kind().starts_with("request_")
            && !matches!(ev.body.kind(), "request_queued" | "request_started")
        {
            *closures.entry(ev.request.expect("terminal events carry an id")).or_default() += 1;
        }
    }
    for id in &admitted {
        assert_eq!(
            closures.get(&id.to_string()).copied().unwrap_or(0),
            1,
            "{label}: request {id} needs exactly one terminal event"
        );
    }
    assert_eq!(engine.status().events_dropped, 0, "{label}: sized buffer dropped events");

    let stats = engine.shutdown();
    assert_eq!(
        stats.submitted,
        admitted.len() as u64 + 2,
        "{label}: submitted counts warmup + admitted + probe"
    );
    assert_eq!(stats.rejected, refused, "{label}: refusals accounted");
    assert_eq!(stats.completed, take("completed") + 2, "{label}: completions");
    assert_eq!(stats.failed, take("failed"), "{label}: failures");
    assert_eq!(stats.cancelled, take("cancelled"), "{label}: cancellations");
    assert_eq!(stats.evicted, take("evicted"), "{label}: evictions");
    assert_eq!(stats.shed, take("shed"), "{label}: sheds");
    assert_eq!(
        stats.submitted,
        stats.completed + stats.failed + stats.cancelled + stats.evicted + stats.shed,
        "{label}: the five terminals conserve every submission"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn chaos_soak_conserves_every_request(seed in 0u64..u64::MAX) {
        chaos_case(seed);
    }
}

// Pinned chaos seeds. Odd seeds arm the NaN fault; together they cover
// cancellation + deadline + quota + shed + fault in one run each.

/// Fault armed, single slot: maximal queueing, poison races cancels.
#[test]
fn pinned_chaos_fault_single_slot() {
    chaos_case(3);
}

/// No fault, single slot: pure admission chaos (quota + shed + cancel).
#[test]
fn pinned_chaos_clean_single_slot() {
    chaos_case(42);
}

/// Fault armed, wide mix: every lane and both refusal types observed
/// during development of this suite.
#[test]
fn pinned_chaos_fault_wide_mix() {
    chaos_case(0x5EED);
}
