//! Interior/rind split equivalence: running `split_for_overlap`'s
//! interior program then its rind program on one store must be
//! bit-identical to running the original program — for stencil chains
//! with growing extents, horizontal regions, vertical solvers with
//! locals, and copy/callback suffixes.

use dataflow::exec::{validate_sdfg, DataStore, Executor, NoHooks, VmMode};
use dataflow::graph::{DataflowNode, Sdfg, State};
use dataflow::kernel::{
    Anchor, AxisInterval, Domain, Extent2, KOrder, Kernel, LValue, Region2, Schedule, Stmt,
};
use dataflow::overlap::split_for_overlap;
use dataflow::{DataId, Expr, Layout, LocalId};

const N: usize = 24;
const NK: usize = 3;
const HALO: usize = 3;

fn layout() -> Layout {
    Layout::fv3_default([N, N, NK], [HALO, HALO, 0])
}

/// A synthetic substep: exchange marker, then a chain of kernels with
/// nonzero read radii, a region-restricted edge fixup, a forward solver
/// with a local, and a whole-array copy suffix.
fn build_program() -> (Sdfg, DataId, DataId) {
    let mut g = Sdfg::new("overlap_case");
    let a = g.add_container("a", layout(), false);
    let b = g.add_container("b", layout(), true);
    let c = g.add_container("c", layout(), true);
    let out = g.add_container("out", layout(), false);

    let dom = Domain::from_shape([N, N, NK]);

    // k1: 5-point average of `a` into `b`, with an extent so k2 can read
    // b at an offset (the extent pushes b's writes beyond the domain).
    let mut k1 = Kernel::new("k1_avg", dom, KOrder::Parallel, Schedule::gpu_horizontal());
    k1.stmts.push(Stmt {
        lvalue: LValue::Field(b),
        expr: Expr::bin(
            dataflow::BinOp::Mul,
            Expr::c(0.2),
            Expr::bin(
                dataflow::BinOp::Add,
                Expr::bin(
                    dataflow::BinOp::Add,
                    Expr::load(a, -1, 0, 0),
                    Expr::load(a, 1, 0, 0),
                ),
                Expr::bin(
                    dataflow::BinOp::Add,
                    Expr::bin(
                        dataflow::BinOp::Add,
                        Expr::load(a, 0, -1, 0),
                        Expr::load(a, 0, 1, 0),
                    ),
                    Expr::load(a, 0, 0, 0),
                ),
            ),
        ),
        k_range: AxisInterval::FULL,
        region: None,
        extent: Extent2 {
            i_lo: 1,
            i_hi: 1,
            j_lo: 1,
            j_hi: 1,
        },
    });

    // k2: wider cross of `b` into `c`, plus a region-restricted west-edge
    // fixup statement (exercises region × strip interaction).
    let mut k2 = Kernel::new("k2_cross", dom, KOrder::Parallel, Schedule::gpu_horizontal());
    k2.stmts.push(Stmt::full(
        LValue::Field(c),
        Expr::bin(
            dataflow::BinOp::Add,
            Expr::bin(
                dataflow::BinOp::Add,
                Expr::load(b, -2, 0, 0),
                Expr::load(b, 2, 0, 0),
            ),
            Expr::bin(
                dataflow::BinOp::Add,
                Expr::load(b, 0, -2, 0),
                Expr::load(b, 0, 2, 0),
            ),
        ),
    ));
    k2.stmts.push(Stmt {
        lvalue: LValue::Field(c),
        expr: Expr::bin(
            dataflow::BinOp::Mul,
            Expr::c(1.5),
            Expr::load(b, 0, 0, 0),
        ),
        k_range: AxisInterval::FULL,
        region: Some(Region2 {
            i: AxisInterval::new(Anchor::Start(0), Anchor::Start(2)),
            j: AxisInterval::FULL,
        }),
        extent: Extent2::ZERO,
    });

    // k3: forward vertical solver with a per-column local accumulator
    // reading `c` at a horizontal offset (locals must stay column-local
    // across the split).
    let mut k3 = Kernel::new("k3_fwd", dom, KOrder::Forward, Schedule::gpu_vertical());
    k3.n_locals = 1;
    let acc = LocalId(0);
    k3.stmts.push(Stmt::full(
        LValue::Local(acc),
        Expr::bin(
            dataflow::BinOp::Add,
            Expr::Local(acc),
            Expr::load(c, 1, -1, 0),
        ),
    ));
    let mut k0 = Stmt::full(LValue::Field(out), Expr::Local(acc));
    k0.k_range = AxisInterval::at_start(0);
    k3.stmts.push(k0);
    let mut krest = Stmt::full(
        LValue::Field(out),
        Expr::bin(
            dataflow::BinOp::Add,
            Expr::Local(acc),
            Expr::load(out, 0, 0, -1),
        ),
    );
    krest.k_range = AxisInterval::new(Anchor::Start(1), Anchor::End(0));
    k3.stmts.push(krest);

    let mut st = State::new("main");
    st.nodes.push(DataflowNode::HaloExchange { fields: vec![a] });
    st.nodes.push(DataflowNode::Kernel(k1));
    st.nodes.push(DataflowNode::Kernel(k2));
    st.nodes.push(DataflowNode::Kernel(k3));
    // Suffix: whole-container copy (runs only in the rind program).
    st.nodes.push(DataflowNode::Copy { src: out, dst: c });
    g.add_state(st);
    (g, a, c)
}

fn seeded_store(g: &Sdfg, a: DataId) -> DataStore {
    let mut store = DataStore::for_sdfg(g);
    let arr = store.get_mut(a);
    let l = arr.layout().clone();
    let (h, n, nk) = (l.halo[0] as i64, l.domain[0] as i64, l.domain[2] as i64);
    for k in 0..nk {
        for j in -h..n + h {
            for i in -h..n + h {
                arr.set(i, j, k, (i as f64 * 0.7 + j as f64 * 1.3 + k as f64 * 2.9).sin());
            }
        }
    }
    store
}

fn assert_store_bitwise_eq(x: &DataStore, y: &DataStore, what: &str) {
    assert_eq!(x.len(), y.len());
    for d in 0..x.len() {
        let (xa, ya) = (x.get(DataId(d)), y.get(DataId(d)));
        let (xs, ys) = (xa.export_logical(), ya.export_logical());
        for (n, (p, q)) in xs.iter().zip(ys.iter()).enumerate() {
            assert!(
                p.to_bits() == q.to_bits(),
                "{what}: container {d} flat index {n}: {p:?} vs {q:?}"
            );
        }
    }
}

#[test]
fn split_programs_are_bit_identical_to_the_original() {
    let (g, a, _) = build_program();
    validate_sdfg(&g).unwrap();
    let split = split_for_overlap(&g, N).expect("program shape splits");
    assert_eq!(split.n_prefix, 3);
    assert_eq!(split.exchanged, vec![a]);
    assert!(split.has_interior(), "N={N} leaves real interior work");
    // Margins follow the recurrence r=[1,2,1] -> R=[1,3,5].
    assert_eq!(split.margins, vec![1, 3, 5]);
    validate_sdfg(&split.interior).unwrap();
    validate_sdfg(&split.rind).unwrap();

    for mode in [VmMode::Scalar, VmMode::Lanes] {
        let exec = Executor::with_mode(machine::Pool::new(1), mode);
        let mut full = seeded_store(&g, a);
        exec.run(&g, &mut full, &[], &mut NoHooks);

        let mut halves = seeded_store(&g, a);
        exec.run(&split.interior, &mut halves, &[], &mut NoHooks);
        exec.run(&split.rind, &mut halves, &[], &mut NoHooks);

        assert_store_bitwise_eq(&full, &halves, &format!("{mode:?}"));
    }
}

#[test]
fn interior_program_never_reads_or_writes_halo_cells() {
    // Poison every halo cell of every container; the interior program
    // must produce the same interior values as when halos are clean, and
    // must leave the poisoned halos untouched (that is what makes it safe
    // to run before the exchange lands).
    let (g, a, _) = build_program();
    let split = split_for_overlap(&g, N).expect("splits");

    let exec = Executor::serial();
    let mut clean = seeded_store(&g, a);
    exec.run(&split.interior, &mut clean, &[], &mut NoHooks);

    let mut poisoned = seeded_store(&g, a);
    for d in 0..poisoned.len() {
        let arr = poisoned.get_mut(DataId(d));
        let l = arr.layout().clone();
        let (h, n, nk) = (l.halo[0] as i64, l.domain[0] as i64, l.domain[2] as i64);
        for k in 0..nk {
            for j in -h..n + h {
                for i in -h..n + h {
                    if i < 0 || i >= n || j < 0 || j >= n {
                        arr.set(i, j, k, f64::NAN);
                    }
                }
            }
        }
    }
    exec.run(&split.interior, &mut poisoned, &[], &mut NoHooks);
    for d in 0..clean.len() {
        let (ca, pa) = (clean.get(DataId(d)), poisoned.get(DataId(d)));
        let l = ca.layout().clone();
        let (n, nk) = (l.domain[0] as i64, l.domain[2] as i64);
        for k in 0..nk {
            for j in 0..n {
                for i in 0..n {
                    let (cv, pv) = (ca.get(i, j, k), pa.get(i, j, k));
                    assert!(
                        cv.to_bits() == pv.to_bits(),
                        "container {d} ({i},{j},{k}): {cv} vs {pv}"
                    );
                }
            }
        }
    }
}

#[test]
fn tiny_domains_degrade_to_all_rind_but_stay_correct() {
    // With N=8 the margin recurrence exceeds N/2 for the later kernels;
    // the split must still be bit-identical (degenerate interior).
    const SMALL: usize = 8;
    let mut g = Sdfg::new("tiny");
    let l = Layout::fv3_default([SMALL, SMALL, 2], [2, 2, 0]);
    let a = g.add_container("a", l.clone(), false);
    let b = g.add_container("b", l, false);
    let dom = Domain::from_shape([SMALL, SMALL, 2]);
    let mut st = State::new("main");
    st.nodes.push(DataflowNode::HaloExchange { fields: vec![a] });
    for m in 0..4 {
        let mut k = Kernel::new(
            format!("w{m}"),
            dom,
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let (src, dst) = if m % 2 == 0 { (a, b) } else { (b, a) };
        k.stmts.push(Stmt::full(
            LValue::Field(dst),
            Expr::bin(
                dataflow::BinOp::Add,
                Expr::load(src, -2, 0, 0),
                Expr::load(src, 0, 2, 0),
            ),
        ));
        st.nodes.push(DataflowNode::Kernel(k));
    }
    // w4: in-place accumulate — reads its own lvalue at offset 0. Any
    // column executed twice (e.g. overlapping W/E strips when the
    // interior box inverts) doubles-applies and diverges bitwise, so
    // this kernel is what makes the degenerate split actually testable:
    // the a↔b ping-pong kernels above are value-idempotent per column.
    let mut acc = Kernel::new("w4_acc", dom, KOrder::Parallel, Schedule::gpu_horizontal());
    acc.stmts.push(Stmt::full(
        LValue::Field(a),
        Expr::bin(
            dataflow::BinOp::Add,
            Expr::load(a, 0, 0, 0),
            Expr::load(b, -2, 0, 0),
        ),
    ));
    st.nodes.push(DataflowNode::Kernel(acc));
    g.add_state(st);
    let split = split_for_overlap(&g, SMALL).expect("splits");
    // Margins 2,4,6,8,10: on an 8-wide domain only the first kernel's
    // box ([2,6)) is nonempty; the rest land entirely in the rind
    // program with empty (clamped) interior boxes.
    assert_eq!(split.margins, vec![2, 4, 6, 8, 10]);
    let interior_kernels = split.interior.states[0].nodes.len();
    assert_eq!(interior_kernels, 1, "deep-margin kernels degrade to all-rind");

    let exec = Executor::serial();
    let mut full = seeded_store(&g, a);
    exec.run(&g, &mut full, &[], &mut NoHooks);
    let mut halves = seeded_store(&g, a);
    exec.run(&split.interior, &mut halves, &[], &mut NoHooks);
    exec.run(&split.rind, &mut halves, &[], &mut NoHooks);
    assert_store_bitwise_eq(&full, &halves, "tiny");
}

