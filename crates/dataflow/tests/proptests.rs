//! Property-based tests on the dataflow substrate's core invariants:
//! layout bijectivity, VM/tree equivalence, constant folding, power
//! strength reduction, and fusion semantics on randomized programs.

use dataflow::bytecode;
use dataflow::exec::{DataStore, Executor, NoHooks};
use dataflow::expr::{BinOp, CmpOp, DataId, EvalCtx, LocalId, Offset3, ParamId, UnOp};
use dataflow::graph::{DataflowNode, Sdfg, State};
use dataflow::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
use dataflow::storage::{Array3, Axis, Layout, StorageOrder};
use dataflow::transforms::fusion::{greedy_otf_fusion, greedy_subgraph_fusion};
use dataflow::transforms::power::reduce_powers;
use dataflow::Expr;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Layout properties

fn arb_order() -> impl Strategy<Value = StorageOrder> {
    prop_oneof![
        Just(StorageOrder::IContiguous),
        Just(StorageOrder::KContiguous),
        Just(StorageOrder::JContiguous),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn layout_offsets_are_bijective(
        ni in 1usize..10, nj in 1usize..10, nk in 1usize..6,
        hi in 0usize..3, hj in 0usize..3, hk in 0usize..2,
        order in arb_order(),
        align in prop_oneof![Just(1usize), Just(8), Just(32)],
    ) {
        let l = Layout::new([ni, nj, nk], [hi, hj, hk], order, align);
        prop_assert_eq!(l.base % align, 0, "first compute point aligned");
        let mut seen = std::collections::HashSet::new();
        for k in -(hk as i64)..(nk + hk) as i64 {
            for j in -(hj as i64)..(nj + hj) as i64 {
                for i in -(hi as i64)..(ni + hi) as i64 {
                    let off = l.offset(i, j, k);
                    prop_assert!(off < l.len);
                    prop_assert!(seen.insert(off), "aliasing at ({}, {}, {})", i, j, k);
                }
            }
        }
    }

    #[test]
    fn arrays_agree_across_layouts(
        n in 2usize..8,
        order_a in arb_order(),
        order_b in arb_order(),
        seed in 0u64..1000,
    ) {
        // The same logical contents must round-trip identically through
        // any two storage orders.
        let la = Layout::new([n, n, 3], [1, 1, 0], order_a, 16);
        let lb = Layout::new([n, n, 3], [1, 1, 0], order_b, 1);
        let f = |i: i64, j: i64, k: i64| ((i * 7 + j * 13 + k * 31) as f64) + seed as f64;
        let a = Array3::from_fn(la, f);
        let b = Array3::from_fn(lb, f);
        prop_assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}

// ---------------------------------------------------------------------
// Expression / VM properties

#[derive(Clone, Debug)]
struct Ctx {
    vals: Vec<f64>,
    params: Vec<f64>,
    locals: Vec<f64>,
}

fn key(slot: usize, o: Offset3) -> usize {
    slot * 343 + ((o.i + 3) as usize) * 49 + ((o.j + 3) as usize) * 7 + (o.k + 3) as usize
}

impl EvalCtx for Ctx {
    fn load(&self, d: DataId, o: Offset3) -> f64 {
        self.vals[key(d.0, o) % self.vals.len()]
    }
    fn local(&self, l: LocalId) -> f64 {
        self.locals[l.0 % self.locals.len()]
    }
    fn param(&self, p: ParamId) -> f64 {
        self.params[p.0 % self.params.len()]
    }
    fn index(&self, _: Axis) -> i64 {
        3
    }
}

impl bytecode::VmCtx for Ctx {
    fn load(&self, slot: u16, o: Offset3) -> f64 {
        self.vals[key(slot as usize, o) % self.vals.len()]
    }
    fn local(&self, l: u16) -> f64 {
        self.locals[l as usize % self.locals.len()]
    }
    fn param(&self, p: u16) -> f64 {
        self.params[p as usize % self.params.len()]
    }
    fn index(&self, _: Axis) -> i64 {
        3
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (0.1f64..4.0).prop_map(Expr::Const),
        (0usize..3).prop_map(|p| Expr::Param(ParamId(p))),
        (0usize..3).prop_map(|l| Expr::Local(LocalId(l))),
        ((0usize..3), (-2i32..3), (-2i32..3), (-2i32..3))
            .prop_map(|(d, i, j, k)| Expr::load(DataId(d), i, j, k)),
    ];
    leaf.prop_recursive(4, 64, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Add, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Sub, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Mul, a, b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::bin(BinOp::Max, a, b)),
            inner.clone().prop_map(|a| Expr::un(UnOp::Abs, a)),
            (inner.clone(), 1i32..4).prop_map(|(a, n)| Expr::bin(
                BinOp::Pow,
                Expr::un(UnOp::Abs, a),
                Expr::Const(n as f64)
            )),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(c, a, b)| Expr::select(
                Expr::cmp(CmpOp::Lt, c, Expr::Const(1.0)),
                a,
                b
            )),
        ]
    })
}

fn arb_ctx() -> impl Strategy<Value = Ctx> {
    (
        proptest::collection::vec(0.1f64..4.0, 400),
        proptest::collection::vec(0.1f64..2.0, 3),
        proptest::collection::vec(-1.0f64..1.0, 3),
    )
        .prop_map(|(vals, params, locals)| Ctx {
            vals,
            params,
            locals,
        })
}

fn close(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || ((a - b).abs() <= 1e-9 * a.abs().max(b.abs()).max(1.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bytecode_vm_equals_tree_interpreter(e in arb_expr(), ctx in arb_ctx()) {
        let prog = bytecode::compile(&e, &|d| d.0 as u16);
        let mut regs = vec![0.0; prog.n_regs as usize];
        let vm = bytecode::run(&prog, &ctx, &mut regs);
        let tree = e.eval(&ctx);
        prop_assert!(close(vm, tree), "vm {} vs tree {}", vm, tree);
    }

    #[test]
    fn power_reduction_preserves_value(e in arb_expr(), ctx in arb_ctx()) {
        let before = e.eval(&ctx);
        let (reduced, _) = reduce_powers(e);
        prop_assert_eq!(reduced.transcendentals(), 0,
            "abs-guarded integer pows must fully reduce");
        let after = reduced.eval(&ctx);
        prop_assert!(close(before, after), "{} vs {}", before, after);
    }

    #[test]
    fn shift_then_loads_are_translated(e in arb_expr(), di in -2i32..3, dj in -2i32..3) {
        let before = e.loads();
        let shifted = e.shift(Offset3::new(di, dj, 0));
        let after = shifted.loads();
        prop_assert_eq!(before.len(), after.len());
        for ((d0, o0), (d1, o1)) in before.iter().zip(after.iter()) {
            prop_assert_eq!(d0, d1);
            prop_assert_eq!(o0.i + di, o1.i);
            prop_assert_eq!(o0.j + dj, o1.j);
            prop_assert_eq!(o0.k, o1.k);
        }
    }
}

// ---------------------------------------------------------------------
// Fusion semantics on randomized pointwise programs

/// A random chain program: a -> t1 -> ... -> out with pointwise or
/// small-offset stages, some fusable, some not.
fn chain_program(coeffs: &[(f64, i32)]) -> (Sdfg, DataId, DataId) {
    let mut g = Sdfg::new("chain");
    let l = Layout::new([10, 10, 3], [3, 3, 0], StorageOrder::IContiguous, 1);
    let input = g.add_container("in", l.clone(), false);
    let out = g.add_container("out", l.clone(), false);
    // Backward extent propagation, as the stencil lowering would do:
    // stage i must be computed far enough beyond the domain for stage
    // i+1's offset read (otherwise OTF recomputation would legitimately
    // differ from reading uninitialized temp halo).
    let n = coeffs.len();
    let mut exts = vec![dataflow::kernel::Extent2::ZERO; n];
    for idx in (0..n - 1).rev() {
        let off = coeffs[idx + 1].1;
        exts[idx] = exts[idx + 1].shifted_by(Offset3::new(off, 0, 0));
    }
    let mut prev = input;
    let mut s = State::new("s");
    for (idx, (c, off)) in coeffs.iter().enumerate() {
        let is_last = idx == n - 1;
        let dst = if is_last {
            out
        } else {
            g.add_container(format!("t{idx}"), l.clone(), true)
        };
        let mut k = Kernel::new(
            format!("stage{idx}"),
            Domain::from_shape([10, 10, 3]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let mut stmt = Stmt::full(
            LValue::Field(dst),
            Expr::load(prev, *off, 0, 0) * Expr::c(*c) + Expr::c(1.0),
        );
        stmt.extent = exts[idx];
        k.stmts.push(stmt);
        s.nodes.push(DataflowNode::Kernel(k));
        prev = dst;
    }
    g.add_state(s);
    (g, input, out)
}

fn run_chain(g: &Sdfg, input: DataId, out: DataId, seed: u64) -> Array3 {
    let mut store = DataStore::for_sdfg(g);
    *store.get_mut(input) = Array3::from_fn(g.layout_of(input), |i, j, k| {
        ((i * 3 + j * 5 + k * 7 + seed as i64) % 17) as f64 * 0.25
    });
    // Also fill the input halo (offset reads may touch it).
    let mut arr = store.get(input).clone();
    for k in 0..3i64 {
        for j in -3..13i64 {
            for i in -3..13i64 {
                arr.set(i, j, k, ((i * 3 + j * 5 + k * 7 + seed as i64).rem_euclid(17)) as f64 * 0.25);
            }
        }
    }
    *store.get_mut(input) = arr;
    Executor::serial().run(g, &mut store, &[], &mut NoHooks);
    store.get(out).clone()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn fusions_preserve_chain_semantics(
        coeffs in proptest::collection::vec((0.5f64..2.0, -1i32..2), 2..5),
        seed in 0u64..100,
    ) {
        let (g0, input, out) = chain_program(&coeffs);
        let reference = run_chain(&g0, input, out, seed);

        let mut sgf = g0.clone();
        greedy_subgraph_fusion(&mut sgf);
        let r_sgf = run_chain(&sgf, input, out, seed);
        prop_assert!(reference.max_abs_diff(&r_sgf) < 1e-12, "SGF changed results");

        let mut otf = g0.clone();
        greedy_otf_fusion(&mut otf);
        let r_otf = run_chain(&otf, input, out, seed);
        prop_assert!(reference.max_abs_diff(&r_otf) < 1e-9, "OTF changed results");

        // Fusion never increases the kernel count.
        prop_assert!(sgf.kernel_count() <= g0.kernel_count());
        prop_assert!(otf.kernel_count() <= g0.kernel_count());
    }
}
