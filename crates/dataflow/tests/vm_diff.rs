//! Differential tests for the vectorized lane VM (ISSUE 4): random
//! kernels + domains must execute bit-identically through
//! `VmMode::Scalar` (the per-column reference path) and `VmMode::Lanes`
//! (interior lane VM + scalar boundary rind), across storage orders,
//! lane-boundary remainders (i-widths straddling `LANE_WIDTH`), 1-wide
//! hulls, region-restricted and K-interval statements, locals carried
//! through vertical solvers, and parallel pools.

use dataflow::bytecode::LANE_WIDTH;
use dataflow::exec::{run_kernel_with, validate_kernel, DataStore, VmMode};
use dataflow::expr::{BinOp, CmpOp, LocalId, ParamId};
use dataflow::graph::Sdfg;
use dataflow::kernel::{
    Anchor, AxisInterval, Domain, Extent2, KOrder, Kernel, LValue, Region2, Schedule, Stmt,
};
use dataflow::storage::{Array3, Axis, Layout, StorageOrder};
use dataflow::{DataId, Expr};
use machine::Pool;
use proptest::prelude::*;
use rand::{rngs::SmallRng, Rng, SeedableRng};

const HALO: [usize; 3] = [2, 2, 1];
/// Input containers readable at offsets; outputs are written (and only
/// ever read at offset 0 horizontally, to satisfy the parallel model).
const N_INPUTS: usize = 3;
const N_OUTPUTS: usize = 2;
const N_PARAMS: usize = 3;
const N_LOCALS: usize = 2;

fn arb_order() -> impl Strategy<Value = StorageOrder> {
    prop_oneof![
        Just(StorageOrder::IContiguous),
        Just(StorageOrder::KContiguous),
        Just(StorageOrder::JContiguous),
    ]
}

fn arb_korder() -> impl Strategy<Value = KOrder> {
    prop_oneof![
        Just(KOrder::Parallel),
        Just(KOrder::Forward),
        Just(KOrder::Backward),
    ]
}

/// A random expression over inputs (free offsets within the halo),
/// outputs (self-reads at zero horizontal offset, K offset legal for
/// `korder`), locals, params, indices, and constants.
fn random_expr(rng: &mut SmallRng, depth: u32, ids: &[DataId], korder: KOrder) -> Expr {
    if depth == 0 {
        return match rng.gen_range(0..6) {
            0 => Expr::c(rng.gen_range(-2.0..2.0)),
            1 => Expr::Param(ParamId(rng.gen_range(0..N_PARAMS))),
            2 => Expr::Local(LocalId(rng.gen_range(0..N_LOCALS))),
            3 => Expr::Index([Axis::I, Axis::J, Axis::K][rng.gen_range(0..3)]),
            4 => {
                // Self-read of an output: zero horizontal offset, K
                // offset restricted by the kernel's order.
                let d = ids[N_INPUTS + rng.gen_range(0..N_OUTPUTS)];
                let dk = match korder {
                    KOrder::Parallel => 0,
                    KOrder::Forward => rng.gen_range(-1..1),
                    KOrder::Backward => rng.gen_range(0..2),
                };
                Expr::load(d, 0, 0, dk)
            }
            _ => Expr::load(
                ids[rng.gen_range(0..N_INPUTS)],
                rng.gen_range(-1..2),
                rng.gen_range(-1..2),
                rng.gen_range(-1..2),
            ),
        };
    }
    let sub = |rng: &mut SmallRng| random_expr(rng, depth - 1, ids, korder);
    match rng.gen_range(0..8) {
        0 => Expr::un(dataflow::UnOp::Abs, sub(rng)),
        1 => Expr::un(dataflow::UnOp::Sqrt, Expr::un(dataflow::UnOp::Abs, sub(rng))),
        2 => Expr::bin(BinOp::Add, sub(rng), sub(rng)),
        3 => Expr::bin(BinOp::Mul, sub(rng), sub(rng)),
        4 => Expr::bin(BinOp::Sub, sub(rng), sub(rng)),
        5 => Expr::powi(Expr::un(dataflow::UnOp::Abs, sub(rng)), rng.gen_range(1..4)),
        6 => Expr::cmp(CmpOp::Lt, sub(rng), sub(rng)),
        _ => Expr::select(
            Expr::cmp(CmpOp::Gt, sub(rng), Expr::c(0.5)),
            sub(rng),
            sub(rng),
        ),
    }
}

fn random_interval(rng: &mut SmallRng) -> AxisInterval {
    match rng.gen_range(0..4) {
        0 => AxisInterval::FULL,
        1 => AxisInterval::at_start(rng.gen_range(0..2)),
        2 => AxisInterval::new(Anchor::End(-1), Anchor::End(0)),
        _ => AxisInterval::new(
            Anchor::Start(rng.gen_range(0..2)),
            Anchor::End(rng.gen_range(-1..1)),
        ),
    }
}

/// Build a random valid kernel over `ids` with `n_stmts` statements.
fn random_kernel(
    rng: &mut SmallRng,
    ids: &[DataId],
    domain: Domain,
    korder: KOrder,
    n_stmts: usize,
) -> Kernel {
    let mut k = Kernel::new("diff", domain, korder, Schedule::gpu_horizontal());
    k.n_locals = N_LOCALS;
    for _ in 0..n_stmts {
        let lvalue = if rng.gen_bool(0.25) {
            LValue::Local(LocalId(rng.gen_range(0..N_LOCALS)))
        } else {
            LValue::Field(ids[N_INPUTS + rng.gen_range(0..N_OUTPUTS)])
        };
        let depth = rng.gen_range(1..4);
        let expr = random_expr(rng, depth, ids, korder);
        let (region, extent) = if rng.gen_bool(0.3) {
            (
                Some(Region2 {
                    i: random_interval(rng),
                    j: random_interval(rng),
                }),
                Extent2::ZERO,
            )
        } else if rng.gen_bool(0.3) && matches!(lvalue, LValue::Field(_)) {
            (
                None,
                Extent2 {
                    i_lo: rng.gen_range(0..2),
                    i_hi: rng.gen_range(0..2),
                    j_lo: rng.gen_range(0..2),
                    j_hi: rng.gen_range(0..2),
                },
            )
        } else {
            (None, Extent2::ZERO)
        };
        let k_range = if rng.gen_bool(0.4) {
            random_interval(rng)
        } else {
            AxisInterval::FULL
        };
        k.stmts.push(Stmt {
            lvalue,
            expr,
            k_range,
            region,
            extent,
        });
    }
    k
}

/// Deterministic nonzero fill covering compute domain and halo.
fn fill_store(g: &Sdfg, ids: &[DataId], store: &mut DataStore) {
    for (n, d) in ids.iter().enumerate() {
        *store.get_mut(*d) = Array3::from_fn(g.layout_of(*d), |i, j, k| {
            0.2 + ((n as i64 * 41 + i * 17 + j * 13 + k * 7).rem_euclid(29)) as f64 * 0.13
        });
    }
}

fn assert_stores_bit_identical(a: &DataStore, b: &DataStore, ids: &[DataId], label: &str) {
    for d in ids {
        let (x, y) = (a.get(*d), b.get(*d));
        for (n, (p, q)) in x.raw().iter().zip(y.raw()).enumerate() {
            assert_eq!(
                p.to_bits(),
                q.to_bits(),
                "{label}: container {d:?} flat index {n}: scalar={p} lanes={q}"
            );
        }
    }
}

/// Run one random program through both VM modes (and a parallel pool)
/// and require bit identity everywhere.
#[allow(clippy::too_many_arguments)]
fn check_case(
    ni: usize,
    nj: usize,
    nk: usize,
    orders: (StorageOrder, StorageOrder),
    korder: KOrder,
    n_stmts: usize,
    seed: u64,
) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = Sdfg::new("vm_diff");
    let shape = [ni, nj, nk];
    let ids: Vec<DataId> = (0..N_INPUTS + N_OUTPUTS)
        .map(|n| {
            let order = if n % 2 == 0 { orders.0 } else { orders.1 };
            g.add_container(
                format!("f{n}"),
                Layout::new(shape, HALO, order, if n % 2 == 0 { 8 } else { 1 }),
                false,
            )
        })
        .collect();
    let domain = Domain::from_shape(shape);
    let kernel = random_kernel(&mut rng, &ids, domain, korder, n_stmts);
    if validate_kernel(&kernel).is_err() {
        // Offset draw hit an illegal self-dependency; skip this case.
        return;
    }
    let params: Vec<f64> = (0..N_PARAMS).map(|_| rng.gen_range(0.2..1.7)).collect();

    let mut scalar_store = DataStore::for_sdfg(&g);
    fill_store(&g, &ids, &mut scalar_store);
    let mut lanes_store = scalar_store.clone();
    let mut par_store = scalar_store.clone();

    let serial = Pool::new(1);
    let s = run_kernel_with(&kernel, &mut scalar_store, &params, &serial, VmMode::Scalar);
    let v = run_kernel_with(&kernel, &mut lanes_store, &params, &serial, VmMode::Lanes);
    assert_eq!(s.points, v.points);
    assert_eq!(v.lanes_vector + v.lanes_scalar, s.lanes_scalar);
    assert_stores_bit_identical(&scalar_store, &lanes_store, &ids, "serial lanes");

    let par = Pool::new(3);
    run_kernel_with(&kernel, &mut par_store, &params, &par, VmMode::Lanes);
    assert_stores_bit_identical(&scalar_store, &par_store, &ids, "parallel lanes");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: arbitrary domains (including i-widths
    /// around the 64-lane boundary), storage orders, K orders, and
    /// statement shapes — scalar and lane VMs agree to the last bit.
    #[test]
    fn lanes_bit_identical_to_scalar_on_random_kernels(
        ni in 1usize..12,
        nj in 1usize..6,
        nk in 1usize..5,
        orders in (arb_order(), arb_order()),
        korder in arb_korder(),
        n_stmts in 1usize..5,
        seed in 0u64..1u64 << 48,
    ) {
        check_case(ni, nj, nk, orders, korder, n_stmts, seed);
    }

    /// Lane-boundary remainders: i-widths straddling LANE_WIDTH so runs
    /// split into a full 64-lane chunk plus remainders both above and
    /// below VECTOR_MIN.
    #[test]
    fn lane_boundary_remainders(
        di in 0usize..8,
        orders in (arb_order(), arb_order()),
        korder in arb_korder(),
        seed in 0u64..1u64 << 48,
    ) {
        check_case(LANE_WIDTH - 3 + di, 2, 3, orders, korder, 3, seed);
    }

    /// Degenerate hulls: 1-wide in i (everything rides the scalar rind).
    #[test]
    fn one_wide_hull(
        nj in 1usize..8,
        nk in 1usize..5,
        orders in (arb_order(), arb_order()),
        korder in arb_korder(),
        seed in 0u64..1u64 << 48,
    ) {
        check_case(1, nj, nk, orders, korder, 2, seed);
    }
}
