//! Differential transform-correctness harness.
//!
//! Every registered transform is applied to generated SDFGs and the
//! transformed program's `DataStore` output is compared against the
//! untransformed program, element by element, in ULPs. Semantics-
//! preserving transforms must be *bitwise* identical (0 ULP); the power
//! transform replaces `powf` with repeated multiplication (`Powi`), so
//! it gets a small ULP budget instead.
//!
//! Each transformed program is additionally executed under the profiler
//! ([`Executor::run_profiled`]) and must match its unprofiled run
//! bitwise — instrumentation must not perturb results.
//!
//! `prune_regions` is deliberately NOT in the registry: it drops
//! compute regions that a distributed decomposition makes redundant and
//! is therefore semantics-changing on a single rank.

use dataflow::exec::{validate_sdfg, DataStore, Executor, NoHooks};
use dataflow::graph::{ControlNode, DataflowNode, Sdfg, State};
use dataflow::kernel::{Domain, Extent2, KOrder, Kernel, LValue, Schedule, Stmt};
use dataflow::passes;
use dataflow::storage::{Array3, Layout, StorageOrder};
use dataflow::transforms::fusion::{greedy_otf_fusion, greedy_subgraph_fusion};
use dataflow::transforms::local_storage::{cache_registers_everywhere, demote_transients_to_locals};
use dataflow::transforms::power::optimize_powers;
use dataflow::transforms::schedule::{assign_schedules, split_regions};
use dataflow::transforms::tiling::apply_tiling;
use dataflow::{DataId, Expr, Offset3, ParamId, UnOp};
use dataflow::expr::BinOp;
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Generated programs

/// Shape of one generated test program.
#[derive(Clone, Debug)]
struct Spec {
    order: StorageOrder,
    /// Pointwise/offset chain stages: (coefficient, di, dj).
    chain: Vec<(f64, i32, i32)>,
    /// Integer exponent of the pow stage (2..=5).
    pow_exp: i32,
    /// Add a cumulative Forward-order vertical kernel.
    vertical: bool,
    /// Control-flow loop trips around the state.
    trips: u32,
    seed: u64,
}

impl Spec {
    fn default_with(order: StorageOrder) -> Spec {
        Spec {
            order,
            chain: vec![(1.5, 1, 0), (0.75, 0, -1), (2.0, -1, 1)],
            pow_exp: 3,
            vertical: true,
            trips: 2,
            seed: 7,
        }
    }
}

const N: usize = 8;
const NK: usize = 4;
const HALO: [usize; 3] = [3, 3, 1];

/// Build the program: input -> chain of transient stages -> chain_out,
/// then pow_out = |chain_out|^e and (optionally) a Forward-order
/// cumulative kernel v_out(k) = 0.5*v_out(k-1) + chain_out, all inside
/// an optional control loop.
fn build_program(spec: &Spec) -> (Sdfg, DataId, Vec<DataId>) {
    let mut g = Sdfg::new("diff");
    let l = Layout::new([N, N, NK], HALO, spec.order, 1);
    let input = g.add_container("in", l.clone(), false);
    let chain_out = g.add_container("chain_out", l.clone(), false);
    let pow_out = g.add_container("pow_out", l.clone(), false);
    let p0 = g.add_param("p0");

    let mut s = State::new("s0");
    let dom = Domain::from_shape([N, N, NK]);

    // Backward extent propagation so OTF recomputation of transient
    // stages covers every point a later stage's offset read touches.
    let n = spec.chain.len();
    let mut exts = vec![Extent2::ZERO; n];
    for idx in (0..n - 1).rev() {
        let (_, di, dj) = spec.chain[idx + 1];
        exts[idx] = exts[idx + 1].shifted_by(Offset3::new(di, dj, 0));
    }
    let mut prev = input;
    for (idx, (c, di, dj)) in spec.chain.iter().enumerate() {
        let dst = if idx == n - 1 {
            chain_out
        } else {
            g.add_container(format!("t{idx}"), l.clone(), true)
        };
        let mut k = Kernel::new(
            format!("stage{idx}"),
            dom,
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let mut e = Expr::load(prev, *di, *dj, 0) * Expr::c(*c) + Expr::c(1.0);
        if idx == 0 {
            e = e * Expr::Param(ParamId(p0.0));
        }
        let mut stmt = Stmt::full(LValue::Field(dst), e);
        stmt.extent = exts[idx];
        k.stmts.push(stmt);
        s.nodes.push(DataflowNode::Kernel(k));
        prev = dst;
    }

    // Pow stage: exercised by `optimize_powers` (abs-guarded integer
    // exponent, the reducible form).
    let mut kp = Kernel::new(
        "powk",
        dom,
        KOrder::Parallel,
        Schedule::gpu_horizontal(),
    );
    kp.stmts.push(Stmt::full(
        LValue::Field(pow_out),
        Expr::bin(
            BinOp::Pow,
            Expr::un(UnOp::Abs, Expr::load(chain_out, 0, 0, 0)) + Expr::c(0.25),
            Expr::c(spec.pow_exp as f64),
        ),
    ));
    s.nodes.push(DataflowNode::Kernel(kp));

    let mut outs = vec![chain_out, pow_out];
    if spec.vertical {
        let v_out = g.add_container("v_out", l.clone(), false);
        let mut kv = Kernel::new(
            "vcum",
            dom,
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        kv.stmts.push(Stmt::full(
            LValue::Field(v_out),
            Expr::load(v_out, 0, 0, -1) * Expr::c(0.5) + Expr::load(chain_out, 0, 0, 0),
        ));
        s.nodes.push(DataflowNode::Kernel(kv));
        outs.push(v_out);
    }

    g.add_state(s);
    g.control = if spec.trips > 1 {
        vec![ControlNode::Loop {
            trips: spec.trips,
            body: vec![ControlNode::State(0)],
        }]
    } else {
        vec![ControlNode::State(0)]
    };
    (g, input, outs)
}

/// Execute `g` from a deterministic input fill; `profiled` routes the
/// run through the profiler (which must not perturb anything).
fn run(g: &Sdfg, input: DataId, outs: &[DataId], seed: u64, profiled: bool) -> Vec<Array3> {
    let mut store = DataStore::for_sdfg(g);
    *store.get_mut(input) = Array3::from_fn(g.layout_of(input), |i, j, k| {
        ((i * 3 + j * 5 + k * 7 + seed as i64).rem_euclid(17)) as f64 * 0.25 + 0.125
    });
    let params = vec![1.25; g.params.len()];
    let exec = Executor::serial();
    if profiled {
        let mut prof = dataflow::Profiler::new();
        exec.run_profiled(g, &mut store, &params, &mut NoHooks, &mut prof);
        assert!(prof.report().launches > 0, "profiler saw no kernels");
    } else {
        exec.run(g, &mut store, &params, &mut NoHooks);
    }
    outs.iter().map(|&o| store.get(o).clone()).collect()
}

// ---------------------------------------------------------------------
// ULP comparison

/// Monotonic key: total order over f64 bit patterns.
fn ulp_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 0 {
        b + (1 << 63)
    } else {
        !b
    }
}

fn ulp_diff(a: f64, b: f64) -> u64 {
    if a == b {
        return 0; // also covers +0.0 vs -0.0
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    ulp_key(a).abs_diff(ulp_key(b))
}

/// Max ULP distance over the full logical box (interior + halo) of each
/// output pair.
fn max_ulps(g: &Sdfg, outs: &[DataId], a: &[Array3], b: &[Array3]) -> u64 {
    let mut worst = 0u64;
    for (idx, &o) in outs.iter().enumerate() {
        let l = g.layout_of(o);
        let [hi, hj, hk] = l.halo;
        let [ni, nj, nk] = l.domain;
        for k in -(hk as i64)..(nk + hk) as i64 {
            for j in -(hj as i64)..(nj + hj) as i64 {
                for i in -(hi as i64)..(ni + hi) as i64 {
                    worst = worst.max(ulp_diff(a[idx].get(i, j, k), b[idx].get(i, j, k)));
                }
            }
        }
    }
    worst
}

// ---------------------------------------------------------------------
// Transform registry

type Apply = Box<dyn Fn(&mut Sdfg)>;

/// Every registered whole-program transform, with its ULP budget
/// against the untransformed program. `prune_regions` is excluded (see
/// module docs).
fn registry() -> Vec<(&'static str, Apply, u64)> {
    vec![
        ("fusion/sgf", Box::new(|g: &mut Sdfg| drop(greedy_subgraph_fusion(g))), 0),
        ("fusion/otf", Box::new(|g: &mut Sdfg| drop(greedy_otf_fusion(g))), 0),
        (
            "local_storage/registers",
            Box::new(|g: &mut Sdfg| drop(cache_registers_everywhere(g))),
            0,
        ),
        (
            "local_storage/demote",
            Box::new(|g: &mut Sdfg| drop(demote_transients_to_locals(g))),
            0,
        ),
        // Powi evaluates by repeated multiplication; powf goes through
        // libm. A few ULPs apart is expected, more is a bug.
        ("power", Box::new(|g: &mut Sdfg| drop(optimize_powers(g))), 16),
        (
            "schedule/assign",
            Box::new(|g: &mut Sdfg| {
                assign_schedules(g, &Schedule::gpu_horizontal(), &Schedule::gpu_vertical());
            }),
            0,
        ),
        ("schedule/split_regions", Box::new(|g: &mut Sdfg| drop(split_regions(g))), 0),
        (
            "tiling",
            Box::new(|g: &mut Sdfg| {
                for s in &mut g.states {
                    for node in &mut s.nodes {
                        if let DataflowNode::Kernel(k) = node {
                            apply_tiling(k, [4, 4]);
                        }
                    }
                }
            }),
            0,
        ),
        (
            "passes/fold_constants",
            Box::new(|g: &mut Sdfg| {
                passes::fold_constants(g);
            }),
            0,
        ),
        (
            "passes/dead_writes",
            Box::new(|g: &mut Sdfg| {
                passes::eliminate_dead_writes(g);
            }),
            0,
        ),
        (
            "passes/redundant_copies",
            Box::new(|g: &mut Sdfg| {
                passes::eliminate_redundant_copies(g);
            }),
            0,
        ),
        (
            "passes/unroll_loops",
            Box::new(|g: &mut Sdfg| {
                passes::unroll_loops(g);
            }),
            0,
        ),
    ]
}

/// The differential check: every registered transform on one spec.
fn check_spec(spec: &Spec) {
    let (g0, input, outs) = build_program(spec);
    validate_sdfg(&g0).expect("generated program validates");
    let reference = run(&g0, input, &outs, spec.seed, false);

    for (name, apply, budget) in registry() {
        let mut gt = g0.clone();
        apply(&mut gt);
        validate_sdfg(&gt).unwrap_or_else(|e| panic!("{name}: transformed program invalid: {e}"));

        let plain = run(&gt, input, &outs, spec.seed, false);
        let ulps = max_ulps(&g0, &outs, &reference, &plain);
        assert!(
            ulps <= budget,
            "{name}: diverged by {ulps} ULPs (budget {budget}) on {spec:?}"
        );

        // Profiled re-run of the *same* transformed program: must be
        // bitwise identical to its unprofiled run.
        let profiled = run(&gt, input, &outs, spec.seed, true);
        let p_ulps = max_ulps(&g0, &outs, &plain, &profiled);
        assert_eq!(
            p_ulps, 0,
            "{name}: profiling perturbed results by {p_ulps} ULPs on {spec:?}"
        );
    }
}

// ---------------------------------------------------------------------
// Pinned regression specs — deterministic, always run.

#[test]
fn pinned_icontiguous() {
    check_spec(&Spec::default_with(StorageOrder::IContiguous));
}

#[test]
fn pinned_kcontiguous() {
    check_spec(&Spec::default_with(StorageOrder::KContiguous));
}

#[test]
fn pinned_jcontiguous() {
    check_spec(&Spec::default_with(StorageOrder::JContiguous));
}

#[test]
fn pinned_no_loop_no_vertical() {
    // Regression guard for the loop-free / horizontal-only corner:
    // unroll_loops must be a no-op and fusion still bitwise.
    let spec = Spec {
        order: StorageOrder::KContiguous,
        chain: vec![(0.5, -1, -1), (1.25, 1, 1)],
        pow_exp: 5,
        vertical: false,
        trips: 1,
        seed: 42,
    };
    check_spec(&spec);
}

/// Storage-order sweep: the same logical program must produce bitwise
/// identical logical results under every storage order (regression for
/// layout-dependent iteration; see crates/validate smoke example fix).
#[test]
fn storage_order_sweep_is_zero_diff() {
    let orders = [
        StorageOrder::IContiguous,
        StorageOrder::KContiguous,
        StorageOrder::JContiguous,
    ];
    let mut results: Vec<(Sdfg, Vec<DataId>, Vec<Array3>)> = Vec::new();
    for order in orders {
        let spec = Spec::default_with(order);
        let (g, input, outs) = build_program(&spec);
        let r = run(&g, input, &outs, spec.seed, false);
        results.push((g, outs, r));
    }
    let (g0, outs0, ref0) = &results[0];
    for (g, outs, r) in &results[1..] {
        assert_eq!(outs0.len(), outs.len());
        let ulps = max_ulps(g0, outs0, ref0, r);
        let _ = g;
        assert_eq!(ulps, 0, "storage order changed logical results");
    }
}

// ---------------------------------------------------------------------
// Property-based sweep

fn arb_order() -> impl Strategy<Value = StorageOrder> {
    prop_oneof![
        Just(StorageOrder::IContiguous),
        Just(StorageOrder::KContiguous),
        Just(StorageOrder::JContiguous),
    ]
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    (
        arb_order(),
        proptest::collection::vec((0.25f64..2.0, -1i32..2, -1i32..2), 2..5),
        2i32..6,
        prop_oneof![Just(false), Just(true)],
        1u32..4,
        0u64..1000,
    )
        .prop_map(|(order, chain, pow_exp, vertical, trips, seed)| Spec {
            order,
            chain,
            pow_exp,
            vertical,
            trips,
            seed,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn transforms_preserve_semantics(spec in arb_spec()) {
        check_spec(&spec);
    }
}
