//! ISSUE 7 satellite 4: the executor's compiled-kernel cache is keyed
//! per-`Sdfg` *instance* — its namespace is the graph's `(uid,
//! generation)`, and `Clone` mints a fresh uid. Multi-tenant serving
//! must therefore hold ONE program instance per (scenario, config) and
//! run every tenant through it (which is exactly what
//! `engine::ForecastEngine` does via `fv3core::CompiledSubstep`):
//!
//! * tenants sharing one instance compile each kernel exactly once in
//!   total, even when they race, and run bit-identically;
//! * tenants holding per-tenant *clones* of the same program thrash the
//!   cache — every alternation recompiles from scratch, forever.

use dataflow::exec::{DataStore, Executor, NoHooks};
use dataflow::graph::{DataflowNode, Sdfg, State};
use dataflow::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
use dataflow::storage::{Array3, Layout, StorageOrder};
use dataflow::{DataId, Expr};

const N: usize = 8;
/// Kernels in the program == compile units == the cold-start miss bill.
const KERNELS: u64 = 2;

/// A two-kernel program: `b = a * 2`, then `c = b + a`.
fn two_kernel_program() -> (Sdfg, Vec<DataId>) {
    let mut g = Sdfg::new("tenant_prog");
    let l = Layout::new([N, N, 4], [0, 0, 0], StorageOrder::IContiguous, 1);
    let ids: Vec<DataId> = ["a", "b", "c"]
        .iter()
        .map(|nm| g.add_container(*nm, l.clone(), false))
        .collect();
    let mut k1 = Kernel::new(
        "double",
        Domain::from_shape([N, N, 4]),
        KOrder::Parallel,
        Schedule::gpu_horizontal(),
    );
    k1.stmts.push(Stmt::full(
        LValue::Field(ids[1]),
        Expr::load(ids[0], 0, 0, 0) * Expr::c(2.0),
    ));
    let mut k2 = Kernel::new(
        "sum",
        Domain::from_shape([N, N, 4]),
        KOrder::Parallel,
        Schedule::gpu_horizontal(),
    );
    k2.stmts.push(Stmt::full(
        LValue::Field(ids[2]),
        Expr::load(ids[1], 0, 0, 0) + Expr::load(ids[0], 0, 0, 0),
    ));
    let mut s = State::new("s");
    s.nodes.push(DataflowNode::Kernel(k1));
    s.nodes.push(DataflowNode::Kernel(k2));
    g.add_state(s);
    (g, ids)
}

fn tenant_store(g: &Sdfg, ids: &[DataId], tenant: i64) -> DataStore {
    let mut store = DataStore::for_sdfg(g);
    *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |i, j, k| {
        0.25 + ((tenant * 13 + i * 7 + j * 5 + k * 3).rem_euclid(17)) as f64 * 0.125
    });
    store
}

#[test]
fn tenants_sharing_one_instance_compile_once_total() {
    let (g, ids) = two_kernel_program();
    let exec = Executor::serial();
    const TENANTS: i64 = 4;
    const RUNS_EACH: usize = 3;

    // Tenants race through ONE executor + ONE program instance, each
    // with private data. The compile happens under the executor's cache
    // lock, so the whole fleet pays the bill exactly once.
    let reports: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..TENANTS)
            .map(|t| {
                let (g, exec, ids) = (&g, &exec, &ids);
                scope.spawn(move || {
                    let mut store = tenant_store(g, ids, t);
                    (0..RUNS_EACH)
                        .map(|_| exec.run(g, &mut store, &[], &mut NoHooks))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let misses: u64 = reports.iter().flatten().map(|r| r.cache_misses).sum();
    let hits: u64 = reports.iter().flatten().map(|r| r.cache_hits).sum();
    assert_eq!(misses, KERNELS, "the fleet compiles each kernel exactly once");
    assert_eq!(
        hits,
        KERNELS * (TENANTS as u64 * RUNS_EACH as u64) - KERNELS,
        "every launch after the first compile is a hit"
    );

    // Sharing is a pure perf transform: same inputs, same bits.
    let mut s1 = tenant_store(&g, &ids, 1);
    let mut s2 = tenant_store(&g, &ids, 1);
    exec.run(&g, &mut s1, &[], &mut NoHooks);
    Executor::serial().run(&g, &mut s2, &[], &mut NoHooks);
    for d in &ids {
        for (x, y) in s1.get(*d).raw().iter().zip(s2.get(*d).raw()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

#[test]
fn tenants_on_clones_thrash_the_cache_forever() {
    let (g, ids) = two_kernel_program();
    // Per-tenant clones: `Clone` mints a fresh uid, so they are distinct
    // cache namespaces even though they are structurally identical.
    let (g1, g2) = (g.clone(), g.clone());
    assert_ne!(g1.uid(), g2.uid());

    let exec = Executor::serial();
    let mut s1 = tenant_store(&g1, &ids, 1);
    let mut s2 = tenant_store(&g2, &ids, 2);

    // Alternating tenants never reach steady state: each switch clears
    // the other's namespace, so round N recompiles just like round 0.
    for round in 0..3 {
        let r1 = exec.run(&g1, &mut s1, &[], &mut NoHooks);
        let r2 = exec.run(&g2, &mut s2, &[], &mut NoHooks);
        for (t, r) in [(1, &r1), (2, &r2)] {
            assert_eq!(
                r.cache_misses, KERNELS,
                "round {round}: clone-holding tenant {t} must recompile everything"
            );
            assert_eq!(r.cache_hits, 0, "round {round}: tenant {t} can never hit");
        }
    }
}
