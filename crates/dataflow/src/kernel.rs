//! Expanded map scopes ("kernels") — the unit of scheduling and costing.
//!
//! After library-node expansion (Section V-A), every stencil computation
//! becomes one or more [`Kernel`]s: a rectangular iteration domain, a
//! vertical ordering (parallel / forward / backward), a [`Schedule`]
//! carrying the hardware-mapping attributes the paper enumerates (iteration
//! order, tiling, map-vs-loop, target, region strategy), and a list of
//! per-point statements. Kernels know how to report their own memlets and
//! [`machine::KernelProfile`]s, which is what makes the data-centric
//! "query data movement for exact ranges at any point of the program"
//! workflow possible.

use crate::expr::{DataId, Expr, LocalId, Offset3};
use crate::storage::{Axis, Layout, StorageOrder};
use machine::{KernelProfile, Target};

/// A rectangular iteration domain in logical (domain-relative) coordinates.
/// `end` is exclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Domain {
    pub start: [i64; 3],
    pub end: [i64; 3],
}

impl Domain {
    /// The domain `[0, n)` on each axis.
    pub fn from_shape(shape: [usize; 3]) -> Self {
        Domain {
            start: [0; 3],
            end: [shape[0] as i64, shape[1] as i64, shape[2] as i64],
        }
    }

    /// Extent along `axis`.
    pub fn len(&self, axis: Axis) -> i64 {
        (self.end[axis.idx()] - self.start[axis.idx()]).max(0)
    }

    /// Whether any axis is empty.
    pub fn is_empty(&self) -> bool {
        (0..3).any(|d| self.end[d] <= self.start[d])
    }

    /// Total points.
    pub fn volume(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            (0..3).map(|d| (self.end[d] - self.start[d]) as u64).product()
        }
    }

    /// Horizontal (I x J) points.
    pub fn horizontal_points(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            ((self.end[0] - self.start[0]) * (self.end[1] - self.start[1])) as u64
        }
    }

    /// Grow by `lo`/`hi` cells on each axis (negative shrinks).
    pub fn grown(&self, lo: [i64; 3], hi: [i64; 3]) -> Domain {
        Domain {
            start: [
                self.start[0] - lo[0],
                self.start[1] - lo[1],
                self.start[2] - lo[2],
            ],
            end: [self.end[0] + hi[0], self.end[1] + hi[1], self.end[2] + hi[2]],
        }
    }

    /// Intersection with another domain.
    pub fn intersect(&self, o: &Domain) -> Domain {
        Domain {
            start: [
                self.start[0].max(o.start[0]),
                self.start[1].max(o.start[1]),
                self.start[2].max(o.start[2]),
            ],
            end: [
                self.end[0].min(o.end[0]),
                self.end[1].min(o.end[1]),
                self.end[2].min(o.end[2]),
            ],
        }
    }
}

/// An index anchored to the start or end of a domain axis.
///
/// `Start(o)` resolves to `domain.start + o`; `End(o)` to `domain.end + o`.
/// This is how interval blocks (`interval(1, None)`) and horizontal regions
/// (`region[:, j_start]`) stay domain-size-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Anchor {
    Start(i32),
    End(i32),
}

impl Anchor {
    /// Resolve against `[start, end)`.
    pub fn resolve(&self, start: i64, end: i64) -> i64 {
        match self {
            Anchor::Start(o) => start + *o as i64,
            Anchor::End(o) => end + *o as i64,
        }
    }
}

/// A half-open anchored interval `[lo, hi)` along one axis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AxisInterval {
    pub lo: Anchor,
    pub hi: Anchor,
}

impl AxisInterval {
    /// The whole axis.
    pub const FULL: AxisInterval = AxisInterval {
        lo: Anchor::Start(0),
        hi: Anchor::End(0),
    };

    /// Construct from anchors.
    pub fn new(lo: Anchor, hi: Anchor) -> Self {
        AxisInterval { lo, hi }
    }

    /// The single index `Start(o)` (e.g. GT4Py `region[:, j_start]`).
    pub fn at_start(o: i32) -> Self {
        AxisInterval {
            lo: Anchor::Start(o),
            hi: Anchor::Start(o + 1),
        }
    }

    /// The single index `End(o)` — `at_end(-1)` is the last point.
    pub fn at_end(o: i32) -> Self {
        AxisInterval {
            lo: Anchor::End(o),
            hi: Anchor::End(o + 1),
        }
    }

    /// Resolve to concrete `[lo, hi)` bounds within `[start, end)`,
    /// clamped to the domain.
    pub fn resolve(&self, start: i64, end: i64) -> (i64, i64) {
        let lo = self.lo.resolve(start, end).clamp(start, end);
        let hi = self.hi.resolve(start, end).clamp(start, end);
        (lo, hi.max(lo))
    }
}

/// A horizontal region restriction (Section IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region2 {
    pub i: AxisInterval,
    pub j: AxisInterval,
}

impl Region2 {
    /// Whole horizontal plane (no restriction).
    pub const FULL: Region2 = Region2 {
        i: AxisInterval::FULL,
        j: AxisInterval::FULL,
    };

    /// Points in the region for a given domain.
    pub fn points(&self, domain: &Domain) -> u64 {
        let (il, ih) = self.i.resolve(domain.start[0], domain.end[0]);
        let (jl, jh) = self.j.resolve(domain.start[1], domain.end[1]);
        ((ih - il).max(0) * (jh - jl).max(0)) as u64
    }
}

/// Horizontal compute-extent expansion of a statement, from the DSL's
/// extent analysis: how far beyond the kernel domain this statement must
/// run so later statements can read its output at an offset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Extent2 {
    pub i_lo: i64,
    pub i_hi: i64,
    pub j_lo: i64,
    pub j_hi: i64,
}

impl Extent2 {
    /// No expansion.
    pub const ZERO: Extent2 = Extent2 {
        i_lo: 0,
        i_hi: 0,
        j_lo: 0,
        j_hi: 0,
    };

    /// Pointwise maximum of two extents.
    pub fn union(&self, o: &Extent2) -> Extent2 {
        Extent2 {
            i_lo: self.i_lo.max(o.i_lo),
            i_hi: self.i_hi.max(o.i_hi),
            j_lo: self.j_lo.max(o.j_lo),
            j_hi: self.j_hi.max(o.j_hi),
        }
    }

    /// Extent needed to satisfy a read at `offset` from a point computed
    /// with this extent.
    pub fn shifted_by(&self, o: Offset3) -> Extent2 {
        Extent2 {
            i_lo: self.i_lo - o.i.min(0) as i64,
            i_hi: self.i_hi + o.i.max(0) as i64,
            j_lo: self.j_lo - o.j.min(0) as i64,
            j_hi: self.j_hi + o.j.max(0) as i64,
        }
    }

    /// Apply to a domain.
    pub fn grow(&self, d: &Domain) -> Domain {
        d.grown([self.i_lo, self.j_lo, 0], [self.i_hi, self.j_hi, 0])
    }
}

/// Vertical iteration ordering of a kernel (Fig. 3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KOrder {
    /// No loop-carried dependency: K can be a parallel map dimension.
    Parallel,
    /// K ascends; statements may read outputs at `k-1` (forward solver).
    Forward,
    /// K descends; statements may read outputs at `k+1` (backward solver).
    Backward,
}

/// Where writes land.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LValue {
    /// A data container (global memory).
    Field(DataId),
    /// A per-thread local (register) — produced by local-storage
    /// transformations and fused temporaries.
    Local(LocalId),
}

/// One per-point assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct Stmt {
    pub lvalue: LValue,
    pub expr: Expr,
    /// Vertical application interval, anchored to the kernel's K range.
    pub k_range: AxisInterval,
    /// Optional horizontal region restriction (`None` = whole plane).
    pub region: Option<Region2>,
    /// Horizontal compute-extent expansion.
    pub extent: Extent2,
}

impl Stmt {
    /// A full-domain statement with no region or extent.
    pub fn full(lvalue: LValue, expr: Expr) -> Self {
        Stmt {
            lvalue,
            expr,
            k_range: AxisInterval::FULL,
            region: None,
            extent: Extent2::ZERO,
        }
    }

    /// Number of points this statement executes over.
    pub fn points(&self, domain: &Domain) -> u64 {
        let grown = self.extent.grow(domain);
        let (kl, kh) = self.k_range.resolve(domain.start[2], domain.end[2]);
        let klen = (kh - kl).max(0) as u64;
        let hpts = match &self.region {
            Some(r) => r.points(&grown),
            None => grown.horizontal_points(),
        };
        hpts * klen
    }
}

/// How horizontal regions are realized (Section V-A, Table III "split
/// regions to multiple kernels").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionStrategy {
    /// One map over the full domain with per-statement index predicates.
    Predicated,
    /// Separate maps (kernels) iterating only the region sub-domains.
    SplitKernels,
}

/// Hardware-mapping attributes of a kernel (the schedule attribute list of
/// Section V-A).
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Execution target.
    pub target: Target,
    /// Loop nesting order, outer to inner. The innermost axis is the
    /// unit-stride / `threadIdx.x` axis on GPU.
    pub order: [Axis; 3],
    /// Whether K runs as a sequential loop (required for Forward/Backward;
    /// optional for Parallel, trading parallelism for locality).
    pub k_as_loop: bool,
    /// Tile sizes per axis (`[1,1,1]` = untiled); affects modeled cache
    /// behaviour on CPU targets.
    pub tile: [usize; 3],
    /// Region realization strategy.
    pub regions: RegionStrategy,
}

impl Schedule {
    /// The paper's tuned GPU schedule for horizontal stencils:
    /// `[Interval, Operation, K, J, I]` — K outermost of the spatial axes,
    /// I innermost (threadIdx.x).
    pub fn gpu_horizontal() -> Self {
        Schedule {
            target: Target::Gpu,
            order: [Axis::K, Axis::J, Axis::I],
            k_as_loop: false,
            tile: [1, 1, 1],
            regions: RegionStrategy::Predicated,
        }
    }

    /// The paper's tuned GPU schedule for vertical solvers:
    /// `[J, I, Interval, Operation, K]` — K innermost as a sequential
    /// loop, threads over the horizontal plane.
    pub fn gpu_vertical() -> Self {
        Schedule {
            target: Target::Gpu,
            order: [Axis::J, Axis::I, Axis::K],
            k_as_loop: true,
            tile: [1, 1, 1],
            regions: RegionStrategy::Predicated,
        }
    }

    /// The FORTRAN-style CPU schedule: K hoisted outermost (k-blocking),
    /// I innermost for vectorization.
    pub fn cpu_kblocked() -> Self {
        Schedule {
            target: Target::Cpu,
            order: [Axis::K, Axis::J, Axis::I],
            k_as_loop: true,
            tile: [1, 1, 1],
            regions: RegionStrategy::Predicated,
        }
    }

    /// A deliberately naive default (what you get before any optimization:
    /// the "GT4Py + DaCe (Default)" row of Table III): K-innermost thread
    /// axis, which conflicts with I-contiguous storage and uncoalesces
    /// every access.
    pub fn default_unoptimized() -> Self {
        Schedule {
            target: Target::Gpu,
            order: [Axis::I, Axis::J, Axis::K],
            k_as_loop: false,
            tile: [1, 1, 1],
            regions: RegionStrategy::Predicated,
        }
    }

    /// The innermost *parallel* (unit-stride / threadIdx.x) axis: when K
    /// runs as a sequential loop in the innermost position, the thread
    /// axis is the next one out (the paper's vertical-solver schedule
    /// `[J, I, Interval, Operation, K]` has I as threadIdx.x).
    pub fn inner_axis(&self) -> Axis {
        if self.k_as_loop && self.order[2] == Axis::K {
            self.order[1]
        } else {
            self.order[2]
        }
    }
}

/// An expanded map scope with statements, ready for execution and costing.
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// Label; stencil names seed transfer-tuning patterns ("stencils in
    /// FV3 are named", Section VI-B).
    pub name: String,
    /// Compute domain before per-statement extent expansion.
    pub domain: Domain,
    /// Vertical ordering.
    pub k_order: KOrder,
    /// Hardware mapping.
    pub schedule: Schedule,
    /// Statements in program order.
    pub stmts: Vec<Stmt>,
    /// Number of per-thread locals the statements reference.
    pub n_locals: usize,
    /// Fields register-cached across sequential K iterations by the
    /// local-storage transformation (Section VI-A2).
    pub cached_fields: Vec<DataId>,
}

/// One data-movement record: which container, read or written, how many
/// unique elements.
#[derive(Debug, Clone, PartialEq)]
pub struct Memlet {
    pub data: DataId,
    pub write: bool,
    /// Unique elements covered.
    pub elements: u64,
    /// Distinct relative offsets accessed (1 for writes).
    pub offsets: u32,
}

impl Kernel {
    /// Construct a kernel with no statements.
    pub fn new(name: impl Into<String>, domain: Domain, k_order: KOrder, schedule: Schedule) -> Self {
        let mut schedule = schedule;
        if k_order != KOrder::Parallel {
            // Loop-carried vertical dependencies force a sequential K loop.
            schedule.k_as_loop = true;
        }
        Kernel {
            name: name.into(),
            domain,
            k_order,
            schedule,
            stmts: Vec::new(),
            n_locals: 0,
            cached_fields: Vec::new(),
        }
    }

    /// All fields read by any statement (from global memory; reads of
    /// locals excluded), with offset hulls merged per field.
    pub fn reads(&self) -> Vec<(DataId, Vec<Offset3>)> {
        let mut map: std::collections::BTreeMap<DataId, Vec<Offset3>> = Default::default();
        for s in &self.stmts {
            for (d, o) in s.expr.loads() {
                let v = map.entry(d).or_default();
                if !v.contains(&o) {
                    v.push(o);
                }
            }
        }
        map.into_iter().collect()
    }

    /// All fields written by any statement.
    pub fn writes(&self) -> Vec<DataId> {
        let mut out: Vec<DataId> = Vec::new();
        for s in &self.stmts {
            if let LValue::Field(d) = s.lvalue {
                if !out.contains(&d) {
                    out.push(d);
                }
            }
        }
        out
    }

    /// Whether this kernel writes `data`.
    pub fn writes_data(&self, data: DataId) -> bool {
        self.stmts
            .iter()
            .any(|s| matches!(s.lvalue, LValue::Field(d) if d == data))
    }

    /// Whether this kernel reads `data`.
    pub fn reads_data(&self, data: DataId) -> bool {
        self.stmts.iter().any(|s| s.expr.reads(data))
    }

    /// Union of statement extents (the halo the kernel computes into).
    pub fn max_extent(&self) -> Extent2 {
        self.stmts
            .iter()
            .fold(Extent2::ZERO, |acc, s| acc.union(&s.extent))
    }

    /// True when every statement covers the full domain with no region.
    pub fn is_uniform(&self) -> bool {
        self.stmts
            .iter()
            .all(|s| s.region.is_none() && s.k_range == AxisInterval::FULL)
    }

    /// Data-movement records for this kernel (the "exact ranges" query).
    pub fn memlets(&self) -> Vec<Memlet> {
        let mut out = Vec::new();
        for (d, offs) in self.reads() {
            // Unique elements: domain grown by the offset hull (every
            // element accessed once, as in the paper's bounds script).
            let (mut ilo, mut ihi, mut jlo, mut jhi, mut klo, mut khi) = (0i64, 0, 0, 0, 0, 0);
            for o in &offs {
                ilo = ilo.min(o.i as i64);
                ihi = ihi.max(o.i as i64);
                jlo = jlo.min(o.j as i64);
                jhi = jhi.max(o.j as i64);
                klo = klo.min(o.k as i64);
                khi = khi.max(o.k as i64);
            }
            let ext = self.max_extent();
            let grown = ext
                .grow(&self.domain)
                .grown([-ilo, -jlo, -klo], [ihi, jhi, khi]);
            out.push(Memlet {
                data: d,
                write: false,
                elements: grown.volume(),
                offsets: offs.len() as u32,
            });
        }
        for d in self.writes() {
            // Written region: union of statement application areas;
            // conservatively the extent-grown domain restricted to the
            // widest statement writing d.
            let mut elements = 0u64;
            for s in &self.stmts {
                if matches!(s.lvalue, LValue::Field(x) if x == d) {
                    elements = elements.max(s.points(&self.domain));
                }
            }
            out.push(Memlet {
                data: d,
                write: true,
                elements,
                offsets: 1,
            });
        }
        out
    }

    /// Number of parallel work items under the schedule.
    pub fn threads(&self) -> u64 {
        if self.domain.is_empty() {
            return 0;
        }
        let h = self.domain.horizontal_points();
        if self.schedule.k_as_loop || self.k_order != KOrder::Parallel {
            h
        } else {
            h * self.domain.len(Axis::K).max(1) as u64
        }
    }

    /// Per-slab working set in bytes for CPU cache modeling: one K plane of
    /// every accessed field.
    pub fn slab_working_set(&self) -> u64 {
        let h = self.domain.horizontal_points();
        let nfields = (self.reads().len() + self.writes().len()) as u64;
        h * nfields * 8
    }

    /// Build the [`KernelProfile`] consumed by the machine models.
    ///
    /// `layout_of` resolves each container's layout so coalescing can be
    /// judged against the schedule's innermost axis.
    pub fn profile(&self, layout_of: &impl Fn(DataId) -> Layout) -> KernelProfile {
        let mut bytes_read = 0u64;
        let mut bytes_written = 0u64;
        let mut coal_num = 0f64;
        let mut coal_den = 0f64;
        let inner = self.schedule.inner_axis();
        for m in self.memlets() {
            let cached = self.cached_fields.contains(&m.data);
            // Redundancy: without register caching, each distinct offset
            // re-touches the line; unique counting is the lower bound the
            // local-storage transformation approaches.
            let mult = if cached || m.write {
                1.0
            } else {
                1.0 + 0.15 * (m.offsets.saturating_sub(1)) as f64
            };
            let bytes = (m.elements as f64 * 8.0 * mult) as u64;
            if m.write {
                bytes_written += bytes;
            } else {
                bytes_read += bytes;
            }
            let layout = layout_of(m.data);
            let coalesced = layout.contiguous_axis() == inner;
            coal_num += if coalesced { bytes as f64 } else { 0.0 };
            coal_den += bytes as f64;
        }
        // Predicated regions fetch full-domain cache lines for every
        // operand of the edge statement even though only the edge cells
        // contribute; split kernels pay only the region volume but an
        // extra launch (the executor counts launches).
        if self.schedule.regions == RegionStrategy::Predicated {
            for s in &self.stmts {
                if s.region.is_some() {
                    let full = self.domain.volume();
                    let actual = s.points(&self.domain);
                    let operands = (s.expr.loads().len() + 1) as u64;
                    let waste = full.saturating_sub(actual) * 8 * operands;
                    bytes_read += waste;
                    coal_den += waste as f64;
                    coal_num += waste as f64; // wasted lines are sequential
                }
            }
        }

        let mut flops = 0u64;
        let mut transcendentals = 0u64;
        for s in &self.stmts {
            let pts = s.points(&self.domain);
            flops += pts * s.expr.flops();
            transcendentals += pts * s.expr.transcendentals();
        }

        KernelProfile {
            bytes_read,
            bytes_written,
            flops,
            threads: self.threads(),
            work_per_thread: if self.schedule.k_as_loop {
                self.domain.len(Axis::K).max(1) as u64
            } else {
                1
            },
            coalescing: if coal_den == 0.0 { 1.0 } else { coal_num / coal_den },
            transcendentals,
        }
    }
}

/// Helper: a default layout resolver for tests (I-contiguous, matching the
/// kernel's domain with a 3-cell halo).
pub fn test_layout(domain: [usize; 3]) -> impl Fn(DataId) -> Layout {
    move |_| Layout::new(domain, [3, 3, 1], StorageOrder::IContiguous, 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ParamId;

    fn laplacian_kernel(n: usize) -> Kernel {
        // out = -4*in + in[-1] + in[+1] + in[j-1] + in[j+1]
        let mut k = Kernel::new(
            "laplacian",
            Domain::from_shape([n, n, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let inp = DataId(0);
        let e = Expr::c(-4.0) * Expr::load(inp, 0, 0, 0)
            + Expr::load(inp, -1, 0, 0)
            + Expr::load(inp, 1, 0, 0)
            + Expr::load(inp, 0, -1, 0)
            + Expr::load(inp, 0, 1, 0);
        k.stmts.push(Stmt::full(LValue::Field(DataId(1)), e));
        k
    }

    #[test]
    fn domain_arithmetic() {
        let d = Domain::from_shape([8, 6, 4]);
        assert_eq!(d.volume(), 192);
        assert_eq!(d.horizontal_points(), 48);
        assert_eq!(d.len(Axis::K), 4);
        let g = d.grown([1, 1, 0], [2, 0, 0]);
        assert_eq!(g.start, [-1, -1, 0]);
        assert_eq!(g.end, [10, 6, 4]);
        assert_eq!(g.intersect(&d), d);
        assert!(!d.is_empty());
        let e = Domain {
            start: [0, 0, 0],
            end: [0, 5, 5],
        };
        assert!(e.is_empty());
        assert_eq!(e.volume(), 0);
    }

    #[test]
    fn anchors_resolve_and_clamp() {
        let iv = AxisInterval::new(Anchor::Start(1), Anchor::End(-1));
        assert_eq!(iv.resolve(0, 10), (1, 9));
        assert_eq!(AxisInterval::FULL.resolve(2, 7), (2, 7));
        assert_eq!(AxisInterval::at_start(0).resolve(0, 10), (0, 1));
        assert_eq!(AxisInterval::at_end(-1).resolve(0, 10), (9, 10));
        // Degenerate: hi below lo clamps to empty.
        let bad = AxisInterval::new(Anchor::Start(5), Anchor::Start(2));
        let (lo, hi) = bad.resolve(0, 10);
        assert!(hi >= lo);
        assert_eq!(hi - lo, 0);
    }

    #[test]
    fn region_points() {
        let d = Domain::from_shape([10, 8, 4]);
        let edge = Region2 {
            i: AxisInterval::FULL,
            j: AxisInterval::at_start(0),
        };
        assert_eq!(edge.points(&d), 10);
        assert_eq!(Region2::FULL.points(&d), 80);
    }

    #[test]
    fn extent_union_and_shift() {
        let a = Extent2 {
            i_lo: 1,
            i_hi: 0,
            j_lo: 0,
            j_hi: 2,
        };
        let b = Extent2 {
            i_lo: 0,
            i_hi: 3,
            j_lo: 1,
            j_hi: 0,
        };
        let u = a.union(&b);
        assert_eq!(
            u,
            Extent2 {
                i_lo: 1,
                i_hi: 3,
                j_lo: 1,
                j_hi: 2
            }
        );
        let s = Extent2::ZERO.shifted_by(Offset3::new(-2, 1, 0));
        assert_eq!(s.i_lo, 2);
        assert_eq!(s.j_hi, 1);
    }

    #[test]
    fn stmt_points_respect_interval_and_region() {
        let d = Domain::from_shape([10, 10, 8]);
        let mut s = Stmt::full(LValue::Field(DataId(0)), Expr::c(1.0));
        assert_eq!(s.points(&d), 800);
        s.k_range = AxisInterval::new(Anchor::Start(1), Anchor::End(0));
        assert_eq!(s.points(&d), 700);
        s.region = Some(Region2 {
            i: AxisInterval::at_start(0),
            j: AxisInterval::FULL,
        });
        assert_eq!(s.points(&d), 70);
    }

    #[test]
    fn kernel_reads_writes_and_memlets() {
        let k = laplacian_kernel(16);
        let reads = k.reads();
        assert_eq!(reads.len(), 1);
        assert_eq!(reads[0].1.len(), 5);
        assert_eq!(k.writes(), vec![DataId(1)]);
        let memlets = k.memlets();
        assert_eq!(memlets.len(), 2);
        let read = memlets.iter().find(|m| !m.write).unwrap();
        // hull grows 1 cell each horizontal direction: 18*18*4
        assert_eq!(read.elements, 18 * 18 * 4);
        let write = memlets.iter().find(|m| m.write).unwrap();
        assert_eq!(write.elements, 16 * 16 * 4);
    }

    #[test]
    fn vertical_kernel_forces_k_loop_and_2d_threads() {
        let k = Kernel::new(
            "tridiag",
            Domain::from_shape([32, 32, 80]),
            KOrder::Forward,
            Schedule::gpu_horizontal(), // k_as_loop=false, must be forced
        );
        assert!(k.schedule.k_as_loop);
        assert_eq!(k.threads(), 32 * 32);
    }

    #[test]
    fn parallel_kernel_exposes_3d_threads() {
        let k = laplacian_kernel(16);
        assert_eq!(k.threads(), 16 * 16 * 4);
    }

    #[test]
    fn profile_counts_bytes_and_flops() {
        let k = laplacian_kernel(16);
        let p = k.profile(&test_layout([16, 16, 4]));
        assert!(p.bytes_read >= 18 * 18 * 4 * 8);
        assert_eq!(p.bytes_written, 16 * 16 * 4 * 8);
        // 5 loads -> 4 adds + 1 mul = 5 flops per point
        assert_eq!(p.flops, 16 * 16 * 4 * 5);
        assert_eq!(p.transcendentals, 0);
        assert!(p.coalescing > 0.99, "I-contiguous + I-inner = coalesced");
    }

    #[test]
    fn k_inner_schedule_uncoalesces_i_contiguous_fields() {
        let mut k = laplacian_kernel(16);
        k.schedule = Schedule::default_unoptimized(); // K innermost
        let p = k.profile(&test_layout([16, 16, 4]));
        assert!(p.coalescing < 0.01);
    }

    #[test]
    fn register_caching_reduces_read_traffic() {
        let mut k = laplacian_kernel(16);
        let uncached = k.profile(&test_layout([16, 16, 4])).bytes_read;
        k.cached_fields.push(DataId(0));
        let cached = k.profile(&test_layout([16, 16, 4])).bytes_read;
        assert!(cached < uncached);
    }

    #[test]
    fn predicated_region_wastes_traffic_vs_split() {
        let d = Domain::from_shape([64, 64, 8]);
        let mut k = Kernel::new("edge", d, KOrder::Parallel, Schedule::gpu_horizontal());
        k.stmts.push(Stmt {
            lvalue: LValue::Field(DataId(1)),
            expr: Expr::load(DataId(0), 0, 0, 0) * Expr::Param(ParamId(0)),
            k_range: AxisInterval::FULL,
            region: Some(Region2 {
                i: AxisInterval::FULL,
                j: AxisInterval::at_start(0),
            }),
            extent: Extent2::ZERO,
        });
        let pred = k.profile(&test_layout([64, 64, 8]));
        let mut split = k.clone();
        split.schedule.regions = RegionStrategy::SplitKernels;
        let sp = split.profile(&test_layout([64, 64, 8]));
        assert!(pred.bytes_read > sp.bytes_read);
    }

    #[test]
    fn slab_working_set_counts_fields() {
        let k = laplacian_kernel(128);
        // 2 fields x 128^2 x 8 bytes
        assert_eq!(k.slab_working_set(), 2 * 128 * 128 * 8);
    }
}
