//! Human-readable dumps of SDFGs and model reports: Graphviz `dot` for
//! the graph structure (the paper's interactive VS Code workflow analog)
//! and fixed-width tables for model output.

use crate::graph::{ControlNode, DataflowNode, Sdfg};
use crate::model::ModelReport;
use crate::profile::ProfileReport;
use std::fmt::Write;

/// Render the SDFG as a Graphviz digraph: one cluster per state, nodes in
/// program order, transient containers dashed.
pub fn to_dot(sdfg: &Sdfg) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", sdfg.name);
    let _ = writeln!(out, "  rankdir=TB; node [fontsize=10];");
    for (si, state) in sdfg.states.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{si} {{");
        let _ = writeln!(out, "    label=\"{}\";", state.name);
        let mut prev: Option<String> = None;
        for (ni, node) in state.nodes.iter().enumerate() {
            let id = format!("s{si}n{ni}");
            let (label, shape) = match node {
                DataflowNode::Kernel(k) => (
                    format!("{} [{} stmts]", k.name, k.stmts.len()),
                    "box",
                ),
                DataflowNode::Library(l) => (format!("Library {}", l.label()), "component"),
                DataflowNode::Copy { src, dst } => {
                    (format!("copy {} -> {}", sdfg.containers[src.0].name, sdfg.containers[dst.0].name), "oval")
                }
                DataflowNode::HaloExchange { fields } => {
                    (format!("halo x{}", fields.len()), "hexagon")
                }
                DataflowNode::Callback { name, .. } => (format!("callback {name}"), "doubleoctagon"),
            };
            let _ = writeln!(out, "    {id} [label=\"{label}\", shape={shape}];");
            if let Some(p) = prev {
                let _ = writeln!(out, "    {p} -> {id};");
            }
            prev = Some(id);
        }
        let _ = writeln!(out, "  }}");
    }
    let _ = writeln!(out, "}}");
    out
}

/// Render the control tree as indented text.
pub fn control_tree(sdfg: &Sdfg) -> String {
    fn walk(nodes: &[ControlNode], sdfg: &Sdfg, depth: usize, out: &mut String) {
        for n in nodes {
            match n {
                ControlNode::State(s) => {
                    let _ = writeln!(out, "{}state {} ({})", "  ".repeat(depth), s, sdfg.states[*s].name);
                }
                ControlNode::Loop { trips, body } => {
                    let _ = writeln!(out, "{}loop x{trips}", "  ".repeat(depth));
                    walk(body, sdfg, depth + 1, out);
                }
            }
        }
    }
    let mut out = String::new();
    walk(&sdfg.control, sdfg, 0, &mut out);
    out
}

/// Render a model report as the Fig. 10-style table: kernel, invocations,
/// measured (modeled) time, bandwidth-bound peak time, % of peak.
pub fn model_table(report: &ModelReport, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>6} {:>12} {:>12} {:>7}",
        "kernel", "inv", "time[us]", "peak[us]", "%peak"
    );
    for k in report.ranked().into_iter().take(top) {
        let _ = writeln!(
            out,
            "{:<40} {:>6} {:>12.2} {:>12.2} {:>6.1}%",
            truncate(&k.name, 40),
            k.invocations,
            k.time_per_invocation * 1e6,
            k.memory_bound_time * 1e6,
            k.peak_fraction() * 100.0
        );
    }
    let _ = writeln!(
        out,
        "total kernel time: {:.3} ms over {} launches; comm {:.3} ms",
        report.total_time * 1e3,
        report.launches,
        report.comm_time * 1e3
    );
    out
}

/// Render a *measured* profile as a roofline table: top-N kernels by wall
/// time with achieved bandwidth and the fraction of the bandwidth bound
/// achieved against `attainable_bandwidth` (bytes/s). This is the
/// measured counterpart of [`model_table`]'s Fig. 10 ranking.
pub fn roofline_table(report: &ProfileReport, attainable_bandwidth: f64, top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<40} {:>6} {:>12} {:>10} {:>7}",
        "kernel", "inv", "time[us]", "GiB/s", "%bound"
    );
    let gib = 1024.0 * 1024.0 * 1024.0;
    for k in report.ranked().into_iter().take(top) {
        let _ = writeln!(
            out,
            "{:<40} {:>6} {:>12.2} {:>10.2} {:>6.1}%",
            truncate(&k.name, 40),
            k.invocations,
            k.wall_seconds * 1e6,
            k.achieved_bandwidth() / gib,
            k.roofline_fraction(attainable_bandwidth) * 100.0
        );
    }
    let _ = writeln!(
        out,
        "total kernel time: {:.3} ms over {} launches; achieved {:.2} GiB/s \
         ({:.1}% of bound); copy {:.3} ms, halo {:.3} ms, callbacks {:.3} ms",
        report.kernel_seconds * 1e3,
        report.launches,
        report.achieved_bandwidth() / gib,
        report.roofline_fraction(attainable_bandwidth) * 100.0,
        report.copy_seconds * 1e3,
        report.halo_seconds * 1e3,
        report.callback_seconds * 1e3
    );
    out
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::graph::State;
    use crate::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
    use crate::storage::{Layout, StorageOrder};

    fn sample() -> Sdfg {
        let mut g = Sdfg::new("sample");
        let l = Layout::new([4, 4, 2], [0, 0, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let t = g.add_container("tmp", l, true);
        let mut k = Kernel::new(
            "k0",
            Domain::from_shape([4, 4, 2]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts
            .push(Stmt::full(LValue::Field(t), Expr::load(a, 0, 0, 0)));
        let mut s = State::new("main");
        s.nodes.push(DataflowNode::Kernel(k));
        s.nodes.push(DataflowNode::HaloExchange { fields: vec![a] });
        g.add_state(s);
        g.control = vec![crate::graph::ControlNode::Loop {
            trips: 2,
            body: vec![crate::graph::ControlNode::State(0)],
        }];
        g
    }

    #[test]
    fn dot_contains_nodes_and_clusters() {
        let d = to_dot(&sample());
        assert!(d.contains("digraph"));
        assert!(d.contains("cluster_0"));
        assert!(d.contains("k0"));
        assert!(d.contains("halo x1"));
    }

    #[test]
    fn control_tree_renders_loops() {
        let t = control_tree(&sample());
        assert!(t.contains("loop x2"));
        assert!(t.contains("state 0 (main)"));
    }

    #[test]
    fn model_table_renders() {
        use machine::{GpuModel, GpuSpec};
        let g = sample();
        let r = crate::model::model_sdfg(
            &g,
            &crate::model::CostModel::Gpu(GpuModel::new(GpuSpec::p100())),
            &|_| 1e-6,
        );
        let t = model_table(&r, 10);
        assert!(t.contains("k0"));
        assert!(t.contains("%peak"));
        assert!(t.contains("total kernel time"));
    }

    #[test]
    fn roofline_table_renders_measured_profile() {
        use crate::exec::{DataStore, Executor, NoHooks};
        use crate::profile::Profiler;
        let g = sample();
        let mut store = DataStore::for_sdfg(&g);
        let mut prof = Profiler::new();
        Executor::serial().run_profiled(&g, &mut store, &[], &mut NoHooks, &mut prof);
        let t = roofline_table(&prof.report(), 40.0e9, 10);
        assert!(t.contains("k0"));
        assert!(t.contains("%bound"));
        assert!(t.contains("achieved"));
    }

    #[test]
    fn truncate_handles_long_names() {
        assert_eq!(truncate("short", 10), "short");
        let long = "x".repeat(60);
        assert!(truncate(&long, 40).len() <= 42); // utf8 ellipsis
    }
}
