//! Concrete array storage with parametrized layout.
//!
//! Memory allocation in the paper (Section VI-A3, Fig. 8) is "parameterized
//! by several knobs": storage order (the FORTRAN I-contiguous layout "is
//! used since it generates wide loads on the largest dimension"), halo
//! padding, and pre-padding so that the first non-halo element is aligned
//! for coalesced access. [`Layout`] captures all three as data, so layout
//! decisions are schedule decisions, not code rewrites.

/// Axis identifiers for the three spatial dimensions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Axis {
    /// First horizontal dimension (east-west).
    I,
    /// Second horizontal dimension (north-south).
    J,
    /// Vertical dimension (pressure levels).
    K,
}

impl Axis {
    /// All axes in (I, J, K) order.
    pub const ALL: [Axis; 3] = [Axis::I, Axis::J, Axis::K];

    /// Index of this axis into `[i, j, k]`-ordered triples.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            Axis::I => 0,
            Axis::J => 1,
            Axis::K => 2,
        }
    }
}

/// Which axis is unit-stride (innermost) in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StorageOrder {
    /// FORTRAN layout: I is contiguous, K slowest. The paper's choice.
    IContiguous,
    /// C-like layout: K is contiguous, I slowest.
    KContiguous,
    /// J contiguous (useful for sweeps of the computational-layout space).
    JContiguous,
}

impl StorageOrder {
    /// Axes ordered from innermost (unit stride) to outermost.
    pub fn inner_to_outer(self) -> [Axis; 3] {
        match self {
            StorageOrder::IContiguous => [Axis::I, Axis::J, Axis::K],
            StorageOrder::KContiguous => [Axis::K, Axis::J, Axis::I],
            StorageOrder::JContiguous => [Axis::J, Axis::I, Axis::K],
        }
    }
}

/// A concrete memory layout for a 3-D field.
///
/// Logical coordinates are *domain-relative*: `(0, 0, 0)` is the first
/// compute (non-halo) point; negative indices down to `-halo` address the
/// halo. The flat offset of the first compute point is aligned to
/// `alignment` elements via pre-padding, reproducing Fig. 8.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Layout {
    /// Compute-domain extent per axis (without halo), `[ni, nj, nk]`.
    pub domain: [usize; 3],
    /// Halo width per axis, `[hi, hj, hk]`.
    pub halo: [usize; 3],
    /// Element strides per axis, `[si, sj, sk]`.
    pub strides: [usize; 3],
    /// Flat element offset of logical `(0, 0, 0)`.
    pub base: usize,
    /// Total elements to allocate (including halo, padding, pre-padding).
    pub len: usize,
    /// Storage order the strides were derived from.
    pub order: StorageOrder,
    /// Alignment (in elements) of the first compute point.
    pub alignment: usize,
}

impl Layout {
    /// Build a layout for `domain` compute points with `halo` cells per
    /// side, `order` storage order, and the first compute point aligned to
    /// `alignment` elements (`1` = no alignment padding).
    pub fn new(domain: [usize; 3], halo: [usize; 3], order: StorageOrder, alignment: usize) -> Self {
        assert!(alignment >= 1, "alignment must be at least 1 element");
        let padded = [
            domain[0] + 2 * halo[0],
            domain[1] + 2 * halo[1],
            domain[2] + 2 * halo[2],
        ];
        let mut strides = [0usize; 3];
        let mut stride = 1usize;
        for ax in order.inner_to_outer() {
            strides[ax.idx()] = stride;
            stride *= padded[ax.idx()];
        }
        let total = stride;
        // Flat offset of (0,0,0) without pre-padding.
        let origin: usize = (0..3).map(|d| halo[d] * strides[d]).sum();
        // Pre-pad so that the first compute point lands on an aligned
        // element (Fig. 8: "pre-padding [...] such that the first non-halo
        // element is aligned").
        let prepad = (alignment - origin % alignment) % alignment;
        Layout {
            domain,
            halo,
            strides,
            base: origin + prepad,
            len: total + prepad,
            order,
            alignment,
        }
    }

    /// Default FV3 layout: I-contiguous, 32-element alignment.
    pub fn fv3_default(domain: [usize; 3], halo: [usize; 3]) -> Self {
        Layout::new(domain, halo, StorageOrder::IContiguous, 32)
    }

    /// Flat index of logical `(i, j, k)` (may be negative into the halo).
    ///
    /// Debug builds check halo bounds; release builds rely on the executor
    /// iterating only valid extents.
    #[inline]
    pub fn offset(&self, i: i64, j: i64, k: i64) -> usize {
        debug_assert!(self.contains(i, j, k), "({i},{j},{k}) outside layout");
        let p = [i, j, k];
        let mut off = self.base as i64;
        for (x, s) in p.iter().zip(self.strides.iter()) {
            off += x * *s as i64;
        }
        off as usize
    }

    /// Whether logical `(i, j, k)` addresses an allocated element.
    #[inline]
    pub fn contains(&self, i: i64, j: i64, k: i64) -> bool {
        let p = [i, j, k];
        (0..3).all(|d| p[d] >= -(self.halo[d] as i64) && p[d] < (self.domain[d] + self.halo[d]) as i64)
    }

    /// Stride of `axis` in elements.
    #[inline]
    pub fn stride(&self, axis: Axis) -> usize {
        self.strides[axis.idx()]
    }

    /// The unit-stride axis.
    pub fn contiguous_axis(&self) -> Axis {
        self.order.inner_to_outer()[0]
    }

    /// Number of compute-domain elements (excluding halo).
    pub fn domain_len(&self) -> usize {
        self.domain.iter().product()
    }
}

/// A 3-D field of `f64` with an explicit [`Layout`].
#[derive(Debug, Clone, PartialEq)]
pub struct Array3 {
    data: Vec<f64>,
    layout: Layout,
}

impl Array3 {
    /// Allocate a zero-filled array with the given layout.
    pub fn zeros(layout: Layout) -> Self {
        Array3 {
            data: vec![0.0; layout.len],
            layout,
        }
    }

    /// Allocate with every element (halo included) set to `value`.
    pub fn filled(layout: Layout, value: f64) -> Self {
        Array3 {
            data: vec![value; layout.len],
            layout,
        }
    }

    /// Allocate and initialize compute-domain elements from a function of
    /// the logical coordinates. Halo stays zero.
    pub fn from_fn(layout: Layout, f: impl Fn(i64, i64, i64) -> f64) -> Self {
        let mut a = Array3::zeros(layout);
        let [ni, nj, nk] = a.layout.domain;
        for k in 0..nk as i64 {
            for j in 0..nj as i64 {
                for i in 0..ni as i64 {
                    a.set(i, j, k, f(i, j, k));
                }
            }
        }
        a
    }

    /// The layout.
    #[inline]
    pub fn layout(&self) -> &Layout {
        &self.layout
    }

    /// Read logical `(i, j, k)`.
    #[inline]
    pub fn get(&self, i: i64, j: i64, k: i64) -> f64 {
        self.data[self.layout.offset(i, j, k)]
    }

    /// Write logical `(i, j, k)`.
    #[inline]
    pub fn set(&mut self, i: i64, j: i64, k: i64, v: f64) {
        let off = self.layout.offset(i, j, k);
        self.data[off] = v;
    }

    /// Raw storage (including halo and padding).
    pub fn raw(&self) -> &[f64] {
        &self.data
    }

    /// Mutable raw storage.
    pub fn raw_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Copy every element (halo included) from `src`, which must share the
    /// same layout.
    pub fn copy_from(&mut self, src: &Array3) {
        assert_eq!(self.layout, src.layout, "layout mismatch in copy_from");
        self.data.copy_from_slice(&src.data);
    }

    /// Maximum absolute difference over the compute domain.
    pub fn max_abs_diff(&self, other: &Array3) -> f64 {
        assert_eq!(self.layout.domain, other.layout().domain);
        let [ni, nj, nk] = self.layout.domain;
        let mut m = 0.0f64;
        for k in 0..nk as i64 {
            for j in 0..nj as i64 {
                for i in 0..ni as i64 {
                    m = m.max((self.get(i, j, k) - other.get(i, j, k)).abs());
                }
            }
        }
        m
    }

    /// Export every element (halo included) in canonical *logical* order:
    /// k outermost, then j, then i innermost, each spanning
    /// `[-halo, domain + halo)`. The result is independent of the storage
    /// order, alignment, and padding of this array's [`Layout`], so two
    /// arrays holding the same logical values export identical vectors —
    /// the property savepoint serialization relies on.
    pub fn export_logical(&self) -> Vec<f64> {
        let [ni, nj, nk] = self.layout.domain;
        let [hi, hj, hk] = self.layout.halo;
        let mut out = Vec::with_capacity((ni + 2 * hi) * (nj + 2 * hj) * (nk + 2 * hk));
        for k in -(hk as i64)..(nk + hk) as i64 {
            for j in -(hj as i64)..(nj + hj) as i64 {
                for i in -(hi as i64)..(ni + hi) as i64 {
                    out.push(self.get(i, j, k));
                }
            }
        }
        out
    }

    /// Inverse of [`Array3::export_logical`]: fill every element (halo
    /// included) from `values` in canonical logical order. `values` must
    /// have exactly one element per logical coordinate.
    pub fn import_logical(&mut self, values: &[f64]) {
        let [ni, nj, nk] = self.layout.domain;
        let [hi, hj, hk] = self.layout.halo;
        let expect = (ni + 2 * hi) * (nj + 2 * hj) * (nk + 2 * hk);
        assert_eq!(
            values.len(),
            expect,
            "import_logical: {} values for a {expect}-element logical extent",
            values.len()
        );
        let mut it = values.iter();
        for k in -(hk as i64)..(nk + hk) as i64 {
            for j in -(hj as i64)..(nj + hj) as i64 {
                for i in -(hi as i64)..(ni + hi) as i64 {
                    self.set(i, j, k, *it.next().unwrap());
                }
            }
        }
    }

    /// True when every *logical* element (halo included) is finite.
    ///
    /// Scanning `raw()` instead is layout-dependent: alignment padding
    /// and storage-order striding put physical elements in the slice
    /// that no logical coordinate maps to, so the answer would change
    /// with the array's [`Layout`] rather than its contents.
    pub fn all_finite(&self) -> bool {
        let [ni, nj, nk] = self.layout.domain;
        let [hi, hj, hk] = self.layout.halo;
        for k in -(hk as i64)..(nk + hk) as i64 {
            for j in -(hj as i64)..(nj + hj) as i64 {
                for i in -(hi as i64)..(ni + hi) as i64 {
                    if !self.get(i, j, k).is_finite() {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Sum over the compute domain (for conservation checks).
    pub fn domain_sum(&self) -> f64 {
        let [ni, nj, nk] = self.layout.domain;
        let mut s = 0.0f64;
        for k in 0..nk as i64 {
            for j in 0..nj as i64 {
                for i in 0..ni as i64 {
                    s += self.get(i, j, k);
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_contiguous_has_unit_i_stride() {
        let l = Layout::new([8, 6, 4], [3, 3, 0], StorageOrder::IContiguous, 1);
        assert_eq!(l.stride(Axis::I), 1);
        assert_eq!(l.stride(Axis::J), 8 + 6);
        assert_eq!(l.stride(Axis::K), (8 + 6) * (6 + 6));
        assert_eq!(l.contiguous_axis(), Axis::I);
    }

    #[test]
    fn k_contiguous_has_unit_k_stride() {
        let l = Layout::new([8, 6, 4], [1, 1, 0], StorageOrder::KContiguous, 1);
        assert_eq!(l.stride(Axis::K), 1);
        assert_eq!(l.contiguous_axis(), Axis::K);
    }

    #[test]
    fn alignment_prepads_first_compute_point() {
        for align in [1usize, 8, 32, 64] {
            let l = Layout::new([19, 7, 5], [3, 3, 1], StorageOrder::IContiguous, align);
            assert_eq!(l.base % align, 0, "align {align}");
            assert!(l.len >= l.base);
        }
    }

    #[test]
    fn offsets_are_unique_within_allocation() {
        // The layout must be a bijection from logical coords to flat
        // offsets (no aliasing), for every storage order.
        for order in [
            StorageOrder::IContiguous,
            StorageOrder::KContiguous,
            StorageOrder::JContiguous,
        ] {
            let l = Layout::new([5, 4, 3], [2, 1, 0], order, 16);
            let mut seen = std::collections::HashSet::new();
            for k in 0..3i64 {
                for j in -1..5i64 {
                    for i in -2..7i64 {
                        let off = l.offset(i, j, k);
                        assert!(off < l.len);
                        assert!(seen.insert(off), "aliasing at ({i},{j},{k})");
                    }
                }
            }
        }
    }

    #[test]
    fn all_finite_ignores_physical_padding() {
        // Regression: finiteness checks must scan logical coordinates,
        // not `raw()`. With alignment padding, physical slots exist that
        // no logical coordinate maps to; poisoning every such slot with
        // NaN must not change the answer for any storage order.
        for order in [
            StorageOrder::IContiguous,
            StorageOrder::KContiguous,
            StorageOrder::JContiguous,
        ] {
            let l = Layout::new([5, 4, 3], [2, 1, 0], order, 32);
            let mut a = Array3::filled(l.clone(), 1.0);
            let logical: std::collections::HashSet<usize> = {
                let mut s = std::collections::HashSet::new();
                for k in 0..3i64 {
                    for j in -1..5i64 {
                        for i in -2..7i64 {
                            s.insert(l.offset(i, j, k));
                        }
                    }
                }
                s
            };
            assert!(
                logical.len() < a.raw().len(),
                "layout must actually have padding for this test to bite"
            );
            for (off, v) in a.raw_mut().iter_mut().enumerate() {
                if !logical.contains(&off) {
                    *v = f64::NAN;
                }
            }
            assert!(a.all_finite(), "{order:?}: padding NaNs leaked");
            a.set(2, 2, 1, f64::INFINITY);
            assert!(!a.all_finite(), "{order:?}: real non-finite missed");
        }
    }

    #[test]
    fn halo_is_addressable() {
        let l = Layout::fv3_default([12, 12, 8], [3, 3, 0]);
        assert!(l.contains(-3, -3, 0));
        assert!(l.contains(14, 14, 7));
        assert!(!l.contains(-4, 0, 0));
        assert!(!l.contains(0, 0, 8));
    }

    #[test]
    fn array_roundtrip_and_sum() {
        let l = Layout::fv3_default([4, 3, 2], [1, 1, 0]);
        let mut a = Array3::zeros(l);
        a.set(0, 0, 0, 2.5);
        a.set(3, 2, 1, -1.5);
        a.set(-1, -1, 0, 99.0); // halo; not in domain_sum
        assert_eq!(a.get(0, 0, 0), 2.5);
        assert_eq!(a.get(3, 2, 1), -1.5);
        assert_eq!(a.domain_sum(), 1.0);
    }

    #[test]
    fn from_fn_fills_domain() {
        let l = Layout::fv3_default([3, 3, 3], [1, 1, 1]);
        let a = Array3::from_fn(l, |i, j, k| (i + 10 * j + 100 * k) as f64);
        assert_eq!(a.get(2, 1, 0), 12.0);
        assert_eq!(a.get(0, 0, 2), 200.0);
        assert_eq!(a.get(-1, 0, 0), 0.0);
    }

    #[test]
    fn max_abs_diff_detects_differences() {
        let l = Layout::fv3_default([4, 4, 4], [0, 0, 0]);
        let a = Array3::from_fn(l.clone(), |i, _, _| i as f64);
        let mut b = a.clone();
        assert_eq!(a.max_abs_diff(&b), 0.0);
        b.set(2, 3, 1, 100.0);
        assert!((a.max_abs_diff(&b) - 98.0).abs() < 1e-12);
    }

    #[test]
    fn export_import_roundtrips_across_storage_orders() {
        // Logical export must not depend on the memory layout, and
        // import must restore every element (halo included) bitwise.
        let f = |i: i64, j: i64, k: i64| 0.1 + i as f64 * 1.25 - j as f64 * 0.75 + k as f64;
        let fill = |a: &mut Array3| {
            let [ni, nj, nk] = a.layout().domain;
            let [hi, hj, hk] = a.layout().halo;
            for k in -(hk as i64)..(nk + hk) as i64 {
                for j in -(hj as i64)..(nj + hj) as i64 {
                    for i in -(hi as i64)..(ni + hi) as i64 {
                        a.set(i, j, k, f(i, j, k));
                    }
                }
            }
        };
        let li = Layout::new([5, 4, 3], [2, 1, 0], StorageOrder::IContiguous, 32);
        let lk = Layout::new([5, 4, 3], [2, 1, 0], StorageOrder::KContiguous, 1);
        let mut a = Array3::zeros(li.clone());
        let mut b = Array3::zeros(lk);
        fill(&mut a);
        fill(&mut b);
        let ea = a.export_logical();
        assert_eq!(ea.len(), (5 + 4) * (4 + 2) * 3);
        assert_eq!(ea, b.export_logical(), "export is layout-independent");

        let mut c = Array3::zeros(li);
        c.import_logical(&ea);
        for k in 0..3i64 {
            for j in -1..5i64 {
                for i in -2..7i64 {
                    assert_eq!(c.get(i, j, k).to_bits(), f(i, j, k).to_bits());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "import_logical")]
    fn import_rejects_wrong_length() {
        let mut a = Array3::zeros(Layout::fv3_default([4, 4, 2], [1, 1, 0]));
        a.import_logical(&[0.0; 3]);
    }

    #[test]
    fn layouts_with_same_domain_different_order_hold_same_data() {
        let li = Layout::new([6, 5, 4], [2, 2, 1], StorageOrder::IContiguous, 32);
        let lk = Layout::new([6, 5, 4], [2, 2, 1], StorageOrder::KContiguous, 32);
        let f = |i: i64, j: i64, k: i64| (3 * i - 7 * j + k) as f64;
        let a = Array3::from_fn(li, f);
        let b = Array3::from_fn(lk, f);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }
}
