//! Interior/rind program splitting for compute/communication overlap.
//!
//! A distributed acoustic substep has the shape `halo exchange → kernels
//! → suffix` (copies, callbacks). To hide the exchange behind compute,
//! [`split_for_overlap`] derives two programs from the expanded SDFG:
//!
//! * **interior** — the leading kernel chain restricted to columns far
//!   enough from the subdomain edge that no transitive read reaches a
//!   halo cell. It is valid to run *before* the exchange completes.
//! * **rind** — the same kernels restricted to the remaining boundary
//!   columns, followed by the untouched suffix nodes. It runs after the
//!   exchange has been unpacked.
//!
//! Running `interior` then `rind` on one store is **bit-identical** to
//! running the original program, because the scalar/lane VMs iterate
//! per-column with statements in program order and
//! [`validate_kernel`](crate::exec::validate_kernel) guarantees no kernel
//! reads a field it writes at a horizontal offset — so any column
//! partition that (a) keeps each column's statements in one program and
//! (b) respects cross-kernel data dependencies reproduces the exact same
//! sequence of operations per column. Condition (a) holds because every
//! statement of one kernel splits at that kernel's own interior box;
//! condition (b) is the margin recurrence below.
//!
//! **Margins.** Let `r_m` be kernel `m`'s read radius (max |i|,|j| over
//! its loads) and `R_m` its interior margin (box `[R_m, n-R_m)²`). The
//! recurrence
//!
//! ```text
//! R_1 = r_1,   R_{m+1} = R_m + max(r_m, r_{m+1})
//! ```
//!
//! guarantees, for every pair `l < m`:
//! * *no halo reads*: `R_m ≥ r_m`, so interior reads stay inside the
//!   owned subdomain — stale pre-exchange halos are never consumed;
//! * *flow*: `R_m ≥ R_l + r_m`, so everything interior kernel `m` reads
//!   of kernel `l`'s output was already computed by `l`'s interior part;
//! * *anti*: `R_m ≥ R_l + r_l`, so kernel `m`'s interior writes never
//!   clobber values kernel `l`'s rind part still has to read (`l`'s rind
//!   reads reach only `R_l + r_l - 1` columns in);
//! * *output*: interior and rind column sets are disjoint per kernel.
//!
//! When `2·R_m ≥ n` a kernel's interior box is empty: the cut points are
//! clamped (`b_hi = max(b_hi, b_lo)`) so the W/E strips still partition
//! each row exactly once, the split stays correct (everything lands in
//! the rind) but hides nothing — the driver reports zero overlap for
//! such resolutions (e.g. c8 with halo-4 stencils) and real overlap at
//! c48 and up.

use crate::graph::{DataflowNode, Sdfg};
use crate::kernel::{Anchor, AxisInterval, Extent2, Kernel, Region2, Stmt};
use crate::DataId;

/// The derived interior and rind programs (see module docs).
#[derive(Debug, Clone)]
pub struct SplitPrograms {
    /// Leading kernels clipped to their interior boxes; safe to run
    /// before the halo exchange lands. Shares the source's containers.
    pub interior: Sdfg,
    /// Boundary strips of the leading kernels plus the original suffix
    /// nodes; runs after unpack.
    pub rind: Sdfg,
    /// Fields of the leading halo-exchange marker (what the driver must
    /// exchange for this program).
    pub exchanged: Vec<DataId>,
    /// Per-prefix-kernel interior margins `R_m`.
    pub margins: Vec<i64>,
    /// Leading kernels split (the overlap-eligible prefix).
    pub n_prefix: usize,
    /// Total horizontal interior points across prefix kernels; zero means
    /// the resolution is too small for this stencil chain to overlap.
    pub interior_points: u64,
}

impl SplitPrograms {
    /// Whether any compute can actually run ahead of the exchange.
    pub fn has_interior(&self) -> bool {
        self.interior_points > 0
    }
}

/// Max horizontal read radius of a kernel.
fn read_radius(k: &Kernel) -> i64 {
    let mut r = 0i64;
    for s in &k.stmts {
        for (_, o) in s.expr.loads() {
            r = r.max(o.i.unsigned_abs() as i64).max(o.j.unsigned_abs() as i64);
        }
    }
    r
}

/// Resolve a statement's horizontal bounds exactly as
/// `exec::compile_kernel` does.
fn stmt_bounds(k: &Kernel, s: &Stmt) -> (i64, i64, i64, i64) {
    let dom = k.domain;
    let grown = s.extent.grow(&dom);
    match &s.region {
        Some(r) => {
            let (il, ih) = r.i.resolve(dom.start[0], dom.end[0]);
            let (jl, jh) = r.j.resolve(dom.start[1], dom.end[1]);
            (il, ih, jl, jh)
        }
        None => (grown.start[0], grown.end[0], grown.start[1], grown.end[1]),
    }
}

/// An absolute horizontal rectangle `[il, ih) × [jl, jh)`.
#[derive(Debug, Clone, Copy)]
struct Rect {
    il: i64,
    ih: i64,
    jl: i64,
    jh: i64,
}

impl Rect {
    fn is_empty(&self) -> bool {
        self.ih <= self.il || self.jh <= self.jl
    }
    fn points(&self) -> u64 {
        if self.is_empty() {
            0
        } else {
            ((self.ih - self.il) * (self.jh - self.jl)) as u64
        }
    }
}

/// Rebuild a kernel from `(stmt, rect)` restrictions: the new kernel's
/// horizontal domain is the hull of the rectangles (so the anchored
/// regions below resolve without clamping), the vertical domain is
/// untouched (statement `k_range`s must keep their anchors), and each
/// statement carries its rectangle as an absolute `Region2`.
fn kernel_from_rects(k: &Kernel, suffix: &str, parts: &[(usize, Rect)]) -> Option<Kernel> {
    if parts.is_empty() {
        return None;
    }
    let hull = parts.iter().fold(
        Rect {
            il: i64::MAX,
            ih: i64::MIN,
            jl: i64::MAX,
            jh: i64::MIN,
        },
        |h, (_, r)| Rect {
            il: h.il.min(r.il),
            ih: h.ih.max(r.ih),
            jl: h.jl.min(r.jl),
            jh: h.jh.max(r.jh),
        },
    );
    let mut out = k.clone();
    out.name = format!("{}{}", k.name, suffix);
    out.domain.start[0] = hull.il;
    out.domain.end[0] = hull.ih;
    out.domain.start[1] = hull.jl;
    out.domain.end[1] = hull.jh;
    out.stmts = parts
        .iter()
        .map(|(si, r)| {
            let s = &k.stmts[*si];
            Stmt {
                lvalue: s.lvalue,
                expr: s.expr.clone(),
                k_range: s.k_range,
                region: Some(Region2 {
                    i: AxisInterval::new(
                        Anchor::Start((r.il - hull.il) as i32),
                        Anchor::Start((r.ih - hull.il) as i32),
                    ),
                    j: AxisInterval::new(
                        Anchor::Start((r.jl - hull.jl) as i32),
                        Anchor::Start((r.jh - hull.jl) as i32),
                    ),
                }),
                extent: Extent2::ZERO,
            }
        })
        .collect();
    Some(out)
}

/// Split `k` at the interior box `[b_lo, b_hi)²` into (interior, rind)
/// kernels. Strip order per statement (W, E, S, N) keeps each column's
/// statement subsequence in original program order — the four strips of
/// one statement are pairwise disjoint.
fn split_kernel(k: &Kernel, b_lo: i64, b_hi: i64) -> (Option<Kernel>, Option<Kernel>) {
    // When the interior box is inverted (2·R > n) the cut points cross;
    // clamping keeps the W/E strips a partition of each row. Without
    // this, [b_hi, b_lo) lands in both strips and in-place statements
    // (x = x + y) double-apply there, breaking bit-identity.
    let b_hi = b_hi.max(b_lo);
    let mut interior: Vec<(usize, Rect)> = Vec::new();
    let mut rind: Vec<(usize, Rect)> = Vec::new();
    for (si, s) in k.stmts.iter().enumerate() {
        let (il, ih, jl, jh) = stmt_bounds(k, s);
        let inner = Rect {
            il: il.max(b_lo),
            ih: ih.min(b_hi),
            jl: jl.max(b_lo),
            jh: jh.min(b_hi),
        };
        if !inner.is_empty() {
            interior.push((si, inner));
        }
        let strips = [
            // West / East: full j extent.
            Rect { il, ih: ih.min(b_lo), jl, jh },
            Rect { il: il.max(b_hi), ih, jl, jh },
            // South / North: the middle i band only.
            Rect { il: il.max(b_lo), ih: ih.min(b_hi), jl, jh: jh.min(b_lo) },
            Rect { il: il.max(b_lo), ih: ih.min(b_hi), jl: jl.max(b_hi), jh },
        ];
        for r in strips {
            if !r.is_empty() {
                rind.push((si, r));
            }
        }
    }
    (
        kernel_from_rects(k, ".int", &interior),
        kernel_from_rects(k, ".rind", &rind),
    )
}

/// Derive interior/rind programs from an expanded per-substep SDFG over
/// an `n × n` horizontal subdomain.
///
/// Returns `None` when the program shape does not match `exchange →
/// kernel chain → suffix` (looped control flow, unexpanded libraries, or
/// a second halo exchange) — callers fall back to the unsplit schedule.
pub fn split_for_overlap(expanded: &Sdfg, sub_n: usize) -> Option<SplitPrograms> {
    let schedule = expanded.state_schedule();
    if schedule.iter().any(|(_, mult)| *mult != 1) {
        return None;
    }

    // Phase A: classify nodes. Leading HaloExchange markers, then the
    // maximal kernel prefix, then the suffix.
    #[derive(PartialEq)]
    enum Phase {
        Markers,
        Prefix,
        Suffix,
    }
    let mut phase = Phase::Markers;
    let mut exchanged: Vec<DataId> = Vec::new();
    let mut prefix: Vec<&Kernel> = Vec::new();
    for &(si, _) in &schedule {
        for node in &expanded.states[si].nodes {
            match node {
                DataflowNode::Library(_) => return None,
                DataflowNode::HaloExchange { fields } => match phase {
                    Phase::Markers => exchanged.extend(fields.iter().copied()),
                    // A mid-program exchange cannot be overlapped by this
                    // single-split scheme.
                    _ => return None,
                },
                DataflowNode::Kernel(k) => match phase {
                    Phase::Markers | Phase::Prefix => {
                        phase = Phase::Prefix;
                        prefix.push(k);
                    }
                    Phase::Suffix => {}
                },
                _ => {
                    if phase == Phase::Markers {
                        return None; // suffix before any kernel ran
                    }
                    phase = Phase::Suffix;
                }
            }
        }
    }
    if prefix.is_empty() {
        return None;
    }

    // Phase B: margins from the read-radius recurrence.
    let radii: Vec<i64> = prefix.iter().map(|k| read_radius(k)).collect();
    let mut margins = Vec::with_capacity(radii.len());
    margins.push(radii[0]);
    for m in 1..radii.len() {
        let prev = margins[m - 1];
        margins.push(prev + radii[m - 1].max(radii[m]));
    }

    // Phase C: rebuild the two graphs with the same containers/params.
    let mut interior = expanded.clone();
    interior.name = format!("{}.interior", expanded.name);
    let mut rind = expanded.clone();
    rind.name = format!("{}.rind", expanded.name);
    let mut interior_points = 0u64;
    let mut kernel_idx = 0usize;
    let mut in_suffix = false;
    for &(si, _) in &schedule {
        let mut int_nodes = Vec::new();
        let mut rind_nodes = Vec::new();
        for node in &expanded.states[si].nodes {
            match node {
                DataflowNode::HaloExchange { .. } => {
                    // The driver owns the exchange in the split schedule.
                }
                DataflowNode::Kernel(k) if !in_suffix && kernel_idx < prefix.len() => {
                    let r = margins[kernel_idx];
                    let (b_lo, b_hi) = (r, sub_n as i64 - r);
                    let (ki, kr) = split_kernel(k, b_lo, b_hi);
                    if let Some(ki) = ki {
                        interior_points += ki
                            .stmts
                            .iter()
                            .map(|s| {
                                let (il, ih, jl, jh) = stmt_bounds(&ki, s);
                                Rect { il, ih, jl, jh }.points()
                            })
                            .sum::<u64>();
                        int_nodes.push(DataflowNode::Kernel(ki));
                    }
                    if let Some(kr) = kr {
                        rind_nodes.push(DataflowNode::Kernel(kr));
                    }
                    kernel_idx += 1;
                }
                other => {
                    in_suffix = true;
                    rind_nodes.push(other.clone());
                }
            }
        }
        interior.states[si].nodes = int_nodes;
        rind.states[si].nodes = rind_nodes;
    }
    interior.touch();
    rind.touch();

    Some(SplitPrograms {
        interior,
        rind,
        exchanged,
        margins,
        n_prefix: prefix.len(),
        interior_points,
    })
}
