//! Whole-program simplification passes (Section V-B preprocessing).
//!
//! The orchestrator's transpilation steps — constant propagation, dead
//! code elimination, redundant-container removal — land here as SDFG
//! passes. Loop unrolling is structural ([`unroll_loops`]) because the
//! control tree is already counted loops after the Python-side constant
//! propagation the paper describes.

use crate::expr::{DataId, Expr, ParamId};
use crate::graph::{ControlNode, DataflowNode, Sdfg};
use crate::kernel::LValue;

/// Substitute known parameter values into every kernel expression
/// (constant propagation). `values[p] = Some(v)` pins parameter `p`.
///
/// Returns the number of substitution sites. Downstream wins: pinned
/// constants let the power transformation see integral exponents, and
/// branch predicates become decidable.
pub fn bind_params(sdfg: &mut Sdfg, values: &[Option<f64>]) -> usize {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let count = std::cell::Cell::new(0usize);
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            if let DataflowNode::Kernel(k) = node {
                for s in &mut k.stmts {
                    let e = std::mem::replace(&mut s.expr, Expr::Const(0.0));
                    s.expr = e.rewrite(&|e| match e {
                        Expr::Param(ParamId(p)) if values.get(p).copied().flatten().is_some() => {
                            count.set(count.get() + 1);
                            Expr::Const(values[p].unwrap())
                        }
                        other => other,
                    });
                }
            }
        }
    }
    count.get()
}

/// Fold constant subexpressions (`1 + 2 -> 3`, `x * 1 -> x`, `x + 0 -> x`,
/// `select(const, a, b) -> a|b`). Returns folded-node count.
pub fn fold_constants(sdfg: &mut Sdfg) -> usize {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    use crate::expr::BinOp;
    let count = std::cell::Cell::new(0usize);
    let fold = |e: Expr| -> Expr {
        match e {
            Expr::Bin(op, a, b) => match (op, a.as_ref(), b.as_ref()) {
                (_, Expr::Const(x), Expr::Const(y)) => {
                    count.set(count.get() + 1);
                    Expr::Const(crate::expr::apply_bin(op, *x, *y))
                }
                (BinOp::Mul, Expr::Const(c), _) if *c == 1.0 => {
                    count.set(count.get() + 1);
                    *b
                }
                (BinOp::Mul, _, Expr::Const(c)) if *c == 1.0 => {
                    count.set(count.get() + 1);
                    *a
                }
                (BinOp::Add, Expr::Const(c), _) if *c == 0.0 => {
                    count.set(count.get() + 1);
                    *b
                }
                (BinOp::Add, _, Expr::Const(c)) | (BinOp::Sub, _, Expr::Const(c))
                    if *c == 0.0 =>
                {
                    count.set(count.get() + 1);
                    *a
                }
                _ => Expr::Bin(op, a, b),
            },
            Expr::Un(op, a) => match a.as_ref() {
                Expr::Const(x) => {
                    count.set(count.get() + 1);
                    Expr::Const(crate::expr::apply_un(op, *x))
                }
                _ => Expr::Un(op, a),
            },
            Expr::Select(c, a, b) => match c.as_ref() {
                Expr::Const(v) => {
                    count.set(count.get() + 1);
                    if *v != 0.0 {
                        *a
                    } else {
                        *b
                    }
                }
                _ => Expr::Select(c, a, b),
            },
            other => other,
        }
    };
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            if let DataflowNode::Kernel(k) = node {
                for s in &mut k.stmts {
                    let e = std::mem::replace(&mut s.expr, Expr::Const(0.0));
                    s.expr = e.rewrite(&fold);
                }
            }
        }
    }
    count.get()
}

/// Remove kernels and copies whose only outputs are transient containers
/// never read anywhere in the program (dead code elimination). Iterates to
/// a fixed point so chains of dead producers collapse. Returns removed
/// node count.
pub fn eliminate_dead_writes(sdfg: &mut Sdfg) -> usize {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut removed = 0;
    loop {
        // Recompute liveness: a container is live if it is non-transient
        // or read by any node.
        let mut live = vec![false; sdfg.containers.len()];
        for (i, c) in sdfg.containers.iter().enumerate() {
            if !c.transient {
                live[i] = true;
            }
        }
        for state in &sdfg.states {
            for node in &state.nodes {
                for d in node.reads() {
                    live[d.0] = true;
                }
            }
        }
        let mut removed_this_round = 0;
        for state in &mut sdfg.states {
            let before = state.nodes.len();
            state.nodes.retain(|n| match n {
                DataflowNode::Kernel(k) => {
                    // A kernel is dead when every field it writes is dead.
                    let writes = k.writes();
                    let has_field_write = k
                        .stmts
                        .iter()
                        .any(|s| matches!(s.lvalue, LValue::Field(_)));
                    !(has_field_write && writes.iter().all(|d| !live[d.0]))
                }
                DataflowNode::Copy { dst, .. } => live[dst.0],
                _ => true,
            });
            removed_this_round += before - state.nodes.len();
        }
        removed += removed_this_round;
        if removed_this_round == 0 {
            break;
        }
    }
    removed
}

/// Remove `Copy` nodes where the destination is a transient that is only
/// ever read (never re-written) afterwards, by redirecting those reads to
/// the source ("removing redundant memory allocation"). Returns removed
/// copy count.
pub fn eliminate_redundant_copies(sdfg: &mut Sdfg) -> usize {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut removed = 0;
    // Conservative single-pass: a copy src -> dst is redundant when dst is
    // transient, written exactly once in the program (by this copy), and
    // src is never written after the copy within the same state sequence.
    loop {
        let mut candidate: Option<(usize, usize, DataId, DataId)> = None;
        'search: for (si, state) in sdfg.states.iter().enumerate() {
            for (ni, node) in state.nodes.iter().enumerate() {
                if let DataflowNode::Copy { src, dst } = node {
                    if !sdfg.containers[dst.0].transient {
                        continue;
                    }
                    let dst_writes: u32 = sdfg
                        .states
                        .iter()
                        .flat_map(|s| s.nodes.iter())
                        .map(|n| n.writes().iter().filter(|d| *d == dst).count() as u32)
                        .sum();
                    if dst_writes != 1 {
                        continue;
                    }
                    // src must not be re-written later (conservatively:
                    // anywhere else in the program after this node).
                    let src_rewritten = sdfg
                        .states
                        .iter()
                        .enumerate()
                        .flat_map(|(sj, s)| {
                            s.nodes.iter().enumerate().map(move |(nj, n)| (sj, nj, n))
                        })
                        .any(|(sj, nj, n)| {
                            (sj > si || (sj == si && nj > ni)) && n.writes().contains(src)
                        });
                    if src_rewritten {
                        continue;
                    }
                    candidate = Some((si, ni, *src, *dst));
                    break 'search;
                }
            }
        }
        let Some((si, ni, src, dst)) = candidate else {
            break;
        };
        // Redirect every read of dst to src and delete the copy.
        for state in &mut sdfg.states {
            for node in &mut state.nodes {
                if let DataflowNode::Kernel(k) = node {
                    for s in &mut k.stmts {
                        let e = std::mem::replace(&mut s.expr, Expr::Const(0.0));
                        s.expr = e.rewrite(&|e| match e {
                            Expr::Load(d, o) if d == dst => Expr::Load(src, o),
                            other => other,
                        });
                    }
                }
            }
        }
        sdfg.states[si].nodes.remove(ni);
        removed += 1;
    }
    removed
}

/// Fully unroll every counted loop in the control tree ("we explicitly
/// mark loops to be (or not) unrolled"). States referenced repeatedly are
/// simply visited repeatedly; the state bodies are shared.
pub fn unroll_loops(sdfg: &mut Sdfg) -> usize {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    fn expand(nodes: &[ControlNode], out: &mut Vec<ControlNode>, unrolled: &mut usize) {
        for n in nodes {
            match n {
                ControlNode::State(s) => out.push(ControlNode::State(*s)),
                ControlNode::Loop { trips, body } => {
                    *unrolled += 1;
                    for _ in 0..*trips {
                        expand(body, out, unrolled);
                    }
                }
            }
        }
    }
    let mut out = Vec::new();
    let mut unrolled = 0;
    expand(&sdfg.control.clone(), &mut out, &mut unrolled);
    sdfg.control = out;
    unrolled
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::State;
    use crate::kernel::{Domain, KOrder, Kernel, Schedule, Stmt};
    use crate::storage::{Layout, StorageOrder};

    fn small_layout() -> Layout {
        Layout::new([4, 4, 2], [0, 0, 0], StorageOrder::IContiguous, 1)
    }

    fn kernel_writing(name: &str, read: DataId, write: DataId) -> Kernel {
        let mut k = Kernel::new(
            name,
            Domain::from_shape([4, 4, 2]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts
            .push(Stmt::full(LValue::Field(write), Expr::load(read, 0, 0, 0)));
        k
    }

    #[test]
    fn bind_params_substitutes() {
        let mut g = Sdfg::new("p");
        let a = g.add_container("a", small_layout(), false);
        let b = g.add_container("b", small_layout(), false);
        let dt = g.add_param("dt");
        let mut k = kernel_writing("k", a, b);
        k.stmts[0].expr = Expr::load(a, 0, 0, 0) * Expr::Param(dt);
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        let n = bind_params(&mut g, &[Some(0.25)]);
        assert_eq!(n, 1);
        let k = g.states[0].kernels().next().unwrap();
        assert!(matches!(
            &k.stmts[0].expr,
            Expr::Bin(_, _, b) if matches!(b.as_ref(), Expr::Const(v) if *v == 0.25)
        ));
    }

    #[test]
    fn fold_constants_simplifies() {
        let mut g = Sdfg::new("f");
        let a = g.add_container("a", small_layout(), false);
        let b = g.add_container("b", small_layout(), false);
        let mut k = kernel_writing("k", a, b);
        // (a * 1) + (2 + 3) -> a + 5
        k.stmts[0].expr = Expr::load(a, 0, 0, 0) * Expr::c(1.0) + (Expr::c(2.0) + Expr::c(3.0));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        let n = fold_constants(&mut g);
        assert!(n >= 2);
        let k = g.states[0].kernels().next().unwrap();
        assert_eq!(k.stmts[0].expr.size(), 3, "a + 5 has 3 nodes: {:?}", k.stmts[0].expr);
    }

    #[test]
    fn dead_write_chain_collapses() {
        let mut g = Sdfg::new("d");
        let a = g.add_container("a", small_layout(), false);
        let t1 = g.add_container("t1", small_layout(), true);
        let t2 = g.add_container("t2", small_layout(), true);
        let mut s = State::new("s");
        // a -> t1 -> t2, t2 never read: both kernels are dead.
        s.nodes
            .push(DataflowNode::Kernel(kernel_writing("k1", a, t1)));
        s.nodes
            .push(DataflowNode::Kernel(kernel_writing("k2", t1, t2)));
        g.add_state(s);
        let removed = eliminate_dead_writes(&mut g);
        assert_eq!(removed, 2);
        assert_eq!(g.kernel_count(), 0);
    }

    #[test]
    fn live_output_keeps_producers() {
        let mut g = Sdfg::new("l");
        let a = g.add_container("a", small_layout(), false);
        let t = g.add_container("t", small_layout(), true);
        let out = g.add_container("out", small_layout(), false);
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(kernel_writing("k1", a, t)));
        s.nodes
            .push(DataflowNode::Kernel(kernel_writing("k2", t, out)));
        g.add_state(s);
        assert_eq!(eliminate_dead_writes(&mut g), 0);
        assert_eq!(g.kernel_count(), 2);
    }

    #[test]
    fn redundant_copy_is_removed_and_reads_redirected() {
        let mut g = Sdfg::new("c");
        let a = g.add_container("a", small_layout(), false);
        let t = g.add_container("t", small_layout(), true);
        let out = g.add_container("out", small_layout(), false);
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Copy { src: a, dst: t });
        s.nodes
            .push(DataflowNode::Kernel(kernel_writing("k", t, out)));
        g.add_state(s);
        let removed = eliminate_redundant_copies(&mut g);
        assert_eq!(removed, 1);
        let k = g.states[0].kernels().next().unwrap();
        assert!(k.reads_data(a));
        assert!(!k.reads_data(t));
    }

    #[test]
    fn copy_with_later_src_write_is_kept() {
        let mut g = Sdfg::new("c2");
        let a = g.add_container("a", small_layout(), false);
        let t = g.add_container("t", small_layout(), true);
        let out = g.add_container("out", small_layout(), false);
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Copy { src: a, dst: t });
        // a is rewritten after the copy: the snapshot in t matters.
        s.nodes.push(DataflowNode::Kernel(kernel_writing("w", out, a)));
        s.nodes
            .push(DataflowNode::Kernel(kernel_writing("k", t, out)));
        g.add_state(s);
        assert_eq!(eliminate_redundant_copies(&mut g), 0);
    }

    #[test]
    fn unroll_flattens_control_tree() {
        let mut g = Sdfg::new("u");
        g.states.push(State::new("s0"));
        g.states.push(State::new("s1"));
        g.control = vec![ControlNode::Loop {
            trips: 3,
            body: vec![ControlNode::State(0), ControlNode::State(1)],
        }];
        let n = unroll_loops(&mut g);
        assert_eq!(n, 1);
        assert_eq!(g.control.len(), 6);
        assert_eq!(g.state_schedule().len(), 6);
    }
}
