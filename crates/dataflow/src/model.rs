//! Static performance modeling of SDFGs — the automated half of the
//! model-driven performance-engineering loop (Section VI-C).
//!
//! [`model_sdfg`] walks the state schedule, costs every kernel invocation
//! on a [`CostModel`], and produces the per-kernel breakdown the paper's
//! "17 lines of Python" script produces: measured-vs-bandwidth-bound time,
//! ranked by summarized runtime grouped by kernel name (Fig. 10).

use crate::graph::{DataflowNode, Sdfg};
use crate::kernel::Kernel;
use machine::{Bound, CpuModel, GpuModel, KernelCost, PerfModel, Target};

/// A target-aware cost model: the CPU variant needs the kernel's blocked
/// working set, which the GPU roofline does not.
#[derive(Debug, Clone)]
pub enum CostModel {
    Gpu(GpuModel),
    Cpu(CpuModel),
}

impl CostModel {
    /// Cost one kernel, using the appropriate extra context per target.
    pub fn kernel_cost(&self, kernel: &Kernel, sdfg: &Sdfg) -> KernelCost {
        let profile = kernel.profile(&sdfg.layout_fn());
        match self {
            CostModel::Gpu(m) => m.kernel_cost(&profile),
            CostModel::Cpu(m) => {
                use crate::kernel::KOrder;
                if kernel.k_order == KOrder::Parallel {
                    // k-blocked horizontal stencils keep one slab per
                    // field resident in cache (one tile-slab when the
                    // schedule is tiled).
                    let ws = if kernel.schedule.k_as_loop {
                        crate::transforms::tiling::tiled_working_set(kernel)
                    } else {
                        profile.bytes_total()
                    };
                    m.kernel_cost_with_working_set(&profile, ws)
                } else {
                    // Vertical solvers stream whole columns with K-strided
                    // accesses: no slab reuse, and a constant bandwidth
                    // de-rating (Section VIII-B: these "typically do not
                    // perform well in the FORTRAN FV3 column-blocking
                    // schedule").
                    let mut c =
                        m.kernel_cost_with_working_set(&profile, profile.bytes_total());
                    c.time *= m.spec().column_stride_penalty;
                    c
                }
            }
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        match self {
            CostModel::Gpu(m) => m.name(),
            CostModel::Cpu(m) => m.name(),
        }
    }

    /// Target this model prices.
    pub fn target(&self) -> Target {
        match self {
            CostModel::Gpu(_) => Target::Gpu,
            CostModel::Cpu(_) => Target::Cpu,
        }
    }
}

/// Modeled cost of one kernel (aggregated over invocations).
#[derive(Debug, Clone)]
pub struct KernelModel {
    pub name: String,
    pub invocations: u64,
    /// Simulated seconds per invocation (worst configuration when a name
    /// recurs with different domains — "we take the maximal reported
    /// runtime and largest modeled configuration").
    pub time_per_invocation: f64,
    /// Bandwidth-bound peak time per invocation.
    pub memory_bound_time: f64,
    /// Total simulated seconds (all invocations).
    pub total_time: f64,
    pub bound: Bound,
}

impl KernelModel {
    /// Fraction of bandwidth-bound peak achieved.
    pub fn peak_fraction(&self) -> f64 {
        if self.time_per_invocation <= 0.0 {
            1.0
        } else {
            (self.memory_bound_time / self.time_per_invocation).min(1.0)
        }
    }
}

/// Full program model.
#[derive(Debug, Clone, Default)]
pub struct ModelReport {
    pub kernels: Vec<KernelModel>,
    /// Total simulated kernel time in seconds.
    pub total_time: f64,
    /// Total kernel launches.
    pub launches: u64,
    /// Simulated communication seconds (from the halo cost hook).
    pub comm_time: f64,
}

impl ModelReport {
    /// Kernels ranked by total simulated time, descending (Fig. 10 order).
    pub fn ranked(&self) -> Vec<&KernelModel> {
        let mut v: Vec<&KernelModel> = self.kernels.iter().collect();
        v.sort_by(|a, b| b.total_time.partial_cmp(&a.total_time).unwrap());
        v
    }

    /// Wall time including exposed communication.
    pub fn step_time(&self) -> f64 {
        self.total_time + self.comm_time
    }
}

/// Model the whole SDFG. `halo_cost` prices one halo-exchange node in
/// seconds (supply `|_| 0.0` for single-rank programs).
pub fn model_sdfg(
    sdfg: &Sdfg,
    model: &CostModel,
    halo_cost: &impl Fn(&[crate::expr::DataId]) -> f64,
) -> ModelReport {
    let mut report = ModelReport::default();
    for (state_idx, mult) in sdfg.state_schedule() {
        let state = &sdfg.states[state_idx];
        for node in &state.nodes {
            match node {
                DataflowNode::Kernel(k) => {
                    let cost = model.kernel_cost(k, sdfg);
                    report.launches += mult as u64;
                    report.total_time += cost.time * mult as f64;
                    if let Some(km) = report.kernels.iter_mut().find(|km| km.name == k.name) {
                        km.invocations += mult as u64;
                        km.total_time += cost.time * mult as f64;
                        if cost.time > km.time_per_invocation {
                            km.time_per_invocation = cost.time;
                            km.memory_bound_time = cost.memory_bound_time;
                            km.bound = cost.bound;
                        }
                    } else {
                        report.kernels.push(KernelModel {
                            name: k.name.clone(),
                            invocations: mult as u64,
                            time_per_invocation: cost.time,
                            memory_bound_time: cost.memory_bound_time,
                            total_time: cost.time * mult as f64,
                            bound: cost.bound,
                        });
                    }
                }
                DataflowNode::Copy { src, .. } => {
                    // A copy moves the container once in and once out.
                    let bytes = sdfg.layout_of(*src).domain_len() as u64 * 8 * 2;
                    let t = match model {
                        CostModel::Gpu(m) => bytes as f64 / m.attainable_bandwidth(),
                        CostModel::Cpu(m) => bytes as f64 / m.attainable_bandwidth(),
                    };
                    report.total_time += t * mult as f64;
                }
                DataflowNode::HaloExchange { fields } => {
                    report.comm_time += halo_cost(fields) * mult as f64;
                }
                DataflowNode::Library(_) | DataflowNode::Callback { .. } => {}
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DataId, Expr};
    use crate::graph::{ControlNode, State};
    use crate::kernel::{Domain, KOrder, LValue, Schedule, Stmt};
    use crate::storage::{Layout, StorageOrder};
    use machine::{CpuSpec, GpuSpec};

    fn simple_sdfg(n: usize) -> Sdfg {
        let mut g = Sdfg::new("m");
        let l = Layout::new([n, n, 80], [1, 1, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let b = g.add_container("b", l, false);
        let mut k = Kernel::new(
            "copy",
            Domain::from_shape([n, n, 80]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts
            .push(Stmt::full(LValue::Field(b), Expr::load(a, 0, 0, 0)));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        g
    }

    #[test]
    fn copy_kernel_models_at_bandwidth() {
        let g = simple_sdfg(192);
        let m = CostModel::Gpu(GpuModel::new(GpuSpec::p100()));
        let r = model_sdfg(&g, &m, &|_| 0.0);
        assert_eq!(r.launches, 1);
        assert_eq!(r.kernels.len(), 1);
        assert!(r.kernels[0].peak_fraction() > 0.9);
    }

    #[test]
    fn loops_multiply_invocations() {
        let mut g = simple_sdfg(32);
        g.control = vec![ControlNode::Loop {
            trips: 7,
            body: vec![ControlNode::State(0)],
        }];
        let m = CostModel::Gpu(GpuModel::new(GpuSpec::p100()));
        let r = model_sdfg(&g, &m, &|_| 0.0);
        assert_eq!(r.launches, 7);
        assert_eq!(r.kernels[0].invocations, 7);
        assert!((r.kernels[0].total_time - 7.0 * r.kernels[0].time_per_invocation).abs() < 1e-12);
    }

    #[test]
    fn cpu_model_uses_slab_working_set() {
        let g = simple_sdfg(64);
        let gpu_like_cpu = CostModel::Cpu(CpuModel::new(CpuSpec::haswell_e5_2690v3()));
        let r = model_sdfg(&g, &gpu_like_cpu, &|_| 0.0);
        assert_eq!(r.kernels.len(), 1);
        assert!(r.total_time > 0.0);
    }

    #[test]
    fn halo_cost_hook_accumulates() {
        let mut g = simple_sdfg(32);
        g.states[0].nodes.push(DataflowNode::HaloExchange {
            fields: vec![DataId(0), DataId(1)],
        });
        let m = CostModel::Gpu(GpuModel::new(GpuSpec::p100()));
        let r = model_sdfg(&g, &m, &|fields| fields.len() as f64 * 1e-3);
        assert!((r.comm_time - 2e-3).abs() < 1e-12);
        assert!(r.step_time() > r.total_time);
    }

    #[test]
    fn ranked_sorts_descending() {
        let mut g = simple_sdfg(32);
        // Add a second, much bigger kernel.
        let l = Layout::new([256, 256, 8], [1, 1, 0], StorageOrder::IContiguous, 1);
        let c = g.add_container("c", l.clone(), false);
        let d = g.add_container("d", l, false);
        let mut k = Kernel::new(
            "big",
            Domain::from_shape([256, 256, 8]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts
            .push(Stmt::full(LValue::Field(d), Expr::load(c, 0, 0, 0)));
        g.states[0].nodes.push(DataflowNode::Kernel(k));
        let m = CostModel::Gpu(GpuModel::new(GpuSpec::p100()));
        let r = model_sdfg(&g, &m, &|_| 0.0);
        let ranked = r.ranked();
        assert_eq!(ranked[0].name, "big");
    }
}
