//! Cross-module fusion: fusing producer/consumer kernels *across state
//! boundaries* (Section VI-B taken one level up).
//!
//! The dycore builder emits one state per module (`c_sw`, `riem_solver_c`,
//! `d_sw`, the tracer transport, …), so the per-state fusion transforms in
//! [`fusion`](super::fusion) can never see a producer in one module and its
//! consumer in the next. This pass closes that gap in two steps:
//!
//! 1. [`merge_adjacent_states`] — a structural rewrite that concatenates two
//!    states into one. It is legal exactly when every occurrence of the two
//!    states in the control tree is an adjacent `first, first+1` pair inside
//!    the same loop body: execution then interleaves nothing between them,
//!    and the flattened node order (hence program semantics, bit for bit)
//!    is unchanged. The interior/rind split in `overlap` classifies nodes
//!    by flattened schedule order, so a merged program splits identically.
//! 2. [`fuse_across_states`] — merges a state pair that has a
//!    producer→consumer link (a container written by the first and read by
//!    the second) and then applies the ordinary access-set-checked OTF/SGF
//!    transforms across the old seam. The merge is committed only if at
//!    least one cross-boundary kernel fusion lands, so a failed match
//!    leaves the graph untouched.
//!
//! Both steps reuse the existing legality machinery (`UsageMap`,
//! `touches_between`, `validate_kernel` via the fusion transforms), and both
//! are bit-exact: state merging is a pure reordering no-op, and OTF/SGF
//! preserve per-point arithmetic and evaluation order.

use crate::graph::{ControlNode, Sdfg};
use crate::transforms::fusion::{fuse_otf, fuse_subgraph, TransformResult};
use crate::transforms::Applied;

/// Whether every occurrence of `first` and `first + 1` in the control tree
/// is an adjacent `[State(first), State(first+1)]` pair in the same body.
fn occurrences_pair_up(nodes: &[ControlNode], first: usize) -> bool {
    let second = first + 1;
    let mut i = 0;
    while i < nodes.len() {
        match &nodes[i] {
            ControlNode::State(s) if *s == first => {
                match nodes.get(i + 1) {
                    Some(ControlNode::State(n)) if *n == second => i += 2,
                    _ => return false,
                }
            }
            ControlNode::State(s) if *s == second => return false, // unpaired
            ControlNode::State(_) => i += 1,
            ControlNode::Loop { body, .. } => {
                if !occurrences_pair_up(body, first) {
                    return false;
                }
                i += 1;
            }
        }
    }
    true
}

/// Drop the `State(first + 1)` entries that follow `State(first)` and
/// re-index every state reference above the removed slot.
fn rewrite_control(nodes: &mut Vec<ControlNode>, first: usize) {
    let second = first + 1;
    let mut out = Vec::with_capacity(nodes.len());
    for mut n in nodes.drain(..) {
        match &mut n {
            ControlNode::State(s) => {
                if *s == second {
                    continue; // merged into `first`
                }
                if *s > second {
                    *s -= 1;
                }
                out.push(n);
            }
            ControlNode::Loop { body, .. } => {
                rewrite_control(body, first);
                out.push(n);
            }
        }
    }
    *nodes = out;
}

/// Merge state `first + 1` into state `first`, concatenating its nodes.
///
/// Preconditions (all checked):
/// * both state indices exist;
/// * every control occurrence of the two states is an adjacent
///   `first, first+1` pair in the same body (so the flattened execution
///   order — and therefore every float operation — is unchanged).
///
/// The merged state is named `"{a}+{b}"`. All later state indices shift
/// down by one; the graph generation is bumped.
pub fn merge_adjacent_states(sdfg: &mut Sdfg, first: usize) -> TransformResult {
    sdfg.touch();
    let second = first + 1;
    if second >= sdfg.states.len() {
        return Err(format!("state {second} out of range"));
    }
    if !occurrences_pair_up(&sdfg.control, first) {
        return Err(format!(
            "states {first} and {second} are not adjacent in every control occurrence"
        ));
    }
    let b = sdfg.states.remove(second);
    let a = &mut sdfg.states[first];
    let labels = vec![a.name.clone(), b.name.clone()];
    a.name = format!("{}+{}", a.name, b.name);
    a.nodes.extend(b.nodes);
    rewrite_control(&mut sdfg.control, first);
    Ok(Applied {
        kind: "state-merge",
        labels,
    })
}

/// Fuse producer/consumer kernels across the boundary between states
/// `first` and `first + 1`: merge the states, then apply SGF at the seam
/// and OTF from any old-first kernel into any old-second kernel. The merge
/// commits only when at least one cross-boundary fusion lands; otherwise
/// the graph is left exactly as before (modulo a generation bump).
///
/// Returns the first committed fusion (kind `"xmodule-sgf"` /
/// `"xmodule-otf"`, labels from the fused kernels).
pub fn fuse_across_states(sdfg: &mut Sdfg, first: usize) -> TransformResult {
    fuse_across_states_with(sdfg, first, &mut |_, _, _| true)
}

/// [`fuse_across_states`] with an external approval hook: once a legal
/// merge + fusion plan is found on the trial clone, `approve(before,
/// trial, first)` decides whether to commit it (e.g. a measured veto
/// comparing the two old states against the merged one — the dataflow
/// layer has no cost model, so judgment is injected from above). The
/// trial graph passed to the hook already has the merge and the fusion
/// applied at state `first`.
pub fn fuse_across_states_with(
    sdfg: &mut Sdfg,
    first: usize,
    approve: &mut dyn FnMut(&Sdfg, &Sdfg, usize) -> bool,
) -> TransformResult {
    sdfg.touch();
    let second = first + 1;
    if second >= sdfg.states.len() {
        return Err(format!("state {second} out of range"));
    }
    // Require a dataflow link: something produced by the first module and
    // consumed by the second (otherwise there is nothing to fuse across).
    let produced: Vec<_> = sdfg.states[first]
        .nodes
        .iter()
        .flat_map(|n| n.writes())
        .collect();
    let linked = sdfg.states[second]
        .nodes
        .iter()
        .flat_map(|n| n.reads())
        .any(|d| produced.contains(&d));
    if !linked {
        return Err(format!(
            "no producer/consumer link between states {first} and {second}"
        ));
    }

    // Search on a trial clone first so a failed match leaves the caller's
    // graph (uid, generation, structure) completely untouched; on success
    // the same rewrite is replayed on the live graph, keeping its identity
    // and bumping its generation through the transforms' `touch` calls.
    let mut trial = sdfg.clone();
    let seam = trial.states[first].nodes.len();
    merge_adjacent_states(&mut trial, first)?;

    enum Plan {
        Sgf,
        Otf(usize, usize),
    }
    let mut plan: Option<(Plan, Applied)> = None;
    // SGF at the seam: the last old-first kernel against the first
    // old-second kernel (adjacency is what SGF requires).
    if seam > 0 {
        if let Ok(a) = fuse_subgraph(&mut trial, first, seam - 1) {
            plan = Some((
                Plan::Sgf,
                Applied {
                    kind: "xmodule-sgf",
                    labels: a.labels,
                },
            ));
        }
    }
    // OTF across the seam: any old-first producer into any old-second
    // consumer.
    if plan.is_none() {
        'search: for p in 0..seam {
            let n = trial.states[first].nodes.len();
            for c in seam..n {
                if let Ok(a) = fuse_otf(&mut trial, first, p, c) {
                    plan = Some((
                        Plan::Otf(p, c),
                        Applied {
                            kind: "xmodule-otf",
                            labels: a.labels,
                        },
                    ));
                    break 'search;
                }
            }
        }
    }

    match plan {
        Some((plan, applied)) => {
            if !approve(sdfg, &trial, first) {
                return Err(format!(
                    "cross-module fusion at the {first}/{second} boundary was vetoed"
                ));
            }
            merge_adjacent_states(sdfg, first).expect("merge validated on the trial clone");
            match plan {
                Plan::Sgf => fuse_subgraph(sdfg, first, seam - 1)
                    .expect("SGF validated on the trial clone"),
                Plan::Otf(p, c) => {
                    fuse_otf(sdfg, first, p, c).expect("OTF validated on the trial clone")
                }
            };
            Ok(applied)
        }
        None => Err(format!(
            "no kernel fusion applies across the {first}/{second} boundary"
        )),
    }
}

/// Greedy cross-module pass: walk every adjacent state pair and fuse
/// across each boundary where a producer/consumer link and a legal kernel
/// fusion exist. Returns everything applied (in application order).
pub fn cross_module_fusion(sdfg: &mut Sdfg) -> Vec<Applied> {
    cross_module_fusion_with(sdfg, &mut |_, _, _| true)
}

/// [`cross_module_fusion`] with an approval hook forwarded to every
/// [`fuse_across_states_with`] attempt (see there).
pub fn cross_module_fusion_with(
    sdfg: &mut Sdfg,
    approve: &mut dyn FnMut(&Sdfg, &Sdfg, usize) -> bool,
) -> Vec<Applied> {
    let mut applied = Vec::new();
    let mut first = 0;
    while first + 1 < sdfg.states.len() {
        match fuse_across_states_with(sdfg, first, approve) {
            Ok(a) => {
                applied.push(a);
                // The merged state may now link to the *next* module too;
                // retry at the same index before moving on.
            }
            Err(_) => first += 1,
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DataStore, Executor, NoHooks};
    use crate::expr::{DataId, Expr};
    use crate::graph::{DataflowNode, State};
    use crate::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
    use crate::storage::{Array3, Layout, StorageOrder};

    fn layout() -> Layout {
        Layout::new([8, 8, 4], [1, 1, 0], StorageOrder::IContiguous, 1)
    }

    fn pointwise(name: &str, read: DataId, write: DataId, addend: f64) -> Kernel {
        let mut k = Kernel::new(
            name,
            Domain::from_shape([8, 8, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(write),
            Expr::load(read, 0, 0, 0) + Expr::c(addend),
        ));
        k
    }

    /// Two states, each one module: `s0: t = a + 1` then `s1: out = t * 3`
    /// — the producer/consumer chain split across a module boundary.
    fn two_module_sdfg() -> (Sdfg, DataId, DataId) {
        let mut g = Sdfg::new("xm");
        let a = g.add_container("a", layout(), false);
        let t = g.add_container("t", layout(), true);
        let out = g.add_container("out", layout(), false);
        let mut s0 = State::new("produce");
        s0.nodes
            .push(DataflowNode::Kernel(pointwise("prod#0", a, t, 1.0)));
        let mut s1 = State::new("consume");
        let mut c = Kernel::new(
            "cons#0",
            Domain::from_shape([8, 8, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        c.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(t, 0, 0, 0) * Expr::c(3.0),
        ));
        s1.nodes.push(DataflowNode::Kernel(c));
        g.add_state(s0);
        g.add_state(s1);
        (g, a, out)
    }

    fn run_and_get(g: &Sdfg, a: DataId, out: DataId) -> Array3 {
        let mut store = DataStore::for_sdfg(g);
        let l = g.layout_of(a);
        let mut arr = Array3::zeros(l.clone());
        let (ni, nj, nk) = (l.domain[0] as i64, l.domain[1] as i64, l.domain[2] as i64);
        for k in 0..nk {
            for j in -1..nj + 1 {
                for i in -1..ni + 1 {
                    arr.set(i, j, k, (i * 3 + j * 5 + k * 7) as f64);
                }
            }
        }
        *store.get_mut(a) = arr;
        Executor::serial().run(g, &mut store, &[], &mut NoHooks);
        store.get(out).clone()
    }

    #[test]
    fn merge_concatenates_and_reindexes() {
        let (mut g, _, _) = two_module_sdfg();
        g.states.push(State::new("tail"));
        g.control.push(ControlNode::State(2));
        let applied = merge_adjacent_states(&mut g, 0).expect("merge applies");
        assert_eq!(applied.kind, "state-merge");
        assert_eq!(g.states.len(), 2);
        assert_eq!(g.states[0].name, "produce+consume");
        assert_eq!(g.states[0].nodes.len(), 2);
        // The tail state re-indexed from 2 to 1.
        assert_eq!(g.state_schedule(), vec![(0, 1), (1, 1)]);
    }

    #[test]
    fn merge_rejects_interleaved_occurrences() {
        let (mut g, _, _) = two_module_sdfg();
        g.states.push(State::new("between"));
        g.control = vec![
            ControlNode::State(0),
            ControlNode::State(2),
            ControlNode::State(1),
        ];
        assert!(merge_adjacent_states(&mut g, 0).is_err());
    }

    #[test]
    fn merge_rejects_loop_boundary_split() {
        // s0 inside a loop, s1 after it: occurrences do not pair up (the
        // loop repeats s0 without running s1 in between).
        let (mut g, _, _) = two_module_sdfg();
        g.control = vec![
            ControlNode::Loop {
                trips: 2,
                body: vec![ControlNode::State(0)],
            },
            ControlNode::State(1),
        ];
        assert!(merge_adjacent_states(&mut g, 0).is_err());
    }

    #[test]
    fn merge_inside_shared_loop_body_applies() {
        let (mut g, a, out) = two_module_sdfg();
        g.control = vec![ControlNode::Loop {
            trips: 3,
            body: vec![ControlNode::State(0), ControlNode::State(1)],
        }];
        let before = run_and_get(&g, a, out);
        merge_adjacent_states(&mut g, 0).expect("adjacent inside one body");
        assert_eq!(g.state_schedule(), vec![(0, 3)]);
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }

    #[test]
    fn fuse_across_states_is_bit_exact() {
        let (mut g, a, out) = two_module_sdfg();
        let before = run_and_get(&g, a, out);
        let applied = fuse_across_states(&mut g, 0).expect("cross-module fusion applies");
        assert!(applied.kind.starts_with("xmodule-"));
        assert_eq!(g.states.len(), 1);
        assert_eq!(g.kernel_count(), 1, "the two modules fused into one kernel");
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }

    #[test]
    fn fuse_across_states_rejects_unlinked_modules() {
        let mut g = Sdfg::new("unlinked");
        let a = g.add_container("a", layout(), false);
        let b = g.add_container("b", layout(), false);
        let c = g.add_container("c", layout(), false);
        let d = g.add_container("d", layout(), false);
        let mut s0 = State::new("m0");
        s0.nodes
            .push(DataflowNode::Kernel(pointwise("k0", a, b, 1.0)));
        let mut s1 = State::new("m1");
        s1.nodes
            .push(DataflowNode::Kernel(pointwise("k1", c, d, 2.0)));
        g.add_state(s0);
        g.add_state(s1);
        let before = format!("{:?}", g.states);
        assert!(fuse_across_states(&mut g, 0).is_err());
        assert_eq!(format!("{:?}", g.states), before, "graph left untouched");
    }

    #[test]
    fn fuse_across_states_reverts_when_no_fusion_lands() {
        // Linked modules, but the consumer reads the intermediate at a
        // horizontal offset *and* the intermediate is non-transient: SGF
        // rejects (offset dependency) and OTF rejects (not transient) —
        // the state merge must roll back.
        let (mut g, _, _) = two_module_sdfg();
        let t = g.find_container("t").unwrap();
        g.containers[t.0].transient = false;
        if let DataflowNode::Kernel(k) = &mut g.states[1].nodes[0] {
            k.stmts[0].expr = Expr::load(t, 1, 0, 0) * Expr::c(3.0);
        }
        assert!(fuse_across_states(&mut g, 0).is_err());
        assert_eq!(g.states.len(), 2, "merge rolled back");
        assert_eq!(g.states[0].name, "produce");
    }

    #[test]
    fn cross_module_pass_chains_through_three_modules() {
        // a -> t1 -> t2 -> out across three states: the greedy pass should
        // collapse all three into one kernel, bit-exactly.
        let mut g = Sdfg::new("chain");
        let a = g.add_container("a", layout(), false);
        let t1 = g.add_container("t1", layout(), true);
        let t2 = g.add_container("t2", layout(), true);
        let out = g.add_container("out", layout(), false);
        for (i, (r, w)) in [(a, t1), (t1, t2), (t2, out)].into_iter().enumerate() {
            let mut s = State::new(format!("m{i}"));
            s.nodes.push(DataflowNode::Kernel(pointwise(
                &format!("k{i}"),
                r,
                w,
                i as f64,
            )));
            g.add_state(s);
        }
        let before = run_and_get(&g, a, out);
        let applied = cross_module_fusion(&mut g);
        assert_eq!(applied.len(), 2);
        assert_eq!(g.states.len(), 1);
        assert_eq!(g.kernel_count(), 1);
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }
}
