//! Data-centric graph transformations (Section VI).
//!
//! Every optimization in the paper's pipeline is a rewrite on the SDFG:
//!
//! * [`fusion`] — on-the-fly map fusion (OTF, fuse-by-recomputation) and
//!   subgraph fusion (SGF, common-iteration-space fusion), the two
//!   transformation families transfer tuning searches over (Section VI-B);
//! * [`local_storage`] — register caching of vertical-solver accesses and
//!   demotion of single-thread transients to locals (Section VI-A2);
//! * [`power`] — strength reduction of the power operator (Section VI-C1);
//! * [`schedule`] — schedule assignment sweeps and the region realization
//!   strategy (split kernels vs predication, Section V-A / Table III);
//! * [`tiling`] — tile-size sweeps feeding the CPU cache model
//!   (Section V-A's "tiling and tile sizes in each dimension").
//!
//! Transforms are *semantics-preserving*: each checks its preconditions
//! and re-validates the rewritten kernel, returning `Err` (leaving the
//! graph untouched) when the match does not apply.

pub mod cross_state;
pub mod fusion;
pub mod local_storage;
pub mod power;
pub mod schedule;
pub mod tiling;

use crate::expr::DataId;
use crate::graph::{DataflowNode, Sdfg};

/// Identifies a node inside an SDFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NodeRef {
    pub state: usize,
    pub node: usize,
}

/// Summary of an applied transformation (for reports and transfer-tuning
/// pattern descriptions).
#[derive(Debug, Clone, PartialEq)]
pub struct Applied {
    /// Transformation kind tag, e.g. `"otf"`, `"sgf"`, `"power"`.
    pub kind: &'static str,
    /// Labels of the kernels involved.
    pub labels: Vec<String>,
}

/// How often each container is read/written across the whole SDFG,
/// including reads by halo exchanges and callbacks.
#[derive(Debug, Clone, Default)]
pub struct UsageMap {
    pub reads: Vec<u32>,
    pub writes: Vec<u32>,
}

impl UsageMap {
    /// Build for `sdfg`.
    pub fn build(sdfg: &Sdfg) -> Self {
        let n = sdfg.containers.len();
        let mut u = UsageMap {
            reads: vec![0; n],
            writes: vec![0; n],
        };
        for state in &sdfg.states {
            for node in &state.nodes {
                for d in node.reads() {
                    u.reads[d.0] += 1;
                }
                for d in node.writes() {
                    u.writes[d.0] += 1;
                }
            }
        }
        u
    }

    /// Readers of `d` across the program.
    pub fn read_count(&self, d: DataId) -> u32 {
        self.reads[d.0]
    }
}

/// Whether any node strictly between `a` and `b` in the same state
/// accesses any of `fields`. Used as a safety precondition by fusions.
pub fn touches_between(sdfg: &Sdfg, state: usize, a: usize, b: usize, fields: &[DataId]) -> bool {
    let (lo, hi) = if a < b { (a, b) } else { (b, a) };
    sdfg.states[state].nodes[lo + 1..hi].iter().any(|n| {
        n.reads().iter().any(|d| fields.contains(d))
            || n.writes().iter().any(|d| fields.contains(d))
    })
}

/// Fetch a kernel by reference (panics if the node is not a kernel).
pub fn kernel_at(sdfg: &Sdfg, r: NodeRef) -> &crate::kernel::Kernel {
    match &sdfg.states[r.state].nodes[r.node] {
        DataflowNode::Kernel(k) => k,
        other => panic!("expected kernel at {r:?}, found {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::graph::State;
    use crate::kernel::{Domain, KOrder, Kernel, LValue, Schedule, Stmt};
    use crate::storage::{Layout, StorageOrder};

    #[test]
    fn usage_map_counts_all_states() {
        let mut g = Sdfg::new("u");
        let l = Layout::new([4, 4, 2], [1, 1, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let b = g.add_container("b", l.clone(), true);
        let mut k1 = Kernel::new(
            "k1",
            Domain::from_shape([4, 4, 2]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k1.stmts
            .push(Stmt::full(LValue::Field(b), Expr::load(a, 0, 0, 0)));
        let mut s1 = State::new("s1");
        s1.nodes.push(DataflowNode::Kernel(k1.clone()));
        g.add_state(s1);
        let mut s2 = State::new("s2");
        s2.nodes.push(DataflowNode::Kernel(k1));
        g.add_state(s2);

        let u = UsageMap::build(&g);
        assert_eq!(u.read_count(a), 2);
        assert_eq!(u.writes[b.0], 2);
    }

    #[test]
    fn touches_between_detects_interference() {
        let mut g = Sdfg::new("t");
        let l = Layout::new([4, 4, 2], [0, 0, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let b = g.add_container("b", l.clone(), false);
        let c = g.add_container("c", l, false);
        let mk = |name: &str, r: DataId, w: DataId| {
            let mut k = Kernel::new(
                name,
                Domain::from_shape([4, 4, 2]),
                KOrder::Parallel,
                Schedule::gpu_horizontal(),
            );
            k.stmts
                .push(Stmt::full(LValue::Field(w), Expr::load(r, 0, 0, 0)));
            DataflowNode::Kernel(k)
        };
        let mut s = State::new("s");
        s.nodes.push(mk("k0", a, b));
        s.nodes.push(mk("k1", b, c));
        s.nodes.push(mk("k2", a, c));
        g.add_state(s);
        // Node 1 (k1) reads b and writes c, so b and c interfere between
        // nodes 0 and 2 but a does not.
        assert!(touches_between(&g, 0, 0, 2, &[b]));
        assert!(touches_between(&g, 0, 0, 2, &[c]));
        assert!(!touches_between(&g, 0, 0, 2, &[a]));
        // Adjacent nodes never interfere (empty range between them).
        assert!(!touches_between(&g, 0, 0, 1, &[b]));
    }
}
