//! Kernel fusion transformations — the workhorses of Table III and the
//! transformation families transfer tuning searches over (Section VI-B).
//!
//! * **On-the-fly map fusion (OTF)** "fuses by replicating the computations
//!   of the first map for each input of the second map, thereby trading
//!   memory for recomputation": the producer's expression is spliced into
//!   the consumer at every offset the consumer reads the intermediate at.
//! * **Subgraph fusion (SGF)** "can fuse arbitrary subgraphs into a single
//!   kernel by extracting common iteration spaces": adjacent kernels with
//!   identical domains and compatible vertical orders are concatenated
//!   into one kernel when every cross-kernel dependency is pointwise.

use crate::exec::validate_kernel;
use crate::expr::{DataId, Expr, LocalId};
use crate::graph::{DataflowNode, Sdfg};
use crate::kernel::{KOrder, Kernel, LValue};
use crate::transforms::{touches_between, Applied, UsageMap};

/// Error type for rejected transformations.
pub type TransformResult = Result<Applied, String>;

fn kernels_at(
    sdfg: &Sdfg,
    state: usize,
    a: usize,
    b: usize,
) -> Result<(&Kernel, &Kernel), String> {
    let get = |i: usize| match sdfg.states[state].nodes.get(i) {
        Some(DataflowNode::Kernel(k)) => Ok(k),
        Some(other) => Err(format!("node {i} is not a kernel: {other:?}")),
        None => Err(format!("node index {i} out of range")),
    };
    Ok((get(a)?, get(b)?))
}

/// Apply on-the-fly map fusion: inline the single-statement producer at
/// `(state, producer)` into the consumer at `(state, consumer)`,
/// re-computing the producer expression at every offset.
///
/// Preconditions (all checked):
/// * both nodes are kernels in the same state, producer before consumer;
/// * the producer has exactly one statement writing a *transient* field,
///   with no region restriction and a full K interval;
/// * the producer is `Parallel` (no loop-carried state to replicate);
/// * the consumer is the only reader of the intermediate in the program;
/// * no node between them touches the intermediate or the producer's
///   inputs;
/// * the fused kernel passes [`validate_kernel`] (e.g. the consumer must
///   not write the producer's inputs at conflicting offsets).
pub fn fuse_otf(sdfg: &mut Sdfg, state: usize, producer: usize, consumer: usize) -> TransformResult {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    if producer >= consumer {
        return Err("producer must precede consumer".into());
    }
    let usage = UsageMap::build(sdfg);
    let (p, c) = kernels_at(sdfg, state, producer, consumer)?;

    if p.k_order != KOrder::Parallel {
        return Err(format!("OTF producer '{}' is not a parallel stencil", p.name));
    }
    if p.stmts.len() != 1 {
        return Err(format!(
            "OTF producer '{}' has {} statements (need exactly 1)",
            p.name,
            p.stmts.len()
        ));
    }
    let pstmt = &p.stmts[0];
    if pstmt.region.is_some() || pstmt.k_range != crate::kernel::AxisInterval::FULL {
        return Err("OTF producer statement is region- or interval-restricted".into());
    }
    let inter = match pstmt.lvalue {
        LValue::Field(d) => d,
        LValue::Local(_) => return Err("OTF producer writes a local".into()),
    };
    if !sdfg.containers[inter.0].transient {
        return Err(format!(
            "intermediate '{}' is not transient",
            sdfg.containers[inter.0].name
        ));
    }
    if !c.reads_data(inter) {
        return Err("consumer does not read the intermediate".into());
    }
    if usage.read_count(inter) != 1 {
        return Err(format!(
            "intermediate read by {} nodes, need exactly 1",
            usage.read_count(inter)
        ));
    }
    // Producer inputs must be stable between the two nodes, and the
    // intermediate untouched.
    let mut guarded: Vec<DataId> = p.reads().into_iter().map(|(d, _)| d).collect();
    guarded.push(inter);
    if touches_between(sdfg, state, producer, consumer, &guarded) {
        return Err("interfering node between producer and consumer".into());
    }

    // Splice.
    let pexpr = pstmt.expr.clone();
    let mut fused = c.clone();
    for s in &mut fused.stmts {
        s.expr = std::mem::replace(&mut s.expr, Expr::Const(0.0))
            .substitute_load(inter, &|o| pexpr.clone().shift(o));
    }
    fused.name = format!("{}*{}", p.name, c.name);
    validate_kernel(&fused).map_err(|e| format!("fused kernel invalid: {e}"))?;

    let labels = vec![p.name.clone(), c.name.clone()];
    // Commit: replace consumer, drop producer.
    sdfg.states[state].nodes[consumer] = DataflowNode::Kernel(fused);
    sdfg.states[state].nodes.remove(producer);
    Ok(Applied {
        kind: "otf",
        labels,
    })
}

/// Apply subgraph fusion: merge adjacent kernels `(state, first)` and
/// `(state, first + 1)` into one kernel over their common iteration space.
///
/// Preconditions (all checked):
/// * identical domains;
/// * compatible vertical orders (equal, or one side `Parallel` combined
///   with a solver — the solver's order wins);
/// * every field written by the first and read by the second is read at
///   zero horizontal offset (per-thread ordering suffices — the "no
///   dependency between threads" condition of Section VI-A1), and at a
///   vertical offset compatible with the merged K order;
/// * the merged kernel passes [`validate_kernel`].
pub fn fuse_subgraph(sdfg: &mut Sdfg, state: usize, first: usize) -> TransformResult {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let second = first + 1;
    let (a, b) = kernels_at(sdfg, state, first, second)?;

    if a.domain != b.domain {
        return Err(format!(
            "domain mismatch: '{}' {:?} vs '{}' {:?}",
            a.name, a.domain, b.name, b.domain
        ));
    }
    let k_order = match (a.k_order, b.k_order) {
        (x, y) if x == y => x,
        (KOrder::Parallel, y) => y,
        (x, KOrder::Parallel) => x,
        (x, y) => return Err(format!("incompatible K orders {x:?} and {y:?}")),
    };
    // Cross-kernel dependencies must be pointwise horizontally.
    let a_writes = a.writes();
    for s in &b.stmts {
        for (d, o) in s.expr.loads() {
            if a_writes.contains(&d) && (o.i != 0 || o.j != 0) {
                return Err(format!(
                    "'{}' reads {d:?} at horizontal offset {o} produced by '{}' — \
                     requires OTF recomputation, not SGF",
                    b.name, a.name
                ));
            }
        }
    }

    let mut fused = a.clone();
    fused.k_order = k_order;
    if k_order != KOrder::Parallel {
        fused.schedule.k_as_loop = true;
    }
    // Re-number the second kernel's locals above the first's.
    let shift = a.n_locals;
    let mut b_stmts = b.stmts.clone();
    for s in &mut b_stmts {
        if let LValue::Local(l) = &mut s.lvalue {
            *l = LocalId(l.0 + shift);
        }
        s.expr = std::mem::replace(&mut s.expr, Expr::Const(0.0)).rewrite(&|e| match e {
            Expr::Local(l) => Expr::Local(LocalId(l.0 + shift)),
            other => other,
        });
    }
    fused.stmts.extend(b_stmts);
    fused.n_locals = a.n_locals + b.n_locals;
    fused.name = format!("{}+{}", a.name, b.name);
    fused.cached_fields = {
        let mut cf = a.cached_fields.clone();
        for d in &b.cached_fields {
            if !cf.contains(d) {
                cf.push(*d);
            }
        }
        cf
    };
    validate_kernel(&fused).map_err(|e| format!("fused kernel invalid: {e}"))?;

    let labels = vec![a.name.clone(), b.name.clone()];
    sdfg.states[state].nodes[first] = DataflowNode::Kernel(fused);
    sdfg.states[state].nodes.remove(second);
    Ok(Applied {
        kind: "sgf",
        labels,
    })
}

/// Greedily apply SGF to every adjacent kernel pair in every state until
/// no more matches apply. Returns the applied transformations.
pub fn greedy_subgraph_fusion(sdfg: &mut Sdfg) -> Vec<Applied> {
    let mut applied = Vec::new();
    for state in 0..sdfg.states.len() {
        let mut i = 0;
        while i + 1 < sdfg.states[state].nodes.len() {
            match fuse_subgraph(sdfg, state, i) {
                Ok(a) => applied.push(a),
                Err(_) => i += 1,
            }
        }
    }
    applied
}

/// Greedily apply OTF fusion to every (producer, consumer) candidate pair
/// in every state until no more matches apply.
pub fn greedy_otf_fusion(sdfg: &mut Sdfg) -> Vec<Applied> {
    let mut applied = Vec::new();
    for state in 0..sdfg.states.len() {
        let mut progress = true;
        while progress {
            progress = false;
            let n = sdfg.states[state].nodes.len();
            'outer: for p in 0..n {
                for c in (p + 1)..n {
                    if fuse_otf(sdfg, state, p, c).map(|a| applied.push(a)).is_ok() {
                        progress = true;
                        break 'outer;
                    }
                }
            }
        }
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DataStore, Executor, NoHooks};
    use crate::graph::State;
    use crate::kernel::{Domain, Schedule, Stmt};
    use crate::storage::{Array3, Layout, StorageOrder};

    /// Build: tmp = 2*a ; out = tmp[-1] + tmp[+1]   (classic OTF shape)
    fn otf_sdfg() -> (Sdfg, DataId, DataId) {
        let mut g = Sdfg::new("otf");
        let l = Layout::new([8, 8, 2], [2, 2, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let tmp = g.add_container("tmp", l.clone(), true);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([8, 8, 2]);

        let mut p = Kernel::new("prod", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        p.stmts.push(Stmt::full(
            LValue::Field(tmp),
            Expr::c(2.0) * Expr::load(a, 0, 0, 0),
        ));
        // The producer must compute one extra cell each side so the
        // consumer can read tmp at +-1 (extent analysis output).
        p.stmts[0].extent = crate::kernel::Extent2 {
            i_lo: 1,
            i_hi: 1,
            j_lo: 0,
            j_hi: 0,
        };
        let mut c = Kernel::new("cons", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        c.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(tmp, -1, 0, 0) + Expr::load(tmp, 1, 0, 0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(p));
        s.nodes.push(DataflowNode::Kernel(c));
        g.add_state(s);
        (g, a, out)
    }

    fn run_and_get(g: &Sdfg, a: DataId, out: DataId) -> Array3 {
        let mut store = DataStore::for_sdfg(g);
        let l = g.layout_of(a);
        let mut arr = Array3::zeros(l.clone());
        let (hi, hj, hk) = (l.halo[0] as i64, l.halo[1] as i64, l.halo[2] as i64);
        let (ni, nj, nk) = (l.domain[0] as i64, l.domain[1] as i64, l.domain[2] as i64);
        for k in -hk..nk + hk {
            for j in -hj..nj + hj {
                for i in -hi..ni + hi {
                    arr.set(i, j, k, (i * 3 + j * 5 + k * 7) as f64);
                }
            }
        }
        *store.get_mut(a) = arr;
        Executor::serial().run(g, &mut store, &[], &mut NoHooks);
        store.get(out).clone()
    }

    #[test]
    fn otf_fusion_preserves_semantics() {
        let (mut g, a, out) = otf_sdfg();
        let before = run_and_get(&g, a, out);
        let applied = fuse_otf(&mut g, 0, 0, 1).expect("OTF should apply");
        assert_eq!(applied.kind, "otf");
        assert_eq!(applied.labels, vec!["prod".to_string(), "cons".to_string()]);
        assert_eq!(g.states[0].nodes.len(), 1);
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }

    #[test]
    fn otf_fusion_trades_memory_for_recomputation() {
        let (g, _, _) = otf_sdfg();
        let profile_sum = |g: &Sdfg| {
            g.states[0]
                .kernels()
                .map(|k| k.profile(&g.layout_fn()).bytes_total())
                .sum::<u64>()
        };
        let flops_sum = |g: &Sdfg| {
            g.states[0]
                .kernels()
                .map(|k| k.profile(&g.layout_fn()).flops)
                .sum::<u64>()
        };
        let bytes_before = profile_sum(&g);
        let flops_before = flops_sum(&g);
        let mut g2 = g.clone();
        fuse_otf(&mut g2, 0, 0, 1).unwrap();
        let bytes_after = profile_sum(&g2);
        let flops_after = flops_sum(&g2);
        assert!(bytes_after < bytes_before, "traffic must drop");
        assert!(flops_after >= flops_before, "recomputation may add flops");
    }

    #[test]
    fn otf_rejects_non_transient_intermediate() {
        let (mut g, _, _) = otf_sdfg();
        let tmp = g.find_container("tmp").unwrap();
        g.containers[tmp.0].transient = false;
        assert!(fuse_otf(&mut g, 0, 0, 1).is_err());
    }

    #[test]
    fn otf_rejects_second_reader() {
        let (mut g, _, _) = otf_sdfg();
        let tmp = g.find_container("tmp").unwrap();
        let out2 = g.add_container(
            "out2",
            g.containers[0].layout.clone(),
            false,
        );
        let mut extra = Kernel::new(
            "extra",
            Domain::from_shape([8, 8, 2]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        extra
            .stmts
            .push(Stmt::full(LValue::Field(out2), Expr::load(tmp, 0, 0, 0)));
        g.states[0].nodes.push(DataflowNode::Kernel(extra));
        assert!(fuse_otf(&mut g, 0, 0, 1).is_err());
    }

    /// Build: t = a + 1 ; out = t * 3  (pointwise chain, SGF shape)
    fn sgf_sdfg() -> (Sdfg, DataId, DataId) {
        let mut g = Sdfg::new("sgf");
        let l = Layout::new([8, 8, 4], [1, 1, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let t = g.add_container("t", l.clone(), true);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([8, 8, 4]);
        let mut k1 = Kernel::new("add1", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k1.stmts.push(Stmt::full(
            LValue::Field(t),
            Expr::load(a, 0, 0, 0) + Expr::c(1.0),
        ));
        let mut k2 = Kernel::new("mul3", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k2.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(t, 0, 0, 0) * Expr::c(3.0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k1));
        s.nodes.push(DataflowNode::Kernel(k2));
        g.add_state(s);
        (g, a, out)
    }

    #[test]
    fn sgf_fusion_preserves_semantics() {
        let (mut g, a, out) = sgf_sdfg();
        let before = run_and_get(&g, a, out);
        let applied = fuse_subgraph(&mut g, 0, 0).expect("SGF should apply");
        assert_eq!(applied.kind, "sgf");
        assert_eq!(g.states[0].nodes.len(), 1);
        assert_eq!(g.kernel_count(), 1);
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }

    #[test]
    fn sgf_rejects_offset_dependency() {
        let (mut g, _, _) = sgf_sdfg();
        // Make the consumer read t at an offset: needs OTF, not SGF.
        let t = g.find_container("t").unwrap();
        if let DataflowNode::Kernel(k2) = &mut g.states[0].nodes[1] {
            k2.stmts[0].expr = Expr::load(t, 1, 0, 0) * Expr::c(3.0);
        }
        assert!(fuse_subgraph(&mut g, 0, 0).is_err());
    }

    #[test]
    fn sgf_rejects_domain_mismatch() {
        let (mut g, _, _) = sgf_sdfg();
        if let DataflowNode::Kernel(k2) = &mut g.states[0].nodes[1] {
            k2.domain = Domain::from_shape([4, 4, 4]);
        }
        assert!(fuse_subgraph(&mut g, 0, 0).is_err());
    }

    #[test]
    fn sgf_merges_parallel_into_solver_order() {
        let (mut g, _, _) = sgf_sdfg();
        if let DataflowNode::Kernel(k2) = &mut g.states[0].nodes[1] {
            k2.k_order = KOrder::Forward;
        }
        let _ = fuse_subgraph(&mut g, 0, 0).expect("parallel+forward fuses");
        let k = g.states[0].kernels().next().unwrap();
        assert_eq!(k.k_order, KOrder::Forward);
        assert!(k.schedule.k_as_loop);
    }

    #[test]
    fn sgf_renumbers_locals() {
        let (mut g, _, _) = sgf_sdfg();
        // Give both kernels a local 0.
        for idx in 0..2 {
            if let DataflowNode::Kernel(k) = &mut g.states[0].nodes[idx] {
                k.n_locals = 1;
                k.stmts.insert(
                    0,
                    Stmt::full(LValue::Local(LocalId(0)), Expr::c(idx as f64)),
                );
            }
        }
        fuse_subgraph(&mut g, 0, 0).unwrap();
        let k = g.states[0].kernels().next().unwrap();
        assert_eq!(k.n_locals, 2);
        // Second kernel's local must now be LocalId(1).
        let has_l1 = k
            .stmts
            .iter()
            .any(|s| matches!(s.lvalue, LValue::Local(LocalId(1))));
        assert!(has_l1);
    }

    // ------------------------------------------------------------------
    // Edge cases: mismatched halo radii, in-place accumulates, and 1-wide
    // domains (degenerate boxes in the spirit of the overlap inverted-box
    // regression).

    /// OTF where the producer (radius 1) and consumer (radius 2) have
    /// mismatched stencil radii: the splice shifts the producer expression
    /// out to the consumer's offsets, so the fused kernel reads the
    /// original input at radius 2. With enough halo this is legal and
    /// bit-exact.
    #[test]
    fn otf_mismatched_halo_radii_is_bit_exact() {
        let mut g = Sdfg::new("radii");
        let l = Layout::new([8, 8, 2], [3, 3, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let tmp = g.add_container("tmp", l.clone(), true);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([8, 8, 2]);
        // Producer: radius-1 average, computed 2 wide each side so the
        // consumer can read it at +-2.
        let mut p = Kernel::new("prod", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        p.stmts.push(Stmt::full(
            LValue::Field(tmp),
            (Expr::load(a, -1, 0, 0) + Expr::load(a, 1, 0, 0)) * Expr::c(0.5),
        ));
        p.stmts[0].extent = crate::kernel::Extent2 {
            i_lo: 2,
            i_hi: 2,
            j_lo: 0,
            j_hi: 0,
        };
        // Consumer: radius-2 difference of the intermediate.
        let mut c = Kernel::new("cons", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        c.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(tmp, 2, 0, 0) - Expr::load(tmp, -2, 0, 0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(p));
        s.nodes.push(DataflowNode::Kernel(c));
        g.add_state(s);

        let before = run_and_get(&g, a, out);
        let applied = fuse_otf(&mut g, 0, 0, 1).expect("mismatched radii fuse via OTF");
        assert_eq!(applied.kind, "otf");
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
        // The fused kernel now reads `a` at the combined radius 3.
        let k = g.states[0].kernels().next().unwrap();
        let max_radius = k
            .stmts
            .iter()
            .flat_map(|st| st.expr.loads())
            .filter(|(d, _)| *d == a)
            .map(|(_, o)| o.i.abs().max(o.j.abs()))
            .max()
            .unwrap();
        assert_eq!(max_radius, 3);
    }

    /// SGF between kernels whose *input* stencils have different radii
    /// (1 vs 2): legal as long as the cross-kernel dependency itself is
    /// pointwise, and bit-exact.
    #[test]
    fn sgf_mismatched_input_radii_is_bit_exact() {
        let mut g = Sdfg::new("radii2");
        let l = Layout::new([8, 8, 4], [2, 2, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let t = g.add_container("t", l.clone(), true);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([8, 8, 4]);
        let mut k1 = Kernel::new("r1", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k1.stmts.push(Stmt::full(
            LValue::Field(t),
            Expr::load(a, -1, 0, 0) + Expr::load(a, 1, 0, 0),
        ));
        let mut k2 = Kernel::new("r2", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k2.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(t, 0, 0, 0) + Expr::load(a, -2, 0, 0) + Expr::load(a, 2, 0, 0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k1));
        s.nodes.push(DataflowNode::Kernel(k2));
        g.add_state(s);

        let before = run_and_get(&g, a, out);
        fuse_subgraph(&mut g, 0, 0).expect("pointwise link fuses despite radius mismatch");
        assert_eq!(g.kernel_count(), 1);
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }

    /// SGF with an in-place accumulate in the second kernel
    /// (`out = out + ...` reading its own lvalue pointwise) stays legal
    /// and bit-exact.
    #[test]
    fn sgf_in_place_accumulate_is_bit_exact() {
        let (mut g, a, out) = sgf_sdfg();
        let t = g.find_container("t").unwrap();
        if let DataflowNode::Kernel(k2) = &mut g.states[0].nodes[1] {
            // out = out + t  (accumulate into the output in place).
            k2.stmts[0].expr = Expr::load(out, 0, 0, 0) + Expr::load(t, 0, 0, 0);
        }
        let before = run_and_get(&g, a, out);
        fuse_subgraph(&mut g, 0, 0).expect("in-place accumulate fuses");
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
    }

    /// OTF into an accumulate statement that writes the producer's own
    /// input: legal when pointwise (`a = a + f(a)`), rejected when the
    /// splice would read the written field at a horizontal offset.
    #[test]
    fn otf_accumulate_into_producer_input() {
        // Pointwise: a = a + tmp with tmp = 2*a  ->  a = a + 2*a. Legal.
        let mut g = Sdfg::new("acc");
        let l = Layout::new([8, 8, 2], [1, 1, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let tmp = g.add_container("tmp", l, true);
        let dom = Domain::from_shape([8, 8, 2]);
        let mut p = Kernel::new("prod", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        p.stmts.push(Stmt::full(
            LValue::Field(tmp),
            Expr::c(2.0) * Expr::load(a, 0, 0, 0),
        ));
        let mut c = Kernel::new("acc", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        c.stmts.push(Stmt::full(
            LValue::Field(a),
            Expr::load(a, 0, 0, 0) + Expr::load(tmp, 0, 0, 0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(p.clone()));
        s.nodes.push(DataflowNode::Kernel(c));
        g.add_state(s);
        let before = run_and_get(&g, a, a);
        let mut fused = g.clone();
        fuse_otf(&mut fused, 0, 0, 1).expect("pointwise in-place accumulate fuses");
        let after = run_and_get(&fused, a, a);
        assert_eq!(before.max_abs_diff(&after), 0.0);

        // Offset variant: a = a + tmp[+1] would splice to a read of `a`
        // at +1 inside a kernel writing `a` — a cross-thread hazard the
        // validator must reject.
        let mut g2 = Sdfg::new("acc2");
        let l2 = Layout::new([8, 8, 2], [2, 2, 0], StorageOrder::IContiguous, 1);
        let a2 = g2.add_container("a", l2.clone(), false);
        let tmp2 = g2.add_container("tmp", l2, true);
        let mut p2 = Kernel::new("prod", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        p2.stmts.push(Stmt::full(
            LValue::Field(tmp2),
            Expr::c(2.0) * Expr::load(a2, 0, 0, 0),
        ));
        p2.stmts[0].extent = crate::kernel::Extent2 {
            i_lo: 1,
            i_hi: 1,
            j_lo: 0,
            j_hi: 0,
        };
        let mut c2 = Kernel::new("acc", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        c2.stmts.push(Stmt::full(
            LValue::Field(a2),
            Expr::load(a2, 0, 0, 0) + Expr::load(tmp2, 1, 0, 0),
        ));
        let mut s2 = State::new("s");
        s2.nodes.push(DataflowNode::Kernel(p2));
        s2.nodes.push(DataflowNode::Kernel(c2));
        g2.add_state(s2);
        assert!(fuse_otf(&mut g2, 0, 0, 1).is_err(), "offset accumulate must be rejected");
    }

    /// Fusions on 1-wide domains (the degenerate boxes that inverted the
    /// overlap split in PR 6): OTF across j on an i-width-1 domain and SGF
    /// on a 1x1 column domain both stay bit-exact.
    #[test]
    fn fusion_on_one_wide_domains_is_bit_exact() {
        // OTF: domain [1, 8, 4], consumer reads tmp at j +- 1.
        let mut g = Sdfg::new("thin");
        let l = Layout::new([1, 8, 4], [1, 2, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let tmp = g.add_container("tmp", l.clone(), true);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([1, 8, 4]);
        let mut p = Kernel::new("prod", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        p.stmts.push(Stmt::full(
            LValue::Field(tmp),
            Expr::c(2.0) * Expr::load(a, 0, 0, 0),
        ));
        p.stmts[0].extent = crate::kernel::Extent2 {
            i_lo: 0,
            i_hi: 0,
            j_lo: 1,
            j_hi: 1,
        };
        let mut c = Kernel::new("cons", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        c.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(tmp, 0, -1, 0) + Expr::load(tmp, 0, 1, 0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(p));
        s.nodes.push(DataflowNode::Kernel(c));
        g.add_state(s);
        let before = run_and_get(&g, a, out);
        fuse_otf(&mut g, 0, 0, 1).expect("OTF applies on a 1-wide domain");
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);

        // SGF: 1x1 column domain, pointwise chain.
        let mut g2 = Sdfg::new("column");
        let l2 = Layout::new([1, 1, 6], [0, 0, 0], StorageOrder::IContiguous, 1);
        let a2 = g2.add_container("a", l2.clone(), false);
        let t2 = g2.add_container("t", l2.clone(), true);
        let o2 = g2.add_container("out", l2, false);
        let dom2 = Domain::from_shape([1, 1, 6]);
        let mut k1 = Kernel::new("add", dom2, KOrder::Parallel, Schedule::gpu_horizontal());
        k1.stmts.push(Stmt::full(
            LValue::Field(t2),
            Expr::load(a2, 0, 0, 0) + Expr::c(1.0),
        ));
        let mut k2 = Kernel::new("mul", dom2, KOrder::Parallel, Schedule::gpu_horizontal());
        k2.stmts.push(Stmt::full(
            LValue::Field(o2),
            Expr::load(t2, 0, 0, 0) * Expr::c(3.0),
        ));
        let mut s2 = State::new("s");
        s2.nodes.push(DataflowNode::Kernel(k1));
        s2.nodes.push(DataflowNode::Kernel(k2));
        g2.add_state(s2);
        let before2 = run_and_get(&g2, a2, o2);
        fuse_subgraph(&mut g2, 0, 0).expect("SGF applies on a 1x1 column");
        assert_eq!(g2.kernel_count(), 1);
        let after2 = run_and_get(&g2, a2, o2);
        assert_eq!(before2.max_abs_diff(&after2), 0.0);
    }

    #[test]
    fn greedy_fusions_reduce_kernel_count() {
        let (mut g, a, out) = sgf_sdfg();
        let before = run_and_get(&g, a, out);
        let applied = greedy_subgraph_fusion(&mut g);
        assert_eq!(applied.len(), 1);
        assert_eq!(g.kernel_count(), 1);
        let after = run_and_get(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);

        let (mut g2, a2, out2) = otf_sdfg();
        let before2 = run_and_get(&g2, a2, out2);
        let applied2 = greedy_otf_fusion(&mut g2);
        assert_eq!(applied2.len(), 1);
        let after2 = run_and_get(&g2, a2, out2);
        assert_eq!(before2.max_abs_diff(&after2), 0.0);
    }
}
