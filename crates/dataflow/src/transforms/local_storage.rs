//! Local-storage transformations (Section VI-A2).
//!
//! Three rewrites that "avoid load and store operations from or to global
//! memory":
//!
//! 1. temporaries only accessed within a single thread become local
//!    variables ([`demote_transients_to_locals`]);
//! 2. load elision for overwritten-before-read fields is subsumed by (1)
//!    plus dead-transient elimination in `passes`;
//! 3. values used in consecutive forward/backward iterations are buffered
//!    in registers ([`apply_register_caching`]) — they "need only to be
//!    loaded from global memory on their first access".

use crate::exec::validate_kernel;
use crate::expr::{DataId, Expr, LocalId};
use crate::graph::{DataflowNode, Sdfg};
use crate::kernel::{KOrder, Kernel, LValue};
use crate::transforms::{Applied, UsageMap};

/// Mark fields of `kernel` for register caching: any field read at more
/// than one vertical offset inside a sequential-K kernel, or both read and
/// written by it, is kept in registers across iterations.
///
/// Returns the number of fields newly cached. Affects the modeled traffic
/// (see [`Kernel::profile`]); execution semantics are unchanged.
pub fn apply_register_caching(kernel: &mut Kernel) -> usize {
    if !kernel.schedule.k_as_loop && kernel.k_order == KOrder::Parallel {
        return 0;
    }
    let writes = kernel.writes();
    let mut added = 0;
    for (d, offsets) in kernel.reads() {
        let multi_k = offsets
            .iter()
            .map(|o| o.k)
            .collect::<std::collections::BTreeSet<_>>()
            .len()
            > 1;
        if (multi_k || writes.contains(&d)) && !kernel.cached_fields.contains(&d) {
            kernel.cached_fields.push(d);
            added += 1;
        }
    }
    added
}

/// Apply register caching across the whole SDFG.
pub fn cache_registers_everywhere(sdfg: &mut Sdfg) -> Vec<Applied> {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut out = Vec::new();
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            if let DataflowNode::Kernel(k) = node {
                if apply_register_caching(k) > 0 {
                    out.push(Applied {
                        kind: "register-cache",
                        labels: vec![k.name.clone()],
                    });
                }
            }
        }
    }
    out
}

/// Demote a transient container to a per-thread local inside one kernel.
///
/// Applies when, program-wide, `data` is written and read *only* by this
/// kernel, and every access is at zero offset (single-thread access). The
/// container's traffic disappears from the kernel's memlets entirely.
pub fn demote_transient_to_local(
    sdfg: &mut Sdfg,
    state: usize,
    node: usize,
    data: DataId,
) -> Result<Applied, String> {
    if !sdfg.containers[data.0].transient {
        return Err(format!("'{}' is not transient", sdfg.containers[data.0].name));
    }
    // Program-wide exclusivity.
    let usage = UsageMap::build(sdfg);
    let kernel = match &sdfg.states[state].nodes[node] {
        DataflowNode::Kernel(k) => k,
        other => return Err(format!("not a kernel: {other:?}")),
    };
    let local_reads = if kernel.reads_data(data) { 1 } else { 0 };
    let local_writes = if kernel.writes_data(data) { 1 } else { 0 };
    if usage.reads[data.0] != local_reads || usage.writes[data.0] != local_writes {
        return Err("container is accessed outside this kernel".into());
    }
    if local_writes == 0 {
        return Err("kernel never writes the container".into());
    }
    // Zero-offset accesses only (single-thread).
    for s in &kernel.stmts {
        for (d, o) in s.expr.loads() {
            if d == data && (o.i != 0 || o.j != 0 || o.k != 0) {
                return Err(format!("offset access {o} prevents demotion"));
            }
        }
    }
    // All statements writing `data` must cover at least the range of the
    // statements reading it; we conservatively require identical k-ranges
    // and regions between each write and every read statement.
    let mut rewritten = kernel.clone();
    let local = LocalId(rewritten.n_locals);
    rewritten.n_locals += 1;
    for s in &mut rewritten.stmts {
        if matches!(s.lvalue, LValue::Field(d) if d == data) {
            s.lvalue = LValue::Local(local);
        }
        s.expr = std::mem::replace(&mut s.expr, Expr::Const(0.0)).rewrite(&|e| match e {
            Expr::Load(d, _) if d == data => Expr::Local(local),
            other => other,
        });
    }
    validate_kernel(&rewritten).map_err(|e| format!("demotion produced invalid kernel: {e}"))?;
    let label = rewritten.name.clone();
    sdfg.states[state].nodes[node] = DataflowNode::Kernel(rewritten);
    Ok(Applied {
        kind: "local-demote",
        labels: vec![label, sdfg.containers[data.0].name.clone()],
    })
}

/// Demote every eligible transient in every kernel.
pub fn demote_transients_to_locals(sdfg: &mut Sdfg) -> Vec<Applied> {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut out = Vec::new();
    let n_containers = sdfg.containers.len();
    for state in 0..sdfg.states.len() {
        for node in 0..sdfg.states[state].nodes.len() {
            for c in 0..n_containers {
                if let Ok(a) = demote_transient_to_local(sdfg, state, node, DataId(c)) {
                    out.push(a);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DataStore, Executor, NoHooks};
    use crate::graph::State;
    use crate::kernel::{Domain, Schedule, Stmt};
    use crate::storage::{Array3, Layout, StorageOrder};

    #[test]
    fn register_caching_targets_vertical_multi_offset_reads() {
        let mut g = Sdfg::new("t");
        let l = Layout::new([4, 4, 8], [0, 0, 1], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let b = g.add_container("b", l.clone(), false);
        let out = g.add_container("out", l, false);
        let mut k = Kernel::new(
            "solver",
            Domain::from_shape([4, 4, 8]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        // a read at k and k-1 (cache candidate); b read once (no).
        k.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(a, 0, 0, 0) + Expr::load(a, 0, 0, -1) + Expr::load(b, 0, 0, 0),
        ));
        let n = apply_register_caching(&mut k);
        assert_eq!(n, 1);
        assert_eq!(k.cached_fields, vec![a]);
        // Idempotent.
        assert_eq!(apply_register_caching(&mut k), 0);
        drop(g);
    }

    #[test]
    fn register_caching_skips_pure_parallel_kernels() {
        let l = Layout::new([4, 4, 8], [0, 0, 1], StorageOrder::IContiguous, 1);
        let _ = l;
        let mut k = Kernel::new(
            "par",
            Domain::from_shape([4, 4, 8]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(DataId(1)),
            Expr::load(DataId(0), 0, 0, 0),
        ));
        assert_eq!(apply_register_caching(&mut k), 0);
    }

    fn demote_sdfg() -> (Sdfg, DataId, DataId, DataId) {
        let mut g = Sdfg::new("d");
        let l = Layout::new([6, 6, 4], [0, 0, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let t = g.add_container("t", l.clone(), true);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([6, 6, 4]);
        let mut k = Kernel::new("fusedop", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k.stmts.push(Stmt::full(
            LValue::Field(t),
            Expr::load(a, 0, 0, 0) * Expr::c(2.0),
        ));
        k.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(t, 0, 0, 0) + Expr::c(1.0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        (g, a, t, out)
    }

    #[test]
    fn demotion_preserves_semantics_and_removes_traffic() {
        let (mut g, a, t, out) = demote_sdfg();
        let run = |g: &Sdfg| {
            let mut store = DataStore::for_sdfg(g);
            *store.get_mut(a) = Array3::from_fn(g.layout_of(a), |i, j, k| (i + j * 2 + k) as f64);
            Executor::serial().run(g, &mut store, &[], &mut NoHooks);
            store.get(out).clone()
        };
        let before = run(&g);
        let bytes_before = g.states[0]
            .kernels()
            .next()
            .unwrap()
            .profile(&g.layout_fn())
            .bytes_total();
        demote_transient_to_local(&mut g, 0, 0, t).expect("demotion applies");
        let after = run(&g);
        assert_eq!(before.max_abs_diff(&after), 0.0);
        let k = g.states[0].kernels().next().unwrap();
        assert!(!k.reads_data(t));
        assert!(!k.writes_data(t));
        let bytes_after = k.profile(&g.layout_fn()).bytes_total();
        assert!(bytes_after < bytes_before);
    }

    #[test]
    fn demotion_rejects_offset_reads() {
        let (mut g, _, t, _) = demote_sdfg();
        if let DataflowNode::Kernel(k) = &mut g.states[0].nodes[0] {
            k.stmts[1].expr = Expr::load(t, 0, 0, 0) + Expr::load(t, 1, 0, 0);
        }
        // (This kernel is itself invalid under the parallel model, but the
        // demotion must already refuse on the offset check.)
        assert!(demote_transient_to_local(&mut g, 0, 0, t).is_err());
    }

    #[test]
    fn demotion_rejects_outside_readers() {
        let (mut g, _, t, _) = demote_sdfg();
        let l = g.containers[0].layout.clone();
        let extra_out = g.add_container("x", l, false);
        let mut k2 = Kernel::new(
            "reader",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k2.stmts
            .push(Stmt::full(LValue::Field(extra_out), Expr::load(t, 0, 0, 0)));
        g.states[0].nodes.push(DataflowNode::Kernel(k2));
        assert!(demote_transient_to_local(&mut g, 0, 0, t).is_err());
    }

    #[test]
    fn demotion_rejects_non_transient() {
        let (mut g, a, _, _) = demote_sdfg();
        assert!(demote_transient_to_local(&mut g, 0, 0, a).is_err());
    }

    #[test]
    fn bulk_demotion_finds_the_candidate() {
        let (mut g, _, t, _) = demote_sdfg();
        let applied = demote_transients_to_locals(&mut g);
        assert_eq!(applied.len(), 1);
        assert_eq!(applied[0].kind, "local-demote");
        assert!(applied[0].labels.contains(&g.containers[t.0].name));
    }
}
