//! Power-operator strength reduction (Section VI-C1).
//!
//! The Smagorinsky-diffusion stencil contains
//! `vort = dt * (delpc ** 2.0 + vort ** 2.0) ** 0.5`, which generates
//! general-purpose `pow` calls that are "highly inefficient". This
//! transformation "converts powers of positive and negative integers, as
//! well as 0.5, into multiplication loops and sqrt respectively":
//!
//! * `x ** n` for integral `|n| <= 8` → [`Expr::Powi`] (repeated multiply);
//! * `x ** 0.5` → `sqrt(x)`;
//! * `x ** -0.5` → `1 / sqrt(x)`;
//! * `x ** 1.0` → `x`; `x ** 0.0` → `1`.

use crate::expr::{BinOp, Expr, UnOp};
use crate::graph::{DataflowNode, Sdfg};
use crate::transforms::Applied;

/// Rewrite a single expression. Returns the new tree and how many pow
/// sites were reduced.
pub fn reduce_powers(expr: Expr) -> (Expr, usize) {
    let count = std::cell::Cell::new(0usize);
    let out = expr.rewrite(&|e| match e {
        Expr::Bin(BinOp::Pow, a, b) => {
            if let Expr::Const(n) = *b {
                if n == 0.0 {
                    count.set(count.get() + 1);
                    return Expr::Const(1.0);
                }
                if n == 1.0 {
                    count.set(count.get() + 1);
                    return *a;
                }
                if n == 0.5 {
                    count.set(count.get() + 1);
                    return Expr::Un(UnOp::Sqrt, a);
                }
                if n == -0.5 {
                    count.set(count.get() + 1);
                    return Expr::bin(BinOp::Div, Expr::Const(1.0), Expr::Un(UnOp::Sqrt, a));
                }
                if n.fract() == 0.0 && n.abs() <= 8.0 {
                    count.set(count.get() + 1);
                    return Expr::Powi(a, n as i32);
                }
            }
            Expr::Bin(BinOp::Pow, a, b)
        }
        other => other,
    });
    (out, count.get())
}

/// Apply the reduction to every statement of every kernel in the program.
pub fn optimize_powers(sdfg: &mut Sdfg) -> Vec<Applied> {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut out = Vec::new();
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            if let DataflowNode::Kernel(k) = node {
                let mut total = 0;
                for s in &mut k.stmts {
                    let expr = std::mem::replace(&mut s.expr, Expr::Const(0.0));
                    let (reduced, n) = reduce_powers(expr);
                    s.expr = reduced;
                    total += n;
                }
                if total > 0 {
                    out.push(Applied {
                        kind: "power",
                        labels: vec![k.name.clone()],
                    });
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DataId, EvalCtx, LocalId, Offset3, ParamId};
    use crate::storage::Axis;

    struct C;
    impl EvalCtx for C {
        fn load(&self, d: DataId, _: Offset3) -> f64 {
            1.5 + d.0 as f64
        }
        fn local(&self, _: LocalId) -> f64 {
            0.0
        }
        fn param(&self, _: ParamId) -> f64 {
            0.1
        }
        fn index(&self, _: Axis) -> i64 {
            0
        }
    }

    fn pow(a: Expr, n: f64) -> Expr {
        Expr::bin(BinOp::Pow, a, Expr::Const(n))
    }

    #[test]
    fn smagorinsky_expression_fully_reduces() {
        // dt * (delpc**2 + vort**2) ** 0.5
        let delpc = Expr::load(DataId(0), 0, 0, 0);
        let vort = Expr::load(DataId(1), 0, 0, 0);
        let e = Expr::Param(ParamId(0)) * pow(pow(delpc, 2.0) + pow(vort, 2.0), 0.5);
        assert_eq!(e.transcendentals(), 3);
        let before = e.eval(&C);
        let (r, n) = reduce_powers(e);
        assert_eq!(n, 3);
        assert_eq!(r.transcendentals(), 0);
        let after = r.eval(&C);
        assert!((before - after).abs() < 1e-14);
    }

    #[test]
    fn negative_and_identity_exponents() {
        let x = Expr::load(DataId(0), 0, 0, 0); // 1.5
        let cases = [
            (pow(x.clone(), -2.0), 1.0 / 2.25),
            (pow(x.clone(), 1.0), 1.5),
            (pow(x.clone(), 0.0), 1.0),
            (pow(x.clone(), -0.5), 1.0 / 1.5f64.sqrt()),
        ];
        for (e, expect) in cases {
            let (r, n) = reduce_powers(e);
            assert!(n >= 1);
            assert_eq!(r.transcendentals(), 0);
            assert!((r.eval(&C) - expect).abs() < 1e-14);
        }
    }

    #[test]
    fn non_constant_and_large_exponents_survive() {
        let x = Expr::load(DataId(0), 0, 0, 0);
        let (r1, n1) = reduce_powers(Expr::bin(
            BinOp::Pow,
            x.clone(),
            Expr::Param(ParamId(0)),
        ));
        assert_eq!(n1, 0);
        assert_eq!(r1.transcendentals(), 1);
        let (r2, n2) = reduce_powers(pow(x.clone(), 13.0));
        assert_eq!(n2, 0);
        assert_eq!(r2.transcendentals(), 1);
        let (r3, n3) = reduce_powers(pow(x, 2.5));
        assert_eq!(n3, 0);
        assert_eq!(r3.transcendentals(), 1);
    }

    #[test]
    fn nested_pows_all_reduced() {
        let x = Expr::load(DataId(0), 0, 0, 0);
        let e = pow(pow(x.clone(), 2.0), 3.0) + pow(x, 4.0);
        let before = e.eval(&C);
        let (r, n) = reduce_powers(e);
        assert_eq!(n, 3);
        assert!((r.eval(&C) - before).abs() < 1e-9);
    }
}
