//! Schedule-assignment and region-realization transformations.
//!
//! Covers the schedule attribute sweeps of Section VI-A4 (assigning the
//! tuned `[Interval, Operation, K, J, I]` horizontal and
//! `[J, I, Interval, Operation, K]` vertical schedules *en masse*) and the
//! Table III "Split regions to multiple kernels" row: realizing horizontal
//! regions as separate small kernels instead of predicated full-domain
//! statements (Section V-A lists both options).

use crate::graph::{DataflowNode, Sdfg};
use crate::kernel::{Domain, KOrder, Kernel, Region2, RegionStrategy, Schedule};
use crate::transforms::Applied;

/// Assign `horizontal` to every parallel kernel and `vertical` to every
/// forward/backward solver (the *en masse* application of the locally
/// tuned schedules).
pub fn assign_schedules(sdfg: &mut Sdfg, horizontal: &Schedule, vertical: &Schedule) -> usize {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut n = 0;
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            if let DataflowNode::Kernel(k) = node {
                let tmpl = if k.k_order == KOrder::Parallel {
                    horizontal
                } else {
                    vertical
                };
                let mut s = tmpl.clone();
                s.regions = k.schedule.regions;
                if k.k_order != KOrder::Parallel {
                    s.k_as_loop = true;
                }
                if s != k.schedule {
                    k.schedule = s;
                    n += 1;
                }
            }
        }
    }
    n
}

/// Resolve a region into a concrete horizontal sub-domain of `d`.
fn region_domain(r: &Region2, d: &Domain) -> Domain {
    let (il, ih) = r.i.resolve(d.start[0], d.end[0]);
    let (jl, jh) = r.j.resolve(d.start[1], d.end[1]);
    Domain {
        start: [il, jl, d.start[2]],
        end: [ih, jh, d.end[2]],
    }
}

/// Split one kernel's region statements into separate kernels over the
/// region sub-domains, preserving statement order.
///
/// Statements are grouped into runs of same "regionness"; each run with a
/// region becomes its own kernel whose domain *is* the region, with the
/// region predicate dropped. Returns `Err` when the kernel has no region
/// statements.
pub fn split_regions_of(kernel: &Kernel) -> Result<Vec<Kernel>, String> {
    if kernel.stmts.iter().all(|s| s.region.is_none()) {
        return Err(format!("kernel '{}' has no region statements", kernel.name));
    }
    let mut out: Vec<Kernel> = Vec::new();
    let mut part = 0usize;
    for s in &kernel.stmts {
        let want_region = s.region;
        let start_new = match out.last() {
            None => true,
            Some(last) => {
                let last_is_region = last.domain != kernel.domain;
                match want_region {
                    // A full statement can join a previous full kernel.
                    None => last_is_region,
                    // Region statements each get their own kernel (they may
                    // target different edges).
                    Some(_) => true,
                }
            }
        };
        if start_new {
            let domain = match &want_region {
                Some(r) => region_domain(r, &kernel.domain),
                None => kernel.domain,
            };
            let mut k = Kernel::new(
                format!("{}#{}", kernel.name, part),
                domain,
                kernel.k_order,
                Schedule {
                    regions: RegionStrategy::SplitKernels,
                    ..kernel.schedule.clone()
                },
            );
            k.n_locals = kernel.n_locals;
            k.cached_fields = kernel.cached_fields.clone();
            out.push(k);
            part += 1;
        }
        let mut stmt = s.clone();
        stmt.region = None;
        out.last_mut().unwrap().stmts.push(stmt);
    }
    Ok(out)
}

/// Split regions across the whole SDFG. Kernels without regions are left
/// untouched; kernels with regions are replaced in place by their splits.
pub fn split_regions(sdfg: &mut Sdfg) -> Vec<Applied> {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut applied = Vec::new();
    for state in &mut sdfg.states {
        let mut new_nodes = Vec::with_capacity(state.nodes.len());
        for node in state.nodes.drain(..) {
            match node {
                DataflowNode::Kernel(k) if k.stmts.iter().any(|s| s.region.is_some()) => {
                    let parts = split_regions_of(&k).expect("checked regions exist");
                    applied.push(Applied {
                        kind: "region-split",
                        labels: vec![k.name.clone()],
                    });
                    for p in parts {
                        new_nodes.push(DataflowNode::Kernel(p));
                    }
                }
                other => new_nodes.push(other),
            }
        }
        state.nodes = new_nodes;
    }
    applied
}

/// Remove region statements that do not apply on this rank ("region
/// pruning", Table III): in a distributed run, only ranks holding a tile
/// edge or corner execute the specialized computations. `keep` decides,
/// per region, whether this rank needs it.
pub fn prune_regions(sdfg: &mut Sdfg, keep: &impl Fn(&Region2) -> bool) -> Vec<Applied> {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut applied = Vec::new();
    for state in &mut sdfg.states {
        for node in &mut state.nodes {
            if let DataflowNode::Kernel(k) = node {
                let before = k.stmts.len();
                k.stmts.retain(|s| match &s.region {
                    Some(r) => keep(r),
                    None => true,
                });
                if k.stmts.len() != before {
                    applied.push(Applied {
                        kind: "region-prune",
                        labels: vec![k.name.clone()],
                    });
                }
            }
        }
        // Kernels left with no statements disappear entirely.
        state.nodes.retain(|n| match n {
            DataflowNode::Kernel(k) => !k.stmts.is_empty(),
            _ => true,
        });
    }
    applied
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DataStore, Executor, NoHooks};
    use crate::expr::{DataId, Expr};
    use crate::graph::State;
    use crate::kernel::{AxisInterval, Extent2, LValue, Stmt};
    use crate::storage::{Layout, StorageOrder};

    fn region_sdfg() -> (Sdfg, DataId, DataId) {
        let mut g = Sdfg::new("r");
        let l = Layout::new([8, 8, 2], [1, 1, 0], StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let out = g.add_container("out", l, false);
        let dom = Domain::from_shape([8, 8, 2]);
        let mut k = Kernel::new("flux", dom, KOrder::Parallel, Schedule::gpu_horizontal());
        k.stmts.push(Stmt::full(
            LValue::Field(out),
            Expr::load(a, 0, 0, 0) * Expr::c(2.0),
        ));
        // Edge correction on j = j_start, and one on i = i_end - 1.
        k.stmts.push(Stmt {
            lvalue: LValue::Field(out),
            expr: Expr::load(a, 0, 0, 0) * Expr::c(10.0),
            k_range: AxisInterval::FULL,
            region: Some(Region2 {
                i: AxisInterval::FULL,
                j: AxisInterval::at_start(0),
            }),
            extent: Extent2::ZERO,
        });
        k.stmts.push(Stmt {
            lvalue: LValue::Field(out),
            expr: Expr::load(a, 0, 0, 0) * Expr::c(100.0),
            k_range: AxisInterval::FULL,
            region: Some(Region2 {
                i: AxisInterval::at_end(-1),
                j: AxisInterval::FULL,
            }),
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        (g, a, out)
    }

    fn run(g: &Sdfg, a: DataId, out: DataId) -> crate::storage::Array3 {
        let mut store = DataStore::for_sdfg(g);
        *store.get_mut(a) =
            crate::storage::Array3::from_fn(g.layout_of(a), |i, j, k| (1 + i + j * 8 + k) as f64);
        Executor::serial().run(g, &mut store, &[], &mut NoHooks);
        store.get(out).clone()
    }

    #[test]
    fn split_regions_preserves_semantics() {
        let (mut g, a, out) = region_sdfg();
        let before = run(&g, a, out);
        let applied = split_regions(&mut g);
        assert_eq!(applied.len(), 1);
        // 1 full kernel + 2 region kernels.
        assert_eq!(g.kernel_count(), 3);
        let after = run(&g, a, out);
        assert_eq!(before.max_abs_diff(&after), 0.0);
        // Region kernels must carry the split strategy and tiny domains.
        let kernels: Vec<&Kernel> = g.states[0].kernels().collect();
        assert_eq!(kernels[1].domain.horizontal_points(), 8);
        assert_eq!(kernels[2].domain.horizontal_points(), 8);
        assert!(kernels
            .iter()
            .all(|k| k.schedule.regions == RegionStrategy::SplitKernels));
    }

    #[test]
    fn split_reduces_modeled_traffic() {
        let (mut g, _, _) = region_sdfg();
        let traffic = |g: &Sdfg| -> u64 {
            g.states[0]
                .kernels()
                .map(|k| k.profile(&g.layout_fn()).bytes_total())
                .sum()
        };
        let before = traffic(&g);
        split_regions(&mut g);
        let after = traffic(&g);
        assert!(after < before, "{after} !< {before}");
    }

    #[test]
    fn split_rejects_region_free_kernel() {
        let (g, _, _) = region_sdfg();
        let mut plain = g.states[0].kernels().next().unwrap().clone();
        plain.stmts.retain(|s| s.region.is_none());
        assert!(split_regions_of(&plain).is_err());
    }

    #[test]
    fn prune_removes_inapplicable_regions() {
        let (mut g, a, out) = region_sdfg();
        // This "rank" holds no j_start edge: prune regions touching it.
        let applied = prune_regions(&mut g, &|r| r.j != AxisInterval::at_start(0));
        assert_eq!(applied.len(), 1);
        let k = g.states[0].kernels().next().unwrap();
        assert_eq!(k.stmts.len(), 2);
        // Semantics now differ on the pruned edge but match elsewhere.
        let res = run(&g, a, out);
        assert_eq!(res.get(3, 0, 0), 2.0 * (1 + 3) as f64, "edge no longer specialized");
    }

    #[test]
    fn prune_drops_empty_kernels() {
        let (mut g, _, _) = region_sdfg();
        // Make a kernel with ONLY region stmts, then prune everything.
        if let DataflowNode::Kernel(k) = &mut g.states[0].nodes[0] {
            k.stmts.remove(0);
        }
        prune_regions(&mut g, &|_| false);
        assert_eq!(g.kernel_count(), 0);
    }

    #[test]
    fn assign_schedules_respects_korder() {
        let (mut g, _, _) = region_sdfg();
        // Add a vertical solver.
        let l = g.containers[0].layout.clone();
        let x = g.add_container("x", l, false);
        let mut vk = Kernel::new(
            "vsolve",
            Domain::from_shape([8, 8, 2]),
            KOrder::Forward,
            Schedule::default_unoptimized(),
        );
        vk.stmts
            .push(Stmt::full(LValue::Field(x), Expr::load(x, 0, 0, -1)));
        g.states[0].nodes.push(DataflowNode::Kernel(vk));

        let n = assign_schedules(&mut g, &Schedule::gpu_horizontal(), &Schedule::gpu_vertical());
        assert!(n >= 1);
        let ks: Vec<&Kernel> = g.states[0].kernels().collect();
        assert!(!ks[0].schedule.k_as_loop, "horizontal stays a 3-D map");
        assert!(ks[1].schedule.k_as_loop, "solver keeps its K loop");
    }
}
