//! Tiling transformations — the "tiling and tile sizes in each
//! dimension" schedule attribute of Section V-A.
//!
//! Tiling does not change execution semantics (the executor iterates the
//! same points); it changes the *blocked working set* the CPU cache model
//! sees, and is one of the four local-optimization aspects of
//! Section VI-A ("we search the available space on a representative
//! horizontal stencil [...] and apply the resulting scheme en masse").

use crate::graph::{DataflowNode, Sdfg};
use crate::kernel::Kernel;
use crate::model::CostModel;
use crate::transforms::Applied;

/// Set a kernel's horizontal tile sizes (clamped to its domain).
pub fn apply_tiling(kernel: &mut Kernel, tile: [usize; 2]) {
    let ni = kernel.domain.len(crate::storage::Axis::I).max(1) as usize;
    let nj = kernel.domain.len(crate::storage::Axis::J).max(1) as usize;
    kernel.schedule.tile = [tile[0].clamp(1, ni), tile[1].clamp(1, nj), 1];
}

/// The blocked working set under the kernel's tile sizes: one tile-slab
/// per accessed field (falls back to the full slab when untiled).
pub fn tiled_working_set(kernel: &Kernel) -> u64 {
    let [ti, tj, _] = kernel.schedule.tile;
    if ti <= 1 && tj <= 1 {
        return kernel.slab_working_set();
    }
    let ni = kernel.domain.len(crate::storage::Axis::I).max(1) as u64;
    let nj = kernel.domain.len(crate::storage::Axis::J).max(1) as u64;
    let ti = (ti as u64).min(ni);
    let tj = (tj as u64).min(nj);
    let nfields = (kernel.reads().len() + kernel.writes().len()) as u64;
    ti * tj * nfields * 8
}

/// Sweep candidate tile sizes on every kernel, keeping the best per
/// kernel under `model` (only meaningful for CPU models, where the cache
/// working set responds to tiling). Returns the tiles applied.
pub fn sweep_tiles(
    sdfg: &mut Sdfg,
    candidates: &[[usize; 2]],
    model: &CostModel,
) -> Vec<Applied> {
    // Conservative cache invalidation: even a no-op application bumps
    // the generation (transforms run at build time, not per timestep).
    sdfg.touch();
    let mut out = Vec::new();
    // Costs need the full sdfg for layouts; evaluate kernel-by-kernel on
    // a scratch clone.
    for s in 0..sdfg.states.len() {
        for n in 0..sdfg.states[s].nodes.len() {
            let DataflowNode::Kernel(k0) = &sdfg.states[s].nodes[n] else {
                continue;
            };
            let base = model.kernel_cost(k0, sdfg).time;
            let mut best: Option<([usize; 2], f64)> = None;
            for &tile in candidates {
                let mut trial = k0.clone();
                apply_tiling(&mut trial, tile);
                let t = model.kernel_cost(&trial, sdfg).time;
                if t < best.map(|(_, bt)| bt).unwrap_or(base) {
                    best = Some((tile, t));
                }
            }
            if let Some((tile, _)) = best {
                let name = k0.name.clone();
                if let DataflowNode::Kernel(k) = &mut sdfg.states[s].nodes[n] {
                    apply_tiling(k, tile);
                }
                out.push(Applied {
                    kind: "tile",
                    labels: vec![name, format!("{}x{}", tile[0], tile[1])],
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::graph::State;
    use crate::kernel::{Domain, KOrder, LValue, Schedule, Stmt};
    use crate::storage::{Layout, StorageOrder};
    use machine::{CpuModel, CpuSpec};

    /// An out-of-cache horizontal stencil: big slab, many fields.
    fn big_kernel_sdfg() -> Sdfg {
        let n = 512;
        let mut g = Sdfg::new("t");
        let l = Layout::new([n, n, 8], [1, 1, 0], StorageOrder::IContiguous, 1);
        let ids: Vec<_> = (0..6)
            .map(|i| g.add_container(format!("f{i}"), l.clone(), false))
            .collect();
        let mut k = Kernel::new(
            "wide",
            Domain::from_shape([n, n, 8]),
            KOrder::Parallel,
            Schedule::cpu_kblocked(),
        );
        let mut e = Expr::load(ids[0], 0, 0, 0);
        for d in &ids[1..5] {
            e = e + Expr::load(*d, -1, 0, 0) + Expr::load(*d, 1, 0, 0);
        }
        k.stmts.push(Stmt::full(LValue::Field(ids[5]), e));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        g
    }

    #[test]
    fn tiled_working_set_shrinks_with_tiles() {
        let g = big_kernel_sdfg();
        let mut k = g.states[0].kernels().next().unwrap().clone();
        let full = tiled_working_set(&k);
        apply_tiling(&mut k, [64, 64]);
        let tiled = tiled_working_set(&k);
        assert!(tiled < full / 10, "{tiled} vs {full}");
        // Untiled (1x1) means "no tiling", not a 1-element tile.
        apply_tiling(&mut k, [1, 1]);
        assert_eq!(tiled_working_set(&k), full);
    }

    #[test]
    fn tile_clamps_to_domain() {
        let g = big_kernel_sdfg();
        let mut k = g.states[0].kernels().next().unwrap().clone();
        apply_tiling(&mut k, [10_000, 3]);
        assert_eq!(k.schedule.tile, [512, 3, 1]);
    }

    #[test]
    fn sweep_finds_a_cache_fitting_tile_on_cpu() {
        let mut g = big_kernel_sdfg();
        let model = CostModel::Cpu(CpuModel::new(CpuSpec::haswell_e5_2690v3()));
        let before = {
            let k = g.states[0].kernels().next().unwrap();
            model.kernel_cost(k, &g).time
        };
        let applied = sweep_tiles(&mut g, &[[32, 32], [64, 64], [128, 128]], &model);
        assert_eq!(applied.len(), 1, "one kernel tiled: {applied:?}");
        let after = {
            let k = g.states[0].kernels().next().unwrap();
            model.kernel_cost(k, &g).time
        };
        assert!(
            after < before * 0.7,
            "tiling must recover cache bandwidth: {before} -> {after}"
        );
    }

    #[test]
    fn sweep_leaves_gpu_kernels_untouched_when_no_gain() {
        use machine::{GpuModel, GpuSpec};
        let mut g = big_kernel_sdfg();
        // GPU roofline has no cache term: no candidate can improve.
        let model = CostModel::Gpu(GpuModel::new(GpuSpec::p100()));
        let applied = sweep_tiles(&mut g, &[[32, 32], [64, 64]], &model);
        assert!(applied.is_empty());
        let k = g.states[0].kernels().next().unwrap();
        assert_eq!(k.schedule.tile, [1, 1, 1]);
    }
}
