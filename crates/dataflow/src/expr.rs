//! Scalar expression IR used inside tasklets.
//!
//! Stencil statements lower to trees of [`Expr`]. The IR is deliberately
//! small: arithmetic, comparisons/selection (for the predicated horizontal
//! regions of Section IV-B), relative-offset field loads, per-thread local
//! variables, runtime scalar parameters, and a handful of math intrinsics.
//! Everything the optimizer needs — flop counting for the performance
//! model, offset hulls for memlet inference, and rewriting (the
//! power-operator strength reduction of Section VI-C1) — works on this one
//! type.

use crate::storage::Axis;
use std::fmt;

/// Identifier of a data container within an SDFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataId(pub usize);

/// Identifier of a per-thread local variable within a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocalId(pub usize);

/// Identifier of a runtime scalar parameter (e.g. `dt2`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParamId(pub usize);

/// A compile-time-constant relative offset, the only addressing mode the
/// DSL allows (GT4Py "does not support variable offsets", Section IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Offset3 {
    pub i: i32,
    pub j: i32,
    pub k: i32,
}

impl Offset3 {
    /// The centre point.
    pub const ZERO: Offset3 = Offset3 { i: 0, j: 0, k: 0 };

    /// Construct an offset.
    pub fn new(i: i32, j: i32, k: i32) -> Self {
        Offset3 { i, j, k }
    }

    /// Component along `axis`.
    pub fn along(&self, axis: Axis) -> i32 {
        match axis {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }

    /// Component-wise sum (composition of two relative accesses).
    pub fn add(&self, o: Offset3) -> Offset3 {
        Offset3::new(self.i + o.i, self.j + o.j, self.k + o.k)
    }
}

impl fmt::Display for Offset3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{},{},{}]", self.i, self.j, self.k)
    }
}

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Min,
    Max,
    /// General power — the expensive operator the Smagorinsky case study
    /// strength-reduces away.
    Pow,
}

/// Unary operators and math intrinsics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    Neg,
    Abs,
    Sqrt,
    Exp,
    Log,
    Sin,
    Cos,
    Floor,
    /// Sign function returning -1, 0 or 1.
    Sign,
}

/// Comparison operators (produce 1.0 / 0.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
}

/// A scalar expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Floating-point literal.
    Const(f64),
    /// Runtime scalar parameter.
    Param(ParamId),
    /// Field read at a relative offset.
    Load(DataId, Offset3),
    /// Per-thread local variable read.
    Local(LocalId),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Comparison producing 1.0 or 0.0.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// `if cond != 0 { a } else { b }`.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
    /// Current global index along an axis (used by predicated regions).
    Index(Axis),
    /// Integer power by repeated multiplication — the strength-reduced
    /// form the power-operator transformation (Section VI-C1) lowers
    /// `Bin(Pow, x, Const(n))` to. Counted as cheap flops, not
    /// transcendentals.
    Powi(Box<Expr>, i32),
}

impl Expr {
    /// Convenience constructors ------------------------------------------------
    pub fn c(v: f64) -> Expr {
        Expr::Const(v)
    }

    pub fn load(d: DataId, i: i32, j: i32, k: i32) -> Expr {
        Expr::Load(d, Offset3::new(i, j, k))
    }

    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Un(op, Box::new(a))
    }

    pub fn cmp(op: CmpOp, a: Expr, b: Expr) -> Expr {
        Expr::Cmp(op, Box::new(a), Box::new(b))
    }

    pub fn select(c: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Select(Box::new(c), Box::new(a), Box::new(b))
    }

    pub fn powi(a: Expr, n: i32) -> Expr {
        Expr::Powi(Box::new(a), n)
    }

    /// Visit every node of the tree.
    pub fn visit(&self, f: &mut impl FnMut(&Expr)) {
        f(self);
        match self {
            Expr::Un(_, a) | Expr::Powi(a, _) => a.visit(f),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Expr::Select(c, a, b) => {
                c.visit(f);
                a.visit(f);
                b.visit(f);
            }
            _ => {}
        }
    }

    /// Rewrite the tree bottom-up: children first, then `f` on the rebuilt
    /// node. `f` returns the (possibly replaced) node.
    pub fn rewrite(self, f: &impl Fn(Expr) -> Expr) -> Expr {
        let node = match self {
            Expr::Powi(a, n) => Expr::Powi(Box::new(a.rewrite(f)), n),
            Expr::Un(op, a) => Expr::Un(op, Box::new(a.rewrite(f))),
            Expr::Bin(op, a, b) => Expr::Bin(op, Box::new(a.rewrite(f)), Box::new(b.rewrite(f))),
            Expr::Cmp(op, a, b) => Expr::Cmp(op, Box::new(a.rewrite(f)), Box::new(b.rewrite(f))),
            Expr::Select(c, a, b) => Expr::Select(
                Box::new(c.rewrite(f)),
                Box::new(a.rewrite(f)),
                Box::new(b.rewrite(f)),
            ),
            other => other,
        };
        f(node)
    }

    /// All `(field, offset)` pairs read by this expression.
    pub fn loads(&self) -> Vec<(DataId, Offset3)> {
        let mut out = Vec::new();
        self.visit(&mut |e| {
            if let Expr::Load(d, o) = e {
                out.push((*d, *o));
            }
        });
        out
    }

    /// Whether the expression reads `data` at any offset.
    pub fn reads(&self, data: DataId) -> bool {
        let mut found = false;
        self.visit(&mut |e| {
            if let Expr::Load(d, _) = e {
                if *d == data {
                    found = true;
                }
            }
        });
        found
    }

    /// Substitute every `Load(data, o)` with `make(o)` (used by on-the-fly
    /// fusion to splice a producer expression into its consumer).
    pub fn substitute_load(self, data: DataId, make: &impl Fn(Offset3) -> Expr) -> Expr {
        self.rewrite(&|e| match e {
            Expr::Load(d, o) if d == data => make(o),
            other => other,
        })
    }

    /// Shift every load by `delta` (recompute a producer at the consumer's
    /// offset).
    pub fn shift(self, delta: Offset3) -> Expr {
        self.rewrite(&|e| match e {
            Expr::Load(d, o) => Expr::Load(d, o.add(delta)),
            other => other,
        })
    }

    /// Count floating-point operations (cheap ops) in one evaluation.
    pub fn flops(&self) -> u64 {
        let mut n = 0u64;
        self.visit(&mut |e| {
            n += match e {
                Expr::Bin(BinOp::Pow, _, _) => 0, // counted as transcendental
                Expr::Bin(_, _, _) | Expr::Cmp(_, _, _) => 1,
                Expr::Un(UnOp::Neg | UnOp::Abs | UnOp::Floor | UnOp::Sign, _) => 1,
                Expr::Un(UnOp::Sqrt, _) => 2,
                Expr::Un(_, _) => 0, // exp/log/sin/cos counted as transcendental
                Expr::Select(_, _, _) => 1,
                Expr::Powi(_, n) => n.unsigned_abs() as u64,
                _ => 0,
            };
        });
        n
    }

    /// Count transcendental operations (pow/exp/log/sin/cos) in one
    /// evaluation — the slow special-function path of Section VI-C1.
    pub fn transcendentals(&self) -> u64 {
        let mut n = 0u64;
        self.visit(&mut |e| {
            n += match e {
                Expr::Bin(BinOp::Pow, _, _) => 1,
                Expr::Un(UnOp::Exp | UnOp::Log | UnOp::Sin | UnOp::Cos, _) => 1,
                _ => 0,
            };
        });
        n
    }

    /// Number of nodes (for size heuristics in fusion decisions).
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }
}

/// Evaluation context handed to [`Expr::eval`] by the executor.
pub trait EvalCtx {
    /// Read a field at the current point plus `offset`.
    fn load(&self, data: DataId, offset: Offset3) -> f64;
    /// Read a local variable.
    fn local(&self, l: LocalId) -> f64;
    /// Read a scalar parameter.
    fn param(&self, p: ParamId) -> f64;
    /// Current global index along `axis`.
    fn index(&self, axis: Axis) -> i64;
}

impl Expr {
    /// Tree-walking evaluation (the slow reference used to validate the
    /// bytecode VM and by the DSL's debug backend).
    pub fn eval<C: EvalCtx>(&self, ctx: &C) -> f64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Param(p) => ctx.param(*p),
            Expr::Load(d, o) => ctx.load(*d, *o),
            Expr::Local(l) => ctx.local(*l),
            Expr::Index(ax) => ctx.index(*ax) as f64,
            Expr::Un(op, a) => {
                let x = a.eval(ctx);
                apply_un(*op, x)
            }
            Expr::Bin(op, a, b) => {
                let x = a.eval(ctx);
                let y = b.eval(ctx);
                apply_bin(*op, x, y)
            }
            Expr::Cmp(op, a, b) => {
                let x = a.eval(ctx);
                let y = b.eval(ctx);
                if apply_cmp(*op, x, y) {
                    1.0
                } else {
                    0.0
                }
            }
            Expr::Select(c, a, b) => {
                if c.eval(ctx) != 0.0 {
                    a.eval(ctx)
                } else {
                    b.eval(ctx)
                }
            }
            Expr::Powi(a, n) => {
                let x = a.eval(ctx);
                let mut acc = 1.0;
                for _ in 0..n.unsigned_abs() {
                    acc *= x;
                }
                if *n < 0 {
                    1.0 / acc
                } else {
                    acc
                }
            }
        }
    }
}

/// Apply a unary operator.
#[inline]
pub fn apply_un(op: UnOp, x: f64) -> f64 {
    match op {
        UnOp::Neg => -x,
        UnOp::Abs => x.abs(),
        UnOp::Sqrt => x.sqrt(),
        UnOp::Exp => x.exp(),
        UnOp::Log => x.ln(),
        UnOp::Sin => x.sin(),
        UnOp::Cos => x.cos(),
        UnOp::Floor => x.floor(),
        UnOp::Sign => {
            if x > 0.0 {
                1.0
            } else if x < 0.0 {
                -1.0
            } else {
                0.0
            }
        }
    }
}

/// Apply a binary operator.
#[inline]
pub fn apply_bin(op: BinOp, x: f64, y: f64) -> f64 {
    match op {
        BinOp::Add => x + y,
        BinOp::Sub => x - y,
        BinOp::Mul => x * y,
        BinOp::Div => x / y,
        BinOp::Min => x.min(y),
        BinOp::Max => x.max(y),
        BinOp::Pow => x.powf(y),
    }
}

/// Apply a comparison operator.
#[inline]
pub fn apply_cmp(op: CmpOp, x: f64, y: f64) -> bool {
    match op {
        CmpOp::Lt => x < y,
        CmpOp::Le => x <= y,
        CmpOp::Gt => x > y,
        CmpOp::Ge => x >= y,
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
    }
}

// Operator overloading so transformation code can build expressions
// readably (the user-facing DSL in the `stencil` crate has its own richer
// builder).
impl std::ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}
impl std::ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}
impl std::ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}
impl std::ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}
impl std::ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        Expr::un(UnOp::Neg, self)
    }
}
impl From<f64> for Expr {
    fn from(v: f64) -> Expr {
        Expr::Const(v)
    }
}

/// Number-like abstraction so numerical formulas can be written once and
/// instantiated both as `f64` (hand-written baseline loops) and as
/// [`Expr`] (DSL statements) — guaranteeing the optimized and reference
/// implementations evaluate the *same* arithmetic.
pub trait NumLike:
    Clone
    + From<f64>
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
{
    /// `if cond > 0 { a } else { b }`.
    fn select_pos(cond: Self, a: Self, b: Self) -> Self;
}

impl NumLike for f64 {
    fn select_pos(cond: f64, a: f64, b: f64) -> f64 {
        if cond > 0.0 {
            a
        } else {
            b
        }
    }
}

impl NumLike for Expr {
    fn select_pos(cond: Expr, a: Expr, b: Expr) -> Expr {
        Expr::select(Expr::cmp(CmpOp::Gt, cond, Expr::Const(0.0)), a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct Ctx {
        fields: HashMap<(usize, Offset3), f64>,
        params: Vec<f64>,
        locals: Vec<f64>,
        idx: [i64; 3],
    }

    impl EvalCtx for Ctx {
        fn load(&self, d: DataId, o: Offset3) -> f64 {
            *self.fields.get(&(d.0, o)).unwrap_or(&0.0)
        }
        fn local(&self, l: LocalId) -> f64 {
            self.locals[l.0]
        }
        fn param(&self, p: ParamId) -> f64 {
            self.params[p.0]
        }
        fn index(&self, axis: Axis) -> i64 {
            self.idx[axis.idx()]
        }
    }

    fn ctx() -> Ctx {
        let mut fields = HashMap::new();
        fields.insert((0, Offset3::ZERO), 3.0);
        fields.insert((0, Offset3::new(-1, 0, 0)), 5.0);
        fields.insert((1, Offset3::ZERO), 2.0);
        Ctx {
            fields,
            params: vec![0.5],
            locals: vec![7.0],
            idx: [4, 5, 6],
        }
    }

    #[test]
    fn arithmetic_evaluates() {
        let c = ctx();
        // (a[0] - a[-1,0,0]) * p0 + local0 = (3-5)*0.5 + 7 = 6
        let e = (Expr::load(DataId(0), 0, 0, 0) - Expr::load(DataId(0), -1, 0, 0))
            * Expr::Param(ParamId(0))
            + Expr::Local(LocalId(0));
        assert_eq!(e.eval(&c), 6.0);
    }

    #[test]
    fn select_and_cmp() {
        let c = ctx();
        // if b > a { 1 } else { -1 } with b=2, a=3 -> -1
        let e = Expr::select(
            Expr::cmp(
                CmpOp::Gt,
                Expr::load(DataId(1), 0, 0, 0),
                Expr::load(DataId(0), 0, 0, 0),
            ),
            Expr::c(1.0),
            Expr::c(-1.0),
        );
        assert_eq!(e.eval(&c), -1.0);
    }

    #[test]
    fn index_expression() {
        let c = ctx();
        let e = Expr::Index(Axis::J);
        assert_eq!(e.eval(&c), 5.0);
    }

    #[test]
    fn pow_and_sqrt() {
        let c = ctx();
        let e = Expr::bin(BinOp::Pow, Expr::load(DataId(0), 0, 0, 0), Expr::c(2.0));
        assert_eq!(e.eval(&c), 9.0);
        let s = Expr::un(UnOp::Sqrt, Expr::c(16.0));
        assert_eq!(s.eval(&c), 4.0);
    }

    #[test]
    fn flop_and_transcendental_counts() {
        // dt*(a**2 + b**2)**0.5 — the Smagorinsky inner expression:
        // two pows from squares + one pow 0.5 = 3 transcendentals,
        // 2 cheap ops (mul, add).
        let a = Expr::load(DataId(0), 0, 0, 0);
        let b = Expr::load(DataId(1), 0, 0, 0);
        let e = Expr::c(0.1)
            * Expr::bin(
                BinOp::Pow,
                Expr::bin(BinOp::Pow, a, Expr::c(2.0)) + Expr::bin(BinOp::Pow, b, Expr::c(2.0)),
                Expr::c(0.5),
            );
        assert_eq!(e.transcendentals(), 3);
        assert_eq!(e.flops(), 2);
    }

    #[test]
    fn loads_and_reads() {
        let e = Expr::load(DataId(0), 1, 0, 0) + Expr::load(DataId(2), 0, -1, 0);
        let ls = e.loads();
        assert_eq!(ls.len(), 2);
        assert!(e.reads(DataId(0)));
        assert!(e.reads(DataId(2)));
        assert!(!e.reads(DataId(1)));
    }

    #[test]
    fn shift_composes_offsets() {
        let e = Expr::load(DataId(0), 1, 0, 0);
        let s = e.shift(Offset3::new(-1, 2, 0));
        assert_eq!(s, Expr::load(DataId(0), 0, 2, 0));
    }

    #[test]
    fn substitute_load_splices_producer() {
        // consumer: c = t[1,0,0] + t[0,0,0]; producer t = a * 2
        let consumer = Expr::load(DataId(9), 1, 0, 0) + Expr::load(DataId(9), 0, 0, 0);
        let producer = Expr::load(DataId(0), 0, 0, 0) * Expr::c(2.0);
        let fused = consumer.substitute_load(DataId(9), &|o| producer.clone().shift(o));
        // becomes a[1,0,0]*2 + a[0,0,0]*2
        let loads = fused.loads();
        assert_eq!(loads.len(), 2);
        assert!(loads.contains(&(DataId(0), Offset3::new(1, 0, 0))));
        assert!(loads.contains(&(DataId(0), Offset3::ZERO)));
        assert!(!fused.reads(DataId(9)));
    }

    #[test]
    fn rewrite_is_bottom_up() {
        // Replace constants with their double; nested nodes must all be
        // visited.
        let e = Expr::c(1.0) + Expr::c(2.0) * Expr::c(3.0);
        let r = e.rewrite(&|n| match n {
            Expr::Const(v) => Expr::Const(2.0 * v),
            other => other,
        });
        struct C;
        impl EvalCtx for C {
            fn load(&self, _: DataId, _: Offset3) -> f64 {
                0.0
            }
            fn local(&self, _: LocalId) -> f64 {
                0.0
            }
            fn param(&self, _: ParamId) -> f64 {
                0.0
            }
            fn index(&self, _: Axis) -> i64 {
                0
            }
        }
        assert_eq!(r.eval(&C), 2.0 + 4.0 * 6.0);
    }

    #[test]
    fn sign_semantics() {
        assert_eq!(apply_un(UnOp::Sign, -3.5), -1.0);
        assert_eq!(apply_un(UnOp::Sign, 0.0), 0.0);
        assert_eq!(apply_un(UnOp::Sign, 7.0), 1.0);
    }
}
