//! The SDFG-like program representation: data containers, states holding
//! dataflow nodes, and a structured control-flow skeleton.
//!
//! Mirrors the Stateful Dataflow Multigraph of Section III-B at the
//! granularity this reproduction needs: containers are named, explicitly
//! transient or not; states hold nodes in program order with dependencies
//! recoverable from read/write sets; control flow is a structured tree of
//! states and counted loops (FV3's control flow after the orchestrator's
//! constant propagation is exactly that — Section V-B, Fig. 5).

use crate::expr::{DataId, ParamId};
use crate::kernel::{Kernel, Schedule};
use crate::storage::Layout;
use std::sync::Arc;

/// A named data container.
#[derive(Debug, Clone)]
pub struct Container {
    pub name: String,
    pub layout: Layout,
    /// Transients are intermediate buffers the optimizer may remove,
    /// shrink, or replace with registers ("information on removable
    /// (transient) containers is indicated on the graph").
    pub transient: bool,
}

/// Attributes controlling how a library node expands to kernels
/// (Section V-A's schedule attribute list).
#[derive(Debug, Clone)]
pub struct ExpansionAttrs {
    /// Schedule for horizontal (parallel) computations.
    pub horizontal: Schedule,
    /// Schedule for vertical solver computations.
    pub vertical: Schedule,
    /// Fuse consecutive intervals of forward/backward solvers into a
    /// single kernel (the default fusion strategy of Section VI-A1).
    pub fuse_intervals: bool,
    /// Fuse consecutive statements with no cross-thread dependency into a
    /// single kernel at expansion time.
    pub fuse_statements: bool,
}

impl ExpansionAttrs {
    /// The naive expansion: one kernel per stencil operation, default
    /// (unoptimized) schedules — the Table III "GT4Py + DaCe (Default)"
    /// configuration.
    pub fn naive() -> Self {
        ExpansionAttrs {
            horizontal: Schedule::default_unoptimized(),
            vertical: Schedule::default_unoptimized(),
            fuse_intervals: false,
            fuse_statements: false,
        }
    }

    /// The tuned heuristics from the local-optimization sweep
    /// (Section VI-A4).
    pub fn tuned() -> Self {
        ExpansionAttrs {
            horizontal: Schedule::gpu_horizontal(),
            vertical: Schedule::gpu_vertical(),
            fuse_intervals: true,
            fuse_statements: true,
        }
    }

    /// Tuned for the CPU target (FORTRAN-style k-blocking).
    pub fn tuned_cpu() -> Self {
        ExpansionAttrs {
            horizontal: Schedule::cpu_kblocked(),
            vertical: Schedule::cpu_kblocked(),
            fuse_intervals: true,
            fuse_statements: true,
        }
    }
}

/// A coarse-grained domain-specific computation that expands to kernels —
/// the `StencilComputation` library node of Section V-A. Implemented by
/// the `stencil` crate for GT4Py-style stencils.
pub trait LibraryNode: Send + Sync {
    /// Stable label (stencil name) used for transfer-tuning patterns.
    fn label(&self) -> &str;

    /// Expand to concrete kernels under the given attributes.
    fn expand(&self, attrs: &ExpansionAttrs) -> Vec<Kernel>;

    /// Containers read (for dependency analysis before expansion).
    fn reads(&self) -> Vec<DataId>;

    /// Containers written.
    fn writes(&self) -> Vec<DataId>;
}

/// A node within a state, in program order.
#[derive(Clone)]
pub enum DataflowNode {
    /// Unexpanded stencil computation.
    Library(Arc<dyn LibraryNode>),
    /// Expanded map scope.
    Kernel(Kernel),
    /// Whole-container copy (redundant-array candidates).
    Copy { src: DataId, dst: DataId },
    /// Halo-exchange marker executed by the distributed driver; carries
    /// the fields exchanged so movement analysis sees it.
    HaloExchange { fields: Vec<DataId> },
    /// Opaque callback into the host language (Section V-B "automatic
    /// callbacks"); reads/writes conservatively pin ordering, and the
    /// `pystate` flag mirrors the `__pystate` serialization token.
    Callback {
        name: String,
        reads: Vec<DataId>,
        writes: Vec<DataId>,
    },
}

impl std::fmt::Debug for DataflowNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DataflowNode::Library(l) => write!(f, "Library({})", l.label()),
            DataflowNode::Kernel(k) => write!(f, "Kernel({})", k.name),
            DataflowNode::Copy { src, dst } => write!(f, "Copy({src:?} -> {dst:?})"),
            DataflowNode::HaloExchange { fields } => write!(f, "HaloExchange({fields:?})"),
            DataflowNode::Callback { name, .. } => write!(f, "Callback({name})"),
        }
    }
}

impl DataflowNode {
    /// Containers this node reads.
    pub fn reads(&self) -> Vec<DataId> {
        match self {
            DataflowNode::Library(l) => l.reads(),
            DataflowNode::Kernel(k) => k.reads().into_iter().map(|(d, _)| d).collect(),
            DataflowNode::Copy { src, .. } => vec![*src],
            DataflowNode::HaloExchange { fields } => fields.clone(),
            DataflowNode::Callback { reads, .. } => reads.clone(),
        }
    }

    /// Containers this node writes.
    pub fn writes(&self) -> Vec<DataId> {
        match self {
            DataflowNode::Library(l) => l.writes(),
            DataflowNode::Kernel(k) => k.writes(),
            DataflowNode::Copy { dst, .. } => vec![*dst],
            DataflowNode::HaloExchange { fields } => fields.clone(),
            DataflowNode::Callback { writes, .. } => writes.clone(),
        }
    }

    /// Whether `self` must stay ordered before `later` (RAW, WAR or WAW
    /// hazard between the two nodes).
    pub fn depends_before(&self, later: &DataflowNode) -> bool {
        let (r1, w1) = (self.reads(), self.writes());
        let (r2, w2) = (later.reads(), later.writes());
        w1.iter().any(|d| r2.contains(d) || w2.contains(d))
            || r1.iter().any(|d| w2.contains(d))
    }
}

/// A dataflow state: nodes executed in list order.
#[derive(Debug, Clone, Default)]
pub struct State {
    pub name: String,
    pub nodes: Vec<DataflowNode>,
}

impl State {
    /// Create an empty named state.
    pub fn new(name: impl Into<String>) -> Self {
        State {
            name: name.into(),
            nodes: Vec::new(),
        }
    }

    /// Kernels in this state (post-expansion view).
    pub fn kernels(&self) -> impl Iterator<Item = &Kernel> {
        self.nodes.iter().filter_map(|n| match n {
            DataflowNode::Kernel(k) => Some(k),
            _ => None,
        })
    }

    /// Number of kernels.
    pub fn kernel_count(&self) -> usize {
        self.kernels().count()
    }
}

/// Structured control flow: a sequence of states and counted loops.
#[derive(Debug, Clone)]
pub enum ControlNode {
    /// Execute one state.
    State(usize),
    /// Execute the body `trips` times (e.g. the acoustic substep loop).
    Loop { trips: u32, body: Vec<ControlNode> },
}

/// The whole program: containers + states + control tree + parameters.
#[derive(Debug)]
pub struct Sdfg {
    pub name: String,
    pub containers: Vec<Container>,
    pub states: Vec<State>,
    pub control: Vec<ControlNode>,
    pub params: Vec<String>,
    /// Process-unique identity; every `new`/`Default`/`Clone` mints a
    /// fresh one. Compiled-kernel caches are namespaced by it, so an
    /// executor reused across different (or cloned) graphs never serves
    /// stale programs.
    uid: u64,
    /// Bumped by [`Sdfg::touch`] whenever the graph is mutated in a way
    /// that can invalidate compiled kernels (transform passes, library
    /// expansion, structural edits).
    generation: u64,
}

fn next_sdfg_uid() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl Default for Sdfg {
    fn default() -> Self {
        Sdfg {
            name: String::new(),
            containers: Vec::new(),
            states: Vec::new(),
            control: Vec::new(),
            params: Vec::new(),
            uid: next_sdfg_uid(),
            generation: 0,
        }
    }
}

impl Clone for Sdfg {
    fn clone(&self) -> Self {
        Sdfg {
            name: self.name.clone(),
            containers: self.containers.clone(),
            states: self.states.clone(),
            control: self.control.clone(),
            params: self.params.clone(),
            // A clone is a distinct graph that can diverge independently:
            // give it its own cache namespace.
            uid: next_sdfg_uid(),
            generation: 0,
        }
    }
}

impl Sdfg {
    /// Create an empty program.
    pub fn new(name: impl Into<String>) -> Self {
        Sdfg {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Process-unique graph identity (see the `uid` field).
    pub fn uid(&self) -> u64 {
        self.uid
    }

    /// Mutation generation, for compiled-kernel cache invalidation.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Record that the graph was mutated: any compiled kernels cached
    /// against it must be recompiled. Every transform/pass that edits
    /// kernels, states, or control flow calls this.
    pub fn touch(&mut self) {
        self.generation += 1;
    }

    /// Register a container; returns its id.
    pub fn add_container(&mut self, name: impl Into<String>, layout: Layout, transient: bool) -> DataId {
        self.containers.push(Container {
            name: name.into(),
            layout,
            transient,
        });
        DataId(self.containers.len() - 1)
    }

    /// Register a scalar parameter; returns its id.
    pub fn add_param(&mut self, name: impl Into<String>) -> ParamId {
        self.params.push(name.into());
        ParamId(self.params.len() - 1)
    }

    /// Append a state; returns its index and pushes it onto the top-level
    /// control sequence.
    pub fn add_state(&mut self, state: State) -> usize {
        self.touch();
        self.states.push(state);
        let idx = self.states.len() - 1;
        self.control.push(ControlNode::State(idx));
        idx
    }

    /// Container layout lookup for kernel profiling.
    pub fn layout_of(&self, d: DataId) -> Layout {
        self.containers[d.0].layout.clone()
    }

    /// A closure resolver usable with [`Kernel::profile`].
    pub fn layout_fn(&self) -> impl Fn(DataId) -> Layout + '_ {
        move |d| self.layout_of(d)
    }

    /// Find a container by name.
    pub fn find_container(&self, name: &str) -> Option<DataId> {
        self.containers
            .iter()
            .position(|c| c.name == name)
            .map(DataId)
    }

    /// Total kernels across all states (static count, not invocations).
    pub fn kernel_count(&self) -> usize {
        self.states.iter().map(|s| s.kernel_count()).sum()
    }

    /// Total dataflow nodes (the paper reports 26,689 for the full dycore).
    pub fn node_count(&self) -> usize {
        self.states.iter().map(|s| s.nodes.len()).sum()
    }

    /// State execution order with loop unrolling, as (state index,
    /// invocation count) visits in order. A state inside a loop appears
    /// once with its trip multiplier.
    pub fn state_schedule(&self) -> Vec<(usize, u32)> {
        fn walk(nodes: &[ControlNode], mult: u32, out: &mut Vec<(usize, u32)>) {
            for n in nodes {
                match n {
                    ControlNode::State(s) => out.push((*s, mult)),
                    ControlNode::Loop { trips, body } => walk(body, mult * trips, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.control, 1, &mut out);
        out
    }

    /// Expand every library node in place under `attrs`, replacing it with
    /// its kernels (Section V-A expansion).
    pub fn expand_libraries(&mut self, attrs: &ExpansionAttrs) {
        self.touch();
        for state in &mut self.states {
            let mut new_nodes = Vec::with_capacity(state.nodes.len());
            for node in state.nodes.drain(..) {
                match node {
                    DataflowNode::Library(l) => {
                        for k in l.expand(attrs) {
                            new_nodes.push(DataflowNode::Kernel(k));
                        }
                    }
                    other => new_nodes.push(other),
                }
            }
            state.nodes = new_nodes;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::kernel::{Domain, KOrder, LValue, Stmt};
    use crate::storage::StorageOrder;

    fn layout() -> Layout {
        Layout::new([8, 8, 4], [2, 2, 0], StorageOrder::IContiguous, 1)
    }

    fn simple_kernel(name: &str, read: DataId, write: DataId) -> Kernel {
        let mut k = Kernel::new(
            name,
            Domain::from_shape([8, 8, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(write),
            Expr::load(read, 0, 0, 0) * Expr::c(2.0),
        ));
        k
    }

    #[test]
    fn containers_and_params_register() {
        let mut g = Sdfg::new("test");
        let a = g.add_container("a", layout(), false);
        let b = g.add_container("b", layout(), true);
        assert_eq!(a, DataId(0));
        assert_eq!(b, DataId(1));
        assert!(g.containers[1].transient);
        let p = g.add_param("dt");
        assert_eq!(p.0, 0);
        assert_eq!(g.find_container("b"), Some(b));
        assert_eq!(g.find_container("zz"), None);
    }

    #[test]
    fn dependency_detection() {
        let a = DataId(0);
        let b = DataId(1);
        let c = DataId(2);
        let k1 = DataflowNode::Kernel(simple_kernel("p", a, b));
        let k2 = DataflowNode::Kernel(simple_kernel("c", b, c));
        let k3 = DataflowNode::Kernel(simple_kernel("i", a, c));
        assert!(k1.depends_before(&k2), "RAW on b");
        assert!(k2.depends_before(&k3), "WAW on c");
        assert!(!k1.depends_before(&DataflowNode::Kernel(simple_kernel("x", a, DataId(9)))));
    }

    #[test]
    fn state_schedule_unrolls_loops() {
        let mut g = Sdfg::new("t");
        g.states.push(State::new("init"));
        g.states.push(State::new("acoustic"));
        g.states.push(State::new("remap"));
        g.control = vec![
            ControlNode::State(0),
            ControlNode::Loop {
                trips: 3,
                body: vec![
                    ControlNode::Loop {
                        trips: 2,
                        body: vec![ControlNode::State(1)],
                    },
                    ControlNode::State(2),
                ],
            },
        ];
        let sched = g.state_schedule();
        assert_eq!(sched, vec![(0, 1), (1, 6), (2, 3)]);
    }

    #[test]
    fn expand_libraries_replaces_library_nodes() {
        struct Lib;
        impl LibraryNode for Lib {
            fn label(&self) -> &str {
                "lib"
            }
            fn expand(&self, _attrs: &ExpansionAttrs) -> Vec<Kernel> {
                vec![
                    simple_kernel("k1", DataId(0), DataId(1)),
                    simple_kernel("k2", DataId(1), DataId(2)),
                ]
            }
            fn reads(&self) -> Vec<DataId> {
                vec![DataId(0)]
            }
            fn writes(&self) -> Vec<DataId> {
                vec![DataId(2)]
            }
        }
        let mut g = Sdfg::new("t");
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Library(Arc::new(Lib)));
        g.add_state(s);
        assert_eq!(g.kernel_count(), 0);
        g.expand_libraries(&ExpansionAttrs::tuned());
        assert_eq!(g.kernel_count(), 2);
        assert_eq!(g.node_count(), 2);
    }

    #[test]
    fn callback_pins_ordering() {
        let cb = DataflowNode::Callback {
            name: "plot".into(),
            reads: vec![DataId(0)],
            writes: vec![DataId(0)],
        };
        let k = DataflowNode::Kernel(simple_kernel("k", DataId(0), DataId(1)));
        assert!(cb.depends_before(&k));
        assert!(k.depends_before(&cb));
    }
}
