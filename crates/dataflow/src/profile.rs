//! Runtime observability for the executor: per-kernel wall time,
//! iteration counts, and modeled bytes moved.
//!
//! The paper's optimization cycle (Fig. 7) is measurement-driven: the
//! authors rank stencils "by summarized runtimes grouped by kernel type"
//! (Section VI-C) and compare achieved against bandwidth-bound runtimes
//! (Fig. 10) to decide where to tune next. [`Profiler`] is the capture
//! side of that loop for our host executor: threaded through
//! [`Executor::run_profiled`](crate::exec::Executor::run_profiled), it
//! records one [`TraceEvent`] per executed node and derives modeled byte
//! volumes from the kernel access sets
//! ([`Kernel::profile`](crate::kernel::Kernel::profile)), so achieved
//! bandwidth and %-of-roofline fall out of a single run. Export is both
//! aggregated ([`ProfileReport`], rendered by
//! [`report::roofline_table`](crate::report::roofline_table)) and raw
//! (chrome-trace JSON, loadable in `about://tracing` / Perfetto).
//!
//! Instrumentation must never perturb results: the profiler only reads
//! clocks and the (immutable) kernel structure, never the data plane. The
//! differential transform tests in `tests/transform_diff.rs` run every
//! comparison with profiling enabled to pin that property down.

use crate::graph::Sdfg;
use crate::kernel::Kernel;
use std::collections::HashMap;
use std::fmt::Write as _;
use std::time::Instant;

/// One executed span, chrome-trace style (`ph: "X"` complete events).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Node label (kernel name, callback name, `"copy"`, `"halo"`).
    pub name: String,
    /// Event category: `"kernel"`, `"copy"`, `"halo"` or `"callback"`.
    pub cat: String,
    /// Start time in microseconds since the profiler's epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Points executed (kernel events; 0 otherwise).
    pub points: u64,
    /// Modeled unique bytes moved (access-set size x 8; 0 when unknown).
    pub bytes: u64,
    /// Modeled floating-point operations (kernel access-set flops; 0 when
    /// unknown).
    pub flops: u64,
}

/// Aggregated statistics for one kernel name across all its launches.
#[derive(Debug, Clone, Default)]
pub struct KernelProfileStat {
    pub name: String,
    pub invocations: u64,
    pub points: u64,
    pub wall_seconds: f64,
    /// Modeled bytes summed over invocations (from the kernel access set).
    pub modeled_bytes: u64,
    /// Modeled cheap flops summed over invocations.
    pub modeled_flops: u64,
}

impl KernelProfileStat {
    /// Achieved bandwidth in bytes/s: modeled traffic over measured time.
    pub fn achieved_bandwidth(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.modeled_bytes as f64 / self.wall_seconds
        } else {
            0.0
        }
    }

    /// Fraction of the bandwidth-bound runtime achieved, against an
    /// attainable bandwidth in bytes/s (the Fig. 10 "% of peak" column,
    /// but measured instead of modeled). Clamped to 1.
    pub fn roofline_fraction(&self, attainable_bandwidth: f64) -> f64 {
        if self.wall_seconds <= 0.0 || attainable_bandwidth <= 0.0 {
            return 0.0;
        }
        let bound = self.modeled_bytes as f64 / attainable_bandwidth;
        (bound / self.wall_seconds).min(1.0)
    }

    /// Roofline fraction against *both* ceilings: the binding resource is
    /// whichever of memory traffic (`modeled_bytes / bw`) or arithmetic
    /// (`modeled_flops / flop rate`) takes longer, so compute-bound kernels
    /// are judged against the compute roofline instead of an
    /// ever-unreachable bandwidth bound. Clamped to 1.
    pub fn roofline_fraction_dual(&self, attainable_bandwidth: f64, attainable_flops: f64) -> f64 {
        if self.wall_seconds <= 0.0 || attainable_bandwidth <= 0.0 {
            return 0.0;
        }
        let mem = self.modeled_bytes as f64 / attainable_bandwidth;
        let cmp = if attainable_flops > 0.0 {
            self.modeled_flops as f64 / attainable_flops
        } else {
            0.0
        };
        (mem.max(cmp) / self.wall_seconds).min(1.0)
    }

    /// True when the modeled compute time exceeds the modeled memory time —
    /// the kernel sits on the compute side of the roofline ridge.
    pub fn compute_bound(&self, attainable_bandwidth: f64, attainable_flops: f64) -> bool {
        if attainable_bandwidth <= 0.0 || attainable_flops <= 0.0 {
            return false;
        }
        self.modeled_flops as f64 / attainable_flops
            > self.modeled_bytes as f64 / attainable_bandwidth
    }
}

/// Aggregated statistics for one non-kernel event category (copy, halo,
/// callback): the attribution that used to be dropped on the floor, leaving
/// `remap`/`pt_update`/`halo` module rows empty in BENCH_dycore.json.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CategoryStat {
    /// Events recorded in this category.
    pub invocations: u64,
    /// Points attributed (written elements for callbacks/copies).
    pub points: u64,
    /// Modeled bytes moved, summed over events.
    pub modeled_bytes: u64,
    /// Modeled flops, summed over events (0 for pure data movement).
    pub modeled_flops: u64,
}

/// Aggregated view of one or more profiled executions.
#[derive(Debug, Clone, Default)]
pub struct ProfileReport {
    /// Stats grouped by kernel name.
    pub kernels: Vec<KernelProfileStat>,
    /// Kernel launches performed.
    pub launches: u64,
    /// Wall seconds inside kernels.
    pub kernel_seconds: f64,
    /// Wall seconds inside copy nodes.
    pub copy_seconds: f64,
    /// Wall seconds inside halo-exchange hooks.
    pub halo_seconds: f64,
    /// Wall seconds inside host callbacks.
    pub callback_seconds: f64,
    /// Invocation/traffic attribution for copy nodes.
    pub copy: CategoryStat,
    /// Invocation/traffic attribution for halo-exchange hooks.
    pub halo: CategoryStat,
    /// Invocation/traffic attribution for host callbacks.
    pub callback: CategoryStat,
}

impl ProfileReport {
    /// Kernels sorted by total wall time descending (the Fig. 10 ranking).
    pub fn ranked(&self) -> Vec<&KernelProfileStat> {
        let mut v: Vec<&KernelProfileStat> = self.kernels.iter().collect();
        v.sort_by(|a, b| b.wall_seconds.partial_cmp(&a.wall_seconds).unwrap());
        v
    }

    /// Total modeled bytes across all kernels.
    pub fn total_modeled_bytes(&self) -> u64 {
        self.kernels.iter().map(|k| k.modeled_bytes).sum()
    }

    /// Total modeled flops across all kernels.
    pub fn total_modeled_flops(&self) -> u64 {
        self.kernels.iter().map(|k| k.modeled_flops).sum()
    }

    /// Total wall seconds across every category.
    pub fn total_seconds(&self) -> f64 {
        self.kernel_seconds + self.copy_seconds + self.halo_seconds + self.callback_seconds
    }

    /// Aggregate achieved bandwidth over all kernel time.
    pub fn achieved_bandwidth(&self) -> f64 {
        if self.kernel_seconds > 0.0 {
            self.total_modeled_bytes() as f64 / self.kernel_seconds
        } else {
            0.0
        }
    }

    /// Aggregate fraction of the bandwidth bound achieved.
    pub fn roofline_fraction(&self, attainable_bandwidth: f64) -> f64 {
        if self.kernel_seconds <= 0.0 || attainable_bandwidth <= 0.0 {
            return 0.0;
        }
        let bound = self.total_modeled_bytes() as f64 / attainable_bandwidth;
        (bound / self.kernel_seconds).min(1.0)
    }
}

/// Fold one non-kernel event into its category attribution.
fn accumulate(stat: &mut CategoryStat, e: &TraceEvent) {
    stat.invocations += 1;
    stat.points += e.points;
    stat.modeled_bytes += e.bytes;
    stat.modeled_flops += e.flops;
}

/// Records execution spans and modeled data movement for one or more
/// [`Executor`](crate::exec::Executor) runs.
#[derive(Debug)]
pub struct Profiler {
    epoch: Instant,
    events: Vec<TraceEvent>,
    /// Per-invocation modeled (bytes, flops) cached by `(state, node)` so
    /// kernels inside timestep loops are profiled structurally only once.
    modeled: HashMap<(usize, usize), (u64, u64)>,
}

impl Default for Profiler {
    fn default() -> Self {
        Self::new()
    }
}

impl Profiler {
    /// A profiler whose epoch is now.
    pub fn new() -> Self {
        Profiler {
            epoch: Instant::now(),
            events: Vec::new(),
            modeled: HashMap::new(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Record a completed span that started at `ts_us` and ends now.
    pub fn record_span(
        &mut self,
        cat: &str,
        name: &str,
        ts_us: f64,
        points: u64,
        bytes: u64,
        flops: u64,
    ) {
        let dur_us = (self.now_us() - ts_us).max(0.0);
        self.events.push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us,
            dur_us,
            points,
            bytes,
            flops,
        });
    }

    /// Modeled per-invocation (bytes, flops) of `kernel` at `(state, node)`,
    /// derived from its access set and cached across invocations.
    pub fn modeled_cost(
        &mut self,
        key: (usize, usize),
        kernel: &Kernel,
        sdfg: &Sdfg,
    ) -> (u64, u64) {
        *self.modeled.entry(key).or_insert_with(|| {
            let p = kernel.profile(&sdfg.layout_fn());
            (p.bytes_total(), p.flops)
        })
    }

    /// Every recorded event, in record order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drop all recorded events (the modeled-cost cache is kept).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Aggregate events into a [`ProfileReport`].
    pub fn report(&self) -> ProfileReport {
        let mut r = ProfileReport::default();
        for e in &self.events {
            let secs = e.dur_us * 1e-6;
            match e.cat.as_str() {
                "kernel" => {
                    r.launches += 1;
                    r.kernel_seconds += secs;
                    if let Some(k) = r.kernels.iter_mut().find(|k| k.name == e.name) {
                        k.invocations += 1;
                        k.points += e.points;
                        k.wall_seconds += secs;
                        k.modeled_bytes += e.bytes;
                        k.modeled_flops += e.flops;
                    } else {
                        r.kernels.push(KernelProfileStat {
                            name: e.name.clone(),
                            invocations: 1,
                            points: e.points,
                            wall_seconds: secs,
                            modeled_bytes: e.bytes,
                            modeled_flops: e.flops,
                        });
                    }
                }
                "copy" => {
                    r.copy_seconds += secs;
                    accumulate(&mut r.copy, e);
                }
                "halo" => {
                    r.halo_seconds += secs;
                    accumulate(&mut r.halo, e);
                }
                _ => {
                    r.callback_seconds += secs;
                    accumulate(&mut r.callback, e);
                }
            }
        }
        r
    }

    /// Serialize all events as chrome-trace JSON (the "Trace Event
    /// Format"), loadable in `about://tracing` or Perfetto.
    pub fn to_chrome_trace(&self) -> String {
        let mut out = String::from("{\"traceEvents\":[");
        for (i, e) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":{},\"cat\":{},\"ph\":\"X\",\"pid\":0,\"tid\":0,\
                 \"ts\":{},\"dur\":{},\"args\":{{\"points\":{},\"bytes\":{},\"flops\":{}}}}}",
                json_string(&e.name),
                json_string(&e.cat),
                format_f64(e.ts_us),
                format_f64(e.dur_us),
                e.points,
                e.bytes,
                e.flops
            );
        }
        out.push_str("]}");
        out
    }
}

/// Escape a string as a JSON string literal.
pub fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 so it parses back to the identical value (Rust's float
/// `Display` is shortest-round-trip).
fn format_f64(v: f64) -> String {
    format!("{v}")
}

// ---------------------------------------------------------------------------
// Minimal chrome-trace parser (round-trip testing and external tooling).

/// A parsed JSON value — just enough of the grammar to read traces back.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> JsonParser<'a> {
    fn new(s: &'a str) -> Self {
        JsonParser {
            bytes: s.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek()? == c {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found '{}'",
                c as char, self.pos, self.bytes[self.pos] as char
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                c => return Err(format!("expected ',' or '}}', found '{}'", c as char)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                c => return Err(format!("expected ',' or ']', found '{}'", c as char)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let c = *self
                .bytes
                .get(self.pos)
                .ok_or("unterminated string".to_string())?;
            self.pos += 1;
            match c {
                b'"' => return Ok(out),
                b'\\' => {
                    let e = *self
                        .bytes
                        .get(self.pos)
                        .ok_or("unterminated escape".to_string())?;
                    self.pos += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape".to_string())?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape '\\{}'", e as char)),
                    }
                }
                _ => {
                    // Re-sync on UTF-8: collect the full multi-byte char.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?,
                    );
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

/// Parse chrome-trace JSON produced by [`Profiler::to_chrome_trace`] back
/// into events. Round-trips exactly (floats via Rust's shortest-repr
/// formatting).
pub fn parse_chrome_trace(text: &str) -> Result<Vec<TraceEvent>, String> {
    let mut p = JsonParser::new(text);
    let root = p.value()?;
    let events = root
        .get("traceEvents")
        .ok_or("missing traceEvents".to_string())?;
    let Json::Arr(items) = events else {
        return Err("traceEvents is not an array".to_string());
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let field_f = |k: &str| {
            item.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("event missing numeric '{k}'"))
        };
        let field_s = |k: &str| {
            item.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("event missing string '{k}'"))
        };
        let args = item.get("args").ok_or("event missing args".to_string())?;
        let arg_u = |k: &str| {
            args.get(k)
                .and_then(Json::as_f64)
                .map(|v| v as u64)
                .ok_or_else(|| format!("args missing '{k}'"))
        };
        out.push(TraceEvent {
            name: field_s("name")?,
            cat: field_s("cat")?,
            ts_us: field_f("ts")?,
            dur_us: field_f("dur")?,
            points: arg_u("points")?,
            bytes: arg_u("bytes")?,
            // Traces written before flop attribution existed lack the arg;
            // treat it as 0 so old artifacts stay loadable.
            flops: arg_u("flops").unwrap_or(0),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{DataStore, Executor, NoHooks};
    use crate::graph::{DataflowNode, State};
    use crate::kernel::{Domain, KOrder, LValue, Schedule, Stmt};
    use crate::storage::{Layout, StorageOrder};
    use crate::Expr;

    fn event(name: &str, cat: &str, ts: f64, dur: f64, points: u64, bytes: u64) -> TraceEvent {
        TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ts_us: ts,
            dur_us: dur,
            points,
            bytes,
            flops: 3 * points,
        }
    }

    #[test]
    fn report_aggregates_by_kernel_name() {
        let mut p = Profiler::new();
        p.events.push(event("a#0", "kernel", 0.0, 10.0, 100, 800));
        p.events.push(event("a#0", "kernel", 10.0, 30.0, 100, 800));
        p.events.push(event("b#0", "kernel", 40.0, 5.0, 50, 400));
        p.events.push(event("halo", "halo", 45.0, 2.0, 0, 0));
        let r = p.report();
        assert_eq!(r.launches, 3);
        assert_eq!(r.kernels.len(), 2);
        let a = &r.kernels[0];
        assert_eq!(a.invocations, 2);
        assert_eq!(a.points, 200);
        assert_eq!(a.modeled_bytes, 1600);
        assert_eq!(a.modeled_flops, 600);
        assert_eq!(r.total_modeled_flops(), 750);
        assert!((r.kernel_seconds - 45e-6).abs() < 1e-12);
        assert!((r.halo_seconds - 2e-6).abs() < 1e-12);
        assert_eq!(r.halo.invocations, 1);
        assert_eq!(r.ranked()[0].name, "a#0");
    }

    #[test]
    fn dual_roofline_binds_on_the_slower_resource() {
        let s = KernelProfileStat {
            name: "k".into(),
            invocations: 1,
            points: 10,
            wall_seconds: 4e-6,
            modeled_bytes: 1000,
            modeled_flops: 2000,
        };
        // Memory bound at 1 GB/s: 1us. Compute bound at 1 GFLOP/s: 2us.
        // Compute is the binding resource -> fraction = 2us / 4us = 0.5.
        assert!(s.compute_bound(1e9, 1e9));
        assert!((s.roofline_fraction_dual(1e9, 1e9) - 0.5).abs() < 1e-12);
        // With a fast enough FPU the memory bound binds again: 1us/4us.
        assert!(!s.compute_bound(1e9, 1e12));
        assert!((s.roofline_fraction_dual(1e9, 1e12) - 0.25).abs() < 1e-12);
        // No flop rate supplied degrades to the memory-only fraction.
        assert!((s.roofline_fraction_dual(1e9, 0.0) - s.roofline_fraction(1e9)).abs() < 1e-12);
    }

    #[test]
    fn roofline_fraction_is_bound_over_measured() {
        let s = KernelProfileStat {
            name: "k".into(),
            invocations: 1,
            points: 10,
            wall_seconds: 2e-6,
            modeled_bytes: 1000,
            modeled_flops: 0,
        };
        // Bound time at 1 GB/s = 1000 / 1e9 = 1us; measured 2us -> 50%.
        assert!((s.roofline_fraction(1e9) - 0.5).abs() < 1e-12);
        // Achieved bandwidth = 1000 B / 2us = 5e8 B/s.
        assert!((s.achieved_bandwidth() - 5e8).abs() < 1.0);
        // Measured faster than the bound (tiny attainable bw) clamps to 1.
        assert_eq!(s.roofline_fraction(1.0), 1.0);
    }

    #[test]
    fn chrome_trace_round_trips() {
        let mut p = Profiler::new();
        p.events.push(event("c_sw#0", "kernel", 0.125, 10.5, 64, 4096));
        p.events.push(event("copy", "copy", 11.0, 1.0, 0, 2048));
        p.events
            .push(event("weird \"name\"\\x", "callback", 12.75, 0.0625, 0, 0));
        let text = p.to_chrome_trace();
        let parsed = parse_chrome_trace(&text).expect("parse");
        assert_eq!(parsed, p.events);
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("ab"), "\"ab\"");
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\nb\"");
        let parsed = parse_chrome_trace(
            "{\"traceEvents\":[{\"name\":\"\\u0041\",\"cat\":\"kernel\",\"ph\":\"X\",\
             \"ts\":0,\"dur\":1,\"args\":{\"points\":0,\"bytes\":0}}]}",
        )
        .unwrap();
        assert_eq!(parsed[0].name, "A");
    }

    /// One-kernel program over `[n, n, nk]` fields with halo `h`.
    fn single_kernel_sdfg(
        n: usize,
        nk: usize,
        halo: [usize; 3],
        build: impl FnOnce(crate::expr::DataId, crate::expr::DataId) -> Vec<Stmt>,
    ) -> Sdfg {
        let mut g = Sdfg::new("p");
        let l = Layout::new([n, n, nk], halo, StorageOrder::IContiguous, 1);
        let a = g.add_container("a", l.clone(), false);
        let out = g.add_container("out", l, false);
        let mut k = Kernel::new(
            "k#0",
            Domain::from_shape([n, n, nk]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts = build(a, out);
        let mut s = State::new("s0");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        g
    }

    fn profiled_kernel_bytes(g: &Sdfg) -> u64 {
        let mut store = DataStore::for_sdfg(g);
        let mut prof = Profiler::new();
        Executor::serial().run_profiled(g, &mut store, &[], &mut NoHooks, &mut prof);
        let evs: Vec<&TraceEvent> = prof.events().iter().filter(|e| e.cat == "kernel").collect();
        assert_eq!(evs.len(), 1);
        evs[0].bytes
    }

    // Hand-counted access sets for three known kernels. Reads count unique
    // elements over the offset-grown domain times 8 bytes, scaled by the
    // redundancy multiplier 1 + 0.15*(offsets-1); writes count exactly the
    // written points times 8.

    #[test]
    fn modeled_bytes_copy_stencil() {
        // out[0,0,0] = a[0,0,0] on 8x8x8, no halo: 512 elements each way.
        let g = single_kernel_sdfg(8, 8, [0, 0, 0], |a, out| {
            vec![Stmt::full(LValue::Field(out), Expr::load(a, 0, 0, 0))]
        });
        // read: 512 * 8 * 1.0 = 4096; write: 512 * 8 = 4096.
        assert_eq!(profiled_kernel_bytes(&g), 4096 + 4096);
    }

    #[test]
    fn modeled_bytes_laplacian() {
        // 5-point laplacian on 16x16x4 with halo 1: the read hull grows the
        // domain by 1 in i and j -> 18*18*4 = 1296 unique elements at 5
        // distinct offsets; the write covers 16*16*4 = 1024 points.
        let g = single_kernel_sdfg(16, 4, [1, 1, 0], |a, out| {
            let e = Expr::c(-4.0) * Expr::load(a, 0, 0, 0)
                + Expr::load(a, -1, 0, 0)
                + Expr::load(a, 1, 0, 0)
                + Expr::load(a, 0, -1, 0)
                + Expr::load(a, 0, 1, 0);
            vec![Stmt::full(LValue::Field(out), e)]
        });
        // read: 1296 * 8 * (1 + 0.15*4) = 10368 * 1.6 = 16588.8 -> 16588;
        // write: 1024 * 8 = 8192.
        assert_eq!(profiled_kernel_bytes(&g), 16588 + 8192);
    }

    #[test]
    fn modeled_bytes_vertical_average() {
        // out = (a[k-1] + a[k+1]) / 2 on 8x8x8 with k-halo 1: read hull
        // 8*8*10 = 640 elements at 2 offsets; write 512 points.
        let g = single_kernel_sdfg(8, 8, [0, 0, 1], |a, out| {
            let e = (Expr::load(a, 0, 0, -1) + Expr::load(a, 0, 0, 1)) * Expr::c(0.5);
            vec![Stmt::full(LValue::Field(out), e)]
        });
        // read: 640 * 8 * (1 + 0.15) = 5120 * 1.15 = 5888; write: 4096.
        assert_eq!(profiled_kernel_bytes(&g), 5888 + 4096);
    }

    #[test]
    fn modeled_cost_is_cached_across_loop_trips() {
        let mut g = single_kernel_sdfg(4, 4, [0, 0, 0], |a, out| {
            vec![Stmt::full(LValue::Field(out), Expr::load(a, 0, 0, 0))]
        });
        g.control = vec![crate::graph::ControlNode::Loop {
            trips: 7,
            body: vec![crate::graph::ControlNode::State(0)],
        }];
        let mut store = DataStore::for_sdfg(&g);
        let mut prof = Profiler::new();
        Executor::serial().run_profiled(&g, &mut store, &[], &mut NoHooks, &mut prof);
        let r = prof.report();
        assert_eq!(r.launches, 7);
        assert_eq!(prof.modeled.len(), 1, "one cache entry for the looped kernel");
        let k = &r.kernels[0];
        assert_eq!(k.invocations, 7);
        // 4*4*4 elements read + written, 7 times.
        assert_eq!(k.modeled_bytes, 7 * 2 * 64 * 8);
    }

    #[test]
    fn spans_are_monotonic_and_positive() {
        let mut p = Profiler::new();
        for i in 0..5 {
            let t0 = p.now_us();
            std::hint::black_box((0..100).sum::<u64>());
            p.record_span("kernel", &format!("k{i}"), t0, 1, 8, 2);
        }
        for w in p.events().windows(2) {
            assert!(w[1].ts_us >= w[0].ts_us, "timestamps must be monotonic");
            assert!(w[0].ts_us + w[0].dur_us <= w[1].ts_us + 1e-9, "spans must not overlap");
        }
        assert!(p.events().iter().all(|e| e.dur_us >= 0.0));
    }
}
