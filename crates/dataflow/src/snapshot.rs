//! Field snapshots and the shared binary codec used by both golden-data
//! files (`FV3GOLD1`, `validate::savepoint`) and checkpoints
//! (`FV3CKPT1`, `fv3core::checkpoint`).
//!
//! A [`FieldSnapshot`] stores one field's values in *canonical logical
//! order* (k outer, j, i inner, halo included — [`Array3::export_logical`]),
//! so a snapshot is independent of the storage order / alignment of the
//! array it came from: a run with K-contiguous storage replays or
//! resumes bit-identically against a snapshot taken with the FORTRAN
//! I-contiguous layout.
//!
//! The decode path is hardened against hostile or truncated input: every
//! length is validated against the bytes actually remaining *before* any
//! allocation, and all extent arithmetic is checked — a corrupt header
//! produces a descriptive `Err`, never a panic, OOM, or capacity
//! overflow. Both file formats funnel through [`FieldSnapshot::decode`]
//! and [`Reader`], so the corruption-mode tests in `validate` cover the
//! checkpoint path too.

use crate::storage::{Array3, Layout};

/// One field: name, logical shape, and values in canonical logical order
/// (halo included).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSnapshot {
    /// Field name (`"delp"`, `"xfx"`, ...).
    pub name: String,
    /// Compute-domain extent `[ni, nj, nk]`.
    pub domain: [usize; 3],
    /// Halo width per axis.
    pub halo: [usize; 3],
    /// `(ni + 2hi)(nj + 2hj)(nk + 2hk)` values, k outermost / i innermost.
    pub values: Vec<f64>,
}

impl FieldSnapshot {
    /// Snapshot an array (halo included).
    pub fn capture(name: &str, array: &Array3) -> Self {
        let l = array.layout();
        FieldSnapshot {
            name: name.to_string(),
            domain: l.domain,
            halo: l.halo,
            values: array.export_logical(),
        }
    }

    /// Rebuild an array (default FV3 layout) holding the snapshot values.
    pub fn to_array(&self) -> Array3 {
        let mut a = Array3::zeros(Layout::fv3_default(self.domain, self.halo));
        a.import_logical(&self.values);
        a
    }

    /// Logical coordinates of flat element `idx` of `values`.
    pub fn index_of(&self, idx: usize) -> (i64, i64, i64) {
        let wi = self.domain[0] + 2 * self.halo[0];
        let wj = self.domain[1] + 2 * self.halo[1];
        let i = (idx % wi) as i64 - self.halo[0] as i64;
        let j = ((idx / wi) % wj) as i64 - self.halo[1] as i64;
        let k = (idx / (wi * wj)) as i64 - self.halo[2] as i64;
        (i, j, k)
    }

    /// Whether flat element `idx` lies in the compute domain (not halo).
    pub fn in_domain(&self, idx: usize) -> bool {
        let (i, j, k) = self.index_of(idx);
        let d = self.domain;
        (0..d[0] as i64).contains(&i)
            && (0..d[1] as i64).contains(&j)
            && (0..d[2] as i64).contains(&k)
    }

    /// FNV-1a over the value bit patterns — the per-field integrity
    /// checksum of the `FV3CKPT1` format. Bit-exact: distinguishes
    /// `-0.0` from `0.0` and every NaN payload.
    pub fn checksum(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for v in &self.values {
            for b in v.to_bits().to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        h
    }

    /// Append the wire encoding: name, domain, halo, count, value bits.
    ///
    /// This is the exact field layout of the `FV3GOLD1` format (and the
    /// per-field body of `FV3CKPT1`); changing it invalidates checked-in
    /// golden files.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_str(out, &self.name);
        for d in 0..3 {
            put_u32(out, self.domain[d] as u32);
        }
        for d in 0..3 {
            put_u32(out, self.halo[d] as u32);
        }
        put_u32(out, self.values.len() as u32);
        for v in &self.values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
    }

    /// Decode one field from `r`, validating every length against the
    /// remaining input before allocating.
    pub fn decode(r: &mut Reader<'_>) -> Result<FieldSnapshot, String> {
        let name = r.string()?;
        let mut domain = [0usize; 3];
        let mut halo = [0usize; 3];
        for d in &mut domain {
            *d = r.u32()? as usize;
        }
        for h in &mut halo {
            *h = r.u32()? as usize;
        }
        let n_vals = r.u32()? as usize;
        // Checked extent arithmetic: 32-bit dims can overflow the
        // product on 32-bit hosts and produce absurd extents on any
        // host; a corrupt header must not panic.
        let mut expect: usize = 1;
        for d in 0..3 {
            let w = halo[d]
                .checked_mul(2)
                .and_then(|h2| domain[d].checked_add(h2))
                .ok_or_else(|| format!("field '{name}': axis {d} extent overflows"))?;
            expect = expect
                .checked_mul(w)
                .ok_or_else(|| format!("field '{name}': logical extent overflows"))?;
        }
        if n_vals != expect {
            return Err(format!(
                "field '{name}': {n_vals} values for logical extent {expect}"
            ));
        }
        // Bound the allocation by the bytes actually present: a corrupt
        // count must fail cleanly, not reserve gigabytes.
        if r.remaining() / 8 < n_vals {
            return Err(format!(
                "field '{name}': {n_vals} values but only {} bytes remain",
                r.remaining()
            ));
        }
        let mut values = Vec::with_capacity(n_vals);
        for _ in 0..n_vals {
            values.push(f64::from_bits(r.u64()?));
        }
        Ok(FieldSnapshot {
            name,
            domain,
            halo,
            values,
        })
    }
}

/// Append a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `f64` bit pattern.
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// A bounds-checked cursor over an input buffer. Every accessor returns
/// a descriptive `Err` on truncation instead of panicking.
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading `bytes` from the beginning.
    pub fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    /// Current offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Consume `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.remaining() < n {
            return Err(format!(
                "truncated input: need {n} bytes at offset {}, {} remain",
                self.pos,
                self.remaining()
            ));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Consume a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Consume a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Consume a little-endian `f64` bit pattern.
    pub fn f64(&mut self) -> Result<f64, String> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Consume a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).map_err(|e| format!("bad utf-8 string: {e}"))
    }

    /// Validate a claimed element count against the remaining bytes: a
    /// plausible input must still hold at least `min_bytes_each * n`
    /// bytes. Guards `Vec::with_capacity` against corrupt headers.
    pub fn check_count(&self, n: usize, min_bytes_each: usize, what: &str) -> Result<(), String> {
        if min_bytes_each > 0 && self.remaining() / min_bytes_each < n {
            return Err(format!(
                "implausible {what} count {n}: only {} bytes remain",
                self.remaining()
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> FieldSnapshot {
        let l = Layout::fv3_default([3, 2, 2], [1, 1, 0]);
        let a = Array3::from_fn(l, |i, j, k| i as f64 + 10.0 * j as f64 + 0.5 * k as f64);
        FieldSnapshot::capture("xfx", &a)
    }

    #[test]
    fn encode_decode_roundtrip_is_bit_identical() {
        let s = sample();
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        let mut r = Reader::new(&bytes);
        let s2 = FieldSnapshot::decode(&mut r).unwrap();
        assert_eq!(r.remaining(), 0);
        assert_eq!(s.name, s2.name);
        for (a, b) in s.values.iter().zip(&s2.values) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn truncation_errors_instead_of_panicking() {
        let s = sample();
        let mut bytes = Vec::new();
        s.encode(&mut bytes);
        for cut in [0, 3, 4, 10, bytes.len() - 1] {
            let err = FieldSnapshot::decode(&mut Reader::new(&bytes[..cut]));
            assert!(err.is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn huge_value_count_is_rejected_without_allocation() {
        let mut bytes = Vec::new();
        put_str(&mut bytes, "delp");
        // domain (u32::MAX)³, zero halo: extent arithmetic must not panic.
        for _ in 0..3 {
            put_u32(&mut bytes, u32::MAX);
        }
        for _ in 0..3 {
            put_u32(&mut bytes, 0);
        }
        put_u32(&mut bytes, u32::MAX);
        let err = FieldSnapshot::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.contains("overflow"), "{err}");

        // Plausible extent, but the values are missing: must report the
        // shortfall before reserving the buffer.
        let mut bytes = Vec::new();
        put_str(&mut bytes, "delp");
        put_u32(&mut bytes, 1000);
        put_u32(&mut bytes, 1000);
        put_u32(&mut bytes, 100);
        for _ in 0..3 {
            put_u32(&mut bytes, 0);
        }
        put_u32(&mut bytes, 100_000_000);
        let err = FieldSnapshot::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(err.contains("remain"), "{err}");
    }

    #[test]
    fn checksum_distinguishes_bit_patterns() {
        let mut a = sample();
        let c0 = a.checksum();
        assert_eq!(c0, sample().checksum(), "deterministic");
        let old = a.values[0];
        a.values[0] = -old; // sign flip only
        assert_ne!(a.checksum(), c0);
        a.values[0] = old;
        assert_eq!(a.checksum(), c0);
        // -0.0 vs 0.0 and NaN payloads are distinguished.
        a.values[1] = 0.0;
        let z = a.checksum();
        a.values[1] = -0.0;
        assert_ne!(a.checksum(), z);
    }

    #[test]
    fn reader_check_count_guards_allocations() {
        let bytes = [0u8; 16];
        let r = Reader::new(&bytes);
        assert!(r.check_count(2, 8, "field").is_ok());
        assert!(r.check_count(3, 8, "field").is_err());
        assert!(r.check_count(usize::MAX, 1, "savepoint").is_err());
    }
}
