//! Data-centric program representation and optimization — the DaCe analog.
//!
//! This crate provides the Stateful-Dataflow-Multigraph-like intermediate
//! representation of the SC'22 paper's toolchain (Section III-B): programs
//! are state machines over dataflow states; stencil computations enter as
//! library nodes and expand to schedulable [`kernel::Kernel`]s; data
//! movement is queryable at exact ranges; and optimization is graph
//! rewriting ([`transforms`]). A bytecode-compiling executor ([`exec`])
//! runs programs numerically on the host, while [`model`] prices them on
//! the analytic machine models of the `machine` crate.

pub mod bytecode;
pub mod exec;
pub mod expr;
pub mod graph;
pub mod kernel;
pub mod model;
pub mod overlap;
pub mod passes;
pub mod profile;
pub mod report;
pub mod snapshot;
pub mod storage;
pub mod transforms;

pub use exec::{
    CompiledKernel, DataStore, ExecHooks, ExecReport, Executor, KernelRunStats, NoHooks, VmMode,
};
pub use expr::{BinOp, CmpOp, DataId, Expr, LocalId, Offset3, ParamId, UnOp};
pub use graph::{
    Container, ControlNode, DataflowNode, ExpansionAttrs, LibraryNode, Sdfg, State,
};
pub use kernel::{
    Anchor, AxisInterval, Domain, Extent2, KOrder, Kernel, LValue, Memlet, Region2,
    RegionStrategy, Schedule, Stmt,
};
pub use model::{CostModel, KernelModel, ModelReport};
pub use overlap::{split_for_overlap, SplitPrograms};
pub use profile::{KernelProfileStat, ProfileReport, Profiler, TraceEvent};
pub use storage::{Array3, Axis, Layout, StorageOrder};
