//! The runtime executor: runs an expanded SDFG numerically on the host.
//!
//! Execution is column-oriented: every kernel iterates its `(i, j)` columns
//! (in parallel chunks through [`machine::Pool`]) and marches K upward,
//! downward, or in arbitrary order per its [`KOrder`]. Statement bodies run
//! through the bytecode VM. The executor enforces the same parallel-model
//! restriction GT4Py does: within one kernel, no statement may read — at a
//! nonzero horizontal offset — a field written by the same kernel
//! (cross-thread dependencies must be broken into separate kernels or
//! fused by recomputation; Section IV-D "some synchronization points were
//! pre-determined and had to be worked around by splitting stencils").

use crate::bytecode::{self, Program, VmCtx};
use crate::expr::{DataId, Offset3};
use crate::graph::{ControlNode, DataflowNode, Sdfg};
use crate::kernel::{KOrder, Kernel, LValue};
use crate::profile::Profiler;
use crate::storage::{Array3, Axis, Layout};
use machine::Pool;
use std::time::Instant;

/// Runtime storage: one array per SDFG container.
#[derive(Debug, Clone)]
pub struct DataStore {
    arrays: Vec<Array3>,
}

impl DataStore {
    /// Allocate zeroed arrays for every container of `sdfg`.
    pub fn for_sdfg(sdfg: &Sdfg) -> Self {
        DataStore {
            arrays: sdfg
                .containers
                .iter()
                .map(|c| Array3::zeros(c.layout.clone()))
                .collect(),
        }
    }

    /// Immutable access to a container's array.
    pub fn get(&self, d: DataId) -> &Array3 {
        &self.arrays[d.0]
    }

    /// Mutable access to a container's array.
    pub fn get_mut(&mut self, d: DataId) -> &mut Array3 {
        &mut self.arrays[d.0]
    }

    /// Number of containers.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }
}

/// Hooks for nodes the executor cannot run itself.
pub trait ExecHooks {
    /// Perform a halo exchange on `fields` (distributed driver).
    fn halo_exchange(&mut self, fields: &[DataId], store: &mut DataStore) {
        let _ = (fields, store);
    }

    /// Invoke a named host callback (the Python-interop analog).
    fn callback(&mut self, name: &str, store: &mut DataStore) {
        let _ = (name, store);
    }
}

/// No-op hooks for single-rank programs.
pub struct NoHooks;
impl ExecHooks for NoHooks {}

/// Aggregated per-kernel execution statistics.
#[derive(Debug, Clone, Default)]
pub struct KernelStat {
    pub name: String,
    pub invocations: u64,
    pub points: u64,
    pub wall_seconds: f64,
}

/// Report of one SDFG execution.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Kernel launches performed.
    pub launches: u64,
    /// Stats grouped by kernel name ("sort by summarized runtimes grouped
    /// by kernel type", Section VI-C).
    pub kernels: Vec<KernelStat>,
    /// Total wall-clock seconds inside kernel loops.
    pub wall_seconds: f64,
    /// Halo exchanges performed.
    pub halo_exchanges: u64,
    /// Host callbacks performed.
    pub callbacks: u64,
}

impl ExecReport {
    fn record(&mut self, name: &str, points: u64, secs: f64) {
        self.launches += 1;
        self.wall_seconds += secs;
        if let Some(k) = self.kernels.iter_mut().find(|k| k.name == name) {
            k.invocations += 1;
            k.points += points;
            k.wall_seconds += secs;
        } else {
            self.kernels.push(KernelStat {
                name: name.to_string(),
                invocations: 1,
                points,
                wall_seconds: secs,
            });
        }
    }
}

/// Validate the parallel-model restriction for `kernel`.
///
/// Returns an error description when a statement reads a field written by
/// this kernel at a nonzero horizontal offset (a cross-thread dependency),
/// or when a `Parallel` kernel has a vertical self-dependency.
pub fn validate_kernel(kernel: &Kernel) -> Result<(), String> {
    let written = kernel.writes();
    for (si, s) in kernel.stmts.iter().enumerate() {
        for (d, o) in s.expr.loads() {
            if written.contains(&d) {
                if o.i != 0 || o.j != 0 {
                    return Err(format!(
                        "kernel '{}' stmt {si}: reads {d:?} at horizontal offset {o} but \
                         the kernel writes it — split the stencil or fuse on-the-fly",
                        kernel.name
                    ));
                }
                match kernel.k_order {
                    KOrder::Parallel => {
                        if o.k != 0 {
                            return Err(format!(
                                "kernel '{}' stmt {si}: vertical self-dependency {o} in a \
                                 PARALLEL computation",
                                kernel.name
                            ));
                        }
                    }
                    KOrder::Forward => {
                        if o.k > 0 {
                            return Err(format!(
                                "kernel '{}' stmt {si}: forward solver reads {d:?} at k+{}",
                                kernel.name, o.k
                            ));
                        }
                    }
                    KOrder::Backward => {
                        if o.k < 0 {
                            return Err(format!(
                                "kernel '{}' stmt {si}: backward solver reads {d:?} at k{}",
                                kernel.name, o.k
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Validate every kernel in an SDFG.
pub fn validate_sdfg(sdfg: &Sdfg) -> Result<(), String> {
    for state in &sdfg.states {
        for node in &state.nodes {
            if let DataflowNode::Kernel(k) = node {
                validate_kernel(k)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Kernel execution

/// Raw view of one container used inside the kernel loop. Columns write
/// disjoint points (guaranteed by [`validate_kernel`]), so sharing the
/// pointer across worker threads is sound.
#[derive(Clone, Copy)]
struct FieldSlot {
    ptr: *mut f64,
    base: usize,
    strides: [usize; 3],
}

unsafe impl Send for FieldSlot {}
unsafe impl Sync for FieldSlot {}

impl FieldSlot {
    #[inline]
    fn offset(&self, i: i64, j: i64, k: i64) -> usize {
        (self.base as i64
            + i * self.strides[0] as i64
            + j * self.strides[1] as i64
            + k * self.strides[2] as i64) as usize
    }

    #[inline]
    unsafe fn read(&self, i: i64, j: i64, k: i64) -> f64 {
        *self.ptr.add(self.offset(i, j, k))
    }

    #[inline]
    unsafe fn write(&self, i: i64, j: i64, k: i64, v: f64) {
        *self.ptr.add(self.offset(i, j, k)) = v;
    }
}

/// Concrete (resolved) bounds of one statement.
#[derive(Debug, Clone, Copy)]
struct StmtBounds {
    il: i64,
    ih: i64,
    jl: i64,
    jh: i64,
    kl: i64,
    kh: i64,
}

struct CompiledStmt {
    program: Program,
    bounds: StmtBounds,
    lvalue: CompiledLValue,
}

enum CompiledLValue {
    Field(u16),
    Local(u16),
}

struct PointCtx<'a> {
    slots: &'a [FieldSlot],
    locals: &'a [f64],
    params: &'a [f64],
    i: i64,
    j: i64,
    k: i64,
}

impl VmCtx for PointCtx<'_> {
    #[inline]
    fn load(&self, slot: u16, off: Offset3) -> f64 {
        unsafe {
            self.slots[slot as usize].read(
                self.i + off.i as i64,
                self.j + off.j as i64,
                self.k + off.k as i64,
            )
        }
    }

    #[inline]
    fn local(&self, l: u16) -> f64 {
        self.locals[l as usize]
    }

    #[inline]
    fn param(&self, p: u16) -> f64 {
        self.params[p as usize]
    }

    #[inline]
    fn index(&self, axis: Axis) -> i64 {
        match axis {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }
}

/// Execute one kernel over the store. `params` are the SDFG's scalar
/// parameter values. Returns the number of points executed.
pub fn run_kernel(kernel: &Kernel, store: &mut DataStore, params: &[f64], pool: &Pool) -> u64 {
    debug_assert!(validate_kernel(kernel).is_ok(), "{:?}", validate_kernel(kernel));
    if kernel.domain.is_empty() || kernel.stmts.is_empty() {
        return 0;
    }

    // Field slot table: stable order over reads + writes.
    let mut ids: Vec<DataId> = Vec::new();
    for (d, _) in kernel.reads() {
        if !ids.contains(&d) {
            ids.push(d);
        }
    }
    for d in kernel.writes() {
        if !ids.contains(&d) {
            ids.push(d);
        }
    }
    let slot_of = |d: DataId| -> u16 {
        ids.iter().position(|x| *x == d).expect("unknown field in kernel") as u16
    };

    let slots: Vec<FieldSlot> = ids
        .iter()
        .map(|d| {
            let a = store.get_mut(*d);
            let layout: Layout = a.layout().clone();
            FieldSlot {
                ptr: a.raw_mut().as_mut_ptr(),
                base: layout.base,
                strides: layout.strides,
            }
        })
        .collect();

    // Compile statements and resolve bounds.
    let dom = kernel.domain;
    let mut compiled = Vec::with_capacity(kernel.stmts.len());
    let mut hull = StmtBounds {
        il: i64::MAX,
        ih: i64::MIN,
        jl: i64::MAX,
        jh: i64::MIN,
        kl: i64::MAX,
        kh: i64::MIN,
    };
    let mut points = 0u64;
    for s in &kernel.stmts {
        let grown = s.extent.grow(&dom);
        let (il, ih, jl, jh) = match &s.region {
            Some(r) => {
                let (il, ih) = r.i.resolve(dom.start[0], dom.end[0]);
                let (jl, jh) = r.j.resolve(dom.start[1], dom.end[1]);
                (il, ih, jl, jh)
            }
            None => (grown.start[0], grown.end[0], grown.start[1], grown.end[1]),
        };
        let (kl, kh) = s.k_range.resolve(dom.start[2], dom.end[2]);
        let b = StmtBounds {
            il,
            ih,
            jl,
            jh,
            kl,
            kh,
        };
        hull.il = hull.il.min(b.il);
        hull.ih = hull.ih.max(b.ih);
        hull.jl = hull.jl.min(b.jl);
        hull.jh = hull.jh.max(b.jh);
        hull.kl = hull.kl.min(b.kl);
        hull.kh = hull.kh.max(b.kh);
        points += ((ih - il).max(0) * (jh - jl).max(0) * (kh - kl).max(0)) as u64;
        let program = bytecode::compile(&s.expr, &slot_of);
        let lvalue = match s.lvalue {
            LValue::Field(d) => CompiledLValue::Field(slot_of(d)),
            LValue::Local(l) => CompiledLValue::Local(l.0 as u16),
        };
        compiled.push(CompiledStmt {
            program,
            bounds: b,
            lvalue,
        });
    }
    if hull.ih <= hull.il || hull.jh <= hull.jl || hull.kh <= hull.kl {
        return 0;
    }

    let max_regs = compiled.iter().map(|c| c.program.n_regs).max().unwrap_or(0) as usize;
    let n_locals = kernel.n_locals.max(
        compiled
            .iter()
            .filter_map(|c| match c.lvalue {
                CompiledLValue::Local(l) => Some(l as usize + 1),
                _ => None,
            })
            .max()
            .unwrap_or(0),
    );

    let ni = (hull.ih - hull.il) as usize;
    let nj = (hull.jh - hull.jl) as usize;
    let columns = ni * nj;
    let k_desc = kernel.k_order == KOrder::Backward;
    let compiled = &compiled;
    let slots = &slots;

    pool.for_each_chunk(columns, |range| {
        let mut regs = vec![0.0f64; max_regs];
        let mut locals = vec![0.0f64; n_locals.max(1)];
        for col in range {
            let i = hull.il + (col % ni) as i64;
            let j = hull.jl + (col / ni) as i64;
            locals.iter_mut().for_each(|l| *l = 0.0);
            let mut k = if k_desc { hull.kh - 1 } else { hull.kl };
            while k >= hull.kl && k < hull.kh {
                for cs in compiled {
                    let b = &cs.bounds;
                    if i >= b.il && i < b.ih && j >= b.jl && j < b.jh && k >= b.kl && k < b.kh {
                        let v = {
                            let ctx = PointCtx {
                                slots,
                                locals: &locals,
                                params,
                                i,
                                j,
                                k,
                            };
                            bytecode::run(&cs.program, &ctx, &mut regs)
                        };
                        match cs.lvalue {
                            CompiledLValue::Field(slot) => unsafe {
                                slots[slot as usize].write(i, j, k, v);
                            },
                            CompiledLValue::Local(l) => locals[l as usize] = v,
                        }
                    }
                }
                k += if k_desc { -1 } else { 1 };
            }
        }
    });

    points
}

/// Executes SDFGs with a worker pool and hooks.
pub struct Executor {
    pool: Pool,
}

impl Executor {
    /// An executor backed by `pool`.
    pub fn new(pool: Pool) -> Self {
        Executor { pool }
    }

    /// Serial executor (deterministic, used by tests).
    pub fn serial() -> Self {
        Executor { pool: Pool::new(1) }
    }

    /// Run the whole program. `params` maps [`crate::expr::ParamId`]
    /// indices to values and must cover `sdfg.params`.
    pub fn run(
        &self,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
    ) -> ExecReport {
        self.run_inner(sdfg, store, params, hooks, &mut None)
    }

    /// Run the whole program with observability: every executed node is
    /// recorded as a span in `profiler`, kernels annotated with points and
    /// modeled bytes from their access sets. Numerical results are
    /// identical to [`Executor::run`] — the profiler never touches the
    /// data plane.
    pub fn run_profiled(
        &self,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        profiler: &mut Profiler,
    ) -> ExecReport {
        self.run_inner(sdfg, store, params, hooks, &mut Some(profiler))
    }

    fn run_inner(
        &self,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        prof: &mut Option<&mut Profiler>,
    ) -> ExecReport {
        assert!(
            params.len() >= sdfg.params.len(),
            "expected {} params, got {}",
            sdfg.params.len(),
            params.len()
        );
        let mut report = ExecReport::default();
        self.run_control(&sdfg.control, sdfg, store, params, hooks, &mut report, prof);
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn run_control(
        &self,
        nodes: &[ControlNode],
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        report: &mut ExecReport,
        prof: &mut Option<&mut Profiler>,
    ) {
        for node in nodes {
            match node {
                ControlNode::State(s) => {
                    self.run_state(*s, sdfg, store, params, hooks, report, prof)
                }
                ControlNode::Loop { trips, body } => {
                    for _ in 0..*trips {
                        self.run_control(body, sdfg, store, params, hooks, report, prof);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_state(
        &self,
        state_idx: usize,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        report: &mut ExecReport,
        prof: &mut Option<&mut Profiler>,
    ) {
        let state = &sdfg.states[state_idx];
        for (node_idx, node) in state.nodes.iter().enumerate() {
            match node {
                DataflowNode::Kernel(k) => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    let t0 = Instant::now();
                    let points = run_kernel(k, store, params, &self.pool);
                    report.record(&k.name, points, t0.elapsed().as_secs_f64());
                    if let Some(p) = prof.as_mut() {
                        let (bytes, _flops) = p.modeled_cost((state_idx, node_idx), k, sdfg);
                        p.record_span("kernel", &k.name, ts.unwrap(), points, bytes);
                    }
                }
                DataflowNode::Library(l) => {
                    panic!(
                        "unexpanded library node '{}' — call Sdfg::expand_libraries first",
                        l.label()
                    );
                }
                DataflowNode::Copy { src, dst } => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    let (s, d) = (*src, *dst);
                    let src_arr = store.get(s).clone();
                    store.get_mut(d).copy_from(&src_arr);
                    if let Some(p) = prof.as_mut() {
                        // Copy traffic: every stored element read + written.
                        let bytes = 2 * 8 * src_arr.raw().len() as u64;
                        p.record_span("copy", "copy", ts.unwrap(), 0, bytes);
                    }
                }
                DataflowNode::HaloExchange { fields } => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    hooks.halo_exchange(fields, store);
                    report.halo_exchanges += 1;
                    if let Some(p) = prof.as_mut() {
                        p.record_span("halo", "halo", ts.unwrap(), 0, 0);
                    }
                }
                DataflowNode::Callback { name, .. } => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    hooks.callback(name, store);
                    report.callbacks += 1;
                    if let Some(p) = prof.as_mut() {
                        p.record_span("callback", name, ts.unwrap(), 0, 0);
                    }
                }
            }
        }
    }
}

/// Convenience: run a single kernel on a store with no hooks, serially.
pub fn run_kernel_serial(kernel: &Kernel, store: &mut DataStore, params: &[f64]) -> u64 {
    run_kernel(kernel, store, params, &Pool::new(1))
}

/// Aggregate executed kernel stats by name sorted by total wall time
/// descending (the Fig. 10 ranking).
pub fn rank_by_wall_time(report: &ExecReport) -> Vec<&KernelStat> {
    let mut v: Vec<&KernelStat> = report.kernels.iter().collect();
    v.sort_by(|a, b| b.wall_seconds.partial_cmp(&a.wall_seconds).unwrap());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, LocalId};
    use crate::graph::State;
    use crate::kernel::{Anchor, AxisInterval, Domain, Extent2, KOrder, Region2, Schedule, Stmt};
    use crate::storage::StorageOrder;

    fn sdfg_with(n: usize, halo: usize, names: &[&str]) -> (Sdfg, Vec<DataId>) {
        let mut g = Sdfg::new("t");
        let l = Layout::new([n, n, 4], [halo, halo, 1], StorageOrder::IContiguous, 1);
        let ids = names
            .iter()
            .map(|nm| g.add_container(*nm, l.clone(), false))
            .collect();
        (g, ids)
    }

    #[test]
    fn pointwise_kernel_executes() {
        let (mut g, ids) = sdfg_with(8, 0, &["a", "b"]);
        let p = g.add_param("scale");
        let mut k = Kernel::new(
            "scale",
            Domain::from_shape([8, 8, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[0], 0, 0, 0) * Expr::Param(p),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |i, j, k| {
            (i + j + k) as f64
        });
        let report = Executor::serial().run(&g, &mut store, &[3.0], &mut NoHooks);
        assert_eq!(report.launches, 1);
        assert_eq!(store.get(ids[1]).get(2, 3, 1), 18.0);
    }

    #[test]
    fn laplacian_uses_halo() {
        let (mut g, ids) = sdfg_with(6, 1, &["inp", "out"]);
        let mut k = Kernel::new(
            "lap",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let e = Expr::load(ids[0], -1, 0, 0)
            + Expr::load(ids[0], 1, 0, 0)
            + Expr::load(ids[0], 0, -1, 0)
            + Expr::load(ids[0], 0, 1, 0)
            - Expr::c(4.0) * Expr::load(ids[0], 0, 0, 0);
        k.stmts.push(Stmt::full(LValue::Field(ids[1]), e));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        // f(i,j) = i^2 -> laplacian = 2 everywhere (constant in j, k)
        let l = g.layout_of(ids[0]);
        let mut inp = Array3::zeros(l);
        for k_ in 0..4i64 {
            for j in -1..7i64 {
                for i in -1..7i64 {
                    inp.set(i, j, k_, (i * i) as f64);
                }
            }
        }
        *store.get_mut(ids[0]) = inp;
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        for j in 0..6 {
            for i in 0..6 {
                assert!((store.get(ids[1]).get(i, j, 2) - 2.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn forward_solver_carries_dependency() {
        // cum[k] = cum[k-1] + a[k] for k >= 1; cum[0] = a[0]
        let (mut g, ids) = sdfg_with(4, 0, &["a", "cum"]);
        let mut k = Kernel::new(
            "cumsum",
            Domain::from_shape([4, 4, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::Start(0), Anchor::Start(1)),
            region: None,
            extent: Extent2::ZERO,
        });
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[1], 0, 0, -1) + Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::Start(1), Anchor::End(0)),
            region: None,
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |_, _, k| (k + 1) as f64);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        // cumsum of 1,2,3,4 = 1,3,6,10
        assert_eq!(store.get(ids[1]).get(0, 0, 0), 1.0);
        assert_eq!(store.get(ids[1]).get(1, 2, 1), 3.0);
        assert_eq!(store.get(ids[1]).get(3, 3, 3), 10.0);
    }

    #[test]
    fn backward_solver_marches_down() {
        // s[k] = s[k+1] + a[k] for k < n-1; s[n-1] = a[n-1]  (suffix sum)
        let (mut g, ids) = sdfg_with(3, 0, &["a", "suf"]);
        let mut k = Kernel::new(
            "suffix",
            Domain::from_shape([3, 3, 4]),
            KOrder::Backward,
            Schedule::gpu_vertical(),
        );
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::End(-1), Anchor::End(0)),
            region: None,
            extent: Extent2::ZERO,
        });
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[1], 0, 0, 1) + Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::Start(0), Anchor::End(-1)),
            region: None,
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |_, _, k| (k + 1) as f64);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        // suffix sums of 1,2,3,4 = 10,9,7,4
        assert_eq!(store.get(ids[1]).get(0, 0, 0), 10.0);
        assert_eq!(store.get(ids[1]).get(2, 2, 2), 7.0);
        assert_eq!(store.get(ids[1]).get(1, 1, 3), 4.0);
    }

    #[test]
    fn locals_carry_within_column_of_forward_solver() {
        // Running max via a local: loc = max(loc, a); out = loc
        let (mut g, ids) = sdfg_with(2, 0, &["a", "out"]);
        let mut k = Kernel::new(
            "runmax",
            Domain::from_shape([2, 2, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k.n_locals = 1;
        k.stmts.push(Stmt::full(
            LValue::Local(LocalId(0)),
            Expr::bin(
                crate::expr::BinOp::Max,
                Expr::Local(LocalId(0)),
                Expr::load(ids[0], 0, 0, 0),
            ),
        ));
        k.stmts
            .push(Stmt::full(LValue::Field(ids[1]), Expr::Local(LocalId(0))));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        let vals = [3.0, 1.0, 5.0, 2.0];
        *store.get_mut(ids[0]) =
            Array3::from_fn(g.layout_of(ids[0]), |_, _, k| vals[k as usize]);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        let expect = [3.0, 3.0, 5.0, 5.0];
        for k_ in 0..4i64 {
            assert_eq!(store.get(ids[1]).get(1, 1, k_), expect[k_ as usize]);
        }
    }

    #[test]
    fn region_statement_applies_only_at_edge() {
        let (mut g, ids) = sdfg_with(6, 0, &["out"]);
        let mut k = Kernel::new(
            "edges",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts
            .push(Stmt::full(LValue::Field(ids[0]), Expr::c(1.0)));
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[0]),
            expr: Expr::c(9.0),
            k_range: AxisInterval::FULL,
            region: Some(Region2 {
                i: AxisInterval::FULL,
                j: AxisInterval::at_start(0),
            }),
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(store.get(ids[0]).get(3, 0, 1), 9.0);
        assert_eq!(store.get(ids[0]).get(3, 1, 1), 1.0);
        assert_eq!(store.get(ids[0]).get(0, 5, 3), 1.0);
    }

    #[test]
    fn extent_extends_statement_domain() {
        let (mut g, ids) = sdfg_with(6, 2, &["out"]);
        let mut k = Kernel::new(
            "ext",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[0]),
            expr: Expr::c(7.0),
            k_range: AxisInterval::FULL,
            region: None,
            extent: Extent2 {
                i_lo: 1,
                i_hi: 1,
                j_lo: 0,
                j_hi: 0,
            },
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(store.get(ids[0]).get(-1, 0, 0), 7.0);
        assert_eq!(store.get(ids[0]).get(6, 0, 0), 7.0);
        assert_eq!(store.get(ids[0]).get(0, -1, 0), 0.0, "j not extended");
    }

    #[test]
    fn parallel_pool_matches_serial() {
        let (mut g, ids) = sdfg_with(16, 1, &["inp", "out"]);
        let mut k = Kernel::new(
            "lap",
            Domain::from_shape([16, 16, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let e = Expr::load(ids[0], -1, 0, 0) + Expr::load(ids[0], 1, 0, 0)
            - Expr::c(2.0) * Expr::load(ids[0], 0, 0, 0);
        k.stmts.push(Stmt::full(LValue::Field(ids[1]), e));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let init = |store: &mut DataStore| {
            let l = g.layout_of(ids[0]);
            let mut a = Array3::zeros(l);
            for k_ in 0..4i64 {
                for j in -1..17i64 {
                    for i in -1..17i64 {
                        a.set(i, j, k_, ((i * 7 + j * 3 + k_) % 11) as f64);
                    }
                }
            }
            *store.get_mut(ids[0]) = a;
        };
        let mut s1 = DataStore::for_sdfg(&g);
        init(&mut s1);
        Executor::serial().run(&g, &mut s1, &[], &mut NoHooks);
        let mut s2 = DataStore::for_sdfg(&g);
        init(&mut s2);
        Executor::new(Pool::new(4)).run(&g, &mut s2, &[], &mut NoHooks);
        assert_eq!(s1.get(ids[1]).max_abs_diff(s2.get(ids[1])), 0.0);
    }

    #[test]
    fn loop_control_node_repeats() {
        let (mut g, ids) = sdfg_with(4, 0, &["x"]);
        let mut k = Kernel::new(
            "inc",
            Domain::from_shape([4, 4, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[0]),
            Expr::load(ids[0], 0, 0, 0) + Expr::c(1.0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.states.push(s);
        g.control = vec![ControlNode::Loop {
            trips: 5,
            body: vec![ControlNode::State(0)],
        }];

        let mut store = DataStore::for_sdfg(&g);
        let report = Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(report.launches, 5);
        assert_eq!(store.get(ids[0]).get(2, 2, 2), 5.0);
    }

    #[test]
    fn halo_and_callback_hooks_fire() {
        let (mut g, ids) = sdfg_with(4, 1, &["x"]);
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::HaloExchange {
            fields: vec![ids[0]],
        });
        s.nodes.push(DataflowNode::Callback {
            name: "diag".into(),
            reads: vec![ids[0]],
            writes: vec![],
        });
        g.add_state(s);

        struct H {
            halos: u32,
            cbs: Vec<String>,
        }
        impl ExecHooks for H {
            fn halo_exchange(&mut self, fields: &[DataId], _store: &mut DataStore) {
                assert_eq!(fields.len(), 1);
                self.halos += 1;
            }
            fn callback(&mut self, name: &str, _store: &mut DataStore) {
                self.cbs.push(name.to_string());
            }
        }
        let mut h = H {
            halos: 0,
            cbs: vec![],
        };
        let mut store = DataStore::for_sdfg(&g);
        let report = Executor::serial().run(&g, &mut store, &[], &mut h);
        assert_eq!(h.halos, 1);
        assert_eq!(h.cbs, vec!["diag"]);
        assert_eq!(report.halo_exchanges, 1);
        assert_eq!(report.callbacks, 1);
    }

    #[test]
    fn validation_rejects_horizontal_self_dependency() {
        let (_, ids) = sdfg_with(4, 1, &["x", "y"]);
        let mut k = Kernel::new(
            "bad",
            Domain::from_shape([4, 4, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[0]),
            Expr::load(ids[0], 1, 0, 0),
        ));
        assert!(validate_kernel(&k).is_err());
        // And vertical self-dependency in PARALLEL:
        let mut k2 = Kernel::new(
            "bad2",
            Domain::from_shape([4, 4, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k2.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[1], 0, 0, -1),
        ));
        assert!(validate_kernel(&k2).is_err());
        // Forward reading k-1 of own output is fine:
        let mut k3 = Kernel::new(
            "ok",
            Domain::from_shape([4, 4, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k3.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[1], 0, 0, -1),
        ));
        assert!(validate_kernel(&k3).is_ok());
        // ...but reading k+1 in a forward solver is not.
        let mut k4 = k3.clone();
        k4.stmts[0].expr = Expr::load(ids[1], 0, 0, 1);
        assert!(validate_kernel(&k4).is_err());
    }

    #[test]
    fn param_count_is_checked() {
        let mut g = Sdfg::new("t");
        g.add_param("dt");
        let store = &mut DataStore::for_sdfg(&g);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Executor::serial().run(&g, store, &[], &mut NoHooks);
        }));
        assert!(result.is_err());
    }
}
