//! The runtime executor: runs an expanded SDFG numerically on the host.
//!
//! Execution is column-oriented: every kernel iterates its `(i, j)` columns
//! (in parallel chunks through [`machine::Pool`]) and marches K upward,
//! downward, or in arbitrary order per its [`KOrder`]. Statement bodies run
//! through the bytecode VM. The executor enforces the same parallel-model
//! restriction GT4Py does: within one kernel, no statement may read — at a
//! nonzero horizontal offset — a field written by the same kernel
//! (cross-thread dependencies must be broken into separate kernels or
//! fused by recomputation; Section IV-D "some synchronization points were
//! pre-determined and had to be worked around by splitting stencils").

use crate::bytecode::{self, LaneCtx, Program, VmCtx, LANE_WIDTH};
use crate::expr::{DataId, Offset3};
use crate::graph::{ControlNode, DataflowNode, Sdfg};
use crate::kernel::{Domain, KOrder, Kernel, LValue};
use crate::profile::Profiler;
use crate::storage::{Array3, Axis, Layout};
use machine::Pool;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Runtime storage: one array per SDFG container.
#[derive(Debug, Clone)]
pub struct DataStore {
    arrays: Vec<Array3>,
}

impl DataStore {
    /// Allocate zeroed arrays for every container of `sdfg`.
    pub fn for_sdfg(sdfg: &Sdfg) -> Self {
        DataStore {
            arrays: sdfg
                .containers
                .iter()
                .map(|c| Array3::zeros(c.layout.clone()))
                .collect(),
        }
    }

    /// Immutable access to a container's array.
    pub fn get(&self, d: DataId) -> &Array3 {
        &self.arrays[d.0]
    }

    /// Mutable access to a container's array.
    pub fn get_mut(&mut self, d: DataId) -> &mut Array3 {
        &mut self.arrays[d.0]
    }

    /// Number of containers.
    pub fn len(&self) -> usize {
        self.arrays.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.arrays.is_empty()
    }
}

/// Hooks for nodes the executor cannot run itself.
pub trait ExecHooks {
    /// Perform a halo exchange on `fields` (distributed driver).
    fn halo_exchange(&mut self, fields: &[DataId], store: &mut DataStore) {
        let _ = (fields, store);
    }

    /// Invoke a named host callback (the Python-interop analog).
    fn callback(&mut self, name: &str, store: &mut DataStore) {
        let _ = (name, store);
    }
}

/// No-op hooks for single-rank programs.
pub struct NoHooks;
impl ExecHooks for NoHooks {}

/// Aggregated per-kernel execution statistics.
#[derive(Debug, Clone, Default)]
pub struct KernelStat {
    pub name: String,
    pub invocations: u64,
    pub points: u64,
    pub wall_seconds: f64,
}

/// Report of one SDFG execution.
#[derive(Debug, Clone, Default)]
pub struct ExecReport {
    /// Kernel launches performed.
    pub launches: u64,
    /// Stats grouped by kernel name ("sort by summarized runtimes grouped
    /// by kernel type", Section VI-C).
    pub kernels: Vec<KernelStat>,
    /// Total wall-clock seconds inside kernel loops.
    pub wall_seconds: f64,
    /// Halo exchanges performed.
    pub halo_exchanges: u64,
    /// Host callbacks performed.
    pub callbacks: u64,
    /// Kernel launches served from the executor's compiled-kernel cache.
    pub cache_hits: u64,
    /// Kernel launches that had to (re)compile.
    pub cache_misses: u64,
    /// Points executed through the vectorized lane VM.
    pub lanes_vector: u64,
    /// Points executed through the scalar VM (boundary rind, narrow
    /// hulls, or `VmMode::Scalar`).
    pub lanes_scalar: u64,
}

impl ExecReport {
    fn record(&mut self, name: &str, points: u64, secs: f64) {
        self.launches += 1;
        self.wall_seconds += secs;
        if let Some(k) = self.kernels.iter_mut().find(|k| k.name == name) {
            k.invocations += 1;
            k.points += points;
            k.wall_seconds += secs;
        } else {
            self.kernels.push(KernelStat {
                name: name.to_string(),
                invocations: 1,
                points,
                wall_seconds: secs,
            });
        }
    }
}

/// Validate the parallel-model restriction for `kernel`.
///
/// Returns an error description when a statement reads a field written by
/// this kernel at a nonzero horizontal offset (a cross-thread dependency),
/// or when a `Parallel` kernel has a vertical self-dependency.
pub fn validate_kernel(kernel: &Kernel) -> Result<(), String> {
    let written = kernel.writes();
    for (si, s) in kernel.stmts.iter().enumerate() {
        for (d, o) in s.expr.loads() {
            if written.contains(&d) {
                if o.i != 0 || o.j != 0 {
                    return Err(format!(
                        "kernel '{}' stmt {si}: reads {d:?} at horizontal offset {o} but \
                         the kernel writes it — split the stencil or fuse on-the-fly",
                        kernel.name
                    ));
                }
                match kernel.k_order {
                    KOrder::Parallel => {
                        if o.k != 0 {
                            return Err(format!(
                                "kernel '{}' stmt {si}: vertical self-dependency {o} in a \
                                 PARALLEL computation",
                                kernel.name
                            ));
                        }
                    }
                    KOrder::Forward => {
                        if o.k > 0 {
                            return Err(format!(
                                "kernel '{}' stmt {si}: forward solver reads {d:?} at k+{}",
                                kernel.name, o.k
                            ));
                        }
                    }
                    KOrder::Backward => {
                        if o.k < 0 {
                            return Err(format!(
                                "kernel '{}' stmt {si}: backward solver reads {d:?} at k{}",
                                kernel.name, o.k
                            ));
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Validate every kernel in an SDFG.
pub fn validate_sdfg(sdfg: &Sdfg) -> Result<(), String> {
    for state in &sdfg.states {
        for node in &state.nodes {
            if let DataflowNode::Kernel(k) = node {
                validate_kernel(k)?;
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Kernel execution

/// Which VM runs a kernel's statement bodies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VmMode {
    /// Point-at-a-time scalar VM everywhere (the reference path).
    Scalar,
    /// Lane VM over contiguous i-runs in the interior, scalar VM on the
    /// boundary rind. Bit-identical to [`VmMode::Scalar`].
    #[default]
    Lanes,
}

/// Counters from one kernel launch.
#[derive(Debug, Clone, Copy, Default)]
pub struct KernelRunStats {
    /// Statement-points executed (the figure [`run_kernel`] returns).
    pub points: u64,
    /// Points that went through the vectorized lane VM.
    pub lanes_vector: u64,
    /// Points that went through the scalar VM.
    pub lanes_scalar: u64,
}

/// Raw view of one container used inside the kernel loop. Columns write
/// disjoint points (guaranteed by [`validate_kernel`]), so sharing the
/// pointer across worker threads is sound.
#[derive(Clone, Copy)]
struct FieldSlot {
    ptr: *mut f64,
    base: usize,
    strides: [usize; 3],
}

unsafe impl Send for FieldSlot {}
unsafe impl Sync for FieldSlot {}

impl FieldSlot {
    #[inline]
    fn offset(&self, i: i64, j: i64, k: i64) -> usize {
        (self.base as i64
            + i * self.strides[0] as i64
            + j * self.strides[1] as i64
            + k * self.strides[2] as i64) as usize
    }

    #[inline]
    unsafe fn read(&self, i: i64, j: i64, k: i64) -> f64 {
        *self.ptr.add(self.offset(i, j, k))
    }

    #[inline]
    unsafe fn write(&self, i: i64, j: i64, k: i64, v: f64) {
        *self.ptr.add(self.offset(i, j, k)) = v;
    }
}

/// Concrete (resolved) bounds of one statement.
#[derive(Debug, Clone, Copy)]
struct StmtBounds {
    il: i64,
    ih: i64,
    jl: i64,
    jh: i64,
    kl: i64,
    kh: i64,
}

struct CompiledStmt {
    program: Program,
    bounds: StmtBounds,
    lvalue: CompiledLValue,
}

enum CompiledLValue {
    Field(u16),
    Local(u16),
}

/// Cheap identity check for a cached [`CompiledKernel`]: catches ad-hoc
/// kernel edits that did not go through [`Sdfg::touch`]-instrumented
/// passes (a changed expression with identical shape still requires a
/// generation bump — the documented invalidation contract).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct KernelFingerprint {
    domain: Domain,
    n_stmts: usize,
    n_locals: usize,
    k_order: KOrder,
}

impl KernelFingerprint {
    fn of(kernel: &Kernel) -> Self {
        KernelFingerprint {
            domain: kernel.domain,
            n_stmts: kernel.stmts.len(),
            n_locals: kernel.n_locals,
            k_order: kernel.k_order,
        }
    }
}

/// Everything about a kernel that is invariant across launches: the slot
/// table, compiled statement programs, resolved bounds, and the iteration
/// hull. Building one is the per-launch work [`run_kernel`] used to redo
/// every invocation; the executor caches them per `(state, node)`.
pub struct CompiledKernel {
    ids: Vec<DataId>,
    stmts: Vec<CompiledStmt>,
    hull: StmtBounds,
    max_regs: usize,
    n_locals: usize,
    points: u64,
    k_desc: bool,
    k_parallel: bool,
    empty: bool,
    fingerprint: KernelFingerprint,
}

/// Compile a kernel: build the slot table (one hash-map pass — the old
/// path was O(fields²) in `contains`/`position` scans), compile every
/// statement, and resolve per-statement bounds plus the union hull.
pub fn compile_kernel(kernel: &Kernel) -> CompiledKernel {
    let fingerprint = KernelFingerprint::of(kernel);
    let empty_ck = |fingerprint| CompiledKernel {
        ids: Vec::new(),
        stmts: Vec::new(),
        hull: StmtBounds {
            il: 0,
            ih: 0,
            jl: 0,
            jh: 0,
            kl: 0,
            kh: 0,
        },
        max_regs: 0,
        n_locals: 0,
        points: 0,
        k_desc: false,
        k_parallel: false,
        empty: true,
        fingerprint,
    };
    if kernel.domain.is_empty() || kernel.stmts.is_empty() {
        return empty_ck(fingerprint);
    }

    // Field slot table: stable order over reads + writes, interned once.
    let mut ids: Vec<DataId> = Vec::new();
    let mut slot_map: HashMap<DataId, u16> = HashMap::new();
    for d in kernel.reads().into_iter().map(|(d, _)| d).chain(kernel.writes()) {
        slot_map.entry(d).or_insert_with(|| {
            ids.push(d);
            (ids.len() - 1) as u16
        });
    }
    let slot_of = |d: DataId| -> u16 { *slot_map.get(&d).expect("unknown field in kernel") };

    // Compile statements and resolve bounds.
    let dom = kernel.domain;
    let mut stmts = Vec::with_capacity(kernel.stmts.len());
    let mut hull = StmtBounds {
        il: i64::MAX,
        ih: i64::MIN,
        jl: i64::MAX,
        jh: i64::MIN,
        kl: i64::MAX,
        kh: i64::MIN,
    };
    let mut points = 0u64;
    for s in &kernel.stmts {
        let grown = s.extent.grow(&dom);
        let (il, ih, jl, jh) = match &s.region {
            Some(r) => {
                let (il, ih) = r.i.resolve(dom.start[0], dom.end[0]);
                let (jl, jh) = r.j.resolve(dom.start[1], dom.end[1]);
                (il, ih, jl, jh)
            }
            None => (grown.start[0], grown.end[0], grown.start[1], grown.end[1]),
        };
        let (kl, kh) = s.k_range.resolve(dom.start[2], dom.end[2]);
        let b = StmtBounds {
            il,
            ih,
            jl,
            jh,
            kl,
            kh,
        };
        hull.il = hull.il.min(b.il);
        hull.ih = hull.ih.max(b.ih);
        hull.jl = hull.jl.min(b.jl);
        hull.jh = hull.jh.max(b.jh);
        hull.kl = hull.kl.min(b.kl);
        hull.kh = hull.kh.max(b.kh);
        points += ((ih - il).max(0) * (jh - jl).max(0) * (kh - kl).max(0)) as u64;
        let program = bytecode::compile(&s.expr, &slot_of);
        let lvalue = match s.lvalue {
            LValue::Field(d) => CompiledLValue::Field(slot_of(d)),
            LValue::Local(l) => CompiledLValue::Local(l.0 as u16),
        };
        stmts.push(CompiledStmt {
            program,
            bounds: b,
            lvalue,
        });
    }
    if hull.ih <= hull.il || hull.jh <= hull.jl || hull.kh <= hull.kl {
        return empty_ck(fingerprint);
    }

    let max_regs = stmts.iter().map(|c| c.program.n_regs).max().unwrap_or(0) as usize;
    // Locals referenced anywhere (declared, written, or read) size the
    // per-column local file.
    let n_locals = kernel
        .n_locals
        .max(
            stmts
                .iter()
                .filter_map(|c| match c.lvalue {
                    CompiledLValue::Local(l) => Some(l as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0),
        )
        .max(
            stmts
                .iter()
                .flat_map(|c| c.program.instrs.iter())
                .filter_map(|i| match i {
                    bytecode::Instr::LoadLocal { l, .. } => Some(*l as usize + 1),
                    _ => None,
                })
                .max()
                .unwrap_or(0),
        );

    CompiledKernel {
        ids,
        stmts,
        hull,
        max_regs,
        n_locals,
        points,
        k_desc: kernel.k_order == KOrder::Backward,
        k_parallel: kernel.k_order == KOrder::Parallel,
        empty: false,
        fingerprint,
    }
}

struct PointCtx<'a> {
    slots: &'a [FieldSlot],
    locals: &'a [f64],
    params: &'a [f64],
    i: i64,
    j: i64,
    k: i64,
}

impl VmCtx for PointCtx<'_> {
    #[inline]
    fn load(&self, slot: u16, off: Offset3) -> f64 {
        unsafe {
            self.slots[slot as usize].read(
                self.i + off.i as i64,
                self.j + off.j as i64,
                self.k + off.k as i64,
            )
        }
    }

    #[inline]
    fn local(&self, l: u16) -> f64 {
        self.locals[l as usize]
    }

    #[inline]
    fn param(&self, p: u16) -> f64 {
        self.params[p as usize]
    }

    #[inline]
    fn index(&self, axis: Axis) -> i64 {
        match axis {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }
}

/// Scalar VM context for the boundary rind of the vectorized path: like
/// [`PointCtx`] but locals live in a per-row file laid out
/// `[local][i-column]`, so each column's running locals persist across
/// the row's K march exactly as the per-column scalar path's do.
struct RowPointCtx<'a> {
    slots: &'a [FieldSlot],
    row_locals: &'a [f64],
    ni: usize,
    col: usize,
    params: &'a [f64],
    i: i64,
    j: i64,
    k: i64,
}

impl VmCtx for RowPointCtx<'_> {
    #[inline]
    fn load(&self, slot: u16, off: Offset3) -> f64 {
        unsafe {
            self.slots[slot as usize].read(
                self.i + off.i as i64,
                self.j + off.j as i64,
                self.k + off.k as i64,
            )
        }
    }

    #[inline]
    fn local(&self, l: u16) -> f64 {
        self.row_locals[l as usize * self.ni + self.col]
    }

    #[inline]
    fn param(&self, p: u16) -> f64 {
        self.params[p as usize]
    }

    #[inline]
    fn index(&self, axis: Axis) -> i64 {
        match axis {
            Axis::I => self.i,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }
}

/// Lane VM context: a run of `w` consecutive i-points at `(i0.., j, k)`.
struct LaneRowCtx<'a> {
    slots: &'a [FieldSlot],
    row_locals: &'a [f64],
    ni: usize,
    lane0: usize,
    params: &'a [f64],
    i0: i64,
    j: i64,
    k: i64,
}

impl LaneCtx for LaneRowCtx<'_> {
    #[inline]
    fn load_lanes(&self, slot: u16, off: Offset3, out: &mut [f64]) {
        let s = &self.slots[slot as usize];
        let base = s.offset(
            self.i0 + off.i as i64,
            self.j + off.j as i64,
            self.k + off.k as i64,
        );
        let istride = s.strides[0];
        unsafe {
            if istride == 1 {
                // Unit i-stride: the lane load is one contiguous copy.
                std::ptr::copy_nonoverlapping(s.ptr.add(base), out.as_mut_ptr(), out.len());
            } else {
                for (l, d) in out.iter_mut().enumerate() {
                    *d = *s.ptr.add(base + l * istride);
                }
            }
        }
    }

    #[inline]
    fn local_lanes(&self, l: u16, out: &mut [f64]) {
        let off = l as usize * self.ni + self.lane0;
        out.copy_from_slice(&self.row_locals[off..off + out.len()]);
    }

    #[inline]
    fn param(&self, p: u16) -> f64 {
        self.params[p as usize]
    }

    #[inline]
    fn index_lane0(&self, axis: Axis) -> i64 {
        match axis {
            Axis::I => self.i0,
            Axis::J => self.j,
            Axis::K => self.k,
        }
    }
}

/// Minimum lane count worth dispatching to the lane VM; narrower runs
/// (region rinds, 1-wide hulls) use the scalar VM.
const VECTOR_MIN: usize = 4;

fn field_slots(ids: &[DataId], store: &mut DataStore) -> Vec<FieldSlot> {
    ids.iter()
        .map(|d| {
            let a = store.get_mut(*d);
            let layout: Layout = a.layout().clone();
            FieldSlot {
                ptr: a.raw_mut().as_mut_ptr(),
                base: layout.base,
                strides: layout.strides,
            }
        })
        .collect()
}

/// Run a pre-compiled kernel. Array pointers are re-resolved from `store`
/// on every launch (arrays may have been reallocated between launches);
/// everything else comes from the cache-friendly [`CompiledKernel`].
pub fn run_compiled(
    ck: &CompiledKernel,
    store: &mut DataStore,
    params: &[f64],
    pool: &Pool,
    mode: VmMode,
) -> KernelRunStats {
    if ck.empty {
        return KernelRunStats::default();
    }
    let slots = field_slots(&ck.ids, store);
    match mode {
        VmMode::Scalar => run_scalar(ck, &slots, params, pool),
        VmMode::Lanes => run_lanes_rows(ck, &slots, params, pool),
    }
}

/// The reference executor: per-column scalar VM (the pre-vectorization
/// inner loop, kept verbatim as the bit-identity oracle and rind body).
fn run_scalar(ck: &CompiledKernel, slots: &[FieldSlot], params: &[f64], pool: &Pool) -> KernelRunStats {
    let hull = ck.hull;
    let ni = (hull.ih - hull.il) as usize;
    let nj = (hull.jh - hull.jl) as usize;
    let columns = ni * nj;
    let k_desc = ck.k_desc;
    let n_locals = ck.n_locals;
    let max_regs = ck.max_regs;
    let compiled = &ck.stmts;

    pool.for_each_chunk(columns, |range| {
        let mut regs = vec![0.0f64; max_regs];
        let mut locals = vec![0.0f64; n_locals];
        for col in range {
            let i = hull.il + (col % ni) as i64;
            let j = hull.jl + (col / ni) as i64;
            if n_locals > 0 {
                locals.iter_mut().for_each(|l| *l = 0.0);
            }
            let mut k = if k_desc { hull.kh - 1 } else { hull.kl };
            while k >= hull.kl && k < hull.kh {
                for cs in compiled {
                    let b = &cs.bounds;
                    if i >= b.il && i < b.ih && j >= b.jl && j < b.jh && k >= b.kl && k < b.kh {
                        let v = {
                            let ctx = PointCtx {
                                slots,
                                locals: &locals,
                                params,
                                i,
                                j,
                                k,
                            };
                            bytecode::run(&cs.program, &ctx, &mut regs)
                        };
                        match cs.lvalue {
                            CompiledLValue::Field(slot) => unsafe {
                                slots[slot as usize].write(i, j, k, v);
                            },
                            CompiledLValue::Local(l) => locals[l as usize] = v,
                        }
                    }
                }
                k += if k_desc { -1 } else { 1 };
            }
        }
    });

    KernelRunStats {
        points: ck.points,
        lanes_vector: 0,
        lanes_scalar: ck.points,
    }
}

/// The vectorized executor: rows of consecutive i-points per `(j, k)`.
///
/// Work decomposition: one parallel work item per j-row (per `(j, k)`
/// plane-row for `Parallel` kernels with no locals, which exposes more
/// parallelism). Within a row, K marches in the kernel's order and
/// statements run in program order, so each column sees exactly the
/// `(k, statement)` sequence the scalar path gives it — columns are
/// independent by [`validate_kernel`], making the row-major regrouping
/// bit-identical.
///
/// Each statement's i-range is cut into runs of at most [`LANE_WIDTH`]:
/// runs of at least [`VECTOR_MIN`] lanes execute on the lane VM (the
/// *interior*), narrower runs — region rinds, 1-wide hulls, remainders
/// under `VECTOR_MIN` — fall back to the scalar VM (the *rind*). Both
/// VMs apply the same scalar arithmetic kernels in the same order, so
/// the split never changes a single bit of output.
fn run_lanes_rows(
    ck: &CompiledKernel,
    slots: &[FieldSlot],
    params: &[f64],
    pool: &Pool,
) -> KernelRunStats {
    let hull = ck.hull;
    let ni = (hull.ih - hull.il) as usize;
    let nj = (hull.jh - hull.jl) as usize;
    let nk = (hull.kh - hull.kl) as usize;
    let n_locals = ck.n_locals;
    let k_desc = ck.k_desc;
    // Parallel K with no locals: every (j, k) row is independent.
    let jk_rows = ck.k_parallel && n_locals == 0;
    let rows = if jk_rows { nj * nk } else { nj };
    let max_regs = ck.max_regs;
    let compiled = &ck.stmts;
    let vec_pts = AtomicU64::new(0);
    let scalar_pts = AtomicU64::new(0);

    pool.for_each_chunk(rows, |range| {
        let mut regs = vec![0.0f64; max_regs * LANE_WIDTH];
        let mut row_locals = vec![0.0f64; n_locals * ni];
        let mut lv = 0u64;
        let mut ls = 0u64;
        for row in range {
            let j = hull.jl + (if jk_rows { row % nj } else { row }) as i64;
            if n_locals > 0 {
                row_locals.fill(0.0);
            }
            let (mut k, k_last) = if jk_rows {
                let k = hull.kl + (row / nj) as i64;
                (k, k)
            } else if k_desc {
                (hull.kh - 1, hull.kl)
            } else {
                (hull.kl, hull.kh - 1)
            };
            loop {
                for cs in compiled {
                    let b = &cs.bounds;
                    if j < b.jl || j >= b.jh || k < b.kl || k >= b.kh || b.ih <= b.il {
                        continue;
                    }
                    let mut i0 = b.il;
                    while i0 < b.ih {
                        let w = ((b.ih - i0) as usize).min(LANE_WIDTH);
                        let lane0 = (i0 - hull.il) as usize;
                        if w >= VECTOR_MIN {
                            {
                                let ctx = LaneRowCtx {
                                    slots,
                                    row_locals: &row_locals,
                                    ni,
                                    lane0,
                                    params,
                                    i0,
                                    j,
                                    k,
                                };
                                bytecode::run_lanes(&cs.program, &ctx, &mut regs, w);
                            }
                            let res = cs.program.result as usize * LANE_WIDTH;
                            match cs.lvalue {
                                CompiledLValue::Field(slot) => unsafe {
                                    let s = &slots[slot as usize];
                                    let base = s.offset(i0, j, k);
                                    let istride = s.strides[0];
                                    if istride == 1 {
                                        std::ptr::copy_nonoverlapping(
                                            regs.as_ptr().add(res),
                                            s.ptr.add(base),
                                            w,
                                        );
                                    } else {
                                        for l in 0..w {
                                            *s.ptr.add(base + l * istride) = regs[res + l];
                                        }
                                    }
                                },
                                CompiledLValue::Local(lid) => {
                                    let off = lid as usize * ni + lane0;
                                    row_locals[off..off + w]
                                        .copy_from_slice(&regs[res..res + w]);
                                }
                            }
                            lv += w as u64;
                        } else {
                            for l in 0..w {
                                let i = i0 + l as i64;
                                let v = {
                                    let ctx = RowPointCtx {
                                        slots,
                                        row_locals: &row_locals,
                                        ni,
                                        col: lane0 + l,
                                        params,
                                        i,
                                        j,
                                        k,
                                    };
                                    bytecode::run(&cs.program, &ctx, &mut regs)
                                };
                                match cs.lvalue {
                                    CompiledLValue::Field(slot) => unsafe {
                                        slots[slot as usize].write(i, j, k, v);
                                    },
                                    CompiledLValue::Local(lid) => {
                                        row_locals[lid as usize * ni + lane0 + l] = v;
                                    }
                                }
                            }
                            ls += w as u64;
                        }
                        i0 += w as i64;
                    }
                }
                if k == k_last {
                    break;
                }
                k += if k_desc { -1 } else { 1 };
            }
        }
        vec_pts.fetch_add(lv, Ordering::Relaxed);
        scalar_pts.fetch_add(ls, Ordering::Relaxed);
    });

    KernelRunStats {
        points: ck.points,
        lanes_vector: vec_pts.load(Ordering::Relaxed),
        lanes_scalar: scalar_pts.load(Ordering::Relaxed),
    }
}

/// Compile and run one kernel with an explicit [`VmMode`] (used by the
/// differential tests and the ablation bench).
pub fn run_kernel_with(
    kernel: &Kernel,
    store: &mut DataStore,
    params: &[f64],
    pool: &Pool,
    mode: VmMode,
) -> KernelRunStats {
    debug_assert!(validate_kernel(kernel).is_ok(), "{:?}", validate_kernel(kernel));
    run_compiled(&compile_kernel(kernel), store, params, pool, mode)
}

/// Execute one kernel over the store. `params` are the SDFG's scalar
/// parameter values. Returns the number of points executed.
pub fn run_kernel(kernel: &Kernel, store: &mut DataStore, params: &[f64], pool: &Pool) -> u64 {
    run_kernel_with(kernel, store, params, pool, VmMode::default()).points
}

/// Compiled kernels held by an [`Executor`], keyed by `(state index,
/// node index)` and namespaced by the source graph's `(uid, generation)`.
///
/// Invalidation contract: any mutation of the SDFG must bump its
/// generation via [`Sdfg::touch`] (all transform passes do); running a
/// different or newer graph through the executor clears the cache. As a
/// second line of defense, each hit re-checks a cheap per-kernel
/// fingerprint (domain, statement count, locals, K order) and recompiles
/// on mismatch.
#[derive(Default)]
struct KernelCache {
    sdfg_uid: u64,
    generation: u64,
    entries: HashMap<(usize, usize), Arc<CompiledKernel>>,
}

/// Executes SDFGs with a worker pool, a compiled-kernel cache, and hooks.
pub struct Executor {
    pool: Pool,
    mode: VmMode,
    cache: Mutex<KernelCache>,
}

impl Executor {
    /// An executor backed by `pool` (vectorized lane VM).
    pub fn new(pool: Pool) -> Self {
        Executor::with_mode(pool, VmMode::default())
    }

    /// An executor backed by `pool` with an explicit VM mode.
    pub fn with_mode(pool: Pool, mode: VmMode) -> Self {
        Executor {
            pool,
            mode,
            cache: Mutex::new(KernelCache::default()),
        }
    }

    /// Serial executor (deterministic, used by tests).
    pub fn serial() -> Self {
        Executor::new(Pool::new(1))
    }

    /// Serial executor forced onto the scalar reference VM.
    pub fn serial_scalar() -> Self {
        Executor::with_mode(Pool::new(1), VmMode::Scalar)
    }

    /// Look up (or compile) the kernel at `key`, reporting whether it was
    /// a cache hit. The `Arc` keeps the lock window to the map probe.
    fn compiled_for(
        &self,
        sdfg: &Sdfg,
        key: (usize, usize),
        kernel: &Kernel,
    ) -> (Arc<CompiledKernel>, bool) {
        let mut cache = self.cache.lock();
        if cache.sdfg_uid != sdfg.uid() || cache.generation != sdfg.generation() {
            cache.entries.clear();
            cache.sdfg_uid = sdfg.uid();
            cache.generation = sdfg.generation();
        }
        if let Some(e) = cache.entries.get(&key) {
            if e.fingerprint == KernelFingerprint::of(kernel) {
                return (Arc::clone(e), true);
            }
        }
        let ck = Arc::new(compile_kernel(kernel));
        cache.entries.insert(key, Arc::clone(&ck));
        (ck, false)
    }

    /// Run the whole program. `params` maps [`crate::expr::ParamId`]
    /// indices to values and must cover `sdfg.params`.
    pub fn run(
        &self,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
    ) -> ExecReport {
        self.run_inner(sdfg, store, params, hooks, &mut None)
    }

    /// Run the whole program with observability: every executed node is
    /// recorded as a span in `profiler`, kernels annotated with points and
    /// modeled bytes from their access sets. Numerical results are
    /// identical to [`Executor::run`] — the profiler never touches the
    /// data plane.
    pub fn run_profiled(
        &self,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        profiler: &mut Profiler,
    ) -> ExecReport {
        self.run_inner(sdfg, store, params, hooks, &mut Some(profiler))
    }

    fn run_inner(
        &self,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        prof: &mut Option<&mut Profiler>,
    ) -> ExecReport {
        assert!(
            params.len() >= sdfg.params.len(),
            "expected {} params, got {}",
            sdfg.params.len(),
            params.len()
        );
        let mut report = ExecReport::default();
        self.run_control(&sdfg.control, sdfg, store, params, hooks, &mut report, prof);
        report
    }

    #[allow(clippy::too_many_arguments)]
    fn run_control(
        &self,
        nodes: &[ControlNode],
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        report: &mut ExecReport,
        prof: &mut Option<&mut Profiler>,
    ) {
        for node in nodes {
            match node {
                ControlNode::State(s) => {
                    self.run_state(*s, sdfg, store, params, hooks, report, prof)
                }
                ControlNode::Loop { trips, body } => {
                    for _ in 0..*trips {
                        self.run_control(body, sdfg, store, params, hooks, report, prof);
                    }
                }
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run_state(
        &self,
        state_idx: usize,
        sdfg: &Sdfg,
        store: &mut DataStore,
        params: &[f64],
        hooks: &mut dyn ExecHooks,
        report: &mut ExecReport,
        prof: &mut Option<&mut Profiler>,
    ) {
        let state = &sdfg.states[state_idx];
        for (node_idx, node) in state.nodes.iter().enumerate() {
            match node {
                DataflowNode::Kernel(k) => {
                    debug_assert!(validate_kernel(k).is_ok(), "{:?}", validate_kernel(k));
                    let ts = prof.as_ref().map(|p| p.now_us());
                    let t0 = Instant::now();
                    let (ck, hit) = self.compiled_for(sdfg, (state_idx, node_idx), k);
                    let stats = run_compiled(&ck, store, params, &self.pool, self.mode);
                    report.record(&k.name, stats.points, t0.elapsed().as_secs_f64());
                    if hit {
                        report.cache_hits += 1;
                    } else {
                        report.cache_misses += 1;
                    }
                    report.lanes_vector += stats.lanes_vector;
                    report.lanes_scalar += stats.lanes_scalar;
                    if let Some(p) = prof.as_mut() {
                        let (bytes, flops) = p.modeled_cost((state_idx, node_idx), k, sdfg);
                        p.record_span("kernel", &k.name, ts.unwrap(), stats.points, bytes, flops);
                    }
                }
                DataflowNode::Library(l) => {
                    panic!(
                        "unexpanded library node '{}' — call Sdfg::expand_libraries first",
                        l.label()
                    );
                }
                DataflowNode::Copy { src, dst } => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    let (s, d) = (*src, *dst);
                    let src_arr = store.get(s).clone();
                    store.get_mut(d).copy_from(&src_arr);
                    if let Some(p) = prof.as_mut() {
                        // Copy traffic: every stored element read + written.
                        let points = src_arr.raw().len() as u64;
                        let bytes = 2 * 8 * points;
                        p.record_span("copy", "copy", ts.unwrap(), points, bytes, 0);
                    }
                }
                DataflowNode::HaloExchange { fields } => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    hooks.halo_exchange(fields, store);
                    report.halo_exchanges += 1;
                    if let Some(p) = prof.as_mut() {
                        // Rind traffic: each exchanged field's halo shell is
                        // packed (read) and unpacked (written) once.
                        let mut points = 0u64;
                        for f in fields {
                            let total = store.get(*f).raw().len() as u64;
                            let interior = sdfg.layout_of(*f).domain_len() as u64;
                            points += total.saturating_sub(interior);
                        }
                        p.record_span("halo", "halo", ts.unwrap(), points, 2 * 8 * points, 0);
                    }
                }
                DataflowNode::Callback { name, reads, writes } => {
                    let ts = prof.as_ref().map(|p| p.now_us());
                    hooks.callback(name, store);
                    report.callbacks += 1;
                    if let Some(p) = prof.as_mut() {
                        // Attribute the callback's declared access set: every
                        // read field streamed in, every written field out.
                        let points: u64 = writes
                            .iter()
                            .map(|f| sdfg.layout_of(*f).domain_len() as u64)
                            .sum();
                        let read_elems: u64 = reads
                            .iter()
                            .map(|f| sdfg.layout_of(*f).domain_len() as u64)
                            .sum();
                        let bytes = 8 * (read_elems + points);
                        p.record_span("callback", name, ts.unwrap(), points, bytes, 0);
                    }
                }
            }
        }
    }
}

/// Convenience: run a single kernel on a store with no hooks, serially.
pub fn run_kernel_serial(kernel: &Kernel, store: &mut DataStore, params: &[f64]) -> u64 {
    run_kernel(kernel, store, params, &Pool::new(1))
}

/// Aggregate executed kernel stats by name sorted by total wall time
/// descending (the Fig. 10 ranking).
pub fn rank_by_wall_time(report: &ExecReport) -> Vec<&KernelStat> {
    let mut v: Vec<&KernelStat> = report.kernels.iter().collect();
    v.sort_by(|a, b| b.wall_seconds.partial_cmp(&a.wall_seconds).unwrap());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, LocalId};
    use crate::graph::State;
    use crate::kernel::{Anchor, AxisInterval, Domain, Extent2, KOrder, Region2, Schedule, Stmt};
    use crate::storage::StorageOrder;

    fn sdfg_with(n: usize, halo: usize, names: &[&str]) -> (Sdfg, Vec<DataId>) {
        let mut g = Sdfg::new("t");
        let l = Layout::new([n, n, 4], [halo, halo, 1], StorageOrder::IContiguous, 1);
        let ids = names
            .iter()
            .map(|nm| g.add_container(*nm, l.clone(), false))
            .collect();
        (g, ids)
    }

    #[test]
    fn pointwise_kernel_executes() {
        let (mut g, ids) = sdfg_with(8, 0, &["a", "b"]);
        let p = g.add_param("scale");
        let mut k = Kernel::new(
            "scale",
            Domain::from_shape([8, 8, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[0], 0, 0, 0) * Expr::Param(p),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |i, j, k| {
            (i + j + k) as f64
        });
        let report = Executor::serial().run(&g, &mut store, &[3.0], &mut NoHooks);
        assert_eq!(report.launches, 1);
        assert_eq!(store.get(ids[1]).get(2, 3, 1), 18.0);
    }

    #[test]
    fn laplacian_uses_halo() {
        let (mut g, ids) = sdfg_with(6, 1, &["inp", "out"]);
        let mut k = Kernel::new(
            "lap",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let e = Expr::load(ids[0], -1, 0, 0)
            + Expr::load(ids[0], 1, 0, 0)
            + Expr::load(ids[0], 0, -1, 0)
            + Expr::load(ids[0], 0, 1, 0)
            - Expr::c(4.0) * Expr::load(ids[0], 0, 0, 0);
        k.stmts.push(Stmt::full(LValue::Field(ids[1]), e));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        // f(i,j) = i^2 -> laplacian = 2 everywhere (constant in j, k)
        let l = g.layout_of(ids[0]);
        let mut inp = Array3::zeros(l);
        for k_ in 0..4i64 {
            for j in -1..7i64 {
                for i in -1..7i64 {
                    inp.set(i, j, k_, (i * i) as f64);
                }
            }
        }
        *store.get_mut(ids[0]) = inp;
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        for j in 0..6 {
            for i in 0..6 {
                assert!((store.get(ids[1]).get(i, j, 2) - 2.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn forward_solver_carries_dependency() {
        // cum[k] = cum[k-1] + a[k] for k >= 1; cum[0] = a[0]
        let (mut g, ids) = sdfg_with(4, 0, &["a", "cum"]);
        let mut k = Kernel::new(
            "cumsum",
            Domain::from_shape([4, 4, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::Start(0), Anchor::Start(1)),
            region: None,
            extent: Extent2::ZERO,
        });
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[1], 0, 0, -1) + Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::Start(1), Anchor::End(0)),
            region: None,
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |_, _, k| (k + 1) as f64);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        // cumsum of 1,2,3,4 = 1,3,6,10
        assert_eq!(store.get(ids[1]).get(0, 0, 0), 1.0);
        assert_eq!(store.get(ids[1]).get(1, 2, 1), 3.0);
        assert_eq!(store.get(ids[1]).get(3, 3, 3), 10.0);
    }

    #[test]
    fn backward_solver_marches_down() {
        // s[k] = s[k+1] + a[k] for k < n-1; s[n-1] = a[n-1]  (suffix sum)
        let (mut g, ids) = sdfg_with(3, 0, &["a", "suf"]);
        let mut k = Kernel::new(
            "suffix",
            Domain::from_shape([3, 3, 4]),
            KOrder::Backward,
            Schedule::gpu_vertical(),
        );
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::End(-1), Anchor::End(0)),
            region: None,
            extent: Extent2::ZERO,
        });
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[1]),
            expr: Expr::load(ids[1], 0, 0, 1) + Expr::load(ids[0], 0, 0, 0),
            k_range: AxisInterval::new(Anchor::Start(0), Anchor::End(-1)),
            region: None,
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        *store.get_mut(ids[0]) = Array3::from_fn(g.layout_of(ids[0]), |_, _, k| (k + 1) as f64);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        // suffix sums of 1,2,3,4 = 10,9,7,4
        assert_eq!(store.get(ids[1]).get(0, 0, 0), 10.0);
        assert_eq!(store.get(ids[1]).get(2, 2, 2), 7.0);
        assert_eq!(store.get(ids[1]).get(1, 1, 3), 4.0);
    }

    #[test]
    fn locals_carry_within_column_of_forward_solver() {
        // Running max via a local: loc = max(loc, a); out = loc
        let (mut g, ids) = sdfg_with(2, 0, &["a", "out"]);
        let mut k = Kernel::new(
            "runmax",
            Domain::from_shape([2, 2, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k.n_locals = 1;
        k.stmts.push(Stmt::full(
            LValue::Local(LocalId(0)),
            Expr::bin(
                crate::expr::BinOp::Max,
                Expr::Local(LocalId(0)),
                Expr::load(ids[0], 0, 0, 0),
            ),
        ));
        k.stmts
            .push(Stmt::full(LValue::Field(ids[1]), Expr::Local(LocalId(0))));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        let vals = [3.0, 1.0, 5.0, 2.0];
        *store.get_mut(ids[0]) =
            Array3::from_fn(g.layout_of(ids[0]), |_, _, k| vals[k as usize]);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        let expect = [3.0, 3.0, 5.0, 5.0];
        for k_ in 0..4i64 {
            assert_eq!(store.get(ids[1]).get(1, 1, k_), expect[k_ as usize]);
        }
    }

    #[test]
    fn region_statement_applies_only_at_edge() {
        let (mut g, ids) = sdfg_with(6, 0, &["out"]);
        let mut k = Kernel::new(
            "edges",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts
            .push(Stmt::full(LValue::Field(ids[0]), Expr::c(1.0)));
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[0]),
            expr: Expr::c(9.0),
            k_range: AxisInterval::FULL,
            region: Some(Region2 {
                i: AxisInterval::FULL,
                j: AxisInterval::at_start(0),
            }),
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(store.get(ids[0]).get(3, 0, 1), 9.0);
        assert_eq!(store.get(ids[0]).get(3, 1, 1), 1.0);
        assert_eq!(store.get(ids[0]).get(0, 5, 3), 1.0);
    }

    #[test]
    fn extent_extends_statement_domain() {
        let (mut g, ids) = sdfg_with(6, 2, &["out"]);
        let mut k = Kernel::new(
            "ext",
            Domain::from_shape([6, 6, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[0]),
            expr: Expr::c(7.0),
            k_range: AxisInterval::FULL,
            region: None,
            extent: Extent2 {
                i_lo: 1,
                i_hi: 1,
                j_lo: 0,
                j_hi: 0,
            },
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let mut store = DataStore::for_sdfg(&g);
        Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(store.get(ids[0]).get(-1, 0, 0), 7.0);
        assert_eq!(store.get(ids[0]).get(6, 0, 0), 7.0);
        assert_eq!(store.get(ids[0]).get(0, -1, 0), 0.0, "j not extended");
    }

    #[test]
    fn parallel_pool_matches_serial() {
        let (mut g, ids) = sdfg_with(16, 1, &["inp", "out"]);
        let mut k = Kernel::new(
            "lap",
            Domain::from_shape([16, 16, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        let e = Expr::load(ids[0], -1, 0, 0) + Expr::load(ids[0], 1, 0, 0)
            - Expr::c(2.0) * Expr::load(ids[0], 0, 0, 0);
        k.stmts.push(Stmt::full(LValue::Field(ids[1]), e));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);

        let init = |store: &mut DataStore| {
            let l = g.layout_of(ids[0]);
            let mut a = Array3::zeros(l);
            for k_ in 0..4i64 {
                for j in -1..17i64 {
                    for i in -1..17i64 {
                        a.set(i, j, k_, ((i * 7 + j * 3 + k_) % 11) as f64);
                    }
                }
            }
            *store.get_mut(ids[0]) = a;
        };
        let mut s1 = DataStore::for_sdfg(&g);
        init(&mut s1);
        Executor::serial().run(&g, &mut s1, &[], &mut NoHooks);
        let mut s2 = DataStore::for_sdfg(&g);
        init(&mut s2);
        Executor::new(Pool::new(4)).run(&g, &mut s2, &[], &mut NoHooks);
        assert_eq!(s1.get(ids[1]).max_abs_diff(s2.get(ids[1])), 0.0);
    }

    #[test]
    fn loop_control_node_repeats() {
        let (mut g, ids) = sdfg_with(4, 0, &["x"]);
        let mut k = Kernel::new(
            "inc",
            Domain::from_shape([4, 4, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[0]),
            Expr::load(ids[0], 0, 0, 0) + Expr::c(1.0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.states.push(s);
        g.control = vec![ControlNode::Loop {
            trips: 5,
            body: vec![ControlNode::State(0)],
        }];

        let mut store = DataStore::for_sdfg(&g);
        let report = Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(report.launches, 5);
        assert_eq!(store.get(ids[0]).get(2, 2, 2), 5.0);
    }

    #[test]
    fn halo_and_callback_hooks_fire() {
        let (mut g, ids) = sdfg_with(4, 1, &["x"]);
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::HaloExchange {
            fields: vec![ids[0]],
        });
        s.nodes.push(DataflowNode::Callback {
            name: "diag".into(),
            reads: vec![ids[0]],
            writes: vec![],
        });
        g.add_state(s);

        struct H {
            halos: u32,
            cbs: Vec<String>,
        }
        impl ExecHooks for H {
            fn halo_exchange(&mut self, fields: &[DataId], _store: &mut DataStore) {
                assert_eq!(fields.len(), 1);
                self.halos += 1;
            }
            fn callback(&mut self, name: &str, _store: &mut DataStore) {
                self.cbs.push(name.to_string());
            }
        }
        let mut h = H {
            halos: 0,
            cbs: vec![],
        };
        let mut store = DataStore::for_sdfg(&g);
        let report = Executor::serial().run(&g, &mut store, &[], &mut h);
        assert_eq!(h.halos, 1);
        assert_eq!(h.cbs, vec!["diag"]);
        assert_eq!(report.halo_exchanges, 1);
        assert_eq!(report.callbacks, 1);
    }

    #[test]
    fn validation_rejects_horizontal_self_dependency() {
        let (_, ids) = sdfg_with(4, 1, &["x", "y"]);
        let mut k = Kernel::new(
            "bad",
            Domain::from_shape([4, 4, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[0]),
            Expr::load(ids[0], 1, 0, 0),
        ));
        assert!(validate_kernel(&k).is_err());
        // And vertical self-dependency in PARALLEL:
        let mut k2 = Kernel::new(
            "bad2",
            Domain::from_shape([4, 4, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k2.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[1], 0, 0, -1),
        ));
        assert!(validate_kernel(&k2).is_err());
        // Forward reading k-1 of own output is fine:
        let mut k3 = Kernel::new(
            "ok",
            Domain::from_shape([4, 4, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k3.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[1], 0, 0, -1),
        ));
        assert!(validate_kernel(&k3).is_ok());
        // ...but reading k+1 in a forward solver is not.
        let mut k4 = k3.clone();
        k4.stmts[0].expr = Expr::load(ids[1], 0, 0, 1);
        assert!(validate_kernel(&k4).is_err());
    }

    /// A kernel with a bit of everything: multi-statement, region rind,
    /// locals carried through a forward K march, and an i-hull wide
    /// enough to engage the lane VM.
    fn mixed_kernel_sdfg(n: usize) -> (Sdfg, Vec<DataId>) {
        let (mut g, ids) = sdfg_with(n, 1, &["a", "b", "out"]);
        let mut k = Kernel::new(
            "mixed",
            Domain::from_shape([n, n, 4]),
            KOrder::Forward,
            Schedule::gpu_vertical(),
        );
        k.n_locals = 1;
        k.stmts.push(Stmt::full(
            LValue::Local(LocalId(0)),
            Expr::Local(LocalId(0)) + Expr::load(ids[0], 1, 0, 0) * Expr::load(ids[1], 0, -1, 0),
        ));
        k.stmts.push(Stmt::full(
            LValue::Field(ids[2]),
            Expr::Local(LocalId(0)) + Expr::Index(Axis::I) * Expr::c(0.125),
        ));
        k.stmts.push(Stmt {
            lvalue: LValue::Field(ids[2]),
            expr: Expr::load(ids[1], 0, 0, 0) - Expr::c(2.5),
            k_range: AxisInterval::new(Anchor::Start(1), Anchor::End(0)),
            region: Some(Region2 {
                i: AxisInterval::at_start(0),
                j: AxisInterval::FULL,
            }),
            extent: Extent2::ZERO,
        });
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        (g, ids)
    }

    fn filled_store(g: &Sdfg, ids: &[DataId]) -> DataStore {
        let mut store = DataStore::for_sdfg(g);
        for (n, d) in ids.iter().enumerate() {
            *store.get_mut(*d) = Array3::from_fn(g.layout_of(*d), |i, j, k| {
                0.1 + ((n as i64 * 31 + i * 7 + j * 5 + k * 3).rem_euclid(23)) as f64 * 0.17
            });
        }
        store
    }

    #[test]
    fn lanes_mode_bit_identical_to_scalar_mode() {
        let (g, ids) = mixed_kernel_sdfg(20);
        let mut s1 = filled_store(&g, &ids);
        let mut s2 = filled_store(&g, &ids);
        let r1 = Executor::serial_scalar().run(&g, &mut s1, &[], &mut NoHooks);
        let r2 = Executor::serial().run(&g, &mut s2, &[], &mut NoHooks);
        assert_eq!(r1.lanes_vector, 0);
        assert!(r2.lanes_vector > 0, "lane VM never engaged");
        assert!(r2.lanes_scalar > 0, "region rind should fall back to scalar");
        for d in &ids {
            let (a, b) = (s1.get(*d), s2.get(*d));
            for (x, y) in a.raw().iter().zip(b.raw()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn executor_caches_compiled_kernels_across_runs() {
        let (g, ids) = mixed_kernel_sdfg(8);
        let exec = Executor::serial();
        let mut store = filled_store(&g, &ids);
        let r1 = exec.run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(r1.cache_hits, 0);
        assert_eq!(r1.cache_misses, 1);
        let r2 = exec.run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(r2.cache_hits, 1, "steady state must recompile nothing");
        assert_eq!(r2.cache_misses, 0);
    }

    #[test]
    fn touch_invalidates_compiled_kernel_cache() {
        let (mut g, ids) = mixed_kernel_sdfg(8);
        let exec = Executor::serial();
        let mut store = filled_store(&g, &ids);
        exec.run(&g, &mut store, &[], &mut NoHooks);
        g.touch();
        let r = exec.run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(r.cache_misses, 1, "generation bump must force recompile");
    }

    #[test]
    fn cloned_sdfg_does_not_share_cache_namespace() {
        let (g, ids) = mixed_kernel_sdfg(8);
        let g2 = g.clone();
        assert_ne!(g.uid(), g2.uid());
        let exec = Executor::serial();
        let mut store = filled_store(&g, &ids);
        exec.run(&g, &mut store, &[], &mut NoHooks);
        // The clone is a distinct graph: no stale hits.
        let r = exec.run(&g2, &mut store, &[], &mut NoHooks);
        assert_eq!(r.cache_hits, 0);
    }

    #[test]
    fn narrow_hull_runs_entirely_on_scalar_rind() {
        let (mut g, ids) = sdfg_with(2, 0, &["a", "b"]);
        let mut k = Kernel::new(
            "narrow",
            Domain::from_shape([2, 2, 4]),
            KOrder::Parallel,
            Schedule::gpu_horizontal(),
        );
        k.stmts.push(Stmt::full(
            LValue::Field(ids[1]),
            Expr::load(ids[0], 0, 0, 0) * Expr::c(2.0),
        ));
        let mut s = State::new("s");
        s.nodes.push(DataflowNode::Kernel(k));
        g.add_state(s);
        let mut store = filled_store(&g, &ids);
        let r = Executor::serial().run(&g, &mut store, &[], &mut NoHooks);
        assert_eq!(r.lanes_vector, 0);
        assert_eq!(r.lanes_scalar, 16);
        assert_eq!(
            store.get(ids[1]).get(1, 1, 1),
            store.get(ids[0]).get(1, 1, 1) * 2.0
        );
    }

    #[test]
    fn param_count_is_checked() {
        let mut g = Sdfg::new("t");
        g.add_param("dt");
        let store = &mut DataStore::for_sdfg(&g);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            Executor::serial().run(&g, store, &[], &mut NoHooks);
        }));
        assert!(result.is_err());
    }
}
