//! Register bytecode for tasklet bodies — the "code generation" stage.
//!
//! DaCe generates C++/CUDA from expanded SDFGs; the equivalent stage here
//! compiles each statement's expression tree into a flat register program
//! executed by a small VM. This removes tree-walking overhead from the
//! per-grid-point inner loop (the ablation bench `transforms` measures the
//! difference) and gives strength-reduction transformations a concrete
//! instruction to lower to ([`Instr::PowI`]).

use crate::expr::{apply_bin, apply_cmp, apply_un, BinOp, CmpOp, Expr, Offset3, UnOp};
use crate::storage::Axis;

/// One VM instruction. Registers are `u16` indices into a per-thread
/// register file of `f64`s.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `r[dst] = val`
    Const { dst: u16, val: f64 },
    /// `r[dst] = params[p]`
    Param { dst: u16, p: u16 },
    /// `r[dst] = field[slot] at current point + off`
    Load { dst: u16, slot: u16, off: Offset3 },
    /// `r[dst] = locals[l]`
    LoadLocal { dst: u16, l: u16 },
    /// `r[dst] = un(op, r[a])`
    Un { op: UnOp, dst: u16, a: u16 },
    /// `r[dst] = bin(op, r[a], r[b])`
    Bin { op: BinOp, dst: u16, a: u16, b: u16 },
    /// `r[dst] = cmp(op, r[a], r[b]) ? 1.0 : 0.0`
    Cmp { op: CmpOp, dst: u16, a: u16, b: u16 },
    /// `r[dst] = r[c] != 0 ? r[a] : r[b]`
    Select { dst: u16, c: u16, a: u16, b: u16 },
    /// `r[dst] = current index along axis`
    Index { dst: u16, axis: Axis },
    /// `r[dst] = r[a]^n` by repeated multiplication (strength-reduced pow)
    PowI { dst: u16, a: u16, n: i32 },
}

/// A compiled expression: instructions leaving the result in `result`.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    pub instrs: Vec<Instr>,
    pub result: u16,
    pub n_regs: u16,
}

/// Compile an expression tree. `slot_of` maps a [`crate::expr::DataId`] to
/// the kernel-local field slot used by `Instr::Load`.
pub fn compile(expr: &Expr, slot_of: &impl Fn(crate::expr::DataId) -> u16) -> Program {
    let mut instrs = Vec::with_capacity(expr.size());
    let mut next = 0u16;
    let result = emit(expr, slot_of, &mut instrs, &mut next);
    Program {
        instrs,
        result,
        n_regs: next,
    }
}

fn alloc(next: &mut u16) -> u16 {
    let r = *next;
    *next = next.checked_add(1).expect("expression too large for u16 registers");
    r
}

fn emit(
    e: &Expr,
    slot_of: &impl Fn(crate::expr::DataId) -> u16,
    out: &mut Vec<Instr>,
    next: &mut u16,
) -> u16 {
    match e {
        Expr::Const(v) => {
            let dst = alloc(next);
            out.push(Instr::Const { dst, val: *v });
            dst
        }
        Expr::Param(p) => {
            let dst = alloc(next);
            out.push(Instr::Param {
                dst,
                p: p.0 as u16,
            });
            dst
        }
        Expr::Load(d, o) => {
            let dst = alloc(next);
            out.push(Instr::Load {
                dst,
                slot: slot_of(*d),
                off: *o,
            });
            dst
        }
        Expr::Local(l) => {
            let dst = alloc(next);
            out.push(Instr::LoadLocal {
                dst,
                l: l.0 as u16,
            });
            dst
        }
        Expr::Index(ax) => {
            let dst = alloc(next);
            out.push(Instr::Index { dst, axis: *ax });
            dst
        }
        Expr::Un(op, a) => {
            let ra = emit(a, slot_of, out, next);
            let dst = alloc(next);
            out.push(Instr::Un { op: *op, dst, a: ra });
            dst
        }
        Expr::Powi(a, n) => {
            let ra = emit(a, slot_of, out, next);
            let dst = alloc(next);
            out.push(Instr::PowI { dst, a: ra, n: *n });
            dst
        }
        Expr::Bin(op, a, b) => {
            // Note: integer `Bin(Pow, x, Const(n))` deliberately stays a
            // general powf call — exactly the inefficiency the paper found
            // in generated code. The power transformation rewrites such
            // trees to `Expr::Powi`, which compiles to `Instr::PowI`.
            let ra = emit(a, slot_of, out, next);
            let rb = emit(b, slot_of, out, next);
            let dst = alloc(next);
            out.push(Instr::Bin {
                op: *op,
                dst,
                a: ra,
                b: rb,
            });
            dst
        }
        Expr::Cmp(op, a, b) => {
            let ra = emit(a, slot_of, out, next);
            let rb = emit(b, slot_of, out, next);
            let dst = alloc(next);
            out.push(Instr::Cmp {
                op: *op,
                dst,
                a: ra,
                b: rb,
            });
            dst
        }
        Expr::Select(c, a, b) => {
            let rc = emit(c, slot_of, out, next);
            let ra = emit(a, slot_of, out, next);
            let rb = emit(b, slot_of, out, next);
            let dst = alloc(next);
            out.push(Instr::Select {
                dst,
                c: rc,
                a: ra,
                b: rb,
            });
            dst
        }
    }
}

/// Per-point execution context for the VM.
pub trait VmCtx {
    /// Read field `slot` at the current point plus `off`.
    fn load(&self, slot: u16, off: Offset3) -> f64;
    /// Read per-thread local `l`.
    fn local(&self, l: u16) -> f64;
    /// Scalar parameter `p`.
    fn param(&self, p: u16) -> f64;
    /// Current global index along `axis`.
    fn index(&self, axis: Axis) -> i64;
}

/// Execute a compiled program; returns the result register value.
///
/// `regs` must have at least `program.n_regs` entries and is reused across
/// points to avoid allocation in the inner loop.
#[inline]
pub fn run<C: VmCtx>(program: &Program, ctx: &C, regs: &mut [f64]) -> f64 {
    for ins in &program.instrs {
        match *ins {
            Instr::Const { dst, val } => regs[dst as usize] = val,
            Instr::Param { dst, p } => regs[dst as usize] = ctx.param(p),
            Instr::Load { dst, slot, off } => regs[dst as usize] = ctx.load(slot, off),
            Instr::LoadLocal { dst, l } => regs[dst as usize] = ctx.local(l),
            Instr::Un { op, dst, a } => regs[dst as usize] = apply_un(op, regs[a as usize]),
            Instr::Bin { op, dst, a, b } => {
                regs[dst as usize] = apply_bin(op, regs[a as usize], regs[b as usize])
            }
            Instr::Cmp { op, dst, a, b } => {
                regs[dst as usize] = if apply_cmp(op, regs[a as usize], regs[b as usize]) {
                    1.0
                } else {
                    0.0
                }
            }
            Instr::Select { dst, c, a, b } => {
                regs[dst as usize] = if regs[c as usize] != 0.0 {
                    regs[a as usize]
                } else {
                    regs[b as usize]
                }
            }
            Instr::Index { dst, axis } => regs[dst as usize] = ctx.index(axis) as f64,
            Instr::PowI { dst, a, n } => {
                let x = regs[a as usize];
                let mut acc = 1.0f64;
                for _ in 0..n.unsigned_abs() {
                    acc *= x;
                }
                regs[dst as usize] = if n < 0 { 1.0 / acc } else { acc };
            }
        }
    }
    regs[program.result as usize]
}

/// Lane capacity of the vectorized VM: each register holds up to this
/// many consecutive i-points. 64 lanes (one 4 KiB register file per
/// ~8 registers) keeps the whole file in L1 while amortizing dispatch
/// over enough points to matter.
pub const LANE_WIDTH: usize = 64;

/// Execution context for the lane VM: a contiguous run of `w` i-points
/// starting at some `(i0, j, k)`, lanes advancing along I only.
pub trait LaneCtx {
    /// Fill `out[l]` with field `slot` at `(i0 + l + off.i, j + off.j,
    /// k + off.k)` for `l in 0..out.len()`.
    fn load_lanes(&self, slot: u16, off: Offset3, out: &mut [f64]);
    /// Fill `out[l]` with per-column local `l` for each lane's column.
    fn local_lanes(&self, l: u16, out: &mut [f64]);
    /// Scalar parameter `p` (uniform across lanes).
    fn param(&self, p: u16) -> f64;
    /// Global index of lane 0 along `axis` (lanes add `l` along I only).
    fn index_lane0(&self, axis: Axis) -> i64;
}

/// Execute a compiled program over `w` lanes at once.
///
/// `regs` is a flat lane register file of at least `program.n_regs *
/// LANE_WIDTH` entries; register `r` occupies
/// `regs[r * LANE_WIDTH .. r * LANE_WIDTH + w]`. On return the result
/// lanes sit at `program.result * LANE_WIDTH ..+ w`.
///
/// Bit-identical to running [`run`] per point: every arithmetic lane op
/// goes through the same `apply_un`/`apply_bin`/`apply_cmp` scalar
/// kernels, in the same order, on the same operands. Compilation is
/// SSA-like (operand registers are always allocated before their
/// consumer), so `dst > a, b, c` holds and `split_at_mut` cleanly
/// separates the destination lanes from the operand lanes.
#[inline]
pub fn run_lanes<C: LaneCtx>(program: &Program, ctx: &C, regs: &mut [f64], w: usize) {
    debug_assert!(w <= LANE_WIDTH);
    debug_assert!(regs.len() >= program.n_regs as usize * LANE_WIDTH);
    for ins in &program.instrs {
        match *ins {
            Instr::Const { dst, val } => {
                regs[dst as usize * LANE_WIDTH..][..w].fill(val);
            }
            Instr::Param { dst, p } => {
                regs[dst as usize * LANE_WIDTH..][..w].fill(ctx.param(p));
            }
            Instr::Load { dst, slot, off } => {
                ctx.load_lanes(slot, off, &mut regs[dst as usize * LANE_WIDTH..][..w]);
            }
            Instr::LoadLocal { dst, l } => {
                ctx.local_lanes(l, &mut regs[dst as usize * LANE_WIDTH..][..w]);
            }
            Instr::Un { op, dst, a } => {
                debug_assert!(a < dst);
                let (lo, hi) = regs.split_at_mut(dst as usize * LANE_WIDTH);
                let src = &lo[a as usize * LANE_WIDTH..][..w];
                for (d, s) in hi[..w].iter_mut().zip(src) {
                    *d = apply_un(op, *s);
                }
            }
            Instr::Bin { op, dst, a, b } => {
                debug_assert!(a < dst && b < dst);
                let (lo, hi) = regs.split_at_mut(dst as usize * LANE_WIDTH);
                for l in 0..w {
                    hi[l] = apply_bin(
                        op,
                        lo[a as usize * LANE_WIDTH + l],
                        lo[b as usize * LANE_WIDTH + l],
                    );
                }
            }
            Instr::Cmp { op, dst, a, b } => {
                debug_assert!(a < dst && b < dst);
                let (lo, hi) = regs.split_at_mut(dst as usize * LANE_WIDTH);
                for l in 0..w {
                    hi[l] = if apply_cmp(
                        op,
                        lo[a as usize * LANE_WIDTH + l],
                        lo[b as usize * LANE_WIDTH + l],
                    ) {
                        1.0
                    } else {
                        0.0
                    };
                }
            }
            Instr::Select { dst, c, a, b } => {
                debug_assert!(a < dst && b < dst && c < dst);
                let (lo, hi) = regs.split_at_mut(dst as usize * LANE_WIDTH);
                for l in 0..w {
                    hi[l] = if lo[c as usize * LANE_WIDTH + l] != 0.0 {
                        lo[a as usize * LANE_WIDTH + l]
                    } else {
                        lo[b as usize * LANE_WIDTH + l]
                    };
                }
            }
            Instr::Index { dst, axis } => {
                let base = ctx.index_lane0(axis);
                let out = &mut regs[dst as usize * LANE_WIDTH..][..w];
                match axis {
                    Axis::I => {
                        for (l, d) in out.iter_mut().enumerate() {
                            *d = (base + l as i64) as f64;
                        }
                    }
                    _ => out.fill(base as f64),
                }
            }
            Instr::PowI { dst, a, n } => {
                debug_assert!(a < dst);
                let (lo, hi) = regs.split_at_mut(dst as usize * LANE_WIDTH);
                let src = &lo[a as usize * LANE_WIDTH..][..w];
                for (d, s) in hi[..w].iter_mut().zip(src) {
                    let x = *s;
                    let mut acc = 1.0f64;
                    for _ in 0..n.unsigned_abs() {
                        acc *= x;
                    }
                    *d = if n < 0 { 1.0 / acc } else { acc };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DataId, EvalCtx, LocalId, ParamId};
    use rand::{Rng, SeedableRng};

    /// Shared context implementing both the tree-walking EvalCtx and VmCtx
    /// so we can cross-validate.
    struct Ctx {
        field: Vec<f64>, // value per (slot, small offset hash)
        params: Vec<f64>,
        locals: Vec<f64>,
        idx: [i64; 3],
    }

    fn key(slot: u16, off: Offset3) -> usize {
        (slot as usize) * 125
            + ((off.i + 2) as usize) * 25
            + ((off.j + 2) as usize) * 5
            + (off.k + 2) as usize
    }

    impl VmCtx for Ctx {
        fn load(&self, slot: u16, off: Offset3) -> f64 {
            self.field[key(slot, off)]
        }
        fn local(&self, l: u16) -> f64 {
            self.locals[l as usize]
        }
        fn param(&self, p: u16) -> f64 {
            self.params[p as usize]
        }
        fn index(&self, axis: Axis) -> i64 {
            self.idx[axis.idx()]
        }
    }

    impl EvalCtx for Ctx {
        fn load(&self, d: DataId, o: Offset3) -> f64 {
            self.field[key(d.0 as u16, o)]
        }
        fn local(&self, l: LocalId) -> f64 {
            self.locals[l.0]
        }
        fn param(&self, p: ParamId) -> f64 {
            self.params[p.0]
        }
        fn index(&self, axis: Axis) -> i64 {
            self.idx[axis.idx()]
        }
    }

    fn ctx(rng: &mut impl Rng) -> Ctx {
        Ctx {
            field: (0..500).map(|_| rng.gen_range(0.1..4.0)).collect(),
            params: (0..4).map(|_| rng.gen_range(0.1..2.0)).collect(),
            locals: (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect(),
            idx: [3, 4, 5],
        }
    }

    /// Random expression generator over safe domains (positive field
    /// values so log/sqrt/pow stay finite).
    fn random_expr(rng: &mut impl Rng, depth: u32) -> Expr {
        if depth == 0 {
            return match rng.gen_range(0..5) {
                0 => Expr::Const(rng.gen_range(0.5..3.0)),
                1 => Expr::Param(ParamId(rng.gen_range(0..4))),
                2 => Expr::Local(LocalId(rng.gen_range(0..4))),
                3 => Expr::Index([Axis::I, Axis::J, Axis::K][rng.gen_range(0..3)]),
                _ => Expr::Load(
                    DataId(rng.gen_range(0..3)),
                    Offset3::new(
                        rng.gen_range(-2..3),
                        rng.gen_range(-2..3),
                        rng.gen_range(-2..3),
                    ),
                ),
            };
        }
        match rng.gen_range(0..8) {
            0 => Expr::un(UnOp::Abs, random_expr(rng, depth - 1)),
            1 => Expr::un(UnOp::Sqrt, Expr::un(UnOp::Abs, random_expr(rng, depth - 1))),
            2 => Expr::bin(
                BinOp::Add,
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
            3 => Expr::bin(
                BinOp::Mul,
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
            4 => Expr::bin(
                BinOp::Pow,
                Expr::un(UnOp::Abs, random_expr(rng, depth - 1)),
                Expr::Const(rng.gen_range(1..4) as f64),
            ),
            5 => Expr::cmp(
                CmpOp::Lt,
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
            6 => Expr::select(
                Expr::cmp(
                    CmpOp::Gt,
                    random_expr(rng, depth - 1),
                    Expr::Const(1.0),
                ),
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
            _ => Expr::bin(
                BinOp::Sub,
                random_expr(rng, depth - 1),
                random_expr(rng, depth - 1),
            ),
        }
    }

    #[test]
    fn vm_matches_tree_interpreter_on_random_expressions() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x5eed);
        for case in 0..200 {
            let e = random_expr(&mut rng, 4);
            let c = ctx(&mut rng);
            let p = compile(&e, &|d| d.0 as u16);
            let mut regs = vec![0.0; p.n_regs as usize];
            let vm = run(&p, &c, &mut regs);
            let tree = e.eval(&c);
            let close = if vm.is_nan() && tree.is_nan() {
                true
            } else {
                let denom = 1.0f64.max(tree.abs());
                ((vm - tree) / denom).abs() < 1e-12
            };
            assert!(close, "case {case}: vm={vm} tree={tree} expr={e:?}");
        }
    }

    /// Deterministic point-dependent test world shared by the scalar and
    /// lane contexts below: field/local values vary with the absolute
    /// i-index so lane mismatches cannot hide behind uniform data.
    fn world_field(slot: u16, off: Offset3, i: i64, j: i64, k: i64) -> f64 {
        0.25 + ((slot as i64 * 37
            + (i + off.i as i64) * 7
            + (j + off.j as i64) * 5
            + (k + off.k as i64) * 3)
            .rem_euclid(97)) as f64
            * 0.031
    }

    fn world_local(l: u16, i: i64) -> f64 {
        ((l as i64 * 13 + i * 11).rem_euclid(19)) as f64 * 0.05 - 0.4
    }

    struct PointWorld {
        params: Vec<f64>,
        i: i64,
        j: i64,
        k: i64,
    }

    impl VmCtx for PointWorld {
        fn load(&self, slot: u16, off: Offset3) -> f64 {
            world_field(slot, off, self.i, self.j, self.k)
        }
        fn local(&self, l: u16) -> f64 {
            world_local(l, self.i)
        }
        fn param(&self, p: u16) -> f64 {
            self.params[p as usize]
        }
        fn index(&self, axis: Axis) -> i64 {
            [self.i, self.j, self.k][axis.idx()]
        }
    }

    struct LaneWorld {
        params: Vec<f64>,
        i0: i64,
        j: i64,
        k: i64,
    }

    impl LaneCtx for LaneWorld {
        fn load_lanes(&self, slot: u16, off: Offset3, out: &mut [f64]) {
            for (l, d) in out.iter_mut().enumerate() {
                *d = world_field(slot, off, self.i0 + l as i64, self.j, self.k);
            }
        }
        fn local_lanes(&self, l: u16, out: &mut [f64]) {
            for (lane, d) in out.iter_mut().enumerate() {
                *d = world_local(l, self.i0 + lane as i64);
            }
        }
        fn param(&self, p: u16) -> f64 {
            self.params[p as usize]
        }
        fn index_lane0(&self, axis: Axis) -> i64 {
            [self.i0, self.j, self.k][axis.idx()]
        }
    }

    #[test]
    fn lane_vm_bit_identical_to_scalar_vm_per_lane() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(0x1a9e5 ^ 0xff);
        for case in 0..200 {
            let e = random_expr(&mut rng, 4);
            let p = compile(&e, &|d| d.0 as u16);
            let params: Vec<f64> = (0..4).map(|_| rng.gen_range(0.1..2.0)).collect();
            let (i0, j, k) = (rng.gen_range(-3..10), rng.gen_range(-2..6), rng.gen_range(0..5));
            for w in [1usize, 3, 17, LANE_WIDTH] {
                let lane_ctx = LaneWorld { params: params.clone(), i0, j, k };
                let mut lane_regs = vec![0.0; p.n_regs as usize * LANE_WIDTH];
                run_lanes(&p, &lane_ctx, &mut lane_regs, w);
                let mut regs = vec![0.0; p.n_regs as usize];
                for lane in 0..w {
                    let pt = PointWorld {
                        params: params.clone(),
                        i: i0 + lane as i64,
                        j,
                        k,
                    };
                    let scalar = run(&p, &pt, &mut regs);
                    let vector = lane_regs[p.result as usize * LANE_WIDTH + lane];
                    assert_eq!(
                        scalar.to_bits(),
                        vector.to_bits(),
                        "case {case} w={w} lane={lane}: scalar={scalar} vector={vector} expr={e:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn powi_expression_compiles_to_powi_instr() {
        let e = Expr::powi(Expr::Local(LocalId(0)), 2);
        let p = compile(&e, &|_| 0);
        assert!(p.instrs.iter().any(|i| matches!(i, Instr::PowI { n: 2, .. })));
        assert!(!p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Pow, .. })));
    }

    #[test]
    fn untransformed_integer_pow_stays_general_purpose() {
        // Matches the paper: generated code contains pow(delpc, 2.0)
        // until the power transformation rewrites it.
        let e = Expr::bin(BinOp::Pow, Expr::Local(LocalId(0)), Expr::Const(2.0));
        let p = compile(&e, &|_| 0);
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Pow, .. })));
    }

    #[test]
    fn non_integer_pow_stays_general() {
        let e = Expr::bin(BinOp::Pow, Expr::Local(LocalId(0)), Expr::Const(0.5));
        let p = compile(&e, &|_| 0);
        assert!(p
            .instrs
            .iter()
            .any(|i| matches!(i, Instr::Bin { op: BinOp::Pow, .. })));
    }

    #[test]
    fn negative_integer_pow() {
        let e = Expr::powi(Expr::Const(2.0), -3);
        let p = compile(&e, &|_| 0);
        let mut regs = vec![0.0; p.n_regs as usize];
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let v = run(&p, &ctx(&mut rng), &mut regs);
        assert!((v - 0.125).abs() < 1e-15);
    }

    #[test]
    fn register_count_is_tight_enough() {
        let e = Expr::c(1.0) + Expr::c(2.0) + Expr::c(3.0) + Expr::c(4.0);
        let p = compile(&e, &|_| 0);
        assert!(p.n_regs <= 8);
        assert_eq!(p.result as usize, p.n_regs as usize - 1);
    }
}
