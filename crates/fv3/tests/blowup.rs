//! Blowup-detector regression test (own process: installs the global
//! tracer so the report can capture the live span stack).
//!
//! Scenario: a baroclinic c8L6 run is healthy for two steps; then one
//! interior cell of `delp` is poisoned mid-run and the next health
//! sample must name the right field, the right logical coordinates, the
//! right timestep, and the spans that were open when the monitor looked.

use comm::CubeGeometry;
use fv3::dyn_core::{baseline_step, BaselineScratch, DycoreConfig};
use fv3::grid::Grid;
use fv3::health::{default_monitor, health_input};
use fv3::init::{init_baroclinic, BaroclinicConfig};
use fv3::state::DycoreState;

#[test]
fn poisoned_delp_is_reported_with_field_coords_and_span() {
    let (n, nk) = (8, 6);
    let geom = CubeGeometry::new(n);
    let grid = Grid::compute(&geom.faces[1], n, 0, 0, n, fv3::state::HALO, nk);
    let mut state = DycoreState::zeros(n, nk);
    init_baroclinic(&mut state, &grid, &BaroclinicConfig::default());
    let config = DycoreConfig {
        n_split: 2,
        k_split: 1,
        dt: 5.0,
        dddmp: 0.02,
        nord4_damp: None,
    };
    let mut scratch = BaselineScratch::for_state(&state);

    let tracer = obs::Tracer::new();
    obs::tracing::install_global(&tracer);
    let mut monitor = default_monitor().with_tracer(&tracer);

    // Two healthy steps.
    for step in 0..2u64 {
        baseline_step(&mut state, &grid, &mut scratch, &config, &mut |_| {});
        let s = monitor.sample(&health_input(&state, &grid, step, config.dt));
        assert!(s.is_healthy(), "step {step} violations: {:?}", s.violations);
    }

    // Poison one interior cell of delp mid-run and sample inside an
    // enclosing span, as a crashing module would be.
    state.delp.set(3, 4, 2, f64::NAN);
    let report = {
        let _step_span = tracer.span("step", "timestep2");
        let _module_span = tracer.span("module", "d_sw");
        let s = monitor.sample(&health_input(&state, &grid, 2, config.dt));
        assert!(!s.is_healthy());
        s.blowup.clone().expect("blowup detected")
    };
    obs::tracing::uninstall_global();

    assert_eq!(report.field, "delp");
    assert_eq!((report.i, report.j, report.k), (3, 4, 2));
    assert_eq!(report.step, 2);
    assert!(report.value.is_nan());
    assert_eq!(
        report.span_stack,
        vec!["timestep2".to_string(), "d_sw".to_string()]
    );
    let rendered = format!("{report}");
    assert!(rendered.contains("'delp'"), "{rendered}");
    assert!(rendered.contains("(3, 4, 2)"), "{rendered}");
    assert!(rendered.contains("timestep2 > d_sw"), "{rendered}");

    // The JSONL stream carries the same report on the last line only.
    let jsonl = monitor.to_jsonl();
    assert_eq!(jsonl.lines().count(), 3);
    assert!(!jsonl.lines().next().unwrap().contains("blowup"));
    let last = jsonl.lines().last().unwrap();
    assert!(last.contains("\"blowup\"") && last.contains("\"delp\""));
    assert_eq!(monitor.total_violations() > 0, !monitor.all_healthy());
}
