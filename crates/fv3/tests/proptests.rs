//! Property-based tests on the FV3 numerics: PPM reconstruction
//! invariants, transport conservation, tridiagonal-solver correctness
//! against dense elimination, and remap conservation.

use dataflow::{Array3, Layout};
use fv3::fv_tp_2d::{baseline_fv_tp_2d, baseline_transport_update};
use fv3::ppm::{baseline_ppm, flux_from_left, flux_from_right, SweepAxis};
use fv3::remapping::remap_column;
use fv3::riem_solver_c::{baseline_riem_solver_c, couple, rhs_forcing, sound_speed2};
use proptest::prelude::*;

fn field_from(vals: &[f64], n: usize, nk: usize, halo: usize) -> Array3 {
    let l = Layout::fv3_default([n, n, nk], [halo, halo, 0]);
    let mut a = Array3::zeros(l);
    let h = halo as i64;
    let w = (n + 2 * halo) as i64;
    for k in 0..nk as i64 {
        for j in -h..n as i64 + h {
            for i in -h..n as i64 + h {
                let idx = ((k * w + j + h) * w + i + h) as usize;
                a.set(i, j, k, vals[idx % vals.len()]);
            }
        }
    }
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn ppm_flux_stays_within_cell_bounds_for_small_deviations(
        q in 0.5f64..4.0,
        bl in -0.2f64..0.2,
        br in -0.2f64..0.2,
        c in 0.01f64..1.0,
    ) {
        // For a monotone parabola (small edge deviations), the upwind
        // flux mean must lie within the parabola's range over the cell,
        // which is contained in [q - |bl|-|br|-..., q + ...]. We check a
        // safe outer bound: min/max of edge values and the mean +- the
        // q6 bulge.
        let lo = (q + bl).min(q + br).min(q) - 1.5 * (bl.abs() + br.abs());
        let hi = (q + bl).max(q + br).max(q) + 1.5 * (bl.abs() + br.abs());
        let f_pos = flux_from_left(q, bl, br, c);
        let f_neg = flux_from_right(q, bl, br, -c);
        prop_assert!((lo..=hi).contains(&f_pos), "{f_pos} outside [{lo},{hi}]");
        prop_assert!((lo..=hi).contains(&f_neg), "{f_neg} outside [{lo},{hi}]");
    }

    #[test]
    fn ppm_preserves_constants_for_any_courant(
        q in -5.0f64..5.0,
        c in -1.0f64..1.0,
    ) {
        // bl = br = 0 (constant field): flux value is q regardless of c.
        let f = if c > 0.0 {
            flux_from_left(q, 0.0, 0.0, c)
        } else {
            flux_from_right(q, 0.0, 0.0, c)
        };
        prop_assert!((f - q).abs() < 1e-12);
    }

    #[test]
    fn ppm_sweep_constant_field_invariance(
        value in 0.1f64..10.0,
        courants in proptest::collection::vec(-0.9f64..0.9, 64),
    ) {
        let n = 6;
        let q = field_from(&[value], n, 1, 3);
        let c = field_from(&courants, n, 1, 3);
        let mut flux = Array3::zeros(q.layout().clone());
        baseline_ppm(SweepAxis::X, &q, &c, &mut flux);
        for j in 0..n as i64 {
            for i in 0..=n as i64 {
                prop_assert!((flux.get(i, j, 0) - value).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn transport_update_conserves_tracer_mass_globally(
        qs in proptest::collection::vec(0.2f64..2.0, 128),
        winds in proptest::collection::vec(-0.4f64..0.4, 128),
    ) {
        // With rarea = 1 the update telescopes: interior mass change
        // equals net boundary import, exactly.
        let n = 6;
        let mut q = field_from(&qs, n, 1, 4);
        let mut delp = field_from(&[100.0], n, 1, 4);
        let crx = field_from(&winds, n, 1, 4);
        let cry = field_from(&winds[1..], n, 1, 4);
        let xfx = field_from(&winds[2..], n, 1, 4);
        let yfx = field_from(&winds[3..], n, 1, 4);
        let rarea = field_from(&[1.0], n, 1, 4);
        let mut fx = Array3::zeros(q.layout().clone());
        let mut fy = Array3::zeros(q.layout().clone());
        baseline_fv_tp_2d(&q, &crx, &cry, &xfx, &yfx, &mut fx, &mut fy);

        let mass = |q: &Array3, delp: &Array3| -> f64 {
            let mut s = 0.0;
            for j in 0..n as i64 {
                for i in 0..n as i64 {
                    s += q.get(i, j, 0) * delp.get(i, j, 0);
                }
            }
            s
        };
        let before = mass(&q, &delp);
        let mut boundary = 0.0;
        for j in 0..n as i64 {
            boundary += fx.get(0, j, 0) - fx.get(n as i64, j, 0);
        }
        for i in 0..n as i64 {
            boundary += fy.get(i, 0, 0) - fy.get(i, n as i64, 0);
        }
        baseline_transport_update(&mut q, &mut delp, &fx, &fy, &xfx, &yfx, &rarea);
        let after = mass(&q, &delp);
        prop_assert!(
            (after - before - boundary).abs() < 1e-8 * before.abs().max(1.0),
            "mass {} -> {} vs boundary {}", before, after, boundary
        );
    }

    #[test]
    fn riemann_solution_solves_the_dense_system(
        delps in proptest::collection::vec(400.0f64..1600.0, 12),
        pts in proptest::collection::vec(240.0f64..360.0, 12),
        dzs in proptest::collection::vec(-900.0f64..-150.0, 12),
        ws in proptest::collection::vec(-3.0f64..3.0, 12),
        dt in 0.5f64..8.0,
    ) {
        let nk = delps.len();
        let l = Layout::fv3_default([1, 1, nk], [0, 0, 1]);
        let mut delp = Array3::zeros(l.clone());
        let mut pt = Array3::zeros(l.clone());
        let mut delz = Array3::zeros(l.clone());
        let mut w = Array3::zeros(l);
        for k in 0..nk {
            delp.set(0, 0, k as i64, delps[k]);
            pt.set(0, 0, k as i64, pts[k]);
            delz.set(0, 0, k as i64, dzs[k]);
            w.set(0, 0, k as i64, ws[k]);
        }
        // Vertical halo values (k = -1, nk) read by nothing here but
        // must exist in the layout.
        let w0 = w.clone();
        baseline_riem_solver_c(&delp, &pt, &delz, &mut w, dt);

        // Rebuild the dense tridiagonal system and check the residual.
        let cs: Vec<f64> = pts.iter().map(|&p| sound_speed2::<f64>(p)).collect();
        let mut aa = vec![0.0; nk];
        for k in 1..nk {
            aa[k] = couple::<f64>(cs[k - 1], cs[k], dzs[k - 1], dzs[k], dt * dt);
        }
        for k in 0..nk {
            let ab = if k < nk - 1 { aa[k + 1] } else { 0.0 };
            let b = delps[k] + aa[k] + ab;
            let rhs = if k == 0 || k == nk - 1 {
                delps[k] * w0.get(0, 0, k as i64)
            } else {
                rhs_forcing::<f64>(
                    delps[k], w0.get(0, 0, k as i64), cs[k],
                    pts[k - 1], pts[k], pts[k + 1], dt,
                )
            };
            let mut lhs = b * w.get(0, 0, k as i64);
            if k > 0 { lhs -= aa[k] * w.get(0, 0, k as i64 - 1); }
            if k < nk - 1 { lhs -= aa[k + 1] * w.get(0, 0, k as i64 + 1); }
            prop_assert!(
                ((lhs - rhs) / rhs.abs().max(1.0)).abs() < 1e-9,
                "residual at k={}: {} vs {}", k, lhs, rhs
            );
        }
    }

    #[test]
    fn remap_conserves_and_bounds_any_partition(
        src in proptest::collection::vec((0.3f64..2.0, -5.0f64..5.0), 3..14),
        dst_raw in proptest::collection::vec(0.3f64..2.0, 3..14),
    ) {
        let src_dp: Vec<f64> = src.iter().map(|(d, _)| *d).collect();
        let src_val: Vec<f64> = src.iter().map(|(_, v)| *v).collect();
        let total: f64 = src_dp.iter().sum();
        let draw: f64 = dst_raw.iter().sum();
        let dst_dp: Vec<f64> = dst_raw.iter().map(|d| d * total / draw).collect();

        let out = remap_column(&src_dp, &src_val, &dst_dp);
        let m0: f64 = src_dp.iter().zip(&src_val).map(|(d, v)| d * v).sum();
        let m1: f64 = dst_dp.iter().zip(&out).map(|(d, v)| d * v).sum();
        prop_assert!((m0 - m1).abs() < 1e-9 * m0.abs().max(1.0), "{m0} vs {m1}");

        let (lo, hi) = src_val
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &v| {
                (l.min(v), h.max(v))
            });
        for v in &out {
            prop_assert!((lo - 1e-12..=hi + 1e-12).contains(v), "{v} outside [{lo},{hi}]");
        }
    }
}
