//! The FV3 dynamical core, ported to the stencil DSL — plus the
//! FORTRAN-style baseline it validates against.

pub mod delnflux;
pub mod diagnostics;
pub mod dyn_core;
pub mod grid;
pub mod c_sw;
pub mod d_sw;
pub mod fv_tp_2d;
pub mod health;
pub mod ppm;
pub mod profiling;
pub mod recorder;
pub mod remapping;
pub mod riem_solver_c;
pub mod init;
pub mod state;
