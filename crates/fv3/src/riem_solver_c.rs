//! The C-grid Riemann solver (`riem_solver_c`) — the representative
//! vertical solver of Section VIII-B.
//!
//! Solves the semi-implicit system for vertical velocity that damps
//! vertically propagating sound waves: a symmetric, diagonally dominant
//! tridiagonal system per column,
//!
//! `−aa_k w_{k−1} + (Δp_k + aa_k + ab_k) w_k − ab_k w_{k+1} = rhs_k`,
//!
//! with acoustic coupling coefficients `aa`/`ab` built from the sound
//! speed (`γ R T`) and layer depths, and a buoyancy-like thermal forcing
//! on the right-hand side. Solved by the Thomas algorithm: a `FORWARD`
//! elimination sweep followed by a `BACKWARD` substitution — exactly the
//! forward/backward solver pattern of Fig. 3 that defeats the FORTRAN
//! k-blocking schedule ("vertical solvers typically do not perform well
//! in the FORTRAN FV3 column-blocking schedule").
//!
//! The physics is simplified relative to GFDL's SIM1 solver (see
//! DESIGN.md) but the numerical structure — coefficient setup, interval
//! blocks, loop-carried sweeps, division counts — is the real thing.

use crate::init::constants::RDGAS;
use dataflow::expr::NumLike;
use dataflow::kernel::{Anchor, AxisInterval, KOrder};
use dataflow::{Array3, Expr};
use stencil::{StencilBuilder, StencilDef};
use std::sync::Arc;

/// Heat-capacity ratio used in the sound-speed proxy.
pub const GAMA: f64 = 1.4;

/// Thermal forcing coefficient (buoyancy proxy).
pub const BUOY: f64 = 1.0e-5;

/// Squared-sound-speed proxy `γ R θ`.
pub fn sound_speed2<T: NumLike>(pt: T) -> T {
    T::from(GAMA * RDGAS) * pt
}

/// Acoustic coupling coefficient between two adjacent layers:
/// `dt² (cs²_up + cs²_dn) / 2 / ((dz_up + dz_dn)/2)²`.
pub fn couple<T: NumLike>(cs_up: T, cs_dn: T, dz_up: T, dz_dn: T, dt2: T) -> T {
    let mean_dz = T::from(0.5) * (dz_up + dz_dn);
    dt2 * T::from(0.5) * (cs_up + cs_dn) / (mean_dz.clone() * mean_dz)
}

/// Buoyancy-like RHS forcing from the vertical theta curvature.
pub fn rhs_forcing<T: NumLike>(delp: T, w: T, cs: T, ptm1: T, pt0: T, ptp1: T, dt: T) -> T {
    delp * w + dt * T::from(BUOY) * cs * (ptm1 - T::from(2.0) * pt0 + ptp1)
}

/// Build the `riem_solver_c` stencil: inputs `delp`, `pt`, `delz`;
/// in/out `w`; params `dt`.
///
/// Matches the paper's structure: "divided into three GT4Py stencils" —
/// coefficient setup (PARALLEL), forward elimination (FORWARD), and back
/// substitution (BACKWARD).
pub fn riem_solver_c_stencil() -> Arc<StencilDef> {
    Arc::new(
        StencilBuilder::new("riem_solver_c", |b| {
            let delp = b.input("delp");
            let pt = b.input("pt");
            let delz = b.input("delz");
            let w = b.inout("w");
            let dt = b.param("dt");

            let cs = b.temp("cs");
            let aa = b.temp("aa"); // coupling to the layer above
            let ab = b.temp("ab"); // coupling to the layer below
            let bb = b.temp("bb"); // diagonal
            let rhs = b.temp("rhs");
            let cp = b.temp("cp"); // Thomas modified superdiagonal
            let dp = b.temp("dp"); // Thomas modified rhs

            let dt2 = |d: &stencil::ParamHandle| d.ex() * d.ex();

            // --- Stencil 1: coefficients (PARALLEL with intervals).
            b.computation(KOrder::Parallel, AxisInterval::FULL, |s| {
                s.assign(&cs, sound_speed2::<Expr>(pt.c()));
            });
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::Start(0), Anchor::Start(1)),
                |s| {
                    s.assign(&aa, Expr::c(0.0)); // rigid top
                },
            );
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::Start(1), Anchor::End(0)),
                |s| {
                    s.assign(
                        &aa,
                        couple::<Expr>(
                            cs.at(0, 0, -1),
                            cs.c(),
                            delz.at(0, 0, -1),
                            delz.c(),
                            dt2(&dt),
                        ),
                    );
                },
            );
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::Start(0), Anchor::End(-1)),
                |s| {
                    s.assign(
                        &ab,
                        couple::<Expr>(
                            cs.c(),
                            cs.at(0, 0, 1),
                            delz.c(),
                            delz.at(0, 0, 1),
                            dt2(&dt),
                        ),
                    );
                },
            );
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::End(-1), Anchor::End(0)),
                |s| {
                    s.assign(&ab, Expr::c(0.0)); // rigid bottom
                },
            );
            b.computation(KOrder::Parallel, AxisInterval::FULL, |s| {
                s.assign(&bb, delp.c() + aa.c() + ab.c());
            });
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::Start(1), Anchor::End(-1)),
                |s| {
                    s.assign(
                        &rhs,
                        rhs_forcing::<Expr>(
                            delp.c(),
                            w.c(),
                            cs.c(),
                            pt.at(0, 0, -1),
                            pt.c(),
                            pt.at(0, 0, 1),
                            dt.ex(),
                        ),
                    );
                },
            );
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::Start(0), Anchor::Start(1)),
                |s| {
                    s.assign(&rhs, delp.c() * w.c());
                },
            );
            b.computation(
                KOrder::Parallel,
                AxisInterval::new(Anchor::End(-1), Anchor::End(0)),
                |s| {
                    s.assign(&rhs, delp.c() * w.c());
                },
            );

            // --- Stencil 2: forward elimination.
            b.computation(
                KOrder::Forward,
                AxisInterval::new(Anchor::Start(0), Anchor::Start(1)),
                |s| {
                    s.assign(&cp, -ab.c() / bb.c());
                    s.assign(&dp, rhs.c() / bb.c());
                },
            );
            b.computation(
                KOrder::Forward,
                AxisInterval::new(Anchor::Start(1), Anchor::End(0)),
                |s| {
                    // denom = bb + aa * cp[k-1] (a_k = -aa_k)
                    s.assign(
                        &cp,
                        -ab.c() / (bb.c() + aa.c() * cp.at(0, 0, -1)),
                    );
                    s.assign(
                        &dp,
                        (rhs.c() + aa.c() * dp.at(0, 0, -1))
                            / (bb.c() + aa.c() * cp.at(0, 0, -1)),
                    );
                },
            );

            // --- Stencil 3: back substitution.
            b.computation(
                KOrder::Backward,
                AxisInterval::new(Anchor::End(-1), Anchor::End(0)),
                |s| {
                    s.assign(&w, dp.c());
                },
            );
            b.computation(
                KOrder::Backward,
                AxisInterval::new(Anchor::Start(0), Anchor::End(-1)),
                |s| {
                    s.assign(&w, dp.c() - cp.c() * w.at(0, 0, 1));
                },
            );
        })
        .expect("riem_solver_c is valid"),
    )
}

/// FORTRAN-style baseline: the same arithmetic with explicit column
/// loops (a classic Thomas solver).
pub fn baseline_riem_solver_c(
    delp: &Array3,
    pt: &Array3,
    delz: &Array3,
    w: &mut Array3,
    dt: f64,
) {
    let [ni, nj, nk] = delp.layout().domain;
    let (ni, nj, nk) = (ni as i64, nj as i64, nk);
    let dt2 = dt * dt;
    let mut cs = vec![0.0f64; nk];
    let mut aa = vec![0.0f64; nk];
    let mut ab = vec![0.0f64; nk];
    let mut bb = vec![0.0f64; nk];
    let mut rhs = vec![0.0f64; nk];
    let mut cp = vec![0.0f64; nk];
    let mut dpv = vec![0.0f64; nk];
    for j in 0..nj {
        for i in 0..ni {
            for (k, c) in cs.iter_mut().enumerate() {
                *c = sound_speed2::<f64>(pt.get(i, j, k as i64));
            }
            aa[0] = 0.0;
            for k in 1..nk {
                aa[k] = couple::<f64>(
                    cs[k - 1],
                    cs[k],
                    delz.get(i, j, k as i64 - 1),
                    delz.get(i, j, k as i64),
                    dt2,
                );
            }
            for k in 0..nk - 1 {
                ab[k] = couple::<f64>(
                    cs[k],
                    cs[k + 1],
                    delz.get(i, j, k as i64),
                    delz.get(i, j, k as i64 + 1),
                    dt2,
                );
            }
            ab[nk - 1] = 0.0;
            for k in 0..nk {
                bb[k] = delp.get(i, j, k as i64) + aa[k] + ab[k];
            }
            for k in 1..nk - 1 {
                rhs[k] = rhs_forcing::<f64>(
                    delp.get(i, j, k as i64),
                    w.get(i, j, k as i64),
                    cs[k],
                    pt.get(i, j, k as i64 - 1),
                    pt.get(i, j, k as i64),
                    pt.get(i, j, k as i64 + 1),
                    dt,
                );
            }
            rhs[0] = delp.get(i, j, 0) * w.get(i, j, 0);
            rhs[nk - 1] = delp.get(i, j, nk as i64 - 1) * w.get(i, j, nk as i64 - 1);

            cp[0] = -ab[0] / bb[0];
            dpv[0] = rhs[0] / bb[0];
            for k in 1..nk {
                let denom = bb[k] + aa[k] * cp[k - 1];
                cp[k] = -ab[k] / denom;
                dpv[k] = (rhs[k] + aa[k] * dpv[k - 1]) / denom;
            }
            w.set(i, j, nk as i64 - 1, dpv[nk - 1]);
            for k in (0..nk - 1).rev() {
                let v = dpv[k] - cp[k] * w.get(i, j, k as i64 + 1);
                w.set(i, j, k as i64, v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::kernel::Domain;
    use dataflow::Layout;
    use rand::{Rng, SeedableRng};
    use stencil::debug::run_stencil;

    fn layout(n: usize, nk: usize) -> Layout {
        Layout::fv3_default([n, n, nk], [0, 0, 1])
    }

    fn rand_fields(n: usize, nk: usize, seed: u64) -> (Array3, Array3, Array3, Array3) {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let l = layout(n, nk);
        let mut delp = Array3::zeros(l.clone());
        let mut pt = Array3::zeros(l.clone());
        let mut delz = Array3::zeros(l.clone());
        let mut w = Array3::zeros(l);
        for k in -1..nk as i64 + 1 {
            for j in 0..n as i64 {
                for i in 0..n as i64 {
                    delp.set(i, j, k, rng.gen_range(500.0..1500.0));
                    pt.set(i, j, k, rng.gen_range(250.0..350.0));
                    delz.set(i, j, k, -rng.gen_range(200.0..800.0));
                    w.set(i, j, k, rng.gen_range(-2.0..2.0));
                }
            }
        }
        (delp, pt, delz, w)
    }

    #[test]
    fn dsl_matches_baseline() {
        let (n, nk) = (6, 12);
        let (delp, pt, delz, w0) = rand_fields(n, nk, 3);
        let mut wb = w0.clone();
        baseline_riem_solver_c(&delp, &pt, &delz, &mut wb, 2.0);

        let def = riem_solver_c_stencil();
        let (mut d, mut p, mut z) = (delp.clone(), pt.clone(), delz.clone());
        let mut wd = w0.clone();
        run_stencil(
            &def,
            &mut [
                ("delp", &mut d),
                ("pt", &mut p),
                ("delz", &mut z),
                ("w", &mut wd),
            ],
            &[("dt", 2.0)],
            Domain::from_shape([n, n, nk]),
        )
        .unwrap();
        let diff = wb.max_abs_diff(&wd);
        assert!(diff < 1e-12, "max diff {diff}");
    }

    #[test]
    fn solution_satisfies_the_tridiagonal_system() {
        // Independent verification: rebuild A and rhs and check
        // ||A w_new - rhs||_inf is tiny (validates the Thomas algebra
        // against the mathematical system, not against itself).
        let (n, nk) = (3, 10);
        let (delp, pt, delz, w0) = rand_fields(n, nk, 17);
        let mut w = w0.clone();
        let dt = 3.0;
        baseline_riem_solver_c(&delp, &pt, &delz, &mut w, dt);

        for j in 0..n as i64 {
            for i in 0..n as i64 {
                let cs: Vec<f64> = (0..nk)
                    .map(|k| sound_speed2::<f64>(pt.get(i, j, k as i64)))
                    .collect();
                let mut aa = vec![0.0; nk];
                let mut ab = vec![0.0; nk];
                for k in 1..nk {
                    aa[k] = couple::<f64>(
                        cs[k - 1],
                        cs[k],
                        delz.get(i, j, k as i64 - 1),
                        delz.get(i, j, k as i64),
                        dt * dt,
                    );
                }
                ab[..nk - 1].copy_from_slice(&aa[1..nk]);
                for k in 0..nk {
                    let b = delp.get(i, j, k as i64) + aa[k] + ab[k];
                    let rhs = if k == 0 || k == nk - 1 {
                        delp.get(i, j, k as i64) * w0.get(i, j, k as i64)
                    } else {
                        rhs_forcing::<f64>(
                            delp.get(i, j, k as i64),
                            w0.get(i, j, k as i64),
                            cs[k],
                            pt.get(i, j, k as i64 - 1),
                            pt.get(i, j, k as i64),
                            pt.get(i, j, k as i64 + 1),
                            dt,
                        )
                    };
                    let mut lhs = b * w.get(i, j, k as i64);
                    if k > 0 {
                        lhs -= aa[k] * w.get(i, j, k as i64 - 1);
                    }
                    if k < nk - 1 {
                        lhs -= ab[k] * w.get(i, j, k as i64 + 1);
                    }
                    let scale = rhs.abs().max(1.0);
                    assert!(
                        ((lhs - rhs) / scale).abs() < 1e-10,
                        "residual at ({i},{j},{k}): {lhs} vs {rhs}"
                    );
                }
            }
        }
    }

    #[test]
    fn uniform_column_is_a_fixed_point() {
        // Constant pt (no forcing) and constant w: L w = 0, so the solver
        // must return w unchanged.
        let (n, nk) = (4, 8);
        let l = layout(n, nk);
        let delp = Array3::filled(l.clone(), 1000.0);
        let pt = Array3::filled(l.clone(), 300.0);
        let delz = Array3::filled(l.clone(), -400.0);
        let mut w = Array3::filled(l, 1.5);
        baseline_riem_solver_c(&delp, &pt, &delz, &mut w, 2.0);
        for k in 0..nk as i64 {
            assert!(
                (w.get(2, 2, k) - 1.5).abs() < 1e-12,
                "k={k}: {}",
                w.get(2, 2, k)
            );
        }
    }

    #[test]
    fn implicit_solve_damps_vertical_oscillations() {
        // An alternating w profile (grid-scale vertical sound wave) must
        // shrink in amplitude: that is the solver's job.
        let (n, nk) = (2, 16);
        let l = layout(n, nk);
        let delp = Array3::filled(l.clone(), 1000.0);
        let pt = Array3::filled(l.clone(), 300.0);
        let delz = Array3::filled(l.clone(), -300.0);
        let mut w = Array3::from_fn(l, |_, _, k| if k % 2 == 0 { 1.0 } else { -1.0 });
        baseline_riem_solver_c(&delp, &pt, &delz, &mut w, 20.0);
        // Interior amplitude (the rigid boundaries are deliberately less
        // constrained).
        let amp = (2..nk as i64 - 2)
            .map(|k| w.get(0, 0, k).abs())
            .fold(0.0f64, f64::max);
        assert!(amp < 0.5, "oscillation must damp, amplitude {amp}");
    }

    #[test]
    fn solver_is_stable_over_repeated_application() {
        let (n, nk) = (3, 10);
        let (delp, pt, delz, mut w) = rand_fields(n, nk, 99);
        let mut max0 = 0.0f64;
        for k in 0..nk as i64 {
            max0 = max0.max(w.get(1, 1, k).abs());
        }
        for _ in 0..20 {
            baseline_riem_solver_c(&delp, &pt, &delz, &mut w, 2.0);
        }
        let mut maxn = 0.0f64;
        for k in 0..nk as i64 {
            maxn = maxn.max(w.get(1, 1, k).abs());
        }
        assert!(maxn.is_finite());
        // The thermal forcing is constant in time, so w may drift
        // linearly; what must NOT happen is exponential growth.
        assert!(maxn < 100.0 * max0.max(1.0), "no blow-up: {maxn}");
    }
}
