//! C-grid shallow-water half step (`c_sw`).
//!
//! The first stage of the acoustic substep (Fig. 2): interpolate the
//! D-grid winds to the C-grid, form interface Courant numbers and mass
//! fluxes, and advance `delp` and `pt` a half step in flux form. The
//! Courant numbers / mass fluxes are also what the tracer transport
//! consumes (the accumulated fluxes of the red path in Fig. 2).

use dataflow::expr::NumLike;
use dataflow::kernel::{AxisInterval, Domain, KOrder};
use dataflow::{Array3, Expr};
use stencil::{StencilBuilder, StencilDef};
use std::sync::Arc;

/// Upwind interface value.
pub fn upwind<T: NumLike>(c: T, qm: T, q0: T) -> T {
    T::select_pos(c, qm, q0)
}

/// Build the `c_sw` stencil.
///
/// Inputs: `u`, `v`, `delp`, `pt`, `rdx`, `rdy`, `rarea`; params `dt2`
/// (the half timestep). Outputs: `crx`, `cry` (interface Courant
/// numbers), `xfx`, `yfx` (interface mass fluxes), `uc`, `vc` (C-grid
/// winds, consumed by d_sw), `delpc`, `ptc` (half-updated copies). Run on
/// the flux domain (+1 both axes).
pub fn c_sw_stencil() -> Arc<StencilDef> {
    Arc::new(
        StencilBuilder::new("c_sw", |b| {
            let u = b.input("u");
            let v = b.input("v");
            let delp = b.input("delp");
            let pt = b.input("pt");
            let rdx = b.input("rdx");
            let rdy = b.input("rdy");
            let area = b.input("area");
            let rarea = b.input("rarea");
            let crx = b.output("crx");
            let cry = b.output("cry");
            let xfx = b.output("xfx");
            let yfx = b.output("yfx");
            let delpc = b.output("delpc");
            let ptc = b.output("ptc");
            let uc = b.output("uc");
            let vc = b.output("vc");
            let dt2 = b.param("dt2");
            let fx = b.temp("fx");
            let fy = b.temp("fy");
            let fxp = b.temp("fxp"); // pt flux
            let fyp = b.temp("fyp");

            b.computation(KOrder::Parallel, AxisInterval::FULL, |s| {
                // C-grid winds at cell interfaces (simple average).
                s.assign(&uc, Expr::c(0.5) * (u.c() + u.at(-1, 0, 0)));
                s.assign(&vc, Expr::c(0.5) * (v.c() + v.at(0, -1, 0)));
                // Courant numbers at interfaces.
                s.assign(&crx, uc.c() * dt2.ex() * rdx.c());
                s.assign(&cry, vc.c() * dt2.ex() * rdy.c());
                // Upwind mass fluxes through the interfaces, area-weighted
                // so the flux-form update is conservative in Pa * m^2.
                s.assign(
                    &xfx,
                    crx.c() * area.c() * upwind::<Expr>(crx.c(), delp.at(-1, 0, 0), delp.c()),
                );
                s.assign(
                    &yfx,
                    cry.c() * area.c() * upwind::<Expr>(cry.c(), delp.at(0, -1, 0), delp.c()),
                );
                // Upwind pt fluxes (mass-weighted).
                s.assign(
                    &fx,
                    xfx.c() * upwind::<Expr>(crx.c(), pt.at(-1, 0, 0), pt.c()),
                );
                s.assign(
                    &fy,
                    yfx.c() * upwind::<Expr>(cry.c(), pt.at(0, -1, 0), pt.c()),
                );
                // Half-step flux-form updates.
                s.assign(
                    &fxp,
                    pt.c() * delp.c()
                        + rarea.c() * (fx.c() - fx.at(1, 0, 0) + fy.c() - fy.at(0, 1, 0)),
                );
                s.assign(
                    &fyp,
                    delp.c()
                        + rarea.c()
                            * (xfx.c() - xfx.at(1, 0, 0) + yfx.c() - yfx.at(0, 1, 0)),
                );
                s.assign(&ptc, fxp.c() / fyp.c());
                s.assign(&delpc, fyp.c());
            });
        })
        .expect("c_sw is valid"),
    )
}

/// FORTRAN-style baseline with identical arithmetic.
#[allow(clippy::too_many_arguments)]
pub fn baseline_c_sw(
    u: &Array3,
    v: &Array3,
    delp: &Array3,
    pt: &Array3,
    rdx: &Array3,
    rdy: &Array3,
    area: &Array3,
    rarea: &Array3,
    crx: &mut Array3,
    cry: &mut Array3,
    xfx: &mut Array3,
    yfx: &mut Array3,
    delpc: &mut Array3,
    ptc: &mut Array3,
    uc: &mut Array3,
    vc: &mut Array3,
    dt2: f64,
) {
    let [ni, nj, nk] = delp.layout().domain;
    let (ni, nj, nk) = (ni as i64, nj as i64, nk as i64);
    for k in 0..nk {
        // Interfaces (including the +1 row/column).
        for j in 0..nj + 2 {
            for i in 0..ni + 2 {
                let ucv = 0.5 * (u.get(i, j, k) + u.get(i - 1, j, k));
                let vcv = 0.5 * (v.get(i, j, k) + v.get(i, j - 1, k));
                uc.set(i, j, k, ucv);
                vc.set(i, j, k, vcv);
                let crxv = ucv * dt2 * rdx.get(i, j, k);
                let cryv = vcv * dt2 * rdy.get(i, j, k);
                crx.set(i, j, k, crxv);
                cry.set(i, j, k, cryv);
                xfx.set(
                    i,
                    j,
                    k,
                    crxv
                        * area.get(i, j, k)
                        * upwind::<f64>(crxv, delp.get(i - 1, j, k), delp.get(i, j, k)),
                );
                yfx.set(
                    i,
                    j,
                    k,
                    cryv
                        * area.get(i, j, k)
                        * upwind::<f64>(cryv, delp.get(i, j - 1, k), delp.get(i, j, k)),
                );
            }
        }
        for j in 0..nj + 1 {
            for i in 0..ni + 1 {
                let fx = |ii: i64, jj: i64| {
                    xfx.get(ii, jj, k)
                        * upwind::<f64>(crx.get(ii, jj, k), pt.get(ii - 1, jj, k), pt.get(ii, jj, k))
                };
                let fy = |ii: i64, jj: i64| {
                    yfx.get(ii, jj, k)
                        * upwind::<f64>(cry.get(ii, jj, k), pt.get(ii, jj - 1, k), pt.get(ii, jj, k))
                };
                let qdp = pt.get(i, j, k) * delp.get(i, j, k)
                    + rarea.get(i, j, k)
                        * (fx(i, j) - fx(i + 1, j) + fy(i, j) - fy(i, j + 1));
                let dp = delp.get(i, j, k)
                    + rarea.get(i, j, k)
                        * (xfx.get(i, j, k) - xfx.get(i + 1, j, k) + yfx.get(i, j, k)
                            - yfx.get(i, j + 1, k));
                ptc.set(i, j, k, qdp / dp);
                delpc.set(i, j, k, dp);
            }
        }
    }
}

/// Domain for the c_sw call (+1 both axes so interface `n` exists).
pub fn c_sw_domain(n: usize, nk: usize) -> Domain {
    Domain {
        start: [0, 0, 0],
        end: [n as i64 + 1, n as i64 + 1, nk as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::Layout;
    use rand::{Rng, SeedableRng};
    use stencil::debug::run_stencil;

    fn layout(n: usize, nk: usize) -> Layout {
        Layout::fv3_default([n, n, nk], [4, 4, 0])
    }

    fn rand_field(n: usize, nk: usize, rng: &mut impl Rng, lo: f64, hi: f64) -> Array3 {
        let mut a = Array3::zeros(layout(n, nk));
        for k in 0..nk as i64 {
            for j in -4..n as i64 + 4 {
                for i in -4..n as i64 + 4 {
                    a.set(i, j, k, rng.gen_range(lo..hi));
                }
            }
        }
        a
    }

    #[test]
    fn dsl_matches_baseline() {
        let (n, nk) = (6, 2);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let u = rand_field(n, nk, &mut rng, -10.0, 10.0);
        let v = rand_field(n, nk, &mut rng, -10.0, 10.0);
        let delp = rand_field(n, nk, &mut rng, 800.0, 1200.0);
        let pt = rand_field(n, nk, &mut rng, 280.0, 320.0);
        let rdx = rand_field(n, nk, &mut rng, 0.9e-5, 1.1e-5);
        let rdy = rand_field(n, nk, &mut rng, 0.9e-5, 1.1e-5);
        let area = rand_field(n, nk, &mut rng, 0.9, 1.1);
        let rarea = rand_field(n, nk, &mut rng, 0.9, 1.1);
        let dt2 = 30.0;

        let mk = || Array3::zeros(layout(n, nk));
        let (mut crx_b, mut cry_b, mut xfx_b, mut yfx_b, mut delpc_b, mut ptc_b) =
            (mk(), mk(), mk(), mk(), mk(), mk());
        let (mut uc_b, mut vc_b) = (mk(), mk());
        baseline_c_sw(
            &u, &v, &delp, &pt, &rdx, &rdy, &area, &rarea, &mut crx_b, &mut cry_b, &mut xfx_b,
            &mut yfx_b, &mut delpc_b, &mut ptc_b, &mut uc_b, &mut vc_b, dt2,
        );

        let def = c_sw_stencil();
        let (mut ud, mut vd, mut delpd, mut ptd) =
            (u.clone(), v.clone(), delp.clone(), pt.clone());
        let (mut rdxd, mut rdyd, mut aread, mut raread) =
            (rdx.clone(), rdy.clone(), area.clone(), rarea.clone());
        let (mut crx_d, mut cry_d, mut xfx_d, mut yfx_d, mut delpc_d, mut ptc_d) =
            (mk(), mk(), mk(), mk(), mk(), mk());
        let (mut uc_d, mut vc_d) = (mk(), mk());
        run_stencil(
            &def,
            &mut [
                ("u", &mut ud),
                ("v", &mut vd),
                ("delp", &mut delpd),
                ("pt", &mut ptd),
                ("rdx", &mut rdxd),
                ("rdy", &mut rdyd),
                ("area", &mut aread),
                ("rarea", &mut raread),
                ("crx", &mut crx_d),
                ("cry", &mut cry_d),
                ("xfx", &mut xfx_d),
                ("yfx", &mut yfx_d),
                ("delpc", &mut delpc_d),
                ("ptc", &mut ptc_d),
                ("uc", &mut uc_d),
                ("vc", &mut vc_d),
            ],
            &[("dt2", dt2)],
            c_sw_domain(n, nk),
        )
        .unwrap();

        // Compare on the target interface/cell ranges.
        let mut m = 0.0f64;
        for k in 0..nk as i64 {
            for j in 0..=n as i64 {
                for i in 0..=n as i64 {
                    m = m.max((crx_b.get(i, j, k) - crx_d.get(i, j, k)).abs());
                    m = m.max((cry_b.get(i, j, k) - cry_d.get(i, j, k)).abs());
                    m = m.max((xfx_b.get(i, j, k) - xfx_d.get(i, j, k)).abs());
                    m = m.max((yfx_b.get(i, j, k) - yfx_d.get(i, j, k)).abs());
                    m = m.max((delpc_b.get(i, j, k) - delpc_d.get(i, j, k)).abs());
                    m = m.max((ptc_b.get(i, j, k) - ptc_d.get(i, j, k)).abs());
                }
            }
        }
        assert!(m < 1e-10, "max diff {m}");
    }

    #[test]
    fn calm_atmosphere_stays_calm() {
        let (n, nk) = (4, 2);
        let zero = Array3::zeros(layout(n, nk));
        let delp = Array3::filled(layout(n, nk), 1000.0);
        let pt = Array3::filled(layout(n, nk), 300.0);
        let one = Array3::filled(layout(n, nk), 1.0);
        let mk = || Array3::zeros(layout(n, nk));
        let (mut crx, mut cry, mut xfx, mut yfx, mut delpc, mut ptc) =
            (mk(), mk(), mk(), mk(), mk(), mk());
        let (mut ucb, mut vcb) = (mk(), mk());
        baseline_c_sw(
            &zero, &zero, &delp, &pt, &one, &one, &one, &one, &mut crx, &mut cry, &mut xfx,
            &mut yfx, &mut delpc, &mut ptc, &mut ucb, &mut vcb, 10.0,
        );
        for j in 0..n as i64 {
            for i in 0..n as i64 {
                assert_eq!(crx.get(i, j, 0), 0.0);
                assert_eq!(delpc.get(i, j, 1), 1000.0);
                assert_eq!(ptc.get(i, j, 0), 300.0);
            }
        }
    }

    #[test]
    fn half_step_conserves_mass_up_to_boundary() {
        let (n, nk) = (6, 1);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(21);
        let u = rand_field(n, nk, &mut rng, -5.0, 5.0);
        let v = rand_field(n, nk, &mut rng, -5.0, 5.0);
        let delp = rand_field(n, nk, &mut rng, 900.0, 1100.0);
        let pt = rand_field(n, nk, &mut rng, 280.0, 320.0);
        let one = Array3::filled(layout(n, nk), 1.0);
        let small = Array3::filled(layout(n, nk), 1e-3);
        let mk = || Array3::zeros(layout(n, nk));
        let (mut crx, mut cry, mut xfx, mut yfx, mut delpc, mut ptc) =
            (mk(), mk(), mk(), mk(), mk(), mk());
        let (mut ucb, mut vcb) = (mk(), mk());
        baseline_c_sw(
            &u, &v, &delp, &pt, &small, &small, &one, &one, &mut crx, &mut cry, &mut xfx,
            &mut yfx, &mut delpc, &mut ptc, &mut ucb, &mut vcb, 10.0,
        );
        let mut before = 0.0f64;
        let mut after = 0.0f64;
        for j in 0..n as i64 {
            for i in 0..n as i64 {
                before += delp.get(i, j, 0);
                after += delpc.get(i, j, 0);
            }
        }
        let mut boundary = 0.0;
        for j in 0..n as i64 {
            boundary += xfx.get(0, j, 0) - xfx.get(n as i64, j, 0);
        }
        for i in 0..n as i64 {
            boundary += yfx.get(i, 0, 0) - yfx.get(i, n as i64, 0);
        }
        assert!(
            (after - before - boundary).abs() < 1e-9,
            "mass delta {} vs boundary {boundary}",
            after - before
        );
    }
}
