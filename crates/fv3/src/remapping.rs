//! Vertical Lagrangian-to-Eulerian remapping (the green hexagon of
//! Fig. 2).
//!
//! After the acoustic substeps deform the Lagrangian surfaces, each
//! column is conservatively remapped back to the reference coordinate.
//! The overlap search is inherently a data-dependent loop per column —
//! one of the code shapes GT4Py cannot express (no variable offsets,
//! Section IV-D). The Python port ran such pieces through the
//! orchestrator's **callback** mechanism (Section V-B); we do the same:
//! [`remap_state`] is host code invoked via a `Callback` node, and it
//! doubles as the FORTRAN-style baseline.
//!
//! Reconstruction is piecewise-constant (first-order), which makes
//! conservation exact and monotonicity trivial — higher-order PPM remap
//! is listed as future work in DESIGN.md.

use crate::grid::reference_pressures;
use crate::init::constants::{P0, PTOP};
use dataflow::Array3;

/// Conservatively remap one column from source layers to target layers.
///
/// `src_dp[k]`, `src_val[k]`: source layer thicknesses (positive) and
/// mean values; `dst_dp[k]`: target thicknesses. Source and target must
/// span the same total (within round-off; the tail is clamped). Returns
/// target mean values.
pub fn remap_column(src_dp: &[f64], src_val: &[f64], dst_dp: &[f64]) -> Vec<f64> {
    assert_eq!(src_dp.len(), src_val.len());
    let mut out = Vec::with_capacity(dst_dp.len());
    let mut k_src = 0usize;
    // Mass remaining in the current source layer.
    let mut avail = src_dp.first().copied().unwrap_or(0.0);
    for &need_total in dst_dp {
        let mut need = need_total;
        let mut acc = 0.0;
        while need > 0.0 {
            if k_src >= src_dp.len() {
                // Round-off tail: extend the last layer's value.
                acc += need * src_val.last().copied().unwrap_or(0.0);
                break;
            }
            let take = need.min(avail);
            acc += take * src_val[k_src];
            need -= take;
            avail -= take;
            if avail <= 1e-30 {
                k_src += 1;
                avail = src_dp.get(k_src).copied().unwrap_or(0.0);
            }
            if take <= 0.0 && avail <= 0.0 && k_src >= src_dp.len() {
                break;
            }
        }
        out.push(if need_total > 0.0 { acc / need_total } else { 0.0 });
    }
    out
}

/// Target layer thicknesses for a column with surface pressure
/// `p_surf`: the reference distribution rescaled to the column's mass.
pub fn target_thicknesses(nk: usize, p_top: f64, column_mass: f64) -> Vec<f64> {
    let p_ref = reference_pressures(nk, p_top, p_top + column_mass * (P0 - PTOP) / (P0 - PTOP));
    // Rescale so the thicknesses sum exactly to column_mass.
    let total: f64 = (0..nk).map(|k| p_ref[k + 1] - p_ref[k]).sum();
    (0..nk)
        .map(|k| (p_ref[k + 1] - p_ref[k]) * column_mass / total)
        .collect()
}

/// Remap every column of the given fields back to the reference
/// coordinate. `delp` is both input (Lagrangian thicknesses) and output
/// (reference thicknesses); `fields` are remapped in place.
pub fn remap_state(delp: &mut Array3, fields: &mut [&mut Array3]) {
    let [ni, nj, nk] = delp.layout().domain;
    let mut src_dp = vec![0.0f64; nk];
    let mut src_val = vec![0.0f64; nk];
    for j in 0..nj as i64 {
        for i in 0..ni as i64 {
            for (k, v) in src_dp.iter_mut().enumerate() {
                *v = delp.get(i, j, k as i64);
            }
            let mass: f64 = src_dp.iter().sum();
            let dst_dp = target_thicknesses(nk, PTOP, mass);
            for f in fields.iter_mut() {
                for (k, v) in src_val.iter_mut().enumerate() {
                    *v = f.get(i, j, k as i64);
                }
                let new = remap_column(&src_dp, &src_val, &dst_dp);
                for (k, v) in new.iter().enumerate() {
                    f.set(i, j, k as i64, *v);
                }
            }
            for (k, v) in dst_dp.iter().enumerate() {
                delp.set(i, j, k as i64, *v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::Layout;
    use rand::{Rng, SeedableRng};

    #[test]
    fn identity_when_grids_match() {
        let dp = vec![1.0, 2.0, 3.0];
        let v = vec![10.0, 20.0, 30.0];
        let out = remap_column(&dp, &v, &dp);
        for (a, b) in out.iter().zip(v.iter()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn remap_conserves_mass_weighted_integral() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(8);
        for _ in 0..50 {
            let nk = rng.gen_range(3..12);
            let src_dp: Vec<f64> = (0..nk).map(|_| rng.gen_range(0.5..2.0)).collect();
            let src_val: Vec<f64> = (0..nk).map(|_| rng.gen_range(-5.0..5.0)).collect();
            let total: f64 = src_dp.iter().sum();
            // Random target partition with the same total.
            let mut dst_dp: Vec<f64> = (0..nk).map(|_| rng.gen_range(0.5..2.0)).collect();
            let dsum: f64 = dst_dp.iter().sum();
            dst_dp.iter_mut().for_each(|d| *d *= total / dsum);

            let out = remap_column(&src_dp, &src_val, &dst_dp);
            let m_src: f64 = src_dp.iter().zip(&src_val).map(|(d, v)| d * v).sum();
            let m_dst: f64 = dst_dp.iter().zip(&out).map(|(d, v)| d * v).sum();
            assert!(
                (m_src - m_dst).abs() < 1e-9 * m_src.abs().max(1.0),
                "conservation: {m_src} vs {m_dst}"
            );
        }
    }

    #[test]
    fn remap_is_monotone_bounded() {
        // Piecewise-constant remap cannot create new extrema.
        let src_dp = vec![1.0, 1.0, 1.0, 1.0];
        let src_val = vec![0.0, 1.0, 3.0, 2.0];
        let dst_dp = vec![0.5, 1.5, 1.0, 1.0];
        let out = remap_column(&src_dp, &src_val, &dst_dp);
        for v in &out {
            assert!((0.0..=3.0).contains(v), "{v} out of [0,3]");
        }
    }

    #[test]
    fn target_thicknesses_sum_to_column_mass() {
        let t = target_thicknesses(10, 300.0, 98000.0);
        let s: f64 = t.iter().sum();
        assert!((s - 98000.0).abs() < 1e-6);
        assert!(t.iter().all(|d| *d > 0.0));
    }

    #[test]
    fn remap_state_restores_reference_thicknesses_and_conserves() {
        let mut rng = rand::rngs::SmallRng::seed_from_u64(77);
        let l = Layout::fv3_default([4, 4, 8], [0, 0, 0]);
        let mut delp = Array3::zeros(l.clone());
        let mut pt = Array3::zeros(l.clone());
        let mut q = Array3::zeros(l);
        for j in 0..4 {
            for i in 0..4 {
                for k in 0..8 {
                    delp.set(i, j, k, rng.gen_range(500.0..1500.0));
                    pt.set(i, j, k, rng.gen_range(250.0..350.0));
                    q.set(i, j, k, rng.gen_range(0.0..1e-2));
                }
            }
        }
        let mass_pt_before: f64 = (0..8)
            .map(|k| pt.get(1, 2, k) * delp.get(1, 2, k))
            .sum();
        let col_before: f64 = (0..8).map(|k| delp.get(1, 2, k)).sum();

        remap_state(&mut delp, &mut [&mut pt, &mut q]);

        let col_after: f64 = (0..8).map(|k| delp.get(1, 2, k)).sum();
        assert!((col_before - col_after).abs() < 1e-8, "column mass kept");
        let mass_pt_after: f64 = (0..8)
            .map(|k| pt.get(1, 2, k) * delp.get(1, 2, k))
            .sum();
        assert!(
            (mass_pt_before - mass_pt_after).abs() < 1e-6 * mass_pt_before.abs(),
            "pt mass conserved"
        );
        // Thicknesses now follow the reference distribution: monotone
        // increase toward the surface with our smoothstep spacing.
        for k in 0..7i64 {
            assert!(delp.get(0, 0, k) > 0.0);
        }
        // Repeating the remap is (nearly) the identity.
        let pt_once = pt.clone();
        remap_state(&mut delp, &mut [&mut pt, &mut q]);
        assert!(pt.max_abs_diff(&pt_once) < 1e-9);
    }
}
