//! Piecewise-Parabolic-Method flux reconstruction — the computational
//! heart of finite-volume transport (Lin & Rood 1996; Putman & Lin 2007).
//!
//! `xppm` / `yppm` compute interface flux values of a scalar given
//! Courant numbers at the interfaces. The paper notes GT4Py cannot
//! parametrize the offset direction, so the Python port *duplicated* the
//! x and y modules (Section IV-D); the Rust DSL builds both from one
//! generic definition — the formulas below are written once over
//! [`NumLike`] and instantiated both as `f64` (the FORTRAN-style
//! baseline) and as [`Expr`] (the DSL), so the two paths compute
//! identical arithmetic.

use dataflow::expr::NumLike;
use dataflow::kernel::{AxisInterval, KOrder};
use dataflow::{Array3, Expr};
use stencil::{StencilBuilder, StencilDef};
use std::sync::Arc;

/// Fourth-order interface (edge) estimate:
/// `al_i = 7/12 (q_{i-1} + q_i) - 1/12 (q_{i-2} + q_{i+1})`.
pub fn edge_value<T: NumLike>(qm2: T, qm1: T, q0: T, qp1: T) -> T {
    T::from(7.0 / 12.0) * (qm1 + q0) - T::from(1.0 / 12.0) * (qm2 + qp1)
}

/// PPM cell polynomial coefficients from the cell mean and edge
/// deviations `bl = al_i - q`, `br = al_{i+1} - q`:
/// `qL = q + bl`, `dq = br - bl`, `q6 = -3 (bl + br)`.
///
/// Flux value through the *right* edge of the upwind cell for Courant
/// `c > 0` (mean of the parabola over `ξ ∈ [1-c, 1]`), in the
/// division-free form (safe at `c → 0`):
/// `F = qL + dq (1+a)/2 + q6 [ (1+a)/2 − (1+a+a²)/3 ]`, `a = 1 − c`.
pub fn flux_from_left<T: NumLike>(q: T, bl: T, br: T, c: T) -> T {
    let ql = q + bl.clone();
    let dq = br.clone() - bl.clone();
    let q6 = T::from(-3.0) * (bl + br);
    let a = T::from(1.0) - c;
    let half_1a = T::from(0.5) * (T::from(1.0) + a.clone());
    ql + dq * half_1a.clone()
        + q6 * (half_1a - T::from(1.0 / 3.0) * (T::from(1.0) + a.clone() + a.clone() * a))
}

/// Flux value through the *left* edge of the downwind cell for Courant
/// `c ≤ 0` (mean over `ξ ∈ [0, b]`, `b = −c`):
/// `F = qL + dq b/2 + q6 (b/2 − b²/3)`.
pub fn flux_from_right<T: NumLike>(q: T, bl: T, br: T, c: T) -> T {
    let ql = q + bl.clone();
    let dq = br.clone() - bl.clone();
    let q6 = T::from(-3.0) * (bl + br);
    let b = -c;
    ql + dq * (T::from(0.5) * b.clone())
        + q6 * (T::from(0.5) * b.clone() - T::from(1.0 / 3.0) * b.clone() * b)
}

/// Upwind-selected PPM interface value: the interface between cells
/// `i-1` and `i` with Courant `c` (positive: flow from `i-1`).
/// `*_m1` arguments belong to cell `i-1`.
pub fn ppm_flux<T: NumLike>(qm1: T, bl_m1: T, br_m1: T, q0: T, bl0: T, br0: T, c: T) -> T {
    T::select_pos(
        c.clone(),
        flux_from_left(qm1, bl_m1, br_m1, c.clone()),
        flux_from_right(q0, bl0, br0, c),
    )
}

/// Which horizontal axis a PPM sweep runs along.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepAxis {
    X,
    Y,
}

impl SweepAxis {
    /// Offset along the sweep axis.
    fn off(&self, d: i32) -> (i32, i32) {
        match self {
            SweepAxis::X => (d, 0),
            SweepAxis::Y => (0, d),
        }
    }
}

/// Build the PPM flux stencil along `axis`.
///
/// Fields: `q` (in), `c` (in, interface Courant numbers), `flux` (out,
/// interface values at the low edge of each cell). The caller runs it on
/// a domain grown by +1 along the sweep axis to obtain the `n+1`-th
/// interface.
pub fn ppm_stencil(axis: SweepAxis) -> Arc<StencilDef> {
    let name = match axis {
        SweepAxis::X => "xppm",
        SweepAxis::Y => "yppm",
    };
    Arc::new(
        StencilBuilder::new(name, |b| {
            let q = b.input("q");
            let c = b.input("c");
            let flux = b.output("flux");
            let al = b.temp("al");
            let bl = b.temp("bl");
            let br = b.temp("br");
            b.computation(KOrder::Parallel, AxisInterval::FULL, |s| {
                let o = |d: i32| axis.off(d);
                let at = |f: &stencil::FieldHandle, d: i32| {
                    let (i, j) = o(d);
                    f.at(i, j, 0)
                };
                s.assign(
                    &al,
                    edge_value::<Expr>(at(&q, -2), at(&q, -1), q.c(), at(&q, 1)),
                );
                s.assign(&bl, al.c() - q.c());
                s.assign(&br, at(&al, 1) - q.c());
                s.assign(
                    &flux,
                    ppm_flux::<Expr>(
                        at(&q, -1),
                        at(&bl, -1),
                        at(&br, -1),
                        q.c(),
                        bl.c(),
                        br.c(),
                        c.c(),
                    ),
                );
            });
        })
        .expect("ppm stencil is valid"),
    )
}

/// FORTRAN-style baseline: identical arithmetic, k-blocked loops.
///
/// Computes `flux` on `[0, n_sweep]` interfaces (one past the domain) and
/// the full transverse range including one halo cell each side, matching
/// the extent-grown DSL execution.
pub fn baseline_ppm(axis: SweepAxis, q: &Array3, c: &Array3, flux: &mut Array3) {
    let [ni, nj, nk] = q.layout().domain;
    let (ni, nj, nk) = (ni as i64, nj as i64, nk as i64);
    // Edge values must cover one cell beyond the flux range.
    let sweep_n = match axis {
        SweepAxis::X => ni,
        SweepAxis::Y => nj,
    };
    let (trans_lo, trans_hi) = (-1i64, match axis {
        SweepAxis::X => nj + 1,
        SweepAxis::Y => ni + 1,
    });
    let idx = |s: i64, t: i64| -> (i64, i64) {
        match axis {
            SweepAxis::X => (s, t),
            SweepAxis::Y => (t, s),
        }
    };
    for k in 0..nk {
        // al on [-1, sweep_n + 2): bl/br need al at i and i+1.
        let mut al = vec![0.0f64; (sweep_n + 3) as usize];
        let mut bl = vec![0.0f64; (sweep_n + 2) as usize];
        let mut br = vec![0.0f64; (sweep_n + 2) as usize];
        for t in trans_lo..trans_hi {
            for s in -1..sweep_n + 2 {
                let (i, j) = idx(s, t);
                let g = |d: i64| {
                    let (ii, jj) = idx(s + d, t);
                    q.get(ii, jj, k)
                };
                al[(s + 1) as usize] =
                    edge_value::<f64>(g(-2), g(-1), q.get(i, j, k), g(1));
            }
            for s in -1..sweep_n + 1 {
                let (i, j) = idx(s, t);
                bl[(s + 1) as usize] = al[(s + 1) as usize] - q.get(i, j, k);
                br[(s + 1) as usize] = al[(s + 2) as usize] - q.get(i, j, k);
            }
            for s in 0..sweep_n + 1 {
                let (i, j) = idx(s, t);
                let (im, jm) = idx(s - 1, t);
                let f = ppm_flux::<f64>(
                    q.get(im, jm, k),
                    bl[s as usize],
                    br[s as usize],
                    q.get(i, j, k),
                    bl[(s + 1) as usize],
                    br[(s + 1) as usize],
                    c.get(i, j, k),
                );
                flux.set(i, j, k, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::kernel::Domain;
    use dataflow::Layout;
    use rand::{Rng, SeedableRng};
    use stencil::debug::run_stencil;

    fn layout(n: usize, nk: usize) -> Layout {
        Layout::fv3_default([n, n, nk], [3, 3, 0], )
    }

    fn filled(n: usize, nk: usize, f: impl Fn(i64, i64, i64) -> f64) -> Array3 {
        let l = layout(n, nk);
        let mut a = Array3::zeros(l);
        for k in 0..nk as i64 {
            for j in -3..n as i64 + 3 {
                for i in -3..n as i64 + 3 {
                    a.set(i, j, k, f(i, j, k));
                }
            }
        }
        a
    }

    #[test]
    fn constant_field_gives_constant_flux() {
        let n = 8;
        let q = filled(n, 2, |_, _, _| 4.5);
        let c = filled(n, 2, |i, j, _| 0.3 * (((i + j) % 3) as f64 - 1.0));
        let mut flux = Array3::zeros(layout(n, 2));
        baseline_ppm(SweepAxis::X, &q, &c, &mut flux);
        for j in 0..n as i64 {
            for i in 0..=n as i64 {
                assert!((flux.get(i, j, 1) - 4.5).abs() < 1e-13);
            }
        }
    }

    #[test]
    fn linear_field_is_reconstructed_exactly() {
        // For q linear in i, PPM is exact: at c -> 0+ the flux value is
        // the edge value q(i - 1/2).
        let n = 8;
        let q = filled(n, 1, |i, _, _| 2.0 * i as f64 + 1.0);
        let c = filled(n, 1, |_, _, _| 1e-12);
        let mut flux = Array3::zeros(layout(n, 1));
        baseline_ppm(SweepAxis::X, &q, &c, &mut flux);
        for i in 0..=n as i64 {
            let edge = 2.0 * (i as f64 - 0.5) + 1.0;
            assert!(
                (flux.get(i, 2, 0) - edge).abs() < 1e-9,
                "i={i}: {} vs {edge}",
                flux.get(i, 2, 0)
            );
        }
    }

    #[test]
    fn full_courant_advects_whole_upwind_cell() {
        let n = 8;
        let q = filled(n, 1, |i, _, _| (i * i) as f64);
        let c1 = filled(n, 1, |_, _, _| 1.0);
        let mut flux = Array3::zeros(layout(n, 1));
        baseline_ppm(SweepAxis::X, &q, &c1, &mut flux);
        for i in 1..n as i64 {
            assert!(
                (flux.get(i, 3, 0) - q.get(i - 1, 3, 0)).abs() < 1e-12,
                "c=1 moves the full upwind cell mean"
            );
        }
        let cm1 = filled(n, 1, |_, _, _| -1.0);
        baseline_ppm(SweepAxis::X, &q, &cm1, &mut flux);
        for i in 0..n as i64 {
            assert!((flux.get(i, 3, 0) - q.get(i, 3, 0)).abs() < 1e-12);
        }
    }

    #[test]
    fn dsl_matches_baseline_x_and_y() {
        let n = 10;
        let nk = 3;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(42);
        for axis in [SweepAxis::X, SweepAxis::Y] {
            let q = filled(n, nk, |i, j, k| {
                ((i * 3 + j * 7 + k * 11) % 13) as f64 * 0.25 + 1.0
            });
            let courant: Vec<f64> = (0..((n + 6) * (n + 6) * nk))
                .map(|_| rng.gen_range(-0.9..0.9))
                .collect();
            let c = filled(n, nk, |i, j, k| {
                let (w, h) = (n as i64 + 6, n as i64 + 6);
                courant[(((k * h + j + 3) * w) + i + 3) as usize]
            });
            let mut flux_base = Array3::zeros(layout(n, nk));
            baseline_ppm(axis, &q, &c, &mut flux_base);

            let def = ppm_stencil(axis);
            let mut qd = q.clone();
            let mut cd = c.clone();
            let mut flux_dsl = Array3::zeros(layout(n, nk));
            // Domain grown by +1 along sweep axis (and the baseline also
            // covers one transverse halo row; restrict comparison to the
            // common region).
            let grow = match axis {
                SweepAxis::X => Domain {
                    start: [0, -1, 0],
                    end: [n as i64 + 1, n as i64 + 1, nk as i64],
                },
                SweepAxis::Y => Domain {
                    start: [-1, 0, 0],
                    end: [n as i64 + 1, n as i64 + 1, nk as i64],
                },
            };
            run_stencil(
                &def,
                &mut [("q", &mut qd), ("c", &mut cd), ("flux", &mut flux_dsl)],
                &[],
                grow,
            )
            .unwrap();
            let mut max_diff = 0.0f64;
            for k in 0..nk as i64 {
                for j in 0..n as i64 {
                    for i in 0..=n as i64 {
                        let (ii, jj) = match axis {
                            SweepAxis::X => (i, j),
                            SweepAxis::Y => (j, i),
                        };
                        max_diff = max_diff
                            .max((flux_base.get(ii, jj, k) - flux_dsl.get(ii, jj, k)).abs());
                    }
                }
            }
            assert!(max_diff < 1e-13, "{axis:?}: max diff {max_diff}");
        }
    }

    #[test]
    fn flux_helpers_are_consistent_at_zero_courant() {
        // F(0+) from the left cell must equal that cell's right-edge
        // value; F(0-) from the right cell must equal its left edge.
        let (q, bl, br) = (2.0, -0.25, 0.5);
        let fp = flux_from_left(q, bl, br, 0.0);
        assert!((fp - (q + br)).abs() < 1e-14);
        let fm = flux_from_right(q, bl, br, 0.0);
        assert!((fm - (q + bl)).abs() < 1e-14);
    }

    #[test]
    fn mean_preservation_at_full_courant() {
        let (q, bl, br) = (3.0, 0.7, -0.2);
        assert!((flux_from_left(q, bl, br, 1.0) - q).abs() < 1e-14);
        assert!((flux_from_right(q, bl, br, -1.0) - q).abs() < 1e-14);
    }
}
