//! Finite-volume transport (`fv_tp_2d`) — "a subroutine to compute fluxes
//! for horizontal finite volume transport [...] reused across several
//! components of the model" (Section VIII-C).
//!
//! The Lin–Rood scheme: an inner (advective) half-update transverse to
//! each sweep removes the splitting error, then PPM provides the
//! interface values, which multiply the mass fluxes. The module exposes
//! one stencil definition plus the FORTRAN-style baseline. In FORTRAN
//! this module is "designed to be two-dimensional [...] vertical
//! K-blocking is employed", the exact cache-friendly schedule our CPU
//! machine model prices.

use crate::ppm::{edge_value, ppm_flux};
use dataflow::expr::NumLike;
use dataflow::kernel::{AxisInterval, Domain, KOrder};
use dataflow::{Array3, Expr};
use stencil::{FieldHandle, StencilBuilder, StencilDef};
use std::sync::Arc;

/// Inner advective half-update transverse to a sweep: first-order upwind
/// with the cell-centred Courant number `cc`.
/// `q_t = q - 0.5 cc (q - q_upwind)`.
pub fn inner_update<T: NumLike>(q0: T, qm: T, qp: T, cc: T) -> T {
    q0.clone()
        - T::from(0.5)
            * cc.clone()
            * T::select_pos(cc, q0.clone() - qm, qp - q0)
}

/// Build the `fv_tp_2d` stencil.
///
/// Inputs: `q` (transported scalar), `crx`/`cry` (interface Courant
/// numbers), `xfx`/`yfx` (interface mass fluxes). Outputs: `fx`, `fy`
/// (mass-weighted scalar fluxes at interfaces). The caller must run on a
/// domain grown by +1 in both horizontal axes so the high-side
/// interfaces exist.
pub fn fv_tp_2d_stencil() -> Arc<StencilDef> {
    Arc::new(
        StencilBuilder::new("fv_tp_2d", |b| {
            let q = b.input("q");
            let crx = b.input("crx");
            let cry = b.input("cry");
            let xfx = b.input("xfx");
            let yfx = b.input("yfx");
            let fx = b.output("fx");
            let fy = b.output("fy");
            // Transverse-updated scalars.
            let qy = b.temp("qy"); // y-updated, used by the x sweep
            let qx = b.temp("qx");
            // PPM coefficients for each sweep.
            let alx = b.temp("al_x");
            let blx = b.temp("bl_x");
            let brx = b.temp("br_x");
            let aly = b.temp("al_y");
            let bly = b.temp("bl_y");
            let bry = b.temp("br_y");

            b.computation(KOrder::Parallel, AxisInterval::FULL, |s| {
                // Inner updates (transverse Courant at cell centre).
                let cyc = Expr::c(0.5) * (cry.c() + cry.at(0, 1, 0));
                s.assign(
                    &qy,
                    inner_update::<Expr>(q.c(), q.at(0, -1, 0), q.at(0, 1, 0), cyc),
                );
                let cxc = Expr::c(0.5) * (crx.c() + crx.at(1, 0, 0));
                s.assign(
                    &qx,
                    inner_update::<Expr>(q.c(), q.at(-1, 0, 0), q.at(1, 0, 0), cxc),
                );

                // X sweep over qy.
                s.assign(
                    &alx,
                    edge_value::<Expr>(qy.at(-2, 0, 0), qy.at(-1, 0, 0), qy.c(), qy.at(1, 0, 0)),
                );
                s.assign(&blx, alx.c() - qy.c());
                s.assign(&brx, alx.at(1, 0, 0) - qy.c());
                s.assign(
                    &fx,
                    ppm_flux::<Expr>(
                        qy.at(-1, 0, 0),
                        blx.at(-1, 0, 0),
                        brx.at(-1, 0, 0),
                        qy.c(),
                        blx.c(),
                        brx.c(),
                        crx.c(),
                    ) * xfx.c(),
                );

                // Y sweep over qx.
                s.assign(
                    &aly,
                    edge_value::<Expr>(qx.at(0, -2, 0), qx.at(0, -1, 0), qx.c(), qx.at(0, 1, 0)),
                );
                s.assign(&bly, aly.c() - qx.c());
                s.assign(&bry, aly.at(0, 1, 0) - qx.c());
                s.assign(
                    &fy,
                    ppm_flux::<Expr>(
                        qx.at(0, -1, 0),
                        bly.at(0, -1, 0),
                        bry.at(0, -1, 0),
                        qx.c(),
                        bly.c(),
                        bry.c(),
                        cry.c(),
                    ) * yfx.c(),
                );
            });
        })
        .expect("fv_tp_2d is valid"),
    )
}

/// Build the conservative flux-form update applying `fv_tp_2d` fluxes:
/// `delp' = delp + rarea Σ mass-flux divergence`,
/// `q' = (q delp + rarea Σ scalar-flux divergence) / delp'`.
pub fn transport_update_stencil() -> Arc<StencilDef> {
    Arc::new(
        StencilBuilder::new("transport_update", |b| {
            let q = b.inout("q");
            let delp = b.inout("delp");
            let fx = b.input("fx");
            let fy = b.input("fy");
            let xfx = b.input("xfx");
            let yfx = b.input("yfx");
            let rarea = b.input("rarea");
            let qdp = b.temp("qdp");
            let delp_new = b.temp("delp_new");
            b.computation(KOrder::Parallel, AxisInterval::FULL, |s| {
                s.assign(
                    &qdp,
                    q.c() * delp.c()
                        + rarea.c() * (fx.c() - fx.at(1, 0, 0) + fy.c() - fy.at(0, 1, 0)),
                );
                s.assign(
                    &delp_new,
                    delp.c()
                        + rarea.c()
                            * (xfx.c() - xfx.at(1, 0, 0) + yfx.c() - yfx.at(0, 1, 0)),
                );
                s.assign(&q, qdp.c() / delp_new.c());
                s.assign(&delp, delp_new.c());
            });
        })
        .expect("transport_update is valid"),
    )
}

/// The `FieldHandle` import is only used by the builder closures above;
/// re-export for doc purposes.
#[doc(hidden)]
pub fn _field_handle_marker(_h: &FieldHandle) {}

/// FORTRAN-style baseline for the whole transport call: identical
/// arithmetic, k-outer loops, writing `fx`/`fy` on the `n+1` interface
/// ranges.
#[allow(clippy::too_many_arguments)]
pub fn baseline_fv_tp_2d(
    q: &Array3,
    crx: &Array3,
    cry: &Array3,
    xfx: &Array3,
    yfx: &Array3,
    fx: &mut Array3,
    fy: &mut Array3,
) {
    let [ni, nj, nk] = q.layout().domain;
    let (ni, nj, nk) = (ni as i64, nj as i64, nk as i64);
    // Temporaries sized to the extended ranges the sweeps need. Indexing
    // helper: hold values for logical [-3, n+3).
    let w = (ni.max(nj) + 8) as usize;
    let at = |i: i64, j: i64| ((j + 4) * (w as i64) + (i + 4)) as usize;
    for k in 0..nk {
        let mut qy = vec![0.0f64; w * w];
        let mut qx = vec![0.0f64; w * w];
        // Inner updates on [-3, n+3) (the PPM sweeps read three cells
        // beyond the flux range; needs one more halo cell of q).
        for j in -3..nj + 3 {
            for i in -3..ni + 3 {
                let cyc = 0.5 * (cry.get(i, j, k) + cry.get(i, j + 1, k));
                qy[at(i, j)] = inner_update::<f64>(
                    q.get(i, j, k),
                    q.get(i, j - 1, k),
                    q.get(i, j + 1, k),
                    cyc,
                );
                let cxc = 0.5 * (crx.get(i, j, k) + crx.get(i + 1, j, k));
                qx[at(i, j)] = inner_update::<f64>(
                    q.get(i, j, k),
                    q.get(i - 1, j, k),
                    q.get(i + 1, j, k),
                    cxc,
                );
            }
        }
        // X sweep.
        let mut alx = vec![0.0f64; w * w];
        for j in 0..nj + 1 {
            for i in -1..ni + 2 {
                alx[at(i, j)] = edge_value::<f64>(
                    qy[at(i - 2, j)],
                    qy[at(i - 1, j)],
                    qy[at(i, j)],
                    qy[at(i + 1, j)],
                );
            }
            for i in 0..ni + 1 {
                let bl = |s: i64| alx[at(s, j)] - qy[at(s, j)];
                let br = |s: i64| alx[at(s + 1, j)] - qy[at(s, j)];
                let f = ppm_flux::<f64>(
                    qy[at(i - 1, j)],
                    bl(i - 1),
                    br(i - 1),
                    qy[at(i, j)],
                    bl(i),
                    br(i),
                    crx.get(i, j, k),
                );
                fx.set(i, j, k, f * xfx.get(i, j, k));
            }
        }
        // Y sweep.
        let mut aly = vec![0.0f64; w * w];
        for i in 0..ni + 1 {
            for j in -1..nj + 2 {
                aly[at(i, j)] = edge_value::<f64>(
                    qx[at(i, j - 2)],
                    qx[at(i, j - 1)],
                    qx[at(i, j)],
                    qx[at(i, j + 1)],
                );
            }
            for j in 0..nj + 1 {
                let bl = |s: i64| aly[at(i, s)] - qx[at(i, s)];
                let br = |s: i64| aly[at(i, s + 1)] - qx[at(i, s)];
                let f = ppm_flux::<f64>(
                    qx[at(i, j - 1)],
                    bl(j - 1),
                    br(j - 1),
                    qx[at(i, j)],
                    bl(j),
                    br(j),
                    cry.get(i, j, k),
                );
                fy.set(i, j, k, f * yfx.get(i, j, k));
            }
        }
    }
}

/// Baseline for the conservative update (matches
/// [`transport_update_stencil`]).
#[allow(clippy::too_many_arguments)]
pub fn baseline_transport_update(
    q: &mut Array3,
    delp: &mut Array3,
    fx: &Array3,
    fy: &Array3,
    xfx: &Array3,
    yfx: &Array3,
    rarea: &Array3,
) {
    let [ni, nj, nk] = q.layout().domain;
    for k in 0..nk as i64 {
        for j in 0..nj as i64 {
            for i in 0..ni as i64 {
                let qdp = q.get(i, j, k) * delp.get(i, j, k)
                    + rarea.get(i, j, k)
                        * (fx.get(i, j, k) - fx.get(i + 1, j, k) + fy.get(i, j, k)
                            - fy.get(i, j + 1, k));
                let dp = delp.get(i, j, k)
                    + rarea.get(i, j, k)
                        * (xfx.get(i, j, k) - xfx.get(i + 1, j, k) + yfx.get(i, j, k)
                            - yfx.get(i, j + 1, k));
                q.set(i, j, k, qdp / dp);
                delp.set(i, j, k, dp);
            }
        }
    }
}

/// The domain to run [`fv_tp_2d_stencil`] on: grown +1 on the high side
/// of both horizontal axes so `fx(n, j)` / `fy(i, n)` exist.
pub fn flux_domain(n: usize, nk: usize) -> Domain {
    Domain {
        start: [0, 0, 0],
        end: [n as i64 + 1, n as i64 + 1, nk as i64],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dataflow::Layout;
    use rand::{Rng, SeedableRng};
    use stencil::debug::run_stencil;

    fn layout(n: usize, nk: usize) -> Layout {
        Layout::fv3_default([n, n, nk], [4, 4, 0])
    }

    fn rand_field(n: usize, nk: usize, rng: &mut impl Rng, lo: f64, hi: f64) -> Array3 {
        let l = layout(n, nk);
        let mut a = Array3::zeros(l);
        for k in 0..nk as i64 {
            for j in -4..n as i64 + 4 {
                for i in -4..n as i64 + 4 {
                    a.set(i, j, k, rng.gen_range(lo..hi));
                }
            }
        }
        a
    }

    #[test]
    fn dsl_matches_baseline() {
        let n = 8;
        let nk = 2;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
        let q = rand_field(n, nk, &mut rng, 1.0, 2.0);
        let crx = rand_field(n, nk, &mut rng, -0.8, 0.8);
        let cry = rand_field(n, nk, &mut rng, -0.8, 0.8);
        let xfx = rand_field(n, nk, &mut rng, 0.5, 1.5);
        let yfx = rand_field(n, nk, &mut rng, 0.5, 1.5);

        let mut fx_b = Array3::zeros(layout(n, nk));
        let mut fy_b = Array3::zeros(layout(n, nk));
        baseline_fv_tp_2d(&q, &crx, &cry, &xfx, &yfx, &mut fx_b, &mut fy_b);

        let def = fv_tp_2d_stencil();
        let (mut qd, mut crxd, mut cryd, mut xfxd, mut yfxd) =
            (q.clone(), crx.clone(), cry.clone(), xfx.clone(), yfx.clone());
        let mut fx_d = Array3::zeros(layout(n, nk));
        let mut fy_d = Array3::zeros(layout(n, nk));
        run_stencil(
            &def,
            &mut [
                ("q", &mut qd),
                ("crx", &mut crxd),
                ("cry", &mut cryd),
                ("xfx", &mut xfxd),
                ("yfx", &mut yfxd),
                ("fx", &mut fx_d),
                ("fy", &mut fy_d),
            ],
            &[],
            flux_domain(n, nk),
        )
        .unwrap();

        let mut max_diff = 0.0f64;
        for k in 0..nk as i64 {
            for j in 0..n as i64 {
                for i in 0..=n as i64 {
                    max_diff = max_diff.max((fx_b.get(i, j, k) - fx_d.get(i, j, k)).abs());
                    max_diff = max_diff.max((fy_b.get(j, i, k) - fy_d.get(j, i, k)).abs());
                }
            }
        }
        assert!(max_diff < 1e-12, "max diff {max_diff}");
    }

    #[test]
    fn update_conserves_mass_up_to_boundary_fluxes() {
        let n = 8;
        let nk = 1;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(9);
        let mut q = rand_field(n, nk, &mut rng, 0.5, 1.5);
        let mut delp = rand_field(n, nk, &mut rng, 50.0, 100.0);
        let crx = rand_field(n, nk, &mut rng, -0.5, 0.5);
        let cry = rand_field(n, nk, &mut rng, -0.5, 0.5);
        let xfx = rand_field(n, nk, &mut rng, -1.0, 1.0);
        let yfx = rand_field(n, nk, &mut rng, -1.0, 1.0);
        let rarea = Array3::filled(layout(n, nk), 1.0);

        let mut fx = Array3::zeros(layout(n, nk));
        let mut fy = Array3::zeros(layout(n, nk));
        baseline_fv_tp_2d(&q, &crx, &cry, &xfx, &yfx, &mut fx, &mut fy);

        let before: f64 = (0..n as i64)
            .flat_map(|j| (0..n as i64).map(move |i| (i, j)))
            .map(|(i, j)| q.get(i, j, 0) * delp.get(i, j, 0))
            .sum();
        // Net boundary import of q-mass (rarea = 1, area = 1).
        let mut boundary = 0.0;
        for j in 0..n as i64 {
            boundary += fx.get(0, j, 0) - fx.get(n as i64, j, 0);
        }
        for i in 0..n as i64 {
            boundary += fy.get(i, 0, 0) - fy.get(i, n as i64, 0);
        }
        baseline_transport_update(&mut q, &mut delp, &fx, &fy, &xfx, &yfx, &rarea);
        let after: f64 = (0..n as i64)
            .flat_map(|j| (0..n as i64).map(move |i| (i, j)))
            .map(|(i, j)| q.get(i, j, 0) * delp.get(i, j, 0))
            .sum();
        assert!(
            (after - before - boundary).abs() < 1e-9,
            "mass change {} vs boundary {boundary}",
            after - before
        );
    }

    #[test]
    fn update_dsl_matches_baseline() {
        let n = 6;
        let nk = 2;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(11);
        let q0 = rand_field(n, nk, &mut rng, 0.5, 1.5);
        let delp0 = rand_field(n, nk, &mut rng, 50.0, 100.0);
        let fx = rand_field(n, nk, &mut rng, -1.0, 1.0);
        let fy = rand_field(n, nk, &mut rng, -1.0, 1.0);
        let xfx = rand_field(n, nk, &mut rng, -1.0, 1.0);
        let yfx = rand_field(n, nk, &mut rng, -1.0, 1.0);
        let rarea = rand_field(n, nk, &mut rng, 0.9, 1.1);

        let mut qb = q0.clone();
        let mut delpb = delp0.clone();
        baseline_transport_update(&mut qb, &mut delpb, &fx, &fy, &xfx, &yfx, &rarea);

        let def = transport_update_stencil();
        let mut qd = q0.clone();
        let mut delpd = delp0.clone();
        let (mut fxd, mut fyd, mut xfxd, mut yfxd, mut raread) = (
            fx.clone(),
            fy.clone(),
            xfx.clone(),
            yfx.clone(),
            rarea.clone(),
        );
        run_stencil(
            &def,
            &mut [
                ("q", &mut qd),
                ("delp", &mut delpd),
                ("fx", &mut fxd),
                ("fy", &mut fyd),
                ("xfx", &mut xfxd),
                ("yfx", &mut yfxd),
                ("rarea", &mut raread),
            ],
            &[],
            Domain::from_shape([n, n, nk]),
        )
        .unwrap();
        assert!(qb.max_abs_diff(&qd) < 1e-13);
        assert!(delpb.max_abs_diff(&delpd) < 1e-13);
    }

    #[test]
    fn zero_wind_means_no_flux_divergence() {
        let n = 6;
        let q = Array3::filled(layout(n, 1), 2.0);
        let zero = Array3::zeros(layout(n, 1));
        let mut fx = Array3::zeros(layout(n, 1));
        let mut fy = Array3::zeros(layout(n, 1));
        baseline_fv_tp_2d(&q, &zero, &zero, &zero, &zero, &mut fx, &mut fy);
        for j in 0..n as i64 {
            for i in 0..=n as i64 {
                assert_eq!(fx.get(i, j, 0), 0.0);
                assert_eq!(fy.get(j, i, 0), 0.0);
            }
        }
    }
}
